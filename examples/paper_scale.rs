//! Paper-scale smoke: a ~40k-server datacenter (the order of one of the
//! paper's suites) stepped end to end, printing sustained ticks/sec.
//!
//! Run with `--quick` (CI) for a short timed window; the default runs a
//! longer window for stable numbers. Exits nonzero if the simulation
//! fails to sustain a minimum tick rate, so CI catches pathological
//! regressions at scale, not just at the benchmark sizes.
//!
//! ```sh
//! cargo run --release --example paper_scale -- --quick
//! ```

use std::time::Instant;

use dcsim::SimDuration;
use dynamo::{Datacenter, DatacenterBuilder, ParallelMode};
use workloads::{ServiceKind, TrafficPattern};

/// 4 MSBs x 4 SBs x 16 RPPs x 160 servers = 40,960 servers, sized so
/// each device carries ~90% of its OCP rating (MSB: ~2.3 of 2.5 MW)
/// rather than tripping its breaker.
fn build(threads: usize) -> Datacenter {
    DatacenterBuilder::new()
        .msbs_per_suite(4)
        .sbs_per_msb(4)
        .rpps_per_sb(16)
        .racks_per_rpp(4)
        .servers_per_rack(40)
        .uniform_service(ServiceKind::Web)
        .traffic(ServiceKind::Web, TrafficPattern::diurnal())
        .seed(2016)
        .worker_threads(threads)
        .parallel_mode(ParallelMode::PooledAuto)
        .phase_spread(SimDuration::from_secs(2))
        .build()
}

fn measure(dc: &mut Datacenter, window_ms: u128) -> f64 {
    for _ in 0..5 {
        dc.step();
    }
    let start = Instant::now();
    let mut ticks = 0u64;
    loop {
        for _ in 0..10 {
            dc.step();
        }
        ticks += 10;
        if start.elapsed().as_millis() >= window_ms {
            break;
        }
    }
    ticks as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let window_ms = if quick { 1500 } else { 6000 };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut dc = build(threads);
    let servers = dc.fleet().len();
    let ticks_per_sec = measure(&mut dc, window_ms);
    let sim_per_wall = ticks_per_sec; // 1 s ticks: sim seconds per wall second
    println!(
        "paper-scale smoke: {servers} servers, {} worker threads",
        dc.effective_worker_threads()
    );
    println!("  {ticks_per_sec:>8.1} ticks/s ({sim_per_wall:.0}x real time)");
    let power = dc.fleet().stats().total_power;
    println!("  fleet power {:.2} MW", power.as_watts() / 1e6);
    // Floor: even a single-core CI runner comfortably exceeds this with
    // the batched kernels; falling below it means something is badly
    // wrong at scale (accidental O(n^2), per-tick allocation storm).
    let floor = 25.0;
    if !ticks_per_sec.is_finite() || ticks_per_sec <= floor {
        eprintln!("FAIL: {ticks_per_sec:.1} ticks/s below the {floor:.0} ticks/s floor");
        std::process::exit(1);
    }
}
