//! Paper-scale smoke: a ~40k-server datacenter (the order of one of the
//! paper's suites) stepped end to end, printing sustained ticks/sec.
//!
//! `--full-site` scales up to the paper's whole ~30 MW site — 12 MSBs
//! x 4 SBs x 16 RPPs x 160 servers = 122,880 servers, 768 leaf
//! controllers — with a 30-tick demand hold so the active-set physics
//! carry the steady state, and enforces its own (higher) throughput
//! floor. `--worst-case` runs the same full-site shape under the bench
//! matrix's worst-case workload instead: over-subscribed flat 1.2x
//! demand, per-tick redraws, lossy links — nothing settles, every
//! controller cycle caps, so this floor guards the whole parallel tick
//! (sharded telemetry, tree-fold breaker pass, leaf dispatch) under
//! maximum load.
//!
//! Run with `--quick` (CI) for a short timed window; the default runs a
//! longer window for stable numbers. Exits nonzero if the simulation
//! fails to sustain a minimum tick rate, so CI catches pathological
//! regressions at scale, not just at the benchmark sizes.
//!
//! ```sh
//! cargo run --release --example paper_scale -- --quick
//! cargo run --release --example paper_scale -- --full-site --quick
//! cargo run --release --example paper_scale -- --worst-case --quick
//! ```

use std::time::Instant;

use dcsim::SimDuration;
use dynamo::{Datacenter, DatacenterBuilder, ParallelMode};
use workloads::{ServiceKind, TrafficPattern};

/// The three smoke flavours. All share the paper's suite shape below
/// the MSB (4 SBs x 16 RPPs x 4 racks x 40 servers).
#[derive(Clone, Copy, PartialEq)]
enum Flavour {
    /// 4 MSBs, diurnal traffic, per-tick redraws: ~40k servers at ~90%
    /// of rating.
    PaperScale,
    /// 12 MSBs, steady-state workload (flat 0.7x, hold 30, lossless
    /// links): the active-set and cycle-elision regime at 122,880
    /// servers.
    FullSite,
    /// 12 MSBs, worst-case workload (flat 1.2x, hold 1, lossy links):
    /// every leaf redraws and caps every tick — the full parallel tick
    /// under maximum load.
    WorstCase,
}

/// Default: 4 MSBs x 4 SBs x 16 RPPs x 160 servers = 40,960 servers,
/// sized so each device carries ~90% of its OCP rating (MSB: ~2.3 of
/// 2.5 MW) rather than tripping its breaker, on diurnal traffic with
/// per-tick redraws — the worst case for the physics. `--full-site`:
/// 12 MSBs, same shape below the MSB = 122,880 servers, run as the
/// steady-state workload from the bench matrix (under-budget flat 0.7x
/// demand held 30 ticks, lossless agent links), so this smoke
/// exercises — and its floor enforces — the active-set skip and
/// quiescent-cycle elision at full scale. `--worst-case`: the same
/// full-site shape under the bench matrix's worst-case workload
/// (over-subscribed flat 1.2x, per-tick redraws, default lossy links).
fn build(threads: usize, flavour: Flavour) -> Datacenter {
    let full_shape = flavour != Flavour::PaperScale;
    let mut b = DatacenterBuilder::new()
        .msbs_per_suite(if full_shape { 12 } else { 4 })
        .sbs_per_msb(4)
        .rpps_per_sb(16)
        .racks_per_rpp(4)
        .servers_per_rack(40)
        .uniform_service(ServiceKind::Web)
        .seed(2016)
        .worker_threads(threads)
        .parallel_mode(ParallelMode::PooledAuto)
        .phase_spread(SimDuration::from_secs(2))
        .demand_hold(if flavour == Flavour::FullSite { 30 } else { 1 });
    b = match flavour {
        Flavour::PaperScale => b.traffic(ServiceKind::Web, TrafficPattern::diurnal()),
        Flavour::FullSite => b
            .traffic(ServiceKind::Web, TrafficPattern::flat(0.7))
            .rpc_profile(dynrpc::LinkProfile::reliable()),
        Flavour::WorstCase => b.traffic(ServiceKind::Web, TrafficPattern::flat(1.2)),
    };
    b.build()
}

fn measure(dc: &mut Datacenter, window_ms: u128) -> f64 {
    for _ in 0..5 {
        dc.step();
    }
    let start = Instant::now();
    let mut ticks = 0u64;
    loop {
        for _ in 0..10 {
            dc.step();
        }
        ticks += 10;
        if start.elapsed().as_millis() >= window_ms {
            break;
        }
    }
    ticks as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let flavour = if std::env::args().any(|a| a == "--worst-case") {
        Flavour::WorstCase
    } else if std::env::args().any(|a| a == "--full-site") {
        Flavour::FullSite
    } else {
        Flavour::PaperScale
    };
    let window_ms = if quick { 1500 } else { 6000 };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut dc = build(threads, flavour);
    let servers = dc.fleet().len();
    let ticks_per_sec = measure(&mut dc, window_ms);
    let sim_per_wall = ticks_per_sec; // 1 s ticks: sim seconds per wall second
    let label = match flavour {
        Flavour::PaperScale => "paper-scale",
        Flavour::FullSite => "full-site (30 MW)",
        Flavour::WorstCase => "full-site worst-case (30 MW)",
    };
    println!(
        "{label} smoke: {servers} servers, {} leaves, {} worker threads, demand hold {}",
        dc.system().leaf_devices().len(),
        dc.effective_worker_threads(),
        dc.fleet().demand_hold()
    );
    println!("  {ticks_per_sec:>8.1} ticks/s ({sim_per_wall:.0}x real time)");
    let power = dc.fleet().stats().total_power;
    println!("  fleet power {:.2} MW", power.as_watts() / 1e6);
    // Floors: even a single-core CI runner comfortably exceeds these
    // with the vector kernels (and, for the full site, the active-set
    // skip); falling below means something is badly wrong at scale
    // (accidental O(n^2), per-tick allocation storm, active set never
    // engaging). The full-site floor matches the
    // `full_site_smoke.floor_ticks_per_sec` recorded in
    // BENCH_controlplane.json.
    // Full-site: the steady-state configuration sustains ~490 ticks/s
    // on the single-core bench host; 150 leaves 3x headroom for a
    // loaded CI runner while still catching the active set failing to
    // engage (which alone drops the rate under ~100).
    // Worst-case: the same shape with nothing settling sustains
    // ~77-88 ticks/s serial depending on the bench host's mood;
    // 30 leaves ~2.5x headroom while still catching a pathological
    // serial tick at full load.
    let floor = match flavour {
        Flavour::PaperScale => 25.0,
        Flavour::FullSite => 150.0,
        Flavour::WorstCase => 30.0,
    };
    if !ticks_per_sec.is_finite() || ticks_per_sec <= floor {
        eprintln!("FAIL: {ticks_per_sec:.1} ticks/s below the {floor:.0} ticks/s floor");
        std::process::exit(1);
    }
}
