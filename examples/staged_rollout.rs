//! Staged rollout (§VI): deploy capping logic the way production does —
//! dry-run first, then activate it on 1% → 10% → 50% → 100% of leaf
//! controllers, watching that each phase behaves before going wider.
//!
//! ```text
//! cargo run --release --example staged_rollout
//! ```

use dcsim::SimDuration;
use dynamo_repro::dynamo::{ControllerEventKind, DatacenterBuilder};
use dynamo_repro::powerinfra::Power;
use dynamo_repro::workloads::{ServiceKind, TrafficPattern};

fn main() {
    // Eight mildly overloaded rows: every RPP wants ~11.4 kW against
    // 11 kW — enough to demand capping, small enough that the breakers'
    // thermal slack covers the dry-run phases (a ~4% overdraw takes
    // over an hour to trip an RPP; see Figure 3).
    let mut dc = DatacenterBuilder::new()
        .sbs_per_msb(2)
        .rpps_per_sb(4)
        .racks_per_rpp(2)
        .servers_per_rack(20)
        .rpp_rating(Power::from_kilowatts(11.0))
        .uniform_service(ServiceKind::Web)
        .traffic(ServiceKind::Web, TrafficPattern::flat(1.37))
        .seed(66)
        .build();

    println!("8 overloaded rows; rolling the capping logic out in four phases\n");
    let mut decided_so_far = 0;
    for phase in 1u8..=4 {
        let active = dc.system_mut().set_rollout_phase(phase);
        dc.run_for(SimDuration::from_mins(4));

        let decisions = dc
            .telemetry()
            .controller_events()
            .iter()
            .filter(|e| matches!(e.kind, ControllerEventKind::LeafCapped { .. }))
            .count();
        let stats = dc.fleet().stats();
        println!(
            "phase {phase}: {active}/8 controllers live  |  cap decisions so far {decisions} \
             (+{})  |  servers actually capped {}  |  trips {}",
            decisions - decided_so_far,
            stats.capped_servers,
            dc.telemetry().breaker_trips().len(),
        );
        decided_so_far = decisions;
    }

    println!(
        "\nDry-run controllers computed the same decisions without actuating, so a\n\
         bad control-logic change would have surfaced in phase 1 on one row — not\n\
         across the fleet. After phase 4, every row is actively protected."
    );
}
