//! Quickstart: build a small datacenter, run it for ten simulated
//! minutes with Dynamo protecting every level, and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dcsim::SimDuration;
use dynamo_repro::dynamo::DatacenterBuilder;
use dynamo_repro::powerinfra::{DeviceLevel, Power};
use dynamo_repro::workloads::{ServiceKind, TrafficPattern};

fn main() {
    // One MSB → 2 SBs → 2 RPPs each → 2 racks × 20 web servers.
    // The RPP rating is deliberately tight so Dynamo has work to do.
    let mut dc = DatacenterBuilder::new()
        .sbs_per_msb(2)
        .rpps_per_sb(2)
        .racks_per_rpp(2)
        .servers_per_rack(20)
        .rpp_rating(Power::from_kilowatts(11.5))
        .uniform_service(ServiceKind::Web)
        .traffic(ServiceKind::Web, TrafficPattern::flat(1.6))
        .seed(1)
        .build();

    println!(
        "datacenter: {} servers, {} power devices, {} leaf + {} upper controllers",
        dc.fleet().len(),
        dc.topology().device_count(),
        dc.system().leaf_count(),
        dc.system().upper_count()
    );

    for minute in 1..=10 {
        dc.run_for(SimDuration::from_mins(1));
        let stats = dc.fleet().stats();
        println!(
            "t={minute:>2} min  total={:>8.1} kW  capped={:>3} servers  alerts={}",
            stats.total_power.as_kilowatts(),
            stats.capped_servers,
            dc.system().alerts().len()
        );
    }

    println!("\nper-RPP power vs breaker rating:");
    for rpp in dc.topology().devices_at(DeviceLevel::Rpp) {
        let dev = dc.topology().device(rpp);
        println!(
            "  {:<28} {:>8.2} kW / {:>6.1} kW  ({} capped)",
            dev.name,
            dc.device_power(rpp).as_kilowatts(),
            dev.rating.as_kilowatts(),
            dc.capped_under(rpp)
        );
    }

    let events = dc.telemetry().controller_events();
    println!(
        "\ncontroller events: {} total; breaker trips: {} (Dynamo's job is to keep this 0)",
        events.len(),
        dc.telemetry().breaker_trips().len()
    );
    for e in events.iter().take(8) {
        println!("  [{}] {} -> {:?}", e.at, e.controller, e.kind);
    }

    println!(
        "\n{}",
        dynamo_repro::dynamo::RunReport::from_datacenter(&dc)
    );
}
