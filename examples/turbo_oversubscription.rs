//! Dynamic power oversubscription (§IV-B): enable Turbo Boost on a
//! Hadoop cluster whose power plan never budgeted for it, and let
//! Dynamo absorb the worst case.
//!
//! ```text
//! cargo run --release --example turbo_oversubscription
//! ```

use dcsim::SimDuration;
use dynamo_repro::dynamo::{Datacenter, DatacenterBuilder};
use dynamo_repro::powerinfra::{DeviceLevel, Power};
use dynamo_repro::workloads::ServiceKind;

fn build(turbo: bool) -> Datacenter {
    let mut b = DatacenterBuilder::new()
        .sbs_per_msb(1)
        .rpps_per_sb(2)
        .racks_per_rpp(4)
        .servers_per_rack(30)
        .rpp_rating(Power::from_kilowatts(48.0))
        .sb_rating(Power::from_kilowatts(80.0))
        .uniform_service(ServiceKind::Hadoop)
        .seed(7);
    if turbo {
        b = b.turbo(ServiceKind::Hadoop);
    }
    b.build()
}

fn measure(label: &str, turbo: bool) -> f64 {
    let mut dc = build(turbo);
    let sb = dc.topology().devices_at(DeviceLevel::Sb)[0];
    let mut perf_acc = 0.0;
    let mut n = 0u32;
    let mut peak = Power::ZERO;
    let mut cap_minutes = 0u32;
    for _ in 0..45 {
        dc.run_for(SimDuration::from_mins(1));
        perf_acc += dc.performance_under(sb);
        n += 1;
        peak = peak.max(dc.device_power(sb));
        if dc.capped_under(sb) > 0 {
            cap_minutes += 1;
        }
    }
    let perf = perf_acc / n as f64;
    println!(
        "{label:<22} mean perf {perf:.3}   peak SB {:.1} kW / 80 kW   capped during {cap_minutes}/45 min   trips: {}",
        peak.as_kilowatts(),
        dc.telemetry().breaker_trips().len()
    );
    perf
}

fn main() {
    println!("Hadoop cluster, 240 servers, SB budget 80 kW (no margin for Turbo):\n");
    let base = measure("Turbo off (baseline)", false);
    let boosted = measure("Turbo on + Dynamo", true);
    println!(
        "\nmap-reduce throughput gain: +{:.1}%  (paper: up to 13%)",
        (boosted / base - 1.0) * 100.0
    );
    println!(
        "Without Dynamo this would be unsafe: worst-case peak power with Turbo\n\
         exceeds the SB budget, and only dynamic capping makes the plan viable."
    );
}
