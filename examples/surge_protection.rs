//! Surge protection: the paper's headline use case (Figure 12 / Table I
//! row 1) as a side-by-side experiment.
//!
//! The same recovery-surge scenario runs twice — once without Dynamo
//! and once with it — and the example reports whether the breaker
//! tripped (a potential outage) in each world.
//!
//! ```text
//! cargo run --release --example surge_protection
//! ```

use dcsim::{SimDuration, SimTime};
use dynamo_repro::dynamo::{Datacenter, DatacenterBuilder};
use dynamo_repro::powerinfra::{DeviceLevel, Power};
use dynamo_repro::workloads::{ServiceKind, TrafficEvent, TrafficPattern};

fn build(capping: bool) -> Datacenter {
    // A web cluster that surges to ~1.5x normal traffic after a site
    // recovery, pushing its SB past the breaker rating.
    let surge = TrafficEvent::new(SimTime::from_mins(10), SimTime::from_mins(40), 1.5)
        .with_ramp(SimDuration::from_secs(60));
    DatacenterBuilder::new()
        .sbs_per_msb(1)
        .rpps_per_sb(4)
        .racks_per_rpp(2)
        .servers_per_rack(15)
        .rpp_rating(Power::from_kilowatts(15.0))
        .sb_rating(Power::from_kilowatts(34.0))
        .uniform_service(ServiceKind::Web)
        .traffic(
            ServiceKind::Web,
            TrafficPattern::flat(1.0).with_event(surge),
        )
        .capping_enabled(capping)
        .seed(99)
        .build()
}

fn run(label: &str, capping: bool) {
    let mut dc = build(capping);
    let sb = dc.topology().devices_at(DeviceLevel::Sb)[0];
    let limit = dc.topology().device(sb).rating;
    println!("--- {label} (SB limit {limit}) ---");
    let mut peak = Power::ZERO;
    for minute in 1..=50 {
        dc.run_for(SimDuration::from_mins(1));
        let p = dc.device_power(sb);
        peak = peak.max(p);
        if minute % 5 == 0 {
            println!(
                "t={minute:>2} min  SB={:>7.2} kW  capped={:>3}",
                p.as_kilowatts(),
                dc.capped_under(sb)
            );
        }
    }
    let trips = dc.telemetry().breaker_trips();
    println!("peak SB power: {:.2} kW", peak.as_kilowatts());
    match trips.first() {
        Some(t) => println!(
            "OUTAGE: {} tripped at {} — subtree blacked out\n",
            dc.topology().device(t.device).name,
            t.at
        ),
        None => println!("no breaker tripped\n"),
    }
}

fn main() {
    run("without Dynamo", false);
    run("with Dynamo", true);
    println!(
        "Dynamo converts a breaker trip (long outage for every server below the\n\
         breaker) into a short, targeted performance cap on the surge's offenders."
    );
}
