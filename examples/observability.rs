//! Observability tour: run a stressed datacenter with the `dynobs`
//! subsystem enabled, then inspect metrics, spans and the flight
//! recorder from code.
//!
//! ```text
//! cargo run --release --example observability
//! ```

use dcsim::{SimDuration, SimTime};
use dynamo_repro::dynamo::{DatacenterBuilder, ObsConfig, RunReport};
use dynamo_repro::dynobs;
use dynamo_repro::powerinfra::Power;
use dynamo_repro::workloads::{ServiceKind, TrafficPattern};

fn main() {
    // A tight RPP rating keeps the leaf controllers capping; the lossy
    // link and the injected primary failure exercise the incident path.
    let mut dc = DatacenterBuilder::new()
        .sbs_per_msb(1)
        .rpps_per_sb(2)
        .racks_per_rpp(2)
        .servers_per_rack(16)
        .rpp_rating(Power::from_kilowatts(7.4))
        .uniform_service(ServiceKind::Web)
        .traffic(ServiceKind::Web, TrafficPattern::flat(1.6))
        .observability(ObsConfig::on())
        .seed(2016)
        .build();

    dc.run_until(SimTime::from_mins(2));
    let victim = dc.system().leaf_devices()[0];
    dc.system_mut().fail_primary(victim);
    dc.run_for(SimDuration::from_mins(1));

    // 1. The metrics registry: typed access and both exporters.
    let obs = dc.system().observability();
    let registry = obs.registry();
    println!("== counters ==");
    for (name, _help, value) in registry.counters() {
        if value > 0 {
            println!("{name:<44} {value}");
        }
    }
    println!("\n== histograms ==");
    for (name, _help, view) in registry.histograms() {
        if view.count > 0 {
            println!(
                "{name:<44} count {} sum {:.3} ({} buckets)",
                view.count,
                view.sum,
                view.buckets.len()
            );
        }
    }

    // The same registry renders as Prometheus text (scrape endpoint
    // format) and as a JSON snapshot; the text round-trips through
    // dynobs::parse_prometheus bit-exactly.
    let text = obs.prometheus_text();
    let families = dynobs::parse_prometheus(&text).expect("own exposition parses");
    println!(
        "\nprometheus text: {} bytes, {} families",
        text.len(),
        families.len()
    );

    // 2. Cycle tracing: spans for every pull, distribution, actuation
    // and failover, exportable as chrome-tracing JSON (load it in
    // https://ui.perfetto.dev or chrome://tracing).
    println!(
        "trace ring: {} spans buffered, {} recorded total",
        obs.trace().len(),
        obs.trace().total_recorded()
    );

    // 3. The flight recorder: the last N control-plane state changes.
    // Incident triggers (failovers, capping-episode starts, breaker
    // trips, validator alerts) dump it to JSON automatically when
    // ObsConfig::incident_dir is set.
    println!("flight recorder tail:");
    let records: Vec<_> = obs.flight().records().collect();
    for record in &records[records.len().saturating_sub(5)..] {
        println!(
            "  t={:>7}ms {:<24} {}",
            record.at_ms,
            &*record.controller,
            record.kind.label()
        );
    }
    println!("incident triggers fired: {}", obs.incidents());

    println!("\n{}", RunReport::from_datacenter(&dc));
}
