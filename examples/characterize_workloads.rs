//! Workload characterization (§II-B): measure how each service makes
//! server power move, the study that fixed Dynamo's 3-second sampling
//! and 2-minute reaction budget.
//!
//! ```text
//! cargo run --release --example characterize_workloads
//! ```

use dcsim::{SimDuration, SimRng, SimTime};
use dynamo_repro::powerstats::{sliding_variation, Cdf, Trace};
use dynamo_repro::serverpower::ServerGeneration;
use dynamo_repro::workloads::{ServiceKind, ServiceWorkload};

fn main() {
    let curve = ServerGeneration::Haswell2015.power_curve();
    let windows = [3u64, 30, 60, 300];
    println!("per-service p50/p99 power variation (% of peak-hour mean), 2 h x 8 servers\n");
    println!(
        "{:<12} {}",
        "service",
        windows.map(|w| format!("{w:>6}s p50/p99")).join("   ")
    );

    for kind in ServiceKind::all() {
        let mut root = SimRng::seed_from(2026);
        let mut traces = Vec::new();
        for i in 0..8 {
            let mut wl = ServiceWorkload::new(kind, root.split_index(i));
            let mut t = SimTime::ZERO;
            let mut trace = Trace::empty(SimDuration::from_secs(3));
            for _ in 0..(2 * 1200) {
                let u = wl.utilization(t, 1.0, SimDuration::from_secs(3));
                trace.push(curve.power_at(u).as_watts());
                t += SimDuration::from_secs(3);
            }
            traces.push(trace);
        }
        let mut cells = Vec::new();
        for w in windows {
            let mut pooled = Vec::new();
            for trace in &traces {
                let norm = trace.peak_mean(0.3);
                for v in sliding_variation(trace, SimDuration::from_secs(w)) {
                    pooled.push(v / norm * 100.0);
                }
            }
            let cdf = Cdf::from_samples(pooled);
            cells.push(format!("{:>5.1}/{:>5.1}", cdf.median(), cdf.p99()));
        }
        println!("{:<12} {}", kind.label(), cells.join("     "));
    }

    println!(
        "\nreading the table the way the paper does:\n\
         - variations grow with the window: a controller sampling every few\n\
           minutes would see far larger unmanaged swings than one sampling at 3 s;\n\
         - f4 storage is calm at the median but has the heaviest tail — rare\n\
           scans move its power by most of a server's dynamic range;\n\
         - web and news feed move the most at the median, so rows dominated by\n\
           them need the most capping headroom."
    );
}
