//! Staggered controller phases: the event-driven control plane running
//! leaf cycles spread across the 3 s interval instead of in lockstep —
//! the shape of the deployed system, where nothing synchronizes the
//! ~100 independent controller daemons of a datacenter (§IV).
//!
//! Compares a lockstep run against an even-spread and a jittered run of
//! the same oversubscribed row, showing the per-leaf phase offsets and
//! that the control outcome (breaker safety) is unchanged — only the
//! timing of the control actions moves.
//!
//! Staggering composes with `DatacenterBuilder::worker_threads`:
//! same-instant leaves are batched into one dispatch on the persistent
//! worker pool (DESIGN.md §10, `crates/dynpool`) and stay bit-identical
//! at any thread count — see `tests/pool_determinism.rs`.
//!
//! ```text
//! cargo run --release --example staggered_control
//! ```

use dcsim::SimDuration;
use dynamo_repro::dynamo::{Datacenter, DatacenterBuilder, RunReport};
use dynamo_repro::powerinfra::Power;
use dynamo_repro::workloads::{ServiceKind, TrafficPattern};

fn builder() -> DatacenterBuilder {
    // An oversubscribed web row: the RPP rating forces real capping.
    DatacenterBuilder::new()
        .sbs_per_msb(1)
        .rpps_per_sb(4)
        .racks_per_rpp(2)
        .servers_per_rack(16)
        .rpp_rating(Power::from_kilowatts(7.6))
        .uniform_service(ServiceKind::Web)
        .traffic(ServiceKind::Web, TrafficPattern::flat(1.5))
        .seed(2026)
}

fn run(label: &str, mut dc: Datacenter) -> RunReport {
    let leaves: Vec<_> = dc.system().leaf_devices().to_vec();
    let phases: Vec<String> = leaves
        .iter()
        .map(|&d| {
            let p = dc.system().leaf_phase(d).expect("leaf device");
            format!("{:.2}s", p.as_secs_f64())
        })
        .collect();
    println!("{label:<12} leaf phases: [{}]", phases.join(", "));

    dc.run_for(SimDuration::from_mins(5));
    let report = RunReport::from_datacenter(&dc);
    println!(
        "{:<12} cap events {:>4}  uncap events {:>4}  breaker trips {}  healthy {}",
        "",
        report.leaf_cap_events,
        report.leaf_uncap_events,
        report.breaker_trips,
        report.is_healthy()
    );
    report
}

fn main() {
    println!("one oversubscribed row, three phase policies, 5 simulated minutes\n");

    let lockstep = run("lockstep", builder().build());
    let spread = run(
        "even-spread",
        builder().phase_spread(SimDuration::from_secs(3)).build(),
    );
    let jittered = run(
        "jittered",
        builder().phase_jitter(SimDuration::from_secs(3)).build(),
    );

    println!();
    assert!(
        lockstep.breaker_trips == 0 && spread.breaker_trips == 0 && jittered.breaker_trips == 0
    );
    println!(
        "all three policies hold the breaker; staggering moves when \
         cycles fire, not what they decide"
    );
}
