//! Month-long resumable horizon: one month of simulated time run as
//! four checkpoint/resume legs, verified bit-identical to the unbroken
//! run.
//!
//! §VI of the paper evaluates Dynamo over months of production
//! operation; reproducing those horizons in one process is fragile
//! (preemption, host maintenance). This example is the repro's answer:
//! run a leg, snapshot every stateful layer to disk, start a fresh
//! process-equivalent (a freshly built datacenter), restore, continue —
//! and prove at the end that the legged run's report and full
//! Prometheus exposition are byte-identical to running the month
//! unbroken.
//!
//! Also measures the checkpoint mechanics themselves — file size,
//! write latency, load+restore latency — the numbers recorded under
//! `checkpoint` in `BENCH_controlplane.json`.
//!
//! ```sh
//! cargo run --release --example long_horizon            # 30 days
//! cargo run --release --example long_horizon -- --quick # 2 days (CI)
//! ```

use std::path::PathBuf;
use std::time::Instant;

use dcsim::snap::Snapshot;
use dcsim::{SimDuration, SimTime};
use dynamo::{Datacenter, DatacenterBuilder, DatacenterState, ObsConfig, RunReport};
use dynrpc::LinkProfile;
use workloads::{ServiceKind, TrafficPattern};

const LEGS: u64 = 4;

/// The steady-state fleet from the bench matrix, small enough that a
/// simulated month is a coffee-break run: 160 servers under budget on
/// lossless links, demand held 30 ticks so the active-set physics and
/// cycle elision carry the quiet stretches — exactly the regime a
/// month-long horizon spends most of its time in.
fn build() -> Datacenter {
    DatacenterBuilder::new()
        .sbs_per_msb(1)
        .rpps_per_sb(4)
        .racks_per_rpp(2)
        .servers_per_rack(20)
        .uniform_service(ServiceKind::Web)
        .traffic(ServiceKind::Web, TrafficPattern::diurnal())
        .rpc_profile(LinkProfile::reliable())
        .observability(ObsConfig::on())
        .demand_hold(30)
        .phase_spread(SimDuration::from_secs(2))
        .seed(2016)
        .build()
}

fn observable(dc: &Datacenter) -> (String, String) {
    (
        RunReport::from_datacenter(dc).to_string(),
        dc.system().observability().prometheus_text(),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let days: u64 = if quick { 2 } else { 30 };
    let horizon = SimTime::from_secs(days * 86_400);
    let dir = PathBuf::from("target/long_horizon");
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");

    println!("long_horizon: {days} simulated days, unbroken vs {LEGS} checkpointed legs\n");

    // The reference: one process, no interruptions.
    let wall = Instant::now();
    let mut unbroken = build();
    unbroken.run_until(horizon);
    let expected = observable(&unbroken);
    println!(
        "unbroken : {days} days in {:.1} s wall ({:.0} ticks/s)",
        wall.elapsed().as_secs_f64(),
        (days * 86_400) as f64 / wall.elapsed().as_secs_f64()
    );
    drop(unbroken);

    // The same month as four legs, each resumed from the previous
    // leg's on-disk snapshot by a freshly built datacenter.
    let mut dc = build();
    let (mut file_bytes, mut write_ms, mut load_restore_ms) = (0u64, 0.0f64, 0.0f64);
    for leg in 1..=LEGS {
        let wall = Instant::now();
        dc.run_until(SimTime::from_secs(days * 86_400 * leg / LEGS));
        let ran = wall.elapsed().as_secs_f64();

        let path = dir.join(format!("leg-{leg}.snap"));
        let write = Instant::now();
        let bytes = dc.state().to_snap_bytes();
        std::fs::write(&path, &bytes).expect("write checkpoint");
        let wrote = write.elapsed().as_secs_f64() * 1e3;
        file_bytes = bytes.len() as u64;
        write_ms = write_ms.max(wrote);
        drop(dc);

        // A fresh "process": rebuild from configuration, restore every
        // stateful layer from the snapshot.
        let load = Instant::now();
        let raw = std::fs::read(&path).expect("read checkpoint");
        let state = DatacenterState::from_snap_bytes(&raw).expect("decode checkpoint");
        dc = build();
        dc.restore(&state).expect("restore checkpoint");
        let loaded = load.elapsed().as_secs_f64() * 1e3;
        load_restore_ms = load_restore_ms.max(loaded);

        println!(
            "leg {leg}/{LEGS}  : ran to t={:>7} s in {ran:>5.1} s, snapshot {} KiB \
             (write {wrote:.1} ms, load+restore {loaded:.1} ms)",
            dc.now().as_secs(),
            file_bytes / 1024,
        );
    }
    let got = observable(&dc);

    assert_eq!(dc.now(), horizon, "legged run ended at the wrong time");
    if expected == got {
        println!(
            "\nPASS: legged run is bit-identical to the unbroken month \
             (report {} bytes, metrics {} bytes)",
            got.0.len(),
            got.1.len()
        );
        println!("\n{}", got.0);
        println!(
            "bench fragment for BENCH_controlplane.json:\n  \
             \"checkpoint\": {{\"servers\": {}, \"sim_days\": {days}, \"legs\": {LEGS}, \
             \"file_bytes\": {file_bytes}, \"write_ms\": {write_ms:.1}, \
             \"load_restore_ms\": {load_restore_ms:.1}, \
             \"measured_by\": \"examples/long_horizon.rs\"}}",
            dc.fleet().len()
        );
    } else {
        if expected.0 != got.0 {
            eprintln!(
                "FAIL: report diverged.\n--- unbroken ---\n{}\n--- legged ---\n{}",
                expected.0, got.0
            );
        }
        if expected.1 != got.1 {
            let diff = expected
                .1
                .lines()
                .zip(got.1.lines())
                .find(|(a, b)| a != b)
                .map(|(a, b)| format!("first diff:\n  unbroken: {a}\n  legged:   {b}"))
                .unwrap_or_else(|| "length mismatch".to_string());
            eprintln!("FAIL: Prometheus exposition diverged. {diff}");
        }
        std::process::exit(1);
    }
}
