//! Scale demonstration: a multi-suite datacenter with the full OCP
//! hierarchy and thousands of servers, run with parallel fleet physics.
//!
//! ```text
//! cargo run --release --example full_datacenter
//! ```

use std::time::Instant;

use dcsim::SimDuration;
use dynamo_repro::dynamo::{DatacenterBuilder, ServicePlan};
use dynamo_repro::powerinfra::DeviceLevel;
use dynamo_repro::workloads::{ServiceKind, TrafficPattern};

fn main() {
    let started = Instant::now();
    // Two suites × 2 MSBs × 4 SBs × 4 RPPs × 4 racks × 30 servers
    // = 15,360 servers — about half of one of the paper's 30 K suites.
    let mut dc = DatacenterBuilder::new()
        .suites(2)
        .msbs_per_suite(2)
        .sbs_per_msb(4)
        .rpps_per_sb(4)
        .racks_per_rpp(4)
        .servers_per_rack(30)
        .service_plan(ServicePlan::RowComposition(vec![
            (ServiceKind::Web, 36),
            (ServiceKind::Cache, 18),
            (ServiceKind::Hadoop, 24),
            (ServiceKind::Database, 12),
            (ServiceKind::NewsFeed, 18),
            (ServiceKind::F4Storage, 12),
        ]))
        .traffic(ServiceKind::Web, TrafficPattern::diurnal())
        .traffic(ServiceKind::NewsFeed, TrafficPattern::diurnal())
        .worker_threads(4)
        .seed(2016)
        .build();

    println!(
        "built: {} servers, {} devices, {} leaf + {} upper controllers in {:.2}s",
        dc.fleet().len(),
        dc.topology().device_count(),
        dc.system().leaf_count(),
        dc.system().upper_count(),
        started.elapsed().as_secs_f64()
    );

    let sim_started = Instant::now();
    let horizon = SimDuration::from_mins(30);
    dc.run_for(horizon);
    let wall = sim_started.elapsed().as_secs_f64();
    println!(
        "simulated {} of datacenter time in {:.1}s wall ({:.0}x real time)\n",
        horizon,
        wall,
        horizon.as_secs_f64() / wall
    );

    let stats = dc.fleet().stats();
    println!("fleet power: {}", stats.total_power);
    println!("capped servers: {}", stats.capped_servers);
    println!("breaker trips: {}", dc.telemetry().breaker_trips().len());
    println!(
        "controller events: {}",
        dc.telemetry().controller_events().len()
    );
    println!("operator alerts: {}", dc.system().alerts().len());

    println!("\nutilization of provisioned power per MSB:");
    for msb in dc.topology().devices_at(DeviceLevel::Msb) {
        let dev = dc.topology().device(msb);
        let p = dc.device_power(msb);
        println!(
            "  {:<16} {:>9.1} kW / {:>8.1} kW  ({:>4.1}% of rating, oversubscription {:.2}x)",
            dev.name,
            p.as_kilowatts(),
            dev.rating.as_kilowatts(),
            p.ratio_of(dev.rating) * 100.0,
            dc.topology().oversubscription(msb)
        );
    }
}
