//! Grid-interactive demand response: a utility curtailment window
//! honored by the §III-D contractual-limit path, side by side with a
//! datacenter that ignores the grid entirely.
//!
//! The same fleet runs twice through a 10-minute curtailment window
//! (the utility drops the site's allowance to 80% of the interconnect
//! capacity). The grid-aware run translates the signal into temporary
//! contract pushes on the MSB controllers and rides the step with the
//! DCUPS banks; the report shows the window contained with zero
//! violation seconds and the performance cost paid for it.
//!
//! ```text
//! cargo run --release --example grid_curtailment
//! ```

use dcsim::SimDuration;
use dynamo_repro::dynamo::{Datacenter, DatacenterBuilder, RunReport, ServicePlan};
use dynamo_repro::powerinfra::{DeviceLevel, Power};
use dynamo_repro::workloads::ServiceKind;

fn base() -> DatacenterBuilder {
    DatacenterBuilder::new()
        .sbs_per_msb(2)
        .rpps_per_sb(2)
        .racks_per_rpp(2)
        .servers_per_rack(8)
        // Realistic bank sizing: DCUPS capacity follows the leaf design
        // load (90 s ride-through), so an oversized RPP rating would let
        // the batteries absorb the whole window and hide the contract
        // pushes this example is about.
        .rpp_rating(Power::from_kilowatts(5.0))
        .service_plan(ServicePlan::Mix(vec![
            (ServiceKind::Web, 0.6),
            (ServiceKind::Cache, 0.4),
        ]))
        .seed(77)
}

fn build(grid: bool, msb_rating: Power) -> Datacenter {
    let b = base().msb_rating(msb_rating);
    if grid {
        b.grid_scenario("curtailment-window").build()
    } else {
        b.build()
    }
}

fn main() {
    // Size the interconnect so the 80% curtailment actually bites: pin
    // the MSB rating 15% above the fleet's unconstrained draw.
    let baseline = {
        let mut probe = base().build();
        probe.run_for(SimDuration::from_secs(60));
        probe.fleet().stats().total_power
    };
    let msb_rating = baseline * 1.15;

    for grid in [false, true] {
        let label = if grid { "grid-aware" } else { "grid-blind" };
        let mut dc = build(grid, msb_rating);
        let msb = dc.topology().devices_at(DeviceLevel::Msb)[0];
        println!("--- {label} ---");
        for _ in 0..5 {
            dc.run_for(SimDuration::from_mins(4));
            let g = dc.grid().map(|g| g.summary());
            println!(
                "t={:>4} s  MSB={:>6.2} kW  utility={}  perf={:>5.1}%",
                dc.now().as_secs(),
                dc.device_power(msb).as_kilowatts(),
                match &g {
                    Some(s) => format!("{:>6.2} kW", s.utility_draw.as_kilowatts()),
                    None => "   (unmetered)".to_string(),
                },
                dc.performance_under(msb) * 100.0,
            );
        }
        println!("{}", RunReport::from_datacenter(&dc));
    }
    println!(
        "The grid-aware run holds the economic period's mean utility draw\n\
         under the curtailed allowance — contract pushes do the sustained\n\
         work, batteries absorb the step and recharge after the clear —\n\
         while the grid-blind run draws through the window as if the\n\
         signal never arrived. The alerts in the grid-aware report are\n\
         the flip side of compliance: a curtailment cut has no offenders\n\
         to target, so the controllers cap compliant services and say so."
    );
}
