//! RAPL power-limit actuator model.
//!
//! §III-B of the paper measures that "once a RAPL capping/uncapping
//! command is issued, it takes about two seconds for it to take effect on
//! the target server and stabilize" (Figure 9). This module models RAPL
//! as a first-order lag toward `min(demand, limit)` with a time constant
//! chosen so the output settles within ~2 s, which is the property the
//! controller design depends on (it forces the pulling period above 2 s).

use dcsim::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use dcsim::SimDuration;
use powerinfra::Power;
use serde::{Deserialize, Serialize};

/// The RAPL actuator state for one server.
///
/// Call [`Rapl::set_limit`] / [`Rapl::clear_limit`] (the agent does this
/// on capping requests) and [`Rapl::step`] once per simulation tick with
/// the power the workload *wants* to draw; `step` returns the power
/// actually drawn after actuation dynamics.
///
/// # Example
///
/// ```
/// use dcsim::SimDuration;
/// use powerinfra::Power;
/// use serverpower::Rapl;
///
/// let mut rapl = Rapl::new();
/// let demand = Power::from_watts(240.0);
/// // Uncapped: output converges to demand.
/// for _ in 0..5 { rapl.step(demand, SimDuration::from_secs(1)); }
/// assert!((rapl.output() - demand).abs().as_watts() < 1.0);
/// // Capped: output settles near the limit within ~2 s.
/// rapl.set_limit(Power::from_watts(180.0));
/// rapl.step(demand, SimDuration::from_secs(1));
/// rapl.step(demand, SimDuration::from_secs(1));
/// assert!(rapl.output().as_watts() < 185.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rapl {
    limit: Option<Power>,
    output: Power,
    /// First-order time constant in seconds. Default 0.6 s ⇒ ~95%
    /// settled after 1.8 s, matching Figure 9.
    tau_secs: f64,
    initialized: bool,
}

impl Default for Rapl {
    fn default() -> Self {
        Self::new()
    }
}

impl Snapshot for Rapl {
    const KIND: &'static str = "serverpower.Rapl";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        w.put_opt_f64(self.limit.map(Power::as_watts));
        w.put_f64(self.output.as_watts());
        w.put_f64(self.tau_secs);
        w.put_bool(self.initialized);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let limit = r.get_opt_f64()?.map(Power::from_watts);
        if let Some(l) = limit {
            if !(l.is_valid_draw() && l.as_watts() > 0.0) {
                return Err(SnapError::Corrupt(format!("bad RAPL limit {l:?}")));
            }
        }
        let output = Power::from_watts(r.get_f64()?);
        let tau_secs = r.get_f64()?;
        if !(tau_secs > 0.0 && tau_secs.is_finite()) {
            return Err(SnapError::Corrupt(format!("bad RAPL tau {tau_secs}")));
        }
        Ok(Rapl {
            limit,
            output,
            tau_secs,
            initialized: r.get_bool()?,
        })
    }
}

impl Rapl {
    /// Creates an uncapped actuator.
    pub fn new() -> Self {
        Rapl {
            limit: None,
            output: Power::ZERO,
            tau_secs: 0.6,
            initialized: false,
        }
    }

    /// Overrides the settling time constant (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `tau_secs` is not strictly positive and finite.
    pub fn with_tau(mut self, tau_secs: f64) -> Self {
        assert!(
            tau_secs > 0.0 && tau_secs.is_finite(),
            "invalid tau {tau_secs}"
        );
        self.tau_secs = tau_secs;
        self
    }

    /// The currently programmed limit, if any.
    pub fn limit(&self) -> Option<Power> {
        self.limit
    }

    /// True if a power limit is currently set.
    pub fn is_capped(&self) -> bool {
        self.limit.is_some()
    }

    /// Programs a power limit (a capping request).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is not a valid positive power.
    pub fn set_limit(&mut self, limit: Power) {
        assert!(
            limit.is_valid_draw() && limit.as_watts() > 0.0,
            "RAPL limit must be positive, got {limit:?}"
        );
        self.limit = Some(limit);
    }

    /// Removes the power limit (an uncapping request).
    pub fn clear_limit(&mut self) {
        self.limit = None;
    }

    /// Advances the actuator by `dt` given the workload's demanded power;
    /// returns the power actually drawn.
    ///
    /// The first call snaps the output to the target so servers do not
    /// all "power up from zero" at simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `demand` is not a valid power draw.
    pub fn step(&mut self, demand: Power, dt: SimDuration) -> Power {
        assert!(demand.is_valid_draw(), "invalid power demand {demand:?}");
        let target = match self.limit {
            Some(l) => demand.min(l),
            None => demand,
        };
        if !self.initialized {
            self.output = target;
            self.initialized = true;
            return self.output;
        }
        let alpha = crate::kernel::settle_alpha(dt.as_secs_f64(), self.tau_secs);
        self.output = Power::from_watts(crate::kernel::settle(
            self.output.as_watts(),
            target.as_watts(),
            alpha,
        ));
        self.output
    }

    /// The first-order time constant in seconds.
    pub fn tau_secs(&self) -> f64 {
        self.tau_secs
    }

    /// True once the first `step` has snapped the output to its target.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Overwrites the settling state directly.
    ///
    /// This is the simulation-harness hook used by the fleet's batched
    /// step path: the arrays own the authoritative settling state and
    /// push it back into the scalar model before agent RPC cycles (or a
    /// direct caller mutation) observe the server.
    pub fn force_output(&mut self, output: Power, initialized: bool) {
        self.output = output;
        self.initialized = initialized;
    }

    /// The most recent actual power (after dynamics).
    pub fn output(&self) -> Power {
        self.output
    }

    /// The steady-state power for a given demand under the current limit.
    pub fn steady_state(&self, demand: Power) -> Power {
        match self.limit {
            Some(l) => demand.min(l),
            None => demand,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_millis(100);

    fn settle(rapl: &mut Rapl, demand: Power, secs: f64) -> Power {
        let steps = (secs / 0.1) as usize;
        let mut out = Power::ZERO;
        for _ in 0..steps {
            out = rapl.step(demand, DT);
        }
        out
    }

    #[test]
    fn first_step_snaps_to_demand() {
        let mut rapl = Rapl::new();
        let out = rapl.step(Power::from_watts(220.0), DT);
        assert_eq!(out, Power::from_watts(220.0));
    }

    #[test]
    fn capping_settles_within_two_seconds() {
        // The Figure 9 property: cap takes effect and stabilizes in ~2 s.
        let mut rapl = Rapl::new();
        let demand = Power::from_watts(240.0);
        rapl.step(demand, DT);
        rapl.set_limit(Power::from_watts(180.0));
        let after_2s = settle(&mut rapl, demand, 2.0);
        assert!(
            (after_2s - Power::from_watts(180.0)).abs().as_watts() < 5.0,
            "not settled after 2s: {after_2s}"
        );
    }

    #[test]
    fn uncapping_recovers_within_two_seconds() {
        let mut rapl = Rapl::new();
        let demand = Power::from_watts(240.0);
        rapl.step(demand, DT);
        rapl.set_limit(Power::from_watts(160.0));
        settle(&mut rapl, demand, 3.0);
        rapl.clear_limit();
        let recovered = settle(&mut rapl, demand, 2.0);
        assert!(
            (recovered - demand).abs().as_watts() < 5.0,
            "not recovered after 2s: {recovered}"
        );
    }

    #[test]
    fn limit_above_demand_is_inert() {
        let mut rapl = Rapl::new();
        let demand = Power::from_watts(150.0);
        rapl.step(demand, DT);
        rapl.set_limit(Power::from_watts(300.0));
        let out = settle(&mut rapl, demand, 2.0);
        assert!((out - demand).abs().as_watts() < 1.0);
    }

    #[test]
    fn output_moves_monotonically_toward_target() {
        let mut rapl = Rapl::new();
        let demand = Power::from_watts(240.0);
        rapl.step(demand, DT);
        rapl.set_limit(Power::from_watts(180.0));
        let mut prev = rapl.output();
        for _ in 0..50 {
            let out = rapl.step(demand, DT);
            assert!(out <= prev + Power::from_watts(1e-9));
            prev = out;
        }
    }

    #[test]
    fn steady_state_respects_limit() {
        let mut rapl = Rapl::new();
        assert_eq!(
            rapl.steady_state(Power::from_watts(250.0)),
            Power::from_watts(250.0)
        );
        rapl.set_limit(Power::from_watts(200.0));
        assert_eq!(
            rapl.steady_state(Power::from_watts(250.0)),
            Power::from_watts(200.0)
        );
        assert_eq!(
            rapl.steady_state(Power::from_watts(150.0)),
            Power::from_watts(150.0)
        );
    }

    #[test]
    fn is_capped_tracks_limit() {
        let mut rapl = Rapl::new();
        assert!(!rapl.is_capped());
        rapl.set_limit(Power::from_watts(100.0));
        assert!(rapl.is_capped());
        assert_eq!(rapl.limit(), Some(Power::from_watts(100.0)));
        rapl.clear_limit();
        assert!(!rapl.is_capped());
    }

    #[test]
    #[should_panic(expected = "limit must be positive")]
    fn zero_limit_panics() {
        Rapl::new().set_limit(Power::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid tau")]
    fn invalid_tau_panics() {
        let _ = Rapl::new().with_tau(0.0);
    }

    #[test]
    fn settles_faster_with_smaller_tau() {
        let demand = Power::from_watts(240.0);
        let limit = Power::from_watts(180.0);
        let run = |tau: f64| {
            let mut rapl = Rapl::new().with_tau(tau);
            rapl.step(demand, DT);
            rapl.set_limit(limit);
            settle(&mut rapl, demand, 0.5)
        };
        let fast = run(0.2);
        let slow = run(1.0);
        assert!(fast < slow, "fast {fast} should be below slow {slow}");
    }
}
