//! A simulated server host: power curve + RAPL + sensor + Turbo Boost.

use std::sync::Arc;

use dcsim::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use dcsim::{SimDuration, SimRng};
use powerinfra::Power;
use serde::{Deserialize, Serialize};

use crate::curve::{PowerCurve, PowerLut, ServerGeneration};
use crate::rapl::Rapl;
use crate::sensor::{PowerEstimator, PowerSensor};

/// Turbo Boost over-clocking parameters (§IV-B).
///
/// The paper's Hadoop measurements: enabling Turbo Boost "could improve
/// their performance by around 13% while also increasing their power
/// consumption by about 20%".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TurboBoost {
    /// Multiplier on the dynamic (above-idle) power draw. Paper: ≈1.20.
    pub power_factor: f64,
    /// Multiplier on delivered performance. Paper: ≈1.13.
    pub perf_factor: f64,
}

impl Default for TurboBoost {
    fn default() -> Self {
        TurboBoost {
            power_factor: 1.20,
            perf_factor: 1.13,
        }
    }
}

/// Static configuration of one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Hardware generation (selects the power curve).
    pub generation: ServerGeneration,
    /// Whether the host has an on-board power sensor. Servers without
    /// one fall back to the estimation model (§III-B).
    pub has_sensor: bool,
    /// Relative sensor noise (ignored without a sensor).
    pub sensor_noise: f64,
    /// Turbo Boost state; `None` means disabled.
    pub turbo: Option<TurboBoost>,
    /// Systematic calibration bias of the power estimation model used
    /// when there is no sensor (fraction; 0.05 reads 5% high).
    pub estimator_bias: f64,
}

impl ServerConfig {
    /// A sensored, turbo-off server of the given generation with 1%
    /// sensor noise.
    pub fn new(generation: ServerGeneration) -> Self {
        ServerConfig {
            generation,
            has_sensor: true,
            sensor_noise: 0.01,
            turbo: None,
            estimator_bias: 0.0,
        }
    }

    /// Disables the on-board sensor (agent will estimate power).
    pub fn without_sensor(mut self) -> Self {
        self.has_sensor = false;
        self
    }

    /// Enables Turbo Boost with default (paper) parameters.
    pub fn with_turbo(mut self) -> Self {
        self.turbo = Some(TurboBoost::default());
        self
    }

    /// Sets the sensor noise fraction.
    pub fn with_sensor_noise(mut self, noise: f64) -> Self {
        self.sensor_noise = noise;
        self
    }

    /// Sets the estimation-model calibration bias (sensorless path).
    pub fn with_estimator_bias(mut self, bias: f64) -> Self {
        self.estimator_bias = bias;
        self
    }
}

/// Instantaneous power breakdown returned by the agent alongside total
/// power (§III-B: "CPU power, socket power, AC-DC power loss, etc.").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// CPU socket power.
    pub cpu: Power,
    /// Memory subsystem power.
    pub memory: Power,
    /// Everything else on the board (disks, NIC, fans).
    pub other: Power,
    /// AC-DC conversion loss.
    pub conversion_loss: Power,
}

impl PowerBreakdown {
    /// Sum of all components (equals the server's total draw).
    pub fn total(&self) -> Power {
        self.cpu + self.memory + self.other + self.conversion_loss
    }
}

/// The latency slowdown caused by capping a server's power by the given
/// fraction, following the measured shape of Figure 13: slowdown grows
/// slowly up to a ~20% power reduction, then much faster once CPU
/// frequency becomes the bottleneck.
///
/// Returns the *relative* slowdown (0.10 = 10% higher latency).
///
/// # Panics
///
/// Panics if `power_reduction` is not within `[0, 1]`.
///
/// # Example
///
/// ```
/// use serverpower::capping_slowdown;
///
/// assert!(capping_slowdown(0.10) < 0.08);        // gentle region
/// assert!(capping_slowdown(0.40) > 0.5);         // past the knee
/// assert!(capping_slowdown(0.30) > 2.0 * capping_slowdown(0.15));
/// ```
pub fn capping_slowdown(power_reduction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&power_reduction),
        "power reduction must be in [0,1], got {power_reduction}"
    );
    const KNEE: f64 = 0.20;
    const GENTLE: f64 = 0.5; // slope below the knee
    const STEEP: f64 = 3.0; // slope above the knee
    if power_reduction <= KNEE {
        GENTLE * power_reduction
    } else {
        GENTLE * KNEE + STEEP * (power_reduction - KNEE)
    }
}

/// One simulated server.
///
/// Drive it with [`Server::set_demand`] (the workload layer does this)
/// and [`Server::step`] every tick; query power, breakdowns and
/// performance afterwards. Capping goes through [`Server::rapl_mut`].
///
/// # Example
///
/// ```
/// use dcsim::SimDuration;
/// use serverpower::{Server, ServerConfig, ServerGeneration};
///
/// let mut s = Server::new(7, ServerConfig::new(ServerGeneration::Westmere2011));
/// s.set_demand(1.0);
/// s.step(SimDuration::from_secs(1));
/// assert!(s.power().as_watts() > 150.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Server {
    id: u32,
    config: ServerConfig,
    curve: PowerCurve,
    lut: Arc<PowerLut>,
    rapl: Rapl,
    sensor: PowerSensor,
    estimator: PowerEstimator,
    demand_util: f64,
    alive: bool,
}

/// The dynamic state of one [`Server`], detached from the parts rebuilt
/// from [`ServerConfig`] (power curve, LUT, sensor, estimator).
///
/// The generation index doubles as the LUT generation id: the snapshot
/// refuses to restore onto a server whose configuration would pair the
/// state with a different lookup table.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerState {
    /// Server id the state was captured from.
    pub id: u32,
    /// Generation (= LUT) index at capture time.
    pub generation: usize,
    /// Demanded CPU utilization.
    pub demand_util: f64,
    /// Liveness flag.
    pub alive: bool,
    /// RAPL actuator state.
    pub rapl: Rapl,
}

impl Snapshot for ServerState {
    const KIND: &'static str = "serverpower.ServerState";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        w.put_u32(self.id);
        w.put_u64(self.generation as u64);
        w.put_f64(self.demand_util);
        w.put_bool(self.alive);
        self.rapl.encode_body(w);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ServerState {
            id: r.get_u32()?,
            generation: r.get_u64()? as usize,
            demand_util: r.get_f64()?,
            alive: r.get_bool()?,
            rapl: Rapl::decode_body(r)?,
        })
    }
}

impl Server {
    /// Creates a server with the given id and configuration.
    pub fn new(id: u32, config: ServerConfig) -> Self {
        let curve = config.generation.power_curve();
        let sensor = PowerSensor::new(config.sensor_noise);
        let estimator = PowerEstimator::new(curve.clone()).with_bias(config.estimator_bias);
        let lut = config.generation.power_lut();
        Server {
            id,
            config,
            lut,
            curve,
            rapl: Rapl::new(),
            sensor,
            estimator,
            demand_util: 0.0,
            alive: true,
        }
    }

    /// This server's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The static configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The power curve in use.
    pub fn curve(&self) -> &PowerCurve {
        &self.curve
    }

    /// The shared lookup-table form of the power curve.
    pub fn lut(&self) -> &Arc<PowerLut> {
        &self.lut
    }

    /// Overwrites the server's hot physics state (demand utilization and
    /// RAPL settling state) from an external owner.
    ///
    /// This is the simulation-harness hook for the fleet's batched step
    /// path, which keeps the authoritative copies of these fields in
    /// flat arrays and pushes them back before anything observes the
    /// scalar model (agent RPC cycles, direct mutation via
    /// `Fleet::agent_mut`).
    pub fn sync_physics(&mut self, demand_util: f64, output_w: f64, initialized: bool) {
        self.demand_util = demand_util.clamp(0.0, 1.0);
        self.rapl
            .force_output(Power::from_watts(output_w), initialized);
    }

    /// Captures the server's dynamic state for a snapshot. Everything
    /// else (curve, LUT, sensor, estimator) is a pure function of the
    /// [`ServerConfig`] and is rebuilt, not stored.
    pub fn state(&self) -> ServerState {
        ServerState {
            id: self.id,
            generation: self.config.generation.index(),
            demand_util: self.demand_util,
            alive: self.alive,
            rapl: self.rapl.clone(),
        }
    }

    /// Restores dynamic state captured by [`Server::state`].
    ///
    /// Fails with [`SnapError::Corrupt`] if the state was captured from
    /// a different server id or a different hardware generation — the
    /// rebuilt LUT would not match the stored settling state.
    pub fn restore(&mut self, state: &ServerState) -> Result<(), SnapError> {
        if state.id != self.id {
            return Err(SnapError::Corrupt(format!(
                "server state for id {} restored onto server {}",
                state.id, self.id
            )));
        }
        if state.generation != self.config.generation.index() {
            return Err(SnapError::Corrupt(format!(
                "server {} generation changed: snapshot has LUT generation {}, \
                 config rebuilds generation {}",
                self.id,
                state.generation,
                self.config.generation.index()
            )));
        }
        self.demand_util = state.demand_util;
        self.alive = state.alive;
        self.rapl = state.rapl.clone();
        Ok(())
    }

    /// Sets the workload's demanded CPU utilization (clamped to [0, 1]).
    pub fn set_demand(&mut self, utilization: f64) {
        self.demand_util = utilization.clamp(0.0, 1.0);
    }

    /// The current demanded utilization.
    pub fn demand(&self) -> f64 {
        self.demand_util
    }

    /// Power the workload wants to draw right now (before capping),
    /// including the Turbo Boost premium on the dynamic component.
    pub fn demand_power(&self) -> Power {
        let base = self.lut.power_at_w(self.demand_util);
        let w = match self.config.turbo {
            Some(t) => crate::kernel::turbo_demand_w(base, self.lut.idle_w(), t.power_factor),
            None => base,
        };
        Power::from_watts(w)
    }

    /// Advances the server by `dt`; returns actual drawn power.
    ///
    /// A dead server (see [`Server::set_alive`]) draws nothing.
    pub fn step(&mut self, dt: SimDuration) -> Power {
        if !self.alive {
            return Power::ZERO;
        }
        self.rapl.step(self.demand_power(), dt)
    }

    /// The power drawn at the last step.
    pub fn power(&self) -> Power {
        if self.alive {
            self.rapl.output()
        } else {
            Power::ZERO
        }
    }

    /// Immutable access to the RAPL actuator.
    pub fn rapl(&self) -> &Rapl {
        &self.rapl
    }

    /// Mutable access to the RAPL actuator (capping/uncapping).
    pub fn rapl_mut(&mut self) -> &mut Rapl {
        &mut self.rapl
    }

    /// Reads power the way the agent does: through the sensor if there
    /// is one, otherwise through the estimation model.
    pub fn read_power(&mut self, rng: &mut SimRng) -> Power {
        if !self.alive {
            return Power::ZERO;
        }
        if self.config.has_sensor {
            let truth = self.rapl.output();
            self.sensor.read(truth, rng)
        } else {
            // The estimator sees the *achieved* utilization: under a cap
            // the OS reports the throttled activity level.
            self.estimator.estimate(self.achieved_utilization())
        }
    }

    /// Instantaneous component breakdown of the current draw.
    ///
    /// Split: ~8% conversion loss off the top; of the remaining DC power,
    /// idle is shared evenly while dynamic power is 70% CPU, 20% memory,
    /// 10% other.
    pub fn breakdown(&self) -> PowerBreakdown {
        let total = self.power();
        let loss = total * 0.08;
        let dc = total - loss;
        let idle_dc = self.curve.idle().min(dc) * 0.92;
        let dynamic = dc.saturating_sub(idle_dc);
        PowerBreakdown {
            cpu: idle_dc * 0.4 + dynamic * 0.7,
            memory: idle_dc * 0.3 + dynamic * 0.2,
            other: idle_dc * 0.3 + dynamic * 0.1,
            conversion_loss: loss,
        }
    }

    /// The utilization level the server actually achieves under its
    /// current cap (inverse of the power curve at the drawn power).
    pub fn achieved_utilization(&self) -> f64 {
        if !self.alive {
            return 0.0;
        }
        self.achieved_utilization_at(self.power())
    }

    /// [`Server::achieved_utilization`] evaluated against an externally
    /// supplied drawn power — for callers (the fleet's batched step
    /// path) that own the authoritative power state.
    pub fn achieved_utilization_at(&self, drawn: Power) -> f64 {
        // Remove the turbo premium before inverting the base curve.
        let base_equiv = match self.config.turbo {
            Some(t) => {
                let idle = self.curve.idle();
                idle + (drawn.saturating_sub(idle)) * (1.0 / t.power_factor)
            }
            None => drawn,
        };
        self.curve.utilization_at(base_equiv)
    }

    /// Relative performance versus a turbo-off, uncapped baseline.
    ///
    /// Combines the Turbo Boost speedup with the Figure 13 capping
    /// slowdown: `perf = turbo_factor / (1 + slowdown)`.
    pub fn performance_factor(&self) -> f64 {
        if !self.alive {
            return 0.0;
        }
        let turbo = self.config.turbo.map_or(1.0, |t| t.perf_factor);
        let demand = self.demand_power();
        let drawn = self.power();
        let reduction = if demand.as_watts() <= 0.0 {
            0.0
        } else {
            (1.0 - drawn.as_watts() / demand.as_watts()).clamp(0.0, 1.0)
        };
        turbo / (1.0 + capping_slowdown(reduction))
    }

    /// Marks the server dead (hardware failure) or alive. Dead servers
    /// draw no power and report none.
    pub fn set_alive(&mut self, alive: bool) {
        self.alive = alive;
    }

    /// Whether the server is alive.
    pub fn is_alive(&self) -> bool {
        self.alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stepped(server: &mut Server, util: f64, secs: u64) -> Power {
        server.set_demand(util);
        let mut p = Power::ZERO;
        for _ in 0..secs {
            p = server.step(SimDuration::from_secs(1));
        }
        p
    }

    #[test]
    fn power_tracks_demand_curve() {
        let mut s = Server::new(0, ServerConfig::new(ServerGeneration::Haswell2015));
        let p = stepped(&mut s, 0.6, 10);
        let expected = ServerGeneration::Haswell2015.power_curve().power_at(0.6);
        assert!(
            (p - expected).abs().as_watts() < 1.0,
            "p={p} expected={expected}"
        );
    }

    #[test]
    fn turbo_increases_dynamic_power_about_20pct() {
        let base = {
            let mut s = Server::new(0, ServerConfig::new(ServerGeneration::Haswell2015));
            stepped(&mut s, 1.0, 10)
        };
        let turbo = {
            let mut s = Server::new(
                0,
                ServerConfig::new(ServerGeneration::Haswell2015).with_turbo(),
            );
            stepped(&mut s, 1.0, 10)
        };
        let idle = ServerGeneration::Haswell2015.idle_power();
        let dyn_ratio = (turbo - idle).as_watts() / (base - idle).as_watts();
        assert!((dyn_ratio - 1.2).abs() < 0.01, "dynamic ratio {dyn_ratio}");
    }

    #[test]
    fn capping_reduces_power_and_performance() {
        let mut s = Server::new(0, ServerConfig::new(ServerGeneration::Haswell2015));
        let uncapped = stepped(&mut s, 0.9, 5);
        assert!((s.performance_factor() - 1.0).abs() < 1e-6);
        s.rapl_mut().set_limit(uncapped * 0.7);
        let capped = stepped(&mut s, 0.9, 5);
        assert!(capped < uncapped * 0.72);
        assert!(
            s.performance_factor() < 0.8,
            "perf {}",
            s.performance_factor()
        );
    }

    #[test]
    fn slowdown_curve_has_figure13_knee() {
        // Gentle below 20% reduction, steep after.
        let below = capping_slowdown(0.19) - capping_slowdown(0.18);
        let above = capping_slowdown(0.31) - capping_slowdown(0.30);
        assert!(
            above > 4.0 * below,
            "knee missing: below={below} above={above}"
        );
        assert_eq!(capping_slowdown(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn slowdown_rejects_out_of_range() {
        capping_slowdown(1.5);
    }

    #[test]
    fn turbo_perf_bonus_without_cap() {
        let mut s = Server::new(
            0,
            ServerConfig::new(ServerGeneration::Haswell2015).with_turbo(),
        );
        stepped(&mut s, 0.8, 5);
        assert!((s.performance_factor() - 1.13).abs() < 0.01);
    }

    #[test]
    fn sensored_read_is_close_to_truth() {
        let mut s = Server::new(
            0,
            ServerConfig::new(ServerGeneration::Westmere2011).with_sensor_noise(0.01),
        );
        stepped(&mut s, 0.5, 5);
        let mut rng = SimRng::seed_from(5);
        let truth = s.power().as_watts();
        let n = 200;
        let mean: f64 = (0..n)
            .map(|_| s.read_power(&mut rng).as_watts())
            .sum::<f64>()
            / n as f64;
        assert!((mean - truth).abs() < 2.0, "mean {mean} truth {truth}");
    }

    #[test]
    fn sensorless_read_uses_estimator() {
        let mut s = Server::new(
            0,
            ServerConfig::new(ServerGeneration::Westmere2011).without_sensor(),
        );
        stepped(&mut s, 0.5, 5);
        let mut rng = SimRng::seed_from(6);
        let read = s.read_power(&mut rng);
        let expected = ServerGeneration::Westmere2011.power_curve().power_at(0.5);
        assert!((read - expected).abs().as_watts() < 2.0);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let mut s = Server::new(0, ServerConfig::new(ServerGeneration::Haswell2015));
        stepped(&mut s, 0.7, 5);
        let b = s.breakdown();
        assert!((b.total() - s.power()).abs().as_watts() < 1e-9);
        assert!(b.cpu > b.memory && b.memory >= b.other);
        assert!(b.conversion_loss.as_watts() > 0.0);
    }

    #[test]
    fn dead_server_draws_nothing() {
        let mut s = Server::new(0, ServerConfig::new(ServerGeneration::Haswell2015));
        stepped(&mut s, 0.8, 5);
        s.set_alive(false);
        assert_eq!(s.power(), Power::ZERO);
        assert_eq!(s.step(SimDuration::from_secs(1)), Power::ZERO);
        assert_eq!(s.performance_factor(), 0.0);
        let mut rng = SimRng::seed_from(7);
        assert_eq!(s.read_power(&mut rng), Power::ZERO);
        assert!(!s.is_alive());
    }

    #[test]
    fn achieved_utilization_tracks_cap() {
        let mut s = Server::new(0, ServerConfig::new(ServerGeneration::Haswell2015));
        stepped(&mut s, 1.0, 5);
        assert!((s.achieved_utilization() - 1.0).abs() < 0.01);
        // Cap at the 60%-utilization power level.
        let p60 = s.curve().power_at(0.6);
        s.rapl_mut().set_limit(p60);
        stepped(&mut s, 1.0, 5);
        assert!((s.achieved_utilization() - 0.6).abs() < 0.02);
    }

    #[test]
    fn estimator_bias_flows_into_reads() {
        let mut s = Server::new(
            0,
            ServerConfig::new(ServerGeneration::Westmere2011)
                .without_sensor()
                .with_estimator_bias(0.10),
        );
        stepped(&mut s, 0.5, 5);
        let mut rng = SimRng::seed_from(8);
        let read = s.read_power(&mut rng).as_watts();
        let truth = s.power().as_watts();
        assert!(
            (read / truth - 1.10).abs() < 0.02,
            "biased read {read} vs truth {truth}"
        );
    }

    #[test]
    fn demand_clamps() {
        let mut s = Server::new(0, ServerConfig::new(ServerGeneration::Haswell2015));
        s.set_demand(3.0);
        assert_eq!(s.demand(), 1.0);
        s.set_demand(-1.0);
        assert_eq!(s.demand(), 0.0);
    }
}
