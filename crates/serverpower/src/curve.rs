//! Power-vs-utilization curves (Figure 1 of the paper).

use std::sync::{Arc, OnceLock};

use powerinfra::Power;
use serde::{Deserialize, Serialize};

/// Server hardware generations coexisting in the fleet (§VI: Westmere
/// through Broadwell in rolling life cycles). The two web-server
/// generations of Figure 1 are modelled in detail; the in-between
/// generations interpolate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerGeneration {
    /// 2011 web server: 24-core Westmere, 12 GB RAM. Peak ≈ 195 W.
    Westmere2011,
    /// 2012-era Sandy Bridge refresh.
    SandyBridge2012,
    /// 2013-era Ivy Bridge refresh.
    IvyBridge2013,
    /// 2015 web server: 48-core Haswell, 32 GB RAM. Peak ≈ 340 W —
    /// nearly double the 2011 generation, the density trend motivating
    /// the paper.
    Haswell2015,
}

impl ServerGeneration {
    /// All generations, oldest first.
    pub fn all() -> [ServerGeneration; 4] {
        [
            ServerGeneration::Westmere2011,
            ServerGeneration::SandyBridge2012,
            ServerGeneration::IvyBridge2013,
            ServerGeneration::Haswell2015,
        ]
    }

    /// Parses a generation from its short label
    /// (`westmere2011`, `sandybridge2012`, `ivybridge2013`,
    /// `haswell2015`), case-insensitively.
    pub fn from_label(label: &str) -> Option<ServerGeneration> {
        match label.to_ascii_lowercase().as_str() {
            "westmere2011" | "westmere" => Some(ServerGeneration::Westmere2011),
            "sandybridge2012" | "sandybridge" => Some(ServerGeneration::SandyBridge2012),
            "ivybridge2013" | "ivybridge" => Some(ServerGeneration::IvyBridge2013),
            "haswell2015" | "haswell" => Some(ServerGeneration::Haswell2015),
            _ => None,
        }
    }

    /// The canonical short label, the inverse of
    /// [`ServerGeneration::from_label`].
    pub fn label(self) -> &'static str {
        match self {
            ServerGeneration::Westmere2011 => "westmere2011",
            ServerGeneration::SandyBridge2012 => "sandybridge2012",
            ServerGeneration::IvyBridge2013 => "ivybridge2013",
            ServerGeneration::Haswell2015 => "haswell2015",
        }
    }

    /// The measured power curve for this generation.
    pub fn power_curve(self) -> PowerCurve {
        // Anchor points read off Figure 1 (watts at CPU utilization).
        // Intermediate generations are plausible interpolations keeping
        // the monotone density trend.
        let pts: &[(f64, f64)] = match self {
            ServerGeneration::Westmere2011 => &[
                (0.0, 88.0),
                (0.2, 115.0),
                (0.4, 138.0),
                (0.6, 158.0),
                (0.8, 178.0),
                (1.0, 195.0),
            ],
            ServerGeneration::SandyBridge2012 => &[
                (0.0, 90.0),
                (0.2, 125.0),
                (0.4, 158.0),
                (0.6, 188.0),
                (0.8, 215.0),
                (1.0, 240.0),
            ],
            ServerGeneration::IvyBridge2013 => &[
                (0.0, 92.0),
                (0.2, 135.0),
                (0.4, 175.0),
                (0.6, 212.0),
                (0.8, 250.0),
                (1.0, 285.0),
            ],
            ServerGeneration::Haswell2015 => &[
                (0.0, 95.0),
                (0.2, 150.0),
                (0.4, 200.0),
                (0.6, 250.0),
                (0.8, 298.0),
                (1.0, 340.0),
            ],
        };
        PowerCurve::from_points(
            pts.iter()
                .map(|&(u, w)| (u, Power::from_watts(w)))
                .collect(),
        )
    }

    /// Peak (100% utilization) power for this generation.
    pub fn peak_power(self) -> Power {
        self.power_curve().power_at(1.0)
    }

    /// Idle (0% utilization) power for this generation.
    pub fn idle_power(self) -> Power {
        self.power_curve().power_at(0.0)
    }

    /// Dense index of this generation (oldest = 0), matching the order
    /// of [`ServerGeneration::all`].
    pub fn index(self) -> usize {
        match self {
            ServerGeneration::Westmere2011 => 0,
            ServerGeneration::SandyBridge2012 => 1,
            ServerGeneration::IvyBridge2013 => 2,
            ServerGeneration::Haswell2015 => 3,
        }
    }

    /// The shared lookup-table form of this generation's power curve,
    /// built once per process and shared by every server of the
    /// generation.
    pub fn power_lut(self) -> Arc<PowerLut> {
        static LUTS: [OnceLock<Arc<PowerLut>>; 4] = [const { OnceLock::new() }; 4];
        LUTS[self.index()]
            .get_or_init(|| Arc::new(PowerLut::from_curve(&self.power_curve())))
            .clone()
    }
}

impl std::fmt::Display for ServerGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ServerGeneration::Westmere2011 => "Westmere (2011)",
            ServerGeneration::SandyBridge2012 => "Sandy Bridge (2012)",
            ServerGeneration::IvyBridge2013 => "Ivy Bridge (2013)",
            ServerGeneration::Haswell2015 => "Haswell (2015)",
        };
        f.write_str(s)
    }
}

/// A monotone piecewise-linear map from CPU utilization in `[0, 1]` to
/// power, with an inverse for estimating utilization from power.
///
/// # Example
///
/// ```
/// use serverpower::{PowerCurve, ServerGeneration};
///
/// let curve = ServerGeneration::Haswell2015.power_curve();
/// let p = curve.power_at(0.5);
/// let u = curve.utilization_at(p);
/// assert!((u - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerCurve {
    /// `(utilization, power)` knots, strictly increasing in both
    /// coordinates.
    points: Vec<(f64, Power)>,
}

impl PowerCurve {
    /// Builds a curve from `(utilization, power)` knots.
    ///
    /// # Panics
    ///
    /// Panics unless there are ≥ 2 knots, utilizations start at 0.0 and
    /// end at 1.0, and both coordinates strictly increase (server power
    /// curves are monotone — Figure 1).
    pub fn from_points(points: Vec<(f64, Power)>) -> Self {
        assert!(points.len() >= 2, "power curve needs at least 2 points");
        assert_eq!(points[0].0, 0.0, "curve must start at utilization 0");
        assert_eq!(
            points.last().expect("non-empty").0,
            1.0,
            "curve must end at utilization 1"
        );
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "utilizations must strictly increase");
            assert!(
                w[0].1 < w[1].1,
                "power must strictly increase with utilization"
            );
        }
        assert!(
            points[0].1.as_watts() >= 0.0,
            "idle power cannot be negative"
        );
        PowerCurve { points }
    }

    /// Power drawn at `utilization` (clamped to `[0, 1]`).
    pub fn power_at(&self, utilization: f64) -> Power {
        let u = utilization.clamp(0.0, 1.0);
        let idx = match self.points.iter().position(|&(x, _)| x >= u) {
            Some(0) => return self.points[0].1,
            Some(i) => i,
            None => return self.points.last().expect("non-empty").1,
        };
        let (x0, y0) = self.points[idx - 1];
        let (x1, y1) = self.points[idx];
        let frac = (u - x0) / (x1 - x0);
        y0 + (y1 - y0) * frac
    }

    /// Inverse map: the utilization that would draw `power`, clamped to
    /// `[0, 1]` outside the curve's range. Used both by RAPL (to find the
    /// frequency level honouring a cap) and the sensorless estimator.
    pub fn utilization_at(&self, power: Power) -> f64 {
        if power <= self.points[0].1 {
            return 0.0;
        }
        let last = self.points.last().expect("non-empty");
        if power >= last.1 {
            return 1.0;
        }
        let idx = self
            .points
            .iter()
            .position(|&(_, y)| y >= power)
            .expect("bounded by last point above");
        let (x0, y0) = self.points[idx - 1];
        let (x1, y1) = self.points[idx];
        let frac = (power - y0).as_watts() / (y1 - y0).as_watts();
        x0 + (x1 - x0) * frac
    }

    /// Idle power (utilization 0).
    pub fn idle(&self) -> Power {
        self.points[0].1
    }

    /// Peak power (utilization 1).
    pub fn peak(&self) -> Power {
        self.points.last().expect("non-empty").1
    }

    /// The knots of the curve.
    pub fn points(&self) -> &[(f64, Power)] {
        &self.points
    }
}

/// Number of uniform cells in a [`PowerLut`] grid.
///
/// 1000 cells means the grid step is exactly `1/1000`. Because every
/// generation's knots sit at multiples of `0.2`, and `u * 1000.0` is
/// exact in `f64` for `u ∈ {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}`, every knot
/// lands on a grid node with zero fractional part — so LUT evaluation at
/// a knot returns the tabulated value, which is itself the exact
/// `PowerCurve::power_at` result there.
const LUT_CELLS: usize = 1000;

/// A uniform-grid lookup table over a [`PowerCurve`].
///
/// Evaluation replaces the knot scan in [`PowerCurve::power_at`] with an
/// index computation and one linear interpolation: `O(1)` with no
/// data-dependent branches, which is what lets the fleet's batched step
/// loop auto-vectorize. The table is exact at the source curve's knots
/// (see `LUT_CELLS`) and within the grid-resolution error bound
/// everywhere else; both properties are pinned by property tests.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerLut {
    /// `watts[i]` = power at utilization `i / LUT_CELLS`; `LUT_CELLS + 1`
    /// entries.
    watts: Box<[f64]>,
    /// Cached `LUT_CELLS as f64`.
    scale: f64,
}

impl PowerLut {
    /// Tabulates `curve` on the uniform grid.
    pub fn from_curve(curve: &PowerCurve) -> Self {
        let watts: Box<[f64]> = (0..=LUT_CELLS)
            .map(|i| curve.power_at(i as f64 / LUT_CELLS as f64).as_watts())
            .collect();
        PowerLut {
            watts,
            scale: LUT_CELLS as f64,
        }
    }

    /// Power in watts at `utilization` (clamped to `[0, 1]`).
    #[inline]
    pub fn power_at_w(&self, utilization: f64) -> f64 {
        let x = utilization.clamp(0.0, 1.0) * self.scale;
        let i = x as usize;
        if i >= LUT_CELLS {
            return self.watts[LUT_CELLS];
        }
        let frac = x - i as f64;
        let lo = self.watts[i];
        lo + (self.watts[i + 1] - lo) * frac
    }

    /// Power at `utilization` (clamped to `[0, 1]`).
    #[inline]
    pub fn power_at(&self, utilization: f64) -> Power {
        Power::from_watts(self.power_at_w(utilization))
    }

    /// Evaluates the LUT elementwise over a slice:
    /// `out[i] = power_at_w(util[i])`, in fixed-lane chunks with a
    /// scalar tail (see [`crate::kernel::LANES`]). The per-element
    /// arithmetic is exactly [`PowerLut::power_at_w`] — including the
    /// top-knot early return, which is *not* equivalent to a clamped
    /// interpolation in floating point — so the batched form is
    /// bit-identical to the scalar calls.
    pub fn power_batch_w(&self, util: &[f64], out: &mut [f64]) {
        assert_eq!(util.len(), out.len());
        const LANES: usize = 4;
        let n = util.len();
        let whole = n - n % LANES;
        for base in (0..whole).step_by(LANES) {
            for l in 0..LANES {
                out[base + l] = self.power_at_w(util[base + l]);
            }
        }
        for i in whole..n {
            out[i] = self.power_at_w(util[i]);
        }
    }

    /// Number of uniform cells in the grid.
    pub fn cells(&self) -> usize {
        LUT_CELLS
    }

    /// Idle power in watts (utilization 0).
    #[inline]
    pub fn idle_w(&self) -> f64 {
        self.watts[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_generations_peak_ratio() {
        // "server peak power consumption nearly doubled going from the
        // 2011 server to the 2015 server".
        let p2011 = ServerGeneration::Westmere2011.peak_power().as_watts();
        let p2015 = ServerGeneration::Haswell2015.peak_power().as_watts();
        let ratio = p2015 / p2011;
        assert!((1.6..2.0).contains(&ratio), "peak ratio {ratio}");
    }

    #[test]
    fn generations_order_by_peak_power() {
        let peaks: Vec<f64> = ServerGeneration::all()
            .iter()
            .map(|g| g.peak_power().as_watts())
            .collect();
        for w in peaks.windows(2) {
            assert!(
                w[0] < w[1],
                "peak powers must increase by generation: {peaks:?}"
            );
        }
    }

    #[test]
    fn interpolation_between_knots() {
        let curve = ServerGeneration::Westmere2011.power_curve();
        let p = curve.power_at(0.5);
        // Halfway between the 0.4 (138 W) and 0.6 (158 W) knots.
        assert!((p.as_watts() - 148.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_out_of_range_utilization() {
        let curve = ServerGeneration::Haswell2015.power_curve();
        assert_eq!(curve.power_at(-0.5), curve.idle());
        assert_eq!(curve.power_at(1.7), curve.peak());
    }

    #[test]
    fn inverse_round_trips() {
        let curve = ServerGeneration::Haswell2015.power_curve();
        for i in 0..=20 {
            let u = i as f64 / 20.0;
            let round = curve.utilization_at(curve.power_at(u));
            assert!((round - u).abs() < 1e-9, "u={u} round={round}");
        }
    }

    #[test]
    fn inverse_clamps_out_of_range_power() {
        let curve = ServerGeneration::Westmere2011.power_curve();
        assert_eq!(curve.utilization_at(Power::from_watts(10.0)), 0.0);
        assert_eq!(curve.utilization_at(Power::from_watts(1000.0)), 1.0);
    }

    #[test]
    fn monotonicity_over_fine_grid() {
        for gen in ServerGeneration::all() {
            let curve = gen.power_curve();
            let mut prev = Power::ZERO;
            for i in 0..=100 {
                let p = curve.power_at(i as f64 / 100.0);
                assert!(p >= prev);
                prev = p;
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 points")]
    fn one_point_panics() {
        PowerCurve::from_points(vec![(0.0, Power::from_watts(100.0))]);
    }

    #[test]
    #[should_panic(expected = "strictly increase with utilization")]
    fn non_monotone_power_panics() {
        PowerCurve::from_points(vec![
            (0.0, Power::from_watts(100.0)),
            (0.5, Power::from_watts(90.0)),
            (1.0, Power::from_watts(120.0)),
        ]);
    }

    #[test]
    #[should_panic(expected = "start at utilization 0")]
    fn missing_idle_knot_panics() {
        PowerCurve::from_points(vec![
            (0.1, Power::from_watts(90.0)),
            (1.0, Power::from_watts(200.0)),
        ]);
    }

    #[test]
    fn display_names() {
        assert_eq!(ServerGeneration::Haswell2015.to_string(), "Haswell (2015)");
    }

    #[test]
    fn from_label_round_trips() {
        assert_eq!(
            ServerGeneration::from_label("haswell2015"),
            Some(ServerGeneration::Haswell2015)
        );
        assert_eq!(
            ServerGeneration::from_label("WESTMERE"),
            Some(ServerGeneration::Westmere2011)
        );
        assert_eq!(ServerGeneration::from_label("epyc"), None);
    }
}
