//! Branchless arithmetic kernels shared by the scalar server model and
//! the fleet's batched struct-of-arrays hot path.
//!
//! There must be exactly one definition of the physics arithmetic:
//! [`crate::Rapl::step`] (one server) and `Fleet`'s batched step (flat
//! arrays over thousands of servers) both route through the functions
//! here, so the two paths are bit-identical by construction rather than
//! by testing alone.
//!
//! # Mask conventions
//!
//! The batch kernel encodes per-server booleans as `f64` masks so the
//! inner loop has no data-dependent branches and auto-vectorizes:
//!
//! - `alive`: `1.0` if the server is powered on, `0.0` if crashed. A
//!   dead server's settling state is frozen (`eff == 0`) and its drawn
//!   power is forced to zero — exactly the early-return in the scalar
//!   `Server::step`.
//! - `not_init`: `1.0` until the first live step, `0.0` afterwards.
//!   While set, the effective settle coefficient is forced to exactly
//!   `1.0`, which (with the invariant that an uninitialized output is
//!   `0.0`) reproduces the scalar first-step snap `output = target`
//!   bit-for-bit: `0.0 + (target - 0.0) * 1.0 == target`.
//! - Uncapped servers carry `limit = f64::INFINITY`, making
//!   `min(demand, limit)` a branchless no-op.

/// First-order settling coefficient for a step of `dt_secs` under time
/// constant `tau_secs`: `alpha = 1 - exp(-dt/tau)`.
#[inline]
pub fn settle_alpha(dt_secs: f64, tau_secs: f64) -> f64 {
    1.0 - (-dt_secs / tau_secs).exp()
}

/// Width of the snap band in watts: once the output is within this
/// distance of its target, the settle step lands on the target exactly
/// instead of decaying the remaining error geometrically.
///
/// 0.5 W is half the sensor firmware's 1 W reporting quantum (see
/// [`crate::PowerSensor`]) — the largest offset that can never move a
/// noiseless reading by a full step — and sits well inside the ~1%
/// gaussian read noise (~2 W at a typical 200 W draw), so the snap is
/// invisible to the control plane. But it matters computationally:
/// without it the exponential
/// tail creeps through dozens of sub-resolution (eventually ulp-sized)
/// steps before the increment underflows, keeping a leaf "unsettled"
/// (and its settle arithmetic live) for tens of ticks after the output
/// is already indistinguishable from its target. With the snap,
/// `output == target` bitwise within a few time constants, which is
/// the exact fixed point the active-set tracking keys on. The snap
/// lands *on the asymptote itself*, so trajectories differ from the
/// un-snapped model only transiently, by less than the band, during
/// the final approach.
pub const SNAP_BAND_W: f64 = 0.5;

/// One first-order settle of `output` toward `target` with coefficient
/// `alpha` (the closed-form discretization `p += (target - p) * alpha`),
/// snapping to `target` exactly once within [`SNAP_BAND_W`].
#[inline]
pub fn settle(output_w: f64, target_w: f64, alpha: f64) -> f64 {
    let delta = target_w - output_w;
    if delta.abs() <= SNAP_BAND_W {
        target_w
    } else {
        output_w + delta * alpha
    }
}

/// Demand power with the turbo premium applied to the dynamic component:
/// `idle + (base - idle) * power_factor`.
///
/// Callers must only apply this when turbo is actually enabled — the
/// `power_factor == 1.0` case is *not* an exact identity in floating
/// point, so routing non-turbo servers through it would perturb results.
#[inline]
pub fn turbo_demand_w(base_w: f64, idle_w: f64, power_factor: f64) -> f64 {
    idle_w + (base_w - idle_w) * power_factor
}

/// Fixed lane width of the vector kernels: chunks of this many `f64`
/// elements are processed per iteration (with a scalar tail), sized to
/// one AVX2 register. The arithmetic is elementwise, so the chunking is
/// purely a codegen hint — every element sees exactly the expressions
/// of the scalar kernel, and the only cross-element fold is a bitwise
/// OR of change masks, which is order-independent.
pub const LANES: usize = 4;

/// Applies the turbo premium elementwise over a demand slice:
/// `d = idle + (d - idle) * power_factor` (see [`turbo_demand_w`]),
/// in [`LANES`]-wide chunks with a scalar tail. Bit-identical to
/// calling [`turbo_demand_w`] per element.
#[inline]
pub fn turbo_demand_batch(demand_w: &mut [f64], idle_w: f64, power_factor: f64) {
    let mut chunks = demand_w.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        for d in chunk {
            *d = turbo_demand_w(*d, idle_w, power_factor);
        }
    }
    for d in chunks.into_remainder() {
        *d = turbo_demand_w(*d, idle_w, power_factor);
    }
}

/// Advances a batch of RAPL actuators by one step.
///
/// For each index `i`:
///
/// ```text
/// target = min(demand_w[i], limit_w[i])
/// eff    = alive[i] * (alpha + not_init[i] * (1 - alpha))
/// out_w[i] = if alive[i] != 0 && |target - out_w[i]| <= SNAP_BAND_W
///            { target } else { out_w[i] + (target - out_w[i]) * eff }
/// not_init[i] *= 1 - alive[i]
/// ```
///
/// Drawn power is *not* written here; it is `out_w[i] * alive[i]`, which
/// callers compute while scattering results back to id order.
///
/// Dispatches to the [`LANES`]-wide vector kernel when the `simd`
/// feature (on by default) is enabled, and to the plain scalar loop
/// otherwise; the two are bit-identical (pinned by the kernel-parity
/// tests), so the feature only changes codegen, never results.
///
/// # Panics
///
/// Panics if the slices disagree in length.
#[inline]
pub fn step_batch(
    demand_w: &[f64],
    limit_w: &[f64],
    alive: &[f64],
    not_init: &mut [f64],
    out_w: &mut [f64],
    alpha: f64,
) {
    step_batch_settled(demand_w, limit_w, alive, not_init, out_w, alpha);
}

/// [`step_batch`] that additionally reports whether the pass was a
/// *fixed point*: `true` iff no `out_w` or `not_init` element changed
/// its bit pattern.
///
/// A fixed-point pass is the exact floating-point identity, and because
/// the kernel is a pure function of `(demand, limit, alive, state)`,
/// repeating it with unchanged inputs is the identity *forever* — the
/// invariant the fleet's active-set tracking rests on. Detecting the
/// fixed point by bit comparison (rather than an `out == target` test)
/// also covers the rounding dead zone where `out` freezes a few ulps
/// away from `target` because the increment underflows the ulp of
/// `out`.
#[inline]
pub fn step_batch_settled(
    demand_w: &[f64],
    limit_w: &[f64],
    alive: &[f64],
    not_init: &mut [f64],
    out_w: &mut [f64],
    alpha: f64,
) -> bool {
    #[cfg(feature = "simd")]
    {
        step_batch_lanes(demand_w, limit_w, alive, not_init, out_w, alpha)
    }
    #[cfg(not(feature = "simd"))]
    {
        step_batch_scalar(demand_w, limit_w, alive, not_init, out_w, alpha)
    }
}

/// Scalar reference implementation of [`step_batch_settled`]: one plain
/// loop, no chunking. Always compiled (regardless of the `simd`
/// feature) so the parity tests can pin scalar ≡ vector bitwise.
pub fn step_batch_scalar(
    demand_w: &[f64],
    limit_w: &[f64],
    alive: &[f64],
    not_init: &mut [f64],
    out_w: &mut [f64],
    alpha: f64,
) -> bool {
    let n = demand_w.len();
    assert_eq!(limit_w.len(), n);
    assert_eq!(alive.len(), n);
    assert_eq!(not_init.len(), n);
    assert_eq!(out_w.len(), n);
    let mut changed = 0u64;
    for i in 0..n {
        changed |= step_element(
            demand_w[i],
            limit_w[i],
            alive[i],
            &mut not_init[i],
            &mut out_w[i],
            alpha,
        );
    }
    changed == 0
}

/// [`LANES`]-wide chunked implementation of [`step_batch_settled`] with
/// a scalar tail. Always compiled (regardless of the `simd` feature)
/// so the parity tests can pin vector ≡ scalar bitwise.
///
/// Elementwise arithmetic is identical to [`step_batch_scalar`]; the
/// per-lane change masks are OR-folded, which is associative and
/// commutative on bits, so lane order cannot affect the result — the
/// fixed-fold-order argument for cross-host determinism.
pub fn step_batch_lanes(
    demand_w: &[f64],
    limit_w: &[f64],
    alive: &[f64],
    not_init: &mut [f64],
    out_w: &mut [f64],
    alpha: f64,
) -> bool {
    let n = demand_w.len();
    assert_eq!(limit_w.len(), n);
    assert_eq!(alive.len(), n);
    assert_eq!(not_init.len(), n);
    assert_eq!(out_w.len(), n);
    let mut changed = [0u64; LANES];
    let whole = n - n % LANES;
    for base in (0..whole).step_by(LANES) {
        // Indexed on purpose: the `base + l` shape is what the
        // autovectorizer recognizes as a lane loop.
        #[allow(clippy::needless_range_loop)]
        for l in 0..LANES {
            let i = base + l;
            changed[l] |= step_element(
                demand_w[i],
                limit_w[i],
                alive[i],
                &mut not_init[i],
                &mut out_w[i],
                alpha,
            );
        }
    }
    for i in whole..n {
        changed[0] |= step_element(
            demand_w[i],
            limit_w[i],
            alive[i],
            &mut not_init[i],
            &mut out_w[i],
            alpha,
        );
    }
    changed.iter().fold(0, |a, &c| a | c) == 0
}

/// [`step_batch_settled`] over *bit-packed* masks: `alive` and
/// `not_init` arrive as one bit per server (bit `i % 64` of word
/// `i / 64`, bit set ⇔ mask value `1.0`) instead of one `f64` each,
/// cutting the mask traffic of the settle stride from 16 bytes per
/// server to a quarter byte.
///
/// Bit-identity with the `f64`-mask kernel is by construction, not by
/// rounding luck: each element's mask bits are materialized to exactly
/// `0.0`/`1.0` and fed through the same [`step_element`] arithmetic, so
/// every intermediate is the identical `f64` expression. The `not_init`
/// write-back `ni *= 1 - alive` is computed word-wide as
/// `ni_word & !alive_word`, which is the same function on {0, 1}-valued
/// masks (the products are exact).
///
/// Tail bits of the last word (positions past `demand_w.len()`) must be
/// zero in both mask words; they are preserved as written.
///
/// # Panics
///
/// Panics if the `f64` slices disagree in length or a mask slice has
/// fewer than `ceil(n / 64)` words.
#[inline]
pub fn step_batch_settled_bits(
    demand_w: &[f64],
    limit_w: &[f64],
    alive_bits: &[u64],
    not_init_bits: &mut [u64],
    out_w: &mut [f64],
    alpha: f64,
) -> bool {
    #[cfg(feature = "simd")]
    {
        step_batch_lanes_bits(demand_w, limit_w, alive_bits, not_init_bits, out_w, alpha)
    }
    #[cfg(not(feature = "simd"))]
    {
        step_batch_scalar_bits(demand_w, limit_w, alive_bits, not_init_bits, out_w, alpha)
    }
}

/// Scalar reference implementation of [`step_batch_settled_bits`].
/// Always compiled so the parity tests can pin packed ≡ `f64`-mask
/// bitwise regardless of the `simd` feature.
pub fn step_batch_scalar_bits(
    demand_w: &[f64],
    limit_w: &[f64],
    alive_bits: &[u64],
    not_init_bits: &mut [u64],
    out_w: &mut [f64],
    alpha: f64,
) -> bool {
    let n = demand_w.len();
    assert_eq!(limit_w.len(), n);
    assert_eq!(out_w.len(), n);
    let words = n.div_ceil(64);
    assert!(alive_bits.len() >= words);
    assert!(not_init_bits.len() >= words);
    let mut changed = 0u64;
    for w in 0..words {
        let a_word = alive_bits[w];
        let ni_word = not_init_bits[w];
        let lo = w * 64;
        let hi = (lo + 64).min(n);
        for i in lo..hi {
            let b = i - lo;
            let alive = ((a_word >> b) & 1) as f64;
            let mut ni = ((ni_word >> b) & 1) as f64;
            changed |= step_element(
                demand_w[i],
                limit_w[i],
                alive,
                &mut ni,
                &mut out_w[i],
                alpha,
            );
        }
        not_init_bits[w] = ni_word & !a_word;
    }
    changed == 0
}

/// [`LANES`]-wide chunked implementation of
/// [`step_batch_settled_bits`] with a scalar tail, mirroring
/// [`step_batch_lanes`]. A word's 64 elements split evenly into
/// [`LANES`]-wide chunks, so only the final partial word takes the
/// scalar remainder path. Always compiled for the parity tests.
pub fn step_batch_lanes_bits(
    demand_w: &[f64],
    limit_w: &[f64],
    alive_bits: &[u64],
    not_init_bits: &mut [u64],
    out_w: &mut [f64],
    alpha: f64,
) -> bool {
    let n = demand_w.len();
    assert_eq!(limit_w.len(), n);
    assert_eq!(out_w.len(), n);
    let words = n.div_ceil(64);
    assert!(alive_bits.len() >= words);
    assert!(not_init_bits.len() >= words);
    let mut changed = [0u64; LANES];
    for w in 0..words {
        let a_word = alive_bits[w];
        let ni_word = not_init_bits[w];
        let lo = w * 64;
        let hi = (lo + 64).min(n);
        let span = hi - lo;
        let whole = span - span % LANES;
        for base in (0..whole).step_by(LANES) {
            // Indexed on purpose: the `base + l` shape is what the
            // autovectorizer recognizes as a lane loop.
            #[allow(clippy::needless_range_loop)]
            for l in 0..LANES {
                let b = base + l;
                let i = lo + b;
                let alive = ((a_word >> b) & 1) as f64;
                let mut ni = ((ni_word >> b) & 1) as f64;
                changed[l] |= step_element(
                    demand_w[i],
                    limit_w[i],
                    alive,
                    &mut ni,
                    &mut out_w[i],
                    alpha,
                );
            }
        }
        for b in whole..span {
            let i = lo + b;
            let alive = ((a_word >> b) & 1) as f64;
            let mut ni = ((ni_word >> b) & 1) as f64;
            changed[0] |= step_element(
                demand_w[i],
                limit_w[i],
                alive,
                &mut ni,
                &mut out_w[i],
                alpha,
            );
        }
        not_init_bits[w] = ni_word & !a_word;
    }
    changed.iter().fold(0, |a, &c| a | c) == 0
}

/// One element of the batch step: the scalar arithmetic shared verbatim
/// by both kernel implementations. Returns a nonzero mask iff the
/// element's state (`out_w`, `not_init`) changed bit pattern.
#[inline(always)]
fn step_element(
    demand_w: f64,
    limit_w: f64,
    alive: f64,
    not_init: &mut f64,
    out_w: &mut f64,
    alpha: f64,
) -> u64 {
    let target = demand_w.min(limit_w);
    let eff = alive * (alpha + *not_init * (1.0 - alpha));
    let old_out = *out_w;
    let delta = target - old_out;
    // Same snap band as the scalar `settle` path; gated on `alive` so a
    // dead server's frozen state never moves toward a target.
    let new_out = if alive != 0.0 && delta.abs() <= SNAP_BAND_W {
        target
    } else {
        old_out + delta * eff
    };
    let old_ni = *not_init;
    let new_ni = old_ni * (1.0 - alive);
    *out_w = new_out;
    *not_init = new_ni;
    (new_out.to_bits() ^ old_out.to_bits()) | (new_ni.to_bits() ^ old_ni.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_first_step_snaps_exactly() {
        let demand = [220.0, 95.0];
        let limit = [f64::INFINITY, 180.0];
        let alive = [1.0, 1.0];
        let mut not_init = [1.0, 1.0];
        let mut out = [0.0, 0.0];
        step_batch(&demand, &limit, &alive, &mut not_init, &mut out, 0.25);
        assert_eq!(out, [220.0, 95.0]);
        assert_eq!(not_init, [0.0, 0.0]);
    }

    #[test]
    fn batch_matches_scalar_settle_bitwise() {
        let alpha = settle_alpha(1.0, 0.6);
        let demand = [240.0];
        let limit = [180.0];
        let alive = [1.0];
        let mut not_init = [0.0];
        let mut out = [240.0];
        let mut scalar = 240.0;
        for _ in 0..20 {
            step_batch(&demand, &limit, &alive, &mut not_init, &mut out, alpha);
            scalar = settle(scalar, 180.0, alpha);
            assert_eq!(out[0].to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn dead_server_state_is_frozen() {
        let demand = [240.0];
        let limit = [f64::INFINITY];
        let alive = [0.0];
        let mut not_init = [0.0];
        let mut out = [150.0];
        step_batch(&demand, &limit, &alive, &mut not_init, &mut out, 0.8);
        assert_eq!(out, [150.0]);
        assert_eq!(not_init, [0.0]);
    }

    #[test]
    fn dead_uninitialized_server_stays_uninitialized() {
        let demand = [240.0];
        let limit = [f64::INFINITY];
        let alive = [0.0];
        let mut not_init = [1.0];
        let mut out = [0.0];
        step_batch(&demand, &limit, &alive, &mut not_init, &mut out, 0.8);
        assert_eq!(out, [0.0]);
        assert_eq!(not_init, [1.0]);
    }

    #[test]
    fn snap_band_lands_on_target_then_reports_fixed_point() {
        let alpha = settle_alpha(1.0, 5.0);
        // Scalar path: within the band, the step is `output = target`
        // exactly, and the step after that is the bitwise identity.
        let out = settle(180.0005, 180.0, alpha);
        assert_eq!(out.to_bits(), 180.0f64.to_bits());
        assert_eq!(settle(out, 180.0, alpha).to_bits(), out.to_bits());
        // Batch path agrees bitwise and flags the fixed point only on
        // the pass where nothing moved.
        let demand = [180.0];
        let limit = [f64::INFINITY];
        let alive = [1.0];
        let mut not_init = [0.0];
        let mut out_b = [180.0005];
        assert!(!step_batch_settled(
            &demand,
            &limit,
            &alive,
            &mut not_init,
            &mut out_b,
            alpha
        ));
        assert_eq!(out_b[0].to_bits(), 180.0f64.to_bits());
        assert!(step_batch_settled(
            &demand,
            &limit,
            &alive,
            &mut not_init,
            &mut out_b,
            alpha
        ));
    }

    #[test]
    fn snap_band_never_moves_a_dead_server() {
        let demand = [150.0004]; // within SNAP_BAND_W of the frozen state
        let limit = [f64::INFINITY];
        let alive = [0.0];
        let mut not_init = [0.0];
        let mut out = [150.0];
        step_batch(&demand, &limit, &alive, &mut not_init, &mut out, 0.8);
        assert_eq!(out, [150.0]);
    }

    #[test]
    fn turbo_demand_matches_direct_expression() {
        let w = turbo_demand_w(200.0, 95.0, 1.20);
        assert_eq!(w, 95.0 + (200.0 - 95.0) * 1.20);
    }

    fn pack_bits(mask: &[f64]) -> Vec<u64> {
        let mut words = vec![0u64; mask.len().div_ceil(64)];
        for (i, &m) in mask.iter().enumerate() {
            if m != 0.0 {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        words
    }

    /// A deterministic awkward-length batch mixing dead, uninitialized,
    /// capped, in-band and far-from-target servers.
    fn churn_batch(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut demand = Vec::with_capacity(n);
        let mut limit = Vec::with_capacity(n);
        let mut alive = Vec::with_capacity(n);
        let mut not_init = Vec::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            demand.push(120.0 + (i % 97) as f64 * 1.375);
            limit.push(if i % 5 == 0 {
                140.0 + (i % 13) as f64
            } else {
                f64::INFINITY
            });
            let dead = i % 11 == 3;
            alive.push(if dead { 0.0 } else { 1.0 });
            let fresh = i % 17 == 8;
            not_init.push(if fresh { 1.0 } else { 0.0 });
            out.push(if fresh { 0.0 } else { 90.0 + (i % 31) as f64 * 3.25 });
        }
        (demand, limit, alive, not_init, out)
    }

    #[test]
    fn packed_mask_kernel_matches_f64_mask_kernel_bitwise() {
        let alpha = settle_alpha(1.0, 0.6);
        // 203 exercises a partial final word and a non-LANES tail.
        for n in [1, 4, 63, 64, 65, 128, 203] {
            let (demand, limit, alive, mut ni_f, mut out_f) = churn_batch(n);
            let alive_bits = pack_bits(&alive);
            let mut ni_bits = pack_bits(&ni_f);
            let mut out_b = out_f.clone();
            for _ in 0..40 {
                let fixed_f =
                    step_batch_settled(&demand, &limit, &alive, &mut ni_f, &mut out_f, alpha);
                let fixed_b = step_batch_settled_bits(
                    &demand,
                    &limit,
                    &alive_bits,
                    &mut ni_bits,
                    &mut out_b,
                    alpha,
                );
                assert_eq!(fixed_f, fixed_b);
                for i in 0..n {
                    assert_eq!(out_f[i].to_bits(), out_b[i].to_bits(), "out[{i}] n={n}");
                }
                assert_eq!(pack_bits(&ni_f), ni_bits, "not_init words n={n}");
            }
        }
    }

    #[test]
    fn packed_scalar_and_lanes_agree_bitwise() {
        let alpha = settle_alpha(1.0, 5.0);
        for n in [7, 64, 130] {
            let (demand, limit, alive, ni_f, out) = churn_batch(n);
            let alive_bits = pack_bits(&alive);
            let mut ni_s = pack_bits(&ni_f);
            let mut ni_l = ni_s.clone();
            let mut out_s = out.clone();
            let mut out_l = out;
            for _ in 0..25 {
                let fs = step_batch_scalar_bits(
                    &demand,
                    &limit,
                    &alive_bits,
                    &mut ni_s,
                    &mut out_s,
                    alpha,
                );
                let fl = step_batch_lanes_bits(
                    &demand,
                    &limit,
                    &alive_bits,
                    &mut ni_l,
                    &mut out_l,
                    alpha,
                );
                assert_eq!(fs, fl);
                assert_eq!(ni_s, ni_l);
                for i in 0..n {
                    assert_eq!(out_s[i].to_bits(), out_l[i].to_bits());
                }
            }
        }
    }

    #[test]
    fn packed_kernel_preserves_tail_bits_and_reports_fixed_point() {
        let alpha = settle_alpha(1.0, 5.0);
        let demand = [180.0; 3];
        let limit = [f64::INFINITY; 3];
        let alive_bits = [0b111u64];
        let mut ni_bits = [0b000u64];
        let mut out = [180.0, 180.0, 180.0];
        assert!(step_batch_settled_bits(
            &demand,
            &limit,
            &alive_bits,
            &mut ni_bits,
            &mut out,
            alpha
        ));
        assert_eq!(ni_bits, [0]);
        assert_eq!(out, [180.0; 3]);
    }
}
