//! Branchless arithmetic kernels shared by the scalar server model and
//! the fleet's batched struct-of-arrays hot path.
//!
//! There must be exactly one definition of the physics arithmetic:
//! [`crate::Rapl::step`] (one server) and `Fleet`'s batched step (flat
//! arrays over thousands of servers) both route through the functions
//! here, so the two paths are bit-identical by construction rather than
//! by testing alone.
//!
//! # Mask conventions
//!
//! The batch kernel encodes per-server booleans as `f64` masks so the
//! inner loop has no data-dependent branches and auto-vectorizes:
//!
//! - `alive`: `1.0` if the server is powered on, `0.0` if crashed. A
//!   dead server's settling state is frozen (`eff == 0`) and its drawn
//!   power is forced to zero — exactly the early-return in the scalar
//!   `Server::step`.
//! - `not_init`: `1.0` until the first live step, `0.0` afterwards.
//!   While set, the effective settle coefficient is forced to exactly
//!   `1.0`, which (with the invariant that an uninitialized output is
//!   `0.0`) reproduces the scalar first-step snap `output = target`
//!   bit-for-bit: `0.0 + (target - 0.0) * 1.0 == target`.
//! - Uncapped servers carry `limit = f64::INFINITY`, making
//!   `min(demand, limit)` a branchless no-op.

/// First-order settling coefficient for a step of `dt_secs` under time
/// constant `tau_secs`: `alpha = 1 - exp(-dt/tau)`.
#[inline]
pub fn settle_alpha(dt_secs: f64, tau_secs: f64) -> f64 {
    1.0 - (-dt_secs / tau_secs).exp()
}

/// Width of the snap band in watts: once the output is within this
/// distance of its target, the settle step lands on the target exactly
/// instead of decaying the remaining error geometrically.
///
/// 0.5 W is half the sensor firmware's 1 W reporting quantum (see
/// [`crate::PowerSensor`]) — the largest offset that can never move a
/// noiseless reading by a full step — and sits well inside the ~1%
/// gaussian read noise (~2 W at a typical 200 W draw), so the snap is
/// invisible to the control plane. But it matters computationally:
/// without it the exponential
/// tail creeps through dozens of sub-resolution (eventually ulp-sized)
/// steps before the increment underflows, keeping a leaf "unsettled"
/// (and its settle arithmetic live) for tens of ticks after the output
/// is already indistinguishable from its target. With the snap,
/// `output == target` bitwise within a few time constants, which is
/// the exact fixed point the active-set tracking keys on. The snap
/// lands *on the asymptote itself*, so trajectories differ from the
/// un-snapped model only transiently, by less than the band, during
/// the final approach.
pub const SNAP_BAND_W: f64 = 0.5;

/// One first-order settle of `output` toward `target` with coefficient
/// `alpha` (the closed-form discretization `p += (target - p) * alpha`),
/// snapping to `target` exactly once within [`SNAP_BAND_W`].
#[inline]
pub fn settle(output_w: f64, target_w: f64, alpha: f64) -> f64 {
    let delta = target_w - output_w;
    if delta.abs() <= SNAP_BAND_W {
        target_w
    } else {
        output_w + delta * alpha
    }
}

/// Demand power with the turbo premium applied to the dynamic component:
/// `idle + (base - idle) * power_factor`.
///
/// Callers must only apply this when turbo is actually enabled — the
/// `power_factor == 1.0` case is *not* an exact identity in floating
/// point, so routing non-turbo servers through it would perturb results.
#[inline]
pub fn turbo_demand_w(base_w: f64, idle_w: f64, power_factor: f64) -> f64 {
    idle_w + (base_w - idle_w) * power_factor
}

/// Fixed lane width of the vector kernels: chunks of this many `f64`
/// elements are processed per iteration (with a scalar tail), sized to
/// one AVX2 register. The arithmetic is elementwise, so the chunking is
/// purely a codegen hint — every element sees exactly the expressions
/// of the scalar kernel, and the only cross-element fold is a bitwise
/// OR of change masks, which is order-independent.
pub const LANES: usize = 4;

/// Applies the turbo premium elementwise over a demand slice:
/// `d = idle + (d - idle) * power_factor` (see [`turbo_demand_w`]),
/// in [`LANES`]-wide chunks with a scalar tail. Bit-identical to
/// calling [`turbo_demand_w`] per element.
#[inline]
pub fn turbo_demand_batch(demand_w: &mut [f64], idle_w: f64, power_factor: f64) {
    let mut chunks = demand_w.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        for d in chunk {
            *d = turbo_demand_w(*d, idle_w, power_factor);
        }
    }
    for d in chunks.into_remainder() {
        *d = turbo_demand_w(*d, idle_w, power_factor);
    }
}

/// Advances a batch of RAPL actuators by one step.
///
/// For each index `i`:
///
/// ```text
/// target = min(demand_w[i], limit_w[i])
/// eff    = alive[i] * (alpha + not_init[i] * (1 - alpha))
/// out_w[i] = if alive[i] != 0 && |target - out_w[i]| <= SNAP_BAND_W
///            { target } else { out_w[i] + (target - out_w[i]) * eff }
/// not_init[i] *= 1 - alive[i]
/// ```
///
/// Drawn power is *not* written here; it is `out_w[i] * alive[i]`, which
/// callers compute while scattering results back to id order.
///
/// Dispatches to the [`LANES`]-wide vector kernel when the `simd`
/// feature (on by default) is enabled, and to the plain scalar loop
/// otherwise; the two are bit-identical (pinned by the kernel-parity
/// tests), so the feature only changes codegen, never results.
///
/// # Panics
///
/// Panics if the slices disagree in length.
#[inline]
pub fn step_batch(
    demand_w: &[f64],
    limit_w: &[f64],
    alive: &[f64],
    not_init: &mut [f64],
    out_w: &mut [f64],
    alpha: f64,
) {
    step_batch_settled(demand_w, limit_w, alive, not_init, out_w, alpha);
}

/// [`step_batch`] that additionally reports whether the pass was a
/// *fixed point*: `true` iff no `out_w` or `not_init` element changed
/// its bit pattern.
///
/// A fixed-point pass is the exact floating-point identity, and because
/// the kernel is a pure function of `(demand, limit, alive, state)`,
/// repeating it with unchanged inputs is the identity *forever* — the
/// invariant the fleet's active-set tracking rests on. Detecting the
/// fixed point by bit comparison (rather than an `out == target` test)
/// also covers the rounding dead zone where `out` freezes a few ulps
/// away from `target` because the increment underflows the ulp of
/// `out`.
#[inline]
pub fn step_batch_settled(
    demand_w: &[f64],
    limit_w: &[f64],
    alive: &[f64],
    not_init: &mut [f64],
    out_w: &mut [f64],
    alpha: f64,
) -> bool {
    #[cfg(feature = "simd")]
    {
        step_batch_lanes(demand_w, limit_w, alive, not_init, out_w, alpha)
    }
    #[cfg(not(feature = "simd"))]
    {
        step_batch_scalar(demand_w, limit_w, alive, not_init, out_w, alpha)
    }
}

/// Scalar reference implementation of [`step_batch_settled`]: one plain
/// loop, no chunking. Always compiled (regardless of the `simd`
/// feature) so the parity tests can pin scalar ≡ vector bitwise.
pub fn step_batch_scalar(
    demand_w: &[f64],
    limit_w: &[f64],
    alive: &[f64],
    not_init: &mut [f64],
    out_w: &mut [f64],
    alpha: f64,
) -> bool {
    let n = demand_w.len();
    assert_eq!(limit_w.len(), n);
    assert_eq!(alive.len(), n);
    assert_eq!(not_init.len(), n);
    assert_eq!(out_w.len(), n);
    let mut changed = 0u64;
    for i in 0..n {
        changed |= step_element(
            demand_w[i],
            limit_w[i],
            alive[i],
            &mut not_init[i],
            &mut out_w[i],
            alpha,
        );
    }
    changed == 0
}

/// [`LANES`]-wide chunked implementation of [`step_batch_settled`] with
/// a scalar tail. Always compiled (regardless of the `simd` feature)
/// so the parity tests can pin vector ≡ scalar bitwise.
///
/// Elementwise arithmetic is identical to [`step_batch_scalar`]; the
/// per-lane change masks are OR-folded, which is associative and
/// commutative on bits, so lane order cannot affect the result — the
/// fixed-fold-order argument for cross-host determinism.
pub fn step_batch_lanes(
    demand_w: &[f64],
    limit_w: &[f64],
    alive: &[f64],
    not_init: &mut [f64],
    out_w: &mut [f64],
    alpha: f64,
) -> bool {
    let n = demand_w.len();
    assert_eq!(limit_w.len(), n);
    assert_eq!(alive.len(), n);
    assert_eq!(not_init.len(), n);
    assert_eq!(out_w.len(), n);
    let mut changed = [0u64; LANES];
    let whole = n - n % LANES;
    for base in (0..whole).step_by(LANES) {
        // Indexed on purpose: the `base + l` shape is what the
        // autovectorizer recognizes as a lane loop.
        #[allow(clippy::needless_range_loop)]
        for l in 0..LANES {
            let i = base + l;
            changed[l] |= step_element(
                demand_w[i],
                limit_w[i],
                alive[i],
                &mut not_init[i],
                &mut out_w[i],
                alpha,
            );
        }
    }
    for i in whole..n {
        changed[0] |= step_element(
            demand_w[i],
            limit_w[i],
            alive[i],
            &mut not_init[i],
            &mut out_w[i],
            alpha,
        );
    }
    changed.iter().fold(0, |a, &c| a | c) == 0
}

/// One element of the batch step: the scalar arithmetic shared verbatim
/// by both kernel implementations. Returns a nonzero mask iff the
/// element's state (`out_w`, `not_init`) changed bit pattern.
#[inline(always)]
fn step_element(
    demand_w: f64,
    limit_w: f64,
    alive: f64,
    not_init: &mut f64,
    out_w: &mut f64,
    alpha: f64,
) -> u64 {
    let target = demand_w.min(limit_w);
    let eff = alive * (alpha + *not_init * (1.0 - alpha));
    let old_out = *out_w;
    let delta = target - old_out;
    // Same snap band as the scalar `settle` path; gated on `alive` so a
    // dead server's frozen state never moves toward a target.
    let new_out = if alive != 0.0 && delta.abs() <= SNAP_BAND_W {
        target
    } else {
        old_out + delta * eff
    };
    let old_ni = *not_init;
    let new_ni = old_ni * (1.0 - alive);
    *out_w = new_out;
    *not_init = new_ni;
    (new_out.to_bits() ^ old_out.to_bits()) | (new_ni.to_bits() ^ old_ni.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_first_step_snaps_exactly() {
        let demand = [220.0, 95.0];
        let limit = [f64::INFINITY, 180.0];
        let alive = [1.0, 1.0];
        let mut not_init = [1.0, 1.0];
        let mut out = [0.0, 0.0];
        step_batch(&demand, &limit, &alive, &mut not_init, &mut out, 0.25);
        assert_eq!(out, [220.0, 95.0]);
        assert_eq!(not_init, [0.0, 0.0]);
    }

    #[test]
    fn batch_matches_scalar_settle_bitwise() {
        let alpha = settle_alpha(1.0, 0.6);
        let demand = [240.0];
        let limit = [180.0];
        let alive = [1.0];
        let mut not_init = [0.0];
        let mut out = [240.0];
        let mut scalar = 240.0;
        for _ in 0..20 {
            step_batch(&demand, &limit, &alive, &mut not_init, &mut out, alpha);
            scalar = settle(scalar, 180.0, alpha);
            assert_eq!(out[0].to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn dead_server_state_is_frozen() {
        let demand = [240.0];
        let limit = [f64::INFINITY];
        let alive = [0.0];
        let mut not_init = [0.0];
        let mut out = [150.0];
        step_batch(&demand, &limit, &alive, &mut not_init, &mut out, 0.8);
        assert_eq!(out, [150.0]);
        assert_eq!(not_init, [0.0]);
    }

    #[test]
    fn dead_uninitialized_server_stays_uninitialized() {
        let demand = [240.0];
        let limit = [f64::INFINITY];
        let alive = [0.0];
        let mut not_init = [1.0];
        let mut out = [0.0];
        step_batch(&demand, &limit, &alive, &mut not_init, &mut out, 0.8);
        assert_eq!(out, [0.0]);
        assert_eq!(not_init, [1.0]);
    }

    #[test]
    fn snap_band_lands_on_target_then_reports_fixed_point() {
        let alpha = settle_alpha(1.0, 5.0);
        // Scalar path: within the band, the step is `output = target`
        // exactly, and the step after that is the bitwise identity.
        let out = settle(180.0005, 180.0, alpha);
        assert_eq!(out.to_bits(), 180.0f64.to_bits());
        assert_eq!(settle(out, 180.0, alpha).to_bits(), out.to_bits());
        // Batch path agrees bitwise and flags the fixed point only on
        // the pass where nothing moved.
        let demand = [180.0];
        let limit = [f64::INFINITY];
        let alive = [1.0];
        let mut not_init = [0.0];
        let mut out_b = [180.0005];
        assert!(!step_batch_settled(
            &demand,
            &limit,
            &alive,
            &mut not_init,
            &mut out_b,
            alpha
        ));
        assert_eq!(out_b[0].to_bits(), 180.0f64.to_bits());
        assert!(step_batch_settled(
            &demand,
            &limit,
            &alive,
            &mut not_init,
            &mut out_b,
            alpha
        ));
    }

    #[test]
    fn snap_band_never_moves_a_dead_server() {
        let demand = [150.0004]; // within SNAP_BAND_W of the frozen state
        let limit = [f64::INFINITY];
        let alive = [0.0];
        let mut not_init = [0.0];
        let mut out = [150.0];
        step_batch(&demand, &limit, &alive, &mut not_init, &mut out, 0.8);
        assert_eq!(out, [150.0]);
    }

    #[test]
    fn turbo_demand_matches_direct_expression() {
        let w = turbo_demand_w(200.0, 95.0, 1.20);
        assert_eq!(w, 95.0 + (200.0 - 95.0) * 1.20);
    }
}
