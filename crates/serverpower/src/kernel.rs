//! Branchless arithmetic kernels shared by the scalar server model and
//! the fleet's batched struct-of-arrays hot path.
//!
//! There must be exactly one definition of the physics arithmetic:
//! [`crate::Rapl::step`] (one server) and `Fleet`'s batched step (flat
//! arrays over thousands of servers) both route through the functions
//! here, so the two paths are bit-identical by construction rather than
//! by testing alone.
//!
//! # Mask conventions
//!
//! The batch kernel encodes per-server booleans as `f64` masks so the
//! inner loop has no data-dependent branches and auto-vectorizes:
//!
//! - `alive`: `1.0` if the server is powered on, `0.0` if crashed. A
//!   dead server's settling state is frozen (`eff == 0`) and its drawn
//!   power is forced to zero — exactly the early-return in the scalar
//!   `Server::step`.
//! - `not_init`: `1.0` until the first live step, `0.0` afterwards.
//!   While set, the effective settle coefficient is forced to exactly
//!   `1.0`, which (with the invariant that an uninitialized output is
//!   `0.0`) reproduces the scalar first-step snap `output = target`
//!   bit-for-bit: `0.0 + (target - 0.0) * 1.0 == target`.
//! - Uncapped servers carry `limit = f64::INFINITY`, making
//!   `min(demand, limit)` a branchless no-op.

/// First-order settling coefficient for a step of `dt_secs` under time
/// constant `tau_secs`: `alpha = 1 - exp(-dt/tau)`.
#[inline]
pub fn settle_alpha(dt_secs: f64, tau_secs: f64) -> f64 {
    1.0 - (-dt_secs / tau_secs).exp()
}

/// One first-order settle of `output` toward `target` with coefficient
/// `alpha` (the closed-form discretization `p += (target - p) * alpha`).
#[inline]
pub fn settle(output_w: f64, target_w: f64, alpha: f64) -> f64 {
    output_w + (target_w - output_w) * alpha
}

/// Demand power with the turbo premium applied to the dynamic component:
/// `idle + (base - idle) * power_factor`.
///
/// Callers must only apply this when turbo is actually enabled — the
/// `power_factor == 1.0` case is *not* an exact identity in floating
/// point, so routing non-turbo servers through it would perturb results.
#[inline]
pub fn turbo_demand_w(base_w: f64, idle_w: f64, power_factor: f64) -> f64 {
    idle_w + (base_w - idle_w) * power_factor
}

/// Advances a batch of RAPL actuators by one step.
///
/// For each index `i`:
///
/// ```text
/// target = min(demand_w[i], limit_w[i])
/// eff    = alive[i] * (alpha + not_init[i] * (1 - alpha))
/// out_w[i] += (target - out_w[i]) * eff
/// not_init[i] *= 1 - alive[i]
/// ```
///
/// Drawn power is *not* written here; it is `out_w[i] * alive[i]`, which
/// callers compute while scattering results back to id order.
///
/// # Panics
///
/// Panics if the slices disagree in length.
#[inline]
pub fn step_batch(
    demand_w: &[f64],
    limit_w: &[f64],
    alive: &[f64],
    not_init: &mut [f64],
    out_w: &mut [f64],
    alpha: f64,
) {
    let n = demand_w.len();
    assert_eq!(limit_w.len(), n);
    assert_eq!(alive.len(), n);
    assert_eq!(not_init.len(), n);
    assert_eq!(out_w.len(), n);
    for i in 0..n {
        let target = demand_w[i].min(limit_w[i]);
        let eff = alive[i] * (alpha + not_init[i] * (1.0 - alpha));
        out_w[i] += (target - out_w[i]) * eff;
        not_init[i] *= 1.0 - alive[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_first_step_snaps_exactly() {
        let demand = [220.0, 95.0];
        let limit = [f64::INFINITY, 180.0];
        let alive = [1.0, 1.0];
        let mut not_init = [1.0, 1.0];
        let mut out = [0.0, 0.0];
        step_batch(&demand, &limit, &alive, &mut not_init, &mut out, 0.25);
        assert_eq!(out, [220.0, 95.0]);
        assert_eq!(not_init, [0.0, 0.0]);
    }

    #[test]
    fn batch_matches_scalar_settle_bitwise() {
        let alpha = settle_alpha(1.0, 0.6);
        let demand = [240.0];
        let limit = [180.0];
        let alive = [1.0];
        let mut not_init = [0.0];
        let mut out = [240.0];
        let mut scalar = 240.0;
        for _ in 0..20 {
            step_batch(&demand, &limit, &alive, &mut not_init, &mut out, alpha);
            scalar = settle(scalar, 180.0, alpha);
            assert_eq!(out[0].to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn dead_server_state_is_frozen() {
        let demand = [240.0];
        let limit = [f64::INFINITY];
        let alive = [0.0];
        let mut not_init = [0.0];
        let mut out = [150.0];
        step_batch(&demand, &limit, &alive, &mut not_init, &mut out, 0.8);
        assert_eq!(out, [150.0]);
        assert_eq!(not_init, [0.0]);
    }

    #[test]
    fn dead_uninitialized_server_stays_uninitialized() {
        let demand = [240.0];
        let limit = [f64::INFINITY];
        let alive = [0.0];
        let mut not_init = [1.0];
        let mut out = [0.0];
        step_batch(&demand, &limit, &alive, &mut not_init, &mut out, 0.8);
        assert_eq!(out, [0.0]);
        assert_eq!(not_init, [1.0]);
    }

    #[test]
    fn turbo_demand_matches_direct_expression() {
        let w = turbo_demand_w(200.0, 95.0, 1.20);
        assert_eq!(w, 95.0 + (200.0 - 95.0) * 1.20);
    }
}
