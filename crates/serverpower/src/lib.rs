//! Server power substrate for the Dynamo reproduction.
//!
//! Everything the Dynamo *agent* needs from the machine it runs on, built
//! as simulation models because we have no fleet:
//!
//! * [`PowerCurve`] / [`ServerGeneration`] — power as a function of CPU
//!   utilization for the two web-server generations of the paper's
//!   Figure 1 (2011 Westmere, 2015 Haswell).
//! * [`Rapl`] — the running-average-power-limit actuator: enforces a
//!   power cap with the ~2 s settling transient measured in Figure 9.
//! * [`PowerSensor`] / [`PowerEstimator`] — on-board sensor readings and
//!   the CPU-utilization-based estimation model used for sensorless
//!   machines (§III-B).
//! * [`Server`] — one simulated host combining all of the above, with
//!   Turbo Boost (§IV-B: ≈ +20% power for ≈ +13% performance) and the
//!   capping-slowdown characteristic of Figure 13.
//!
//! # Example
//!
//! ```
//! use dcsim::SimDuration;
//! use powerinfra::Power;
//! use serverpower::{Server, ServerConfig, ServerGeneration};
//!
//! let mut s = Server::new(0, ServerConfig::new(ServerGeneration::Haswell2015));
//! s.set_demand(0.8);
//! for _ in 0..5 {
//!     s.step(SimDuration::from_secs(1));
//! }
//! let uncapped = s.power();
//! s.rapl_mut().set_limit(uncapped - Power::from_watts(40.0));
//! for _ in 0..5 {
//!     s.step(SimDuration::from_secs(1));
//! }
//! assert!(s.power() < uncapped - Power::from_watts(35.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
pub mod kernel;
mod rapl;
mod sensor;
mod server;

pub use curve::{PowerCurve, PowerLut, ServerGeneration};
pub use rapl::Rapl;
pub use sensor::{PowerEstimator, PowerSensor};
pub use server::{capping_slowdown, PowerBreakdown, Server, ServerConfig, ServerState, TurboBoost};
