//! Power sensors and the sensorless estimation model (§III-B).

use dcsim::SimRng;
use powerinfra::Power;
use serde::{Deserialize, Serialize};

use crate::curve::PowerCurve;

/// An on-board power sensor.
///
/// "Nearly all new servers (2011 or newer) at Facebook are equipped with
/// an on-board power sensor, which provides accurate power readings."
/// The model adds small zero-mean gaussian noise plus quantization, which
/// is enough to exercise aggregation robustness in the controllers.
///
/// # Example
///
/// ```
/// use dcsim::SimRng;
/// use powerinfra::Power;
/// use serverpower::PowerSensor;
///
/// let mut sensor = PowerSensor::new(0.01); // 1% noise
/// let mut rng = SimRng::seed_from(1);
/// let reading = sensor.read(Power::from_watts(200.0), &mut rng);
/// assert!((reading.as_watts() - 200.0).abs() < 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSensor {
    /// Relative standard deviation of the reading noise.
    noise_frac: f64,
    /// Reading resolution in watts (sensor firmware reports whole watts).
    resolution_watts: f64,
}

impl PowerSensor {
    /// Creates a sensor with the given relative noise (e.g. `0.01` = 1%).
    ///
    /// # Panics
    ///
    /// Panics if `noise_frac` is negative or not finite.
    pub fn new(noise_frac: f64) -> Self {
        assert!(
            noise_frac >= 0.0 && noise_frac.is_finite(),
            "invalid noise {noise_frac}"
        );
        PowerSensor {
            noise_frac,
            resolution_watts: 1.0,
        }
    }

    /// A noiseless, full-resolution sensor (useful in tests).
    pub fn ideal() -> Self {
        PowerSensor {
            noise_frac: 0.0,
            resolution_watts: 0.0,
        }
    }

    /// Reads `true_power` through the sensor.
    pub fn read(&mut self, true_power: Power, rng: &mut SimRng) -> Power {
        let mut w = true_power.as_watts();
        if self.noise_frac > 0.0 {
            w *= 1.0 + rng.normal(0.0, self.noise_frac);
        }
        if self.resolution_watts > 0.0 {
            w = (w / self.resolution_watts).round() * self.resolution_watts;
        }
        Power::from_watts(w.max(0.0))
    }
}

/// The power estimation model for servers without sensors.
///
/// §III-B: "we build a power estimation model similar to [Isci &
/// Martonosi] by measuring server power with respect to CPU utilization
/// with a Yokogawa power meter. Once a server's power model is built, the
/// agent estimates its power on-the-fly using system statistics such as
/// CPU utilization, memory traffic, and network traffic."
///
/// The estimator owns a calibrated [`PowerCurve`] (the bench-measurement
/// step) and evaluates it against observed utilization, with a systematic
/// model error to reflect calibration drift.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerEstimator {
    curve: PowerCurve,
    /// Multiplicative systematic error of the fitted model (e.g. `0.03`
    /// means the model reads 3% high).
    bias_frac: f64,
    /// Weights for the secondary inputs; CPU dominates.
    memory_weight: Power,
    network_weight: Power,
}

impl PowerEstimator {
    /// Builds an estimator from a calibration curve.
    pub fn new(curve: PowerCurve) -> Self {
        PowerEstimator {
            curve,
            bias_frac: 0.0,
            memory_weight: Power::from_watts(15.0),
            network_weight: Power::from_watts(5.0),
        }
    }

    /// Applies a systematic calibration bias (fraction; may be negative).
    ///
    /// # Panics
    ///
    /// Panics unless `bias_frac` is within ±50% — anything larger is a
    /// broken calibration, not a model.
    pub fn with_bias(mut self, bias_frac: f64) -> Self {
        assert!(
            bias_frac.abs() <= 0.5,
            "implausible calibration bias {bias_frac}"
        );
        self.bias_frac = bias_frac;
        self
    }

    /// Estimates power from CPU utilization alone.
    pub fn estimate(&self, cpu_utilization: f64) -> Power {
        self.estimate_full(cpu_utilization, 0.0, 0.0)
    }

    /// Estimates power from CPU utilization plus normalized memory and
    /// network activity in `[0, 1]`.
    pub fn estimate_full(&self, cpu: f64, memory: f64, network: f64) -> Power {
        let base = self.curve.power_at(cpu);
        let extras = self.memory_weight * memory.clamp(0.0, 1.0)
            + self.network_weight * network.clamp(0.0, 1.0);
        (base + extras) * (1.0 + self.bias_frac)
    }

    /// The underlying calibration curve.
    pub fn curve(&self) -> &PowerCurve {
        &self.curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::ServerGeneration;

    #[test]
    fn ideal_sensor_is_exact() {
        let mut s = PowerSensor::ideal();
        let mut rng = SimRng::seed_from(1);
        let p = Power::from_watts(213.7);
        assert_eq!(s.read(p, &mut rng), p);
    }

    #[test]
    fn noisy_sensor_is_unbiased() {
        let mut s = PowerSensor::new(0.02);
        let mut rng = SimRng::seed_from(2);
        let truth = Power::from_watts(250.0);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| s.read(truth, &mut rng).as_watts())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 250.0).abs() < 0.5, "biased sensor: mean {mean}");
    }

    #[test]
    fn sensor_quantizes_to_whole_watts() {
        let mut s = PowerSensor::new(0.0);
        let mut rng = SimRng::seed_from(3);
        let r = s.read(Power::from_watts(199.4), &mut rng);
        assert_eq!(r.as_watts(), 199.0);
    }

    #[test]
    fn sensor_never_reads_negative() {
        let mut s = PowerSensor::new(2.0); // absurd noise to force negatives pre-clamp
        let mut rng = SimRng::seed_from(4);
        for _ in 0..1000 {
            assert!(s.read(Power::from_watts(5.0), &mut rng).as_watts() >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "invalid noise")]
    fn negative_noise_panics() {
        PowerSensor::new(-0.1);
    }

    #[test]
    fn estimator_tracks_curve() {
        let curve = ServerGeneration::Westmere2011.power_curve();
        let est = PowerEstimator::new(curve.clone());
        for i in 0..=10 {
            let u = i as f64 / 10.0;
            assert_eq!(est.estimate(u), curve.power_at(u));
        }
    }

    #[test]
    fn estimator_bias_shifts_readings() {
        let curve = ServerGeneration::Westmere2011.power_curve();
        let est = PowerEstimator::new(curve.clone()).with_bias(0.05);
        let raw = curve.power_at(0.5).as_watts();
        let biased = est.estimate(0.5).as_watts();
        assert!((biased - raw * 1.05).abs() < 1e-9);
    }

    #[test]
    fn secondary_inputs_add_power() {
        let est = PowerEstimator::new(ServerGeneration::Haswell2015.power_curve());
        let base = est.estimate(0.5);
        let loaded = est.estimate_full(0.5, 1.0, 1.0);
        assert_eq!((loaded - base).as_watts(), 20.0);
        // Out-of-range activity clamps rather than extrapolating.
        let clamped = est.estimate_full(0.5, 7.0, -3.0);
        assert_eq!((clamped - base).as_watts(), 15.0);
    }

    #[test]
    #[should_panic(expected = "implausible calibration bias")]
    fn huge_bias_panics() {
        let _ = PowerEstimator::new(ServerGeneration::Haswell2015.power_curve()).with_bias(0.9);
    }
}
