//! Property tests for the uniform-grid power LUT ([`PowerLut`]) against
//! the knot-interpolating [`PowerCurve`] it is built from.
//!
//! The fleet's batched demand kernel evaluates power exclusively
//! through the LUT, so these properties are what licenses that
//! substitution: exact at every knot, within a tight error bound of the
//! knot interpolation everywhere on a dense grid, monotone, and
//! invertible through the curve within tolerance.

use powerinfra::Power;
use serverpower::{PowerLut, ServerGeneration};

const DENSE_GRID: usize = 10_000;

/// The LUT is exact at every knot of its source curve. The generations'
/// knots sit at multiples of 0.2, which land exactly on grid nodes
/// (`0.2 * 1000.0 == 200.0` in f64), so no interpolation happens there
/// at all.
#[test]
fn lut_is_exact_at_knots() {
    for generation in ServerGeneration::all() {
        let curve = generation.power_curve();
        let lut = generation.power_lut();
        for &(u, p) in curve.points() {
            assert_eq!(
                lut.power_at_w(u),
                p.as_watts(),
                "{generation:?} LUT not exact at knot u={u}"
            );
        }
    }
}

/// Max absolute error versus the knot interpolation over a dense
/// 10^4-point grid. Both sides linearly interpolate the same piecewise
/// linear function, and every curve knot is a grid node, so the only
/// divergence is floating-point rounding in the two interpolation
/// formulas — parts in 10^12, not a model error.
#[test]
fn lut_tracks_knot_interpolation_on_dense_grid() {
    for generation in ServerGeneration::all() {
        let curve = generation.power_curve();
        let lut = generation.power_lut();
        let mut max_err = 0.0f64;
        for i in 0..=DENSE_GRID {
            let u = i as f64 / DENSE_GRID as f64;
            let err = (lut.power_at_w(u) - curve.power_at(u).as_watts()).abs();
            max_err = max_err.max(err);
        }
        assert!(
            max_err < 1e-9,
            "{generation:?} LUT deviates from knot interpolation by {max_err} W"
        );
    }
}

/// The LUT is monotone non-decreasing over the dense grid (its source
/// curves are monotone, and linear interpolation preserves that).
#[test]
fn lut_is_monotone() {
    for generation in ServerGeneration::all() {
        let lut = generation.power_lut();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=DENSE_GRID {
            let u = i as f64 / DENSE_GRID as f64;
            let w = lut.power_at_w(u);
            assert!(
                w >= prev,
                "{generation:?} LUT not monotone at u={u}: {w} < {prev}"
            );
            prev = w;
        }
    }
}

/// Inverting LUT power through the curve recovers the utilization: the
/// round trip `curve.utilization_at(lut.power_at(u))` stays within
/// tolerance of `u` across the full domain.
#[test]
fn utilization_round_trips_through_the_curve_inverse() {
    for generation in ServerGeneration::all() {
        let curve = generation.power_curve();
        let lut = generation.power_lut();
        for i in 0..=1000 {
            let u = i as f64 / 1000.0;
            let round = curve.utilization_at(Power::from_watts(lut.power_at_w(u)));
            assert!(
                (round - u).abs() < 1e-9,
                "{generation:?} round trip drifted at u={u}: got {round}"
            );
        }
    }
}

/// Out-of-range inputs clamp to the endpoints, bitwise.
#[test]
fn lut_clamps_to_domain() {
    for generation in ServerGeneration::all() {
        let lut = generation.power_lut();
        assert_eq!(lut.power_at_w(-0.5), lut.power_at_w(0.0));
        assert_eq!(lut.power_at_w(1.5), lut.power_at_w(1.0));
        assert_eq!(lut.power_at_w(1.0), lut.power_at(1.0).as_watts());
    }
}

/// The shared per-generation LUT is one allocation: repeated lookups
/// hand back the same `Arc`.
#[test]
fn generation_lut_is_shared() {
    for generation in ServerGeneration::all() {
        let a = generation.power_lut();
        let b = generation.power_lut();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(a.cells(), 1000);
    }
}

/// A LUT built directly from a curve matches the shared one.
#[test]
fn from_curve_matches_shared_lut() {
    for generation in ServerGeneration::all() {
        let direct = PowerLut::from_curve(&generation.power_curve());
        let shared = generation.power_lut();
        for i in 0..=1000 {
            let u = i as f64 / 1000.0;
            assert_eq!(direct.power_at_w(u), shared.power_at_w(u));
        }
    }
}
