//! Randomized tests for the server power substrate, driven by the
//! deterministic [`SimRng`] stream.

use dcsim::{SimDuration, SimRng};
use powerinfra::Power;
use serverpower::{capping_slowdown, PowerCurve, Rapl, Server, ServerConfig, ServerGeneration};

fn random_generation(rng: &mut SimRng) -> ServerGeneration {
    let all = ServerGeneration::all();
    all[rng.next_below(all.len() as u64) as usize]
}

/// The curve inverse is a true inverse on the curve's range for any
/// generation.
#[test]
fn curve_inverse_round_trips() {
    let mut rng = SimRng::seed_from(0x5E_17).split("inverse");
    for _ in 0..300 {
        let generation = random_generation(&mut rng);
        let u = rng.uniform(0.0, 1.0);
        let curve = generation.power_curve();
        let round = curve.utilization_at(curve.power_at(u));
        assert!((round - u).abs() < 1e-9);
    }
}

/// Any monotone knot set builds a monotone curve.
#[test]
fn random_curves_are_monotone() {
    let mut rng = SimRng::seed_from(0x5E_17).split("knots");
    for _ in 0..200 {
        let n = 2 + rng.next_below(6) as usize;
        let mut knots = vec![(0.0, Power::from_watts(80.0))];
        let mut w = 80.0;
        for i in 0..n {
            w += rng.uniform(1.0, 50.0);
            knots.push(((i + 1) as f64 / n as f64, Power::from_watts(w)));
        }
        let curve = PowerCurve::from_points(knots);
        let mut prev = Power::ZERO;
        for i in 0..=100 {
            let p = curve.power_at(i as f64 / 100.0);
            assert!(p >= prev);
            prev = p;
        }
    }
}

/// RAPL always converges to min(demand, limit) and never overshoots
/// below its start/target interval.
#[test]
fn rapl_converges_to_steady_state() {
    let mut rng = SimRng::seed_from(0x5E_17).split("rapl");
    for _ in 0..200 {
        let demand_w = rng.uniform(50.0, 400.0);
        let limit_w = rng.uniform(50.0, 400.0);
        let mut rapl = Rapl::new();
        let demand = Power::from_watts(demand_w);
        rapl.step(demand, SimDuration::from_secs(1));
        rapl.set_limit(Power::from_watts(limit_w));
        let target = rapl.steady_state(demand);
        let mut out = Power::ZERO;
        for _ in 0..100 {
            out = rapl.step(demand, SimDuration::from_millis(200));
        }
        assert!((out - target).abs().as_watts() < 0.5);
    }
}

/// The capping slowdown curve is continuous, zero at zero, and
/// non-decreasing.
#[test]
fn slowdown_curve_shape() {
    let mut rng = SimRng::seed_from(0x5E_17).split("slowdown");
    assert_eq!(capping_slowdown(0.0), 0.0);
    for _ in 0..500 {
        let a = rng.uniform(0.0, 1.0);
        let b = rng.uniform(0.0, 1.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(capping_slowdown(lo) <= capping_slowdown(hi) + 1e-12);
    }
}

/// A stepped server's power always lies between idle and the
/// turbo-augmented peak, whatever the demand sequence.
#[test]
fn server_power_stays_in_physical_range() {
    let mut rng = SimRng::seed_from(0x5E_17).split("range");
    for _ in 0..100 {
        let generation = random_generation(&mut rng);
        let turbo = rng.chance(0.5);
        let n = 1 + rng.next_below(59) as usize;
        let mut config = ServerConfig::new(generation);
        if turbo {
            config = config.with_turbo();
        }
        let mut server = Server::new(0, config);
        let idle = generation.idle_power();
        let peak_ceiling = generation.peak_power() * 1.25;
        for _ in 0..n {
            server.set_demand(rng.uniform(0.0, 1.0));
            let p = server.step(SimDuration::from_secs(1));
            assert!(p >= idle * 0.99, "below idle: {p}");
            assert!(p <= peak_ceiling, "above turbo ceiling: {p}");
        }
    }
}

/// Sensor reads are non-negative and, averaged, close to the truth
/// for any noise level up to 10%.
#[test]
fn sensor_reads_bounded_and_unbiased() {
    let mut meta = SimRng::seed_from(0x5E_17).split("sensor");
    for _ in 0..40 {
        let noise = meta.uniform(0.0, 0.1);
        let truth_w = meta.uniform(50.0, 400.0);
        let mut server = Server::new(
            0,
            ServerConfig::new(ServerGeneration::Haswell2015).with_sensor_noise(noise),
        );
        let curve = server.curve().clone();
        server.set_demand(curve.utilization_at(Power::from_watts(truth_w)));
        for _ in 0..5 {
            server.step(SimDuration::from_secs(1));
        }
        let mut rng = SimRng::seed_from(7);
        let n = 400;
        let mut acc = 0.0;
        for _ in 0..n {
            let r = server.read_power(&mut rng);
            assert!(r.as_watts() >= 0.0);
            acc += r.as_watts();
        }
        let mean = acc / n as f64;
        let truth = server.power().as_watts();
        // 4-sigma band for the mean of n samples.
        let tolerance = 4.0 * noise * truth / (n as f64).sqrt() + 1.0;
        assert!(
            (mean - truth).abs() < tolerance,
            "mean {mean} vs truth {truth}"
        );
    }
}

/// Performance factor is in (0, turbo_perf] and equals ~1 when
/// uncapped without turbo.
#[test]
fn performance_factor_bounds() {
    let mut rng = SimRng::seed_from(0x5E_17).split("perf");
    for _ in 0..100 {
        let demand = rng.uniform(0.05, 1.0);
        let cap_frac = rng.uniform(0.5, 1.0);
        let mut server = Server::new(0, ServerConfig::new(ServerGeneration::Haswell2015));
        server.set_demand(demand);
        for _ in 0..5 {
            server.step(SimDuration::from_secs(1));
        }
        assert!((server.performance_factor() - 1.0).abs() < 1e-6);
        let cap = server.power() * cap_frac;
        server.rapl_mut().set_limit(cap.max(Power::from_watts(1.0)));
        for _ in 0..30 {
            server.step(SimDuration::from_secs(1));
        }
        let perf = server.performance_factor();
        assert!(perf > 0.0 && perf <= 1.0 + 1e-9);
    }
}
