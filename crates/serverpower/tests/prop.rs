//! Property-based tests for the server power substrate.

use dcsim::{SimDuration, SimRng};
use powerinfra::Power;
use proptest::prelude::*;
use serverpower::{
    capping_slowdown, PowerCurve, Rapl, Server, ServerConfig, ServerGeneration,
};

fn any_generation() -> impl Strategy<Value = ServerGeneration> {
    prop::sample::select(ServerGeneration::all().to_vec())
}

proptest! {
    /// The curve inverse is a true inverse on the curve's range for any
    /// generation.
    #[test]
    fn curve_inverse_round_trips(generation in any_generation(), u in 0.0f64..=1.0) {
        let curve = generation.power_curve();
        let round = curve.utilization_at(curve.power_at(u));
        prop_assert!((round - u).abs() < 1e-9);
    }

    /// Any monotone knot set builds a monotone curve.
    #[test]
    fn random_curves_are_monotone(steps in prop::collection::vec(1.0f64..50.0, 2..8)) {
        let mut knots = vec![(0.0, Power::from_watts(80.0))];
        let n = steps.len();
        let mut w = 80.0;
        for (i, d) in steps.iter().enumerate() {
            w += d;
            knots.push(((i + 1) as f64 / n as f64, Power::from_watts(w)));
        }
        let curve = PowerCurve::from_points(knots);
        let mut prev = Power::ZERO;
        for i in 0..=100 {
            let p = curve.power_at(i as f64 / 100.0);
            prop_assert!(p >= prev);
            prev = p;
        }
    }

    /// RAPL always converges to min(demand, limit) and never overshoots
    /// below its start/target interval.
    #[test]
    fn rapl_converges_to_steady_state(
        demand_w in 50.0f64..400.0,
        limit_w in 50.0f64..400.0,
    ) {
        let mut rapl = Rapl::new();
        let demand = Power::from_watts(demand_w);
        rapl.step(demand, SimDuration::from_secs(1));
        rapl.set_limit(Power::from_watts(limit_w));
        let target = rapl.steady_state(demand);
        let mut out = Power::ZERO;
        for _ in 0..100 {
            out = rapl.step(demand, SimDuration::from_millis(200));
        }
        prop_assert!((out - target).abs().as_watts() < 0.5);
    }

    /// The capping slowdown curve is continuous, zero at zero, and
    /// non-decreasing.
    #[test]
    fn slowdown_curve_shape(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(capping_slowdown(lo) <= capping_slowdown(hi) + 1e-12);
        prop_assert_eq!(capping_slowdown(0.0), 0.0);
    }

    /// A stepped server's power always lies between idle and the
    /// turbo-augmented peak, whatever the demand sequence.
    #[test]
    fn server_power_stays_in_physical_range(
        generation in any_generation(),
        turbo in any::<bool>(),
        demands in prop::collection::vec(0.0f64..=1.0, 1..60),
    ) {
        let mut config = ServerConfig::new(generation);
        if turbo {
            config = config.with_turbo();
        }
        let mut server = Server::new(0, config);
        let idle = generation.idle_power();
        let peak_ceiling = generation.peak_power() * 1.25;
        for &d in &demands {
            server.set_demand(d);
            let p = server.step(SimDuration::from_secs(1));
            prop_assert!(p >= idle * 0.99, "below idle: {p}");
            prop_assert!(p <= peak_ceiling, "above turbo ceiling: {p}");
        }
    }

    /// Sensor reads are non-negative and, averaged, close to the truth
    /// for any noise level up to 10%.
    #[test]
    fn sensor_reads_bounded_and_unbiased(noise in 0.0f64..0.1, truth_w in 50.0f64..400.0) {
        let mut server = Server::new(
            0,
            ServerConfig::new(ServerGeneration::Haswell2015).with_sensor_noise(noise),
        );
        let curve = server.curve().clone();
        server.set_demand(curve.utilization_at(Power::from_watts(truth_w)));
        for _ in 0..5 {
            server.step(SimDuration::from_secs(1));
        }
        let mut rng = SimRng::seed_from(7);
        let n = 400;
        let mut acc = 0.0;
        for _ in 0..n {
            let r = server.read_power(&mut rng);
            prop_assert!(r.as_watts() >= 0.0);
            acc += r.as_watts();
        }
        let mean = acc / n as f64;
        let truth = server.power().as_watts();
        // 4-sigma band for the mean of n samples.
        let tolerance = 4.0 * noise * truth / (n as f64).sqrt() + 1.0;
        prop_assert!((mean - truth).abs() < tolerance, "mean {mean} vs truth {truth}");
    }

    /// Performance factor is in (0, turbo_perf] and equals ~1 when
    /// uncapped without turbo.
    #[test]
    fn performance_factor_bounds(demand in 0.05f64..=1.0, cap_frac in 0.5f64..=1.0) {
        let mut server = Server::new(0, ServerConfig::new(ServerGeneration::Haswell2015));
        server.set_demand(demand);
        for _ in 0..5 { server.step(SimDuration::from_secs(1)); }
        prop_assert!((server.performance_factor() - 1.0).abs() < 1e-6);
        let cap = server.power() * cap_frac;
        server.rapl_mut().set_limit(cap.max(Power::from_watts(1.0)));
        for _ in 0..30 { server.step(SimDuration::from_secs(1)); }
        let perf = server.performance_factor();
        prop_assert!(perf > 0.0 && perf <= 1.0 + 1e-9);
    }
}
