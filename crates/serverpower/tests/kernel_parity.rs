//! Kernel parity and the active-set premise.
//!
//! Two families of pins:
//!
//! 1. **Parity** — the scalar loop ([`kernel::step_batch_scalar`]), the
//!    fixed-lane vector kernel ([`kernel::step_batch_lanes`]) and the
//!    dispatching [`kernel::step_batch`] are bit-identical to each other
//!    and to the one-element [`kernel::settle`] arithmetic, at every
//!    slice length (exercising whole chunks and scalar tails). This
//!    suite runs under the `simd` feature both on and off in CI, so the
//!    dispatcher is pinned in both states.
//!
//! 2. **The active-set premise** — a pass reported as a fixed point by
//!    [`kernel::step_batch_settled`] is the exact floating-point
//!    identity, and stays one for all future passes with unchanged
//!    inputs. This is what lets the fleet skip settled leaves without
//!    perturbing a single bit.

use dcsim::SimRng;
use serverpower::kernel;

/// Deterministic pseudo-random batch state: mixed alive/dead,
/// initialized/uninitialized, capped/uncapped servers.
#[allow(clippy::type_complexity)]
fn random_batch(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut rng = SimRng::seed_from(seed);
    let mut demand = Vec::with_capacity(n);
    let mut limit = Vec::with_capacity(n);
    let mut alive = Vec::with_capacity(n);
    let mut not_init = Vec::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        demand.push(rng.uniform(80.0, 400.0));
        limit.push(if rng.chance(0.5) {
            f64::INFINITY
        } else {
            rng.uniform(100.0, 350.0)
        });
        let a = if rng.chance(0.9) { 1.0 } else { 0.0 };
        alive.push(a);
        let ni = if rng.chance(0.2) { 1.0 } else { 0.0 };
        not_init.push(ni);
        out.push(if ni == 1.0 {
            0.0
        } else {
            rng.uniform(0.0, 400.0)
        });
    }
    (demand, limit, alive, not_init, out)
}

#[test]
fn scalar_lanes_and_dispatcher_are_bit_identical() {
    // Lengths straddling the lane width: tails of every residue class,
    // plus empty and sub-chunk slices.
    for &n in &[0usize, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 160, 257] {
        for seed in 0..5u64 {
            let (demand, limit, alive, ni0, out0) = random_batch(n, 1000 + seed);
            let alpha = kernel::settle_alpha(1.0 + seed as f64, 0.6);

            let (mut ni_s, mut out_s) = (ni0.clone(), out0.clone());
            let (mut ni_l, mut out_l) = (ni0.clone(), out0.clone());
            let (mut ni_d, mut out_d) = (ni0.clone(), out0.clone());
            for _ in 0..25 {
                let fs = kernel::step_batch_scalar(
                    &demand, &limit, &alive, &mut ni_s, &mut out_s, alpha,
                );
                let fl =
                    kernel::step_batch_lanes(&demand, &limit, &alive, &mut ni_l, &mut out_l, alpha);
                let fd = kernel::step_batch_settled(
                    &demand, &limit, &alive, &mut ni_d, &mut out_d, alpha,
                );
                assert_eq!(fs, fl, "fixed-point verdicts diverged (n={n} seed={seed})");
                assert_eq!(fs, fd, "dispatcher verdict diverged (n={n} seed={seed})");
                for i in 0..n {
                    assert_eq!(
                        out_s[i].to_bits(),
                        out_l[i].to_bits(),
                        "lanes out[{i}] drifted (n={n} seed={seed})"
                    );
                    assert_eq!(
                        out_s[i].to_bits(),
                        out_d[i].to_bits(),
                        "dispatch out[{i}] drifted (n={n} seed={seed})"
                    );
                    assert_eq!(ni_s[i].to_bits(), ni_l[i].to_bits());
                    assert_eq!(ni_s[i].to_bits(), ni_d[i].to_bits());
                }
            }
        }
    }
}

/// One-element reference: the documented per-index expressions of
/// `step_batch`, evaluated through [`kernel::settle`] so the batch path
/// is pinned against the same helper the scalar `Rapl::step` uses.
#[test]
fn batch_matches_one_element_settle_arithmetic() {
    let (demand, limit, alive, mut ni, mut out) = random_batch(97, 7);
    let alpha = kernel::settle_alpha(1.0, 0.6);
    let mut ni_ref = ni.clone();
    let mut out_ref = out.clone();
    for step in 0..40 {
        kernel::step_batch(&demand, &limit, &alive, &mut ni, &mut out, alpha);
        for i in 0..97 {
            let target = demand[i].min(limit[i]);
            let eff = alive[i] * (alpha + ni_ref[i] * (1.0 - alpha));
            out_ref[i] = kernel::settle(out_ref[i], target, eff);
            ni_ref[i] *= 1.0 - alive[i];
            assert_eq!(
                out[i].to_bits(),
                out_ref[i].to_bits(),
                "out[{i}] drifted from settle() reference at step {step}"
            );
            assert_eq!(
                ni[i].to_bits(),
                ni_ref[i].to_bits(),
                "not_init[{i}] drifted at step {step}"
            );
        }
    }
}

#[test]
fn turbo_batch_matches_scalar() {
    let mut rng = SimRng::seed_from(21);
    for &n in &[0usize, 1, 3, 4, 6, 9, 33] {
        let demand: Vec<f64> = (0..n).map(|_| rng.uniform(90.0, 340.0)).collect();
        let mut batched = demand.clone();
        kernel::turbo_demand_batch(&mut batched, 95.0, 1.2);
        for (i, (&d, &b)) in demand.iter().zip(&batched).enumerate() {
            assert_eq!(
                b.to_bits(),
                kernel::turbo_demand_w(d, 95.0, 1.2).to_bits(),
                "turbo element {i} drifted (n={n})"
            );
        }
    }
}

#[test]
fn lut_batch_matches_scalar() {
    let lut = serverpower::ServerGeneration::Haswell2015.power_lut();
    let mut rng = SimRng::seed_from(33);
    for &n in &[0usize, 1, 2, 5, 8, 100, 1003] {
        let mut util: Vec<f64> = (0..n).map(|_| rng.uniform(-0.1, 1.1)).collect();
        // Hit the exact-knot and clamp paths too.
        for (k, u) in util.iter_mut().enumerate().take(7) {
            *u = [0.0, 0.2, 1.0, 1.5, -0.5, 0.999, 1.0 - f64::EPSILON][k % 7];
        }
        let mut out = vec![0.0; n];
        lut.power_batch_w(&util, &mut out);
        for (i, (&u, &w)) in util.iter().zip(&out).enumerate() {
            assert_eq!(
                w.to_bits(),
                lut.power_at_w(u).to_bits(),
                "LUT element {i} drifted (n={n})"
            );
        }
    }
}

/// The premise itself: once a pass is a fixed point, every further pass
/// with unchanged inputs is the exact identity. Pure-function argument:
/// the kernel's output depends only on `(demand, limit, alive, state)`,
/// so a state the kernel maps to itself is mapped to itself forever.
/// The test drives random batches to their fixed points and verifies
/// bit-stability over many further passes.
#[test]
fn fixed_point_is_the_exact_identity_forever() {
    for seed in 0..10u64 {
        let (demand, limit, alive, mut ni, mut out) = random_batch(64, 5000 + seed);
        let alpha = kernel::settle_alpha(1.0, 0.6);
        let mut settled_at = None;
        for pass in 0..400 {
            if kernel::step_batch_settled(&demand, &limit, &alive, &mut ni, &mut out, alpha) {
                settled_at = Some(pass);
                break;
            }
        }
        let settled_at = settled_at.expect("batch must reach its fixed point");
        assert!(
            settled_at < 300,
            "fixed point took {settled_at} passes (seed {seed})"
        );
        let out_frozen = out.clone();
        let ni_frozen = ni.clone();
        for pass in 0..100 {
            let fixed =
                kernel::step_batch_settled(&demand, &limit, &alive, &mut ni, &mut out, alpha);
            assert!(fixed, "pass {pass} after the fixed point was not one");
            for i in 0..64 {
                assert_eq!(
                    out[i].to_bits(),
                    out_frozen[i].to_bits(),
                    "out[{i}] moved after the fixed point (seed {seed})"
                );
                assert_eq!(ni[i].to_bits(), ni_frozen[i].to_bits());
            }
        }
    }
}

/// `settle(out, out, alpha)` is the exact identity for every
/// representable positive finite `out` and every `alpha` in `[0, 1]`:
/// `out - out` is `+0.0`, the product with any finite `alpha` is
/// `±0.0`, and `out + ±0.0 == out` bitwise for any nonzero `out`.
/// Sampled across the whole exponent range including subnormals.
#[test]
fn settle_at_target_is_exact_identity_across_magnitudes() {
    let mut rng = SimRng::seed_from(99);
    let alphas = [0.0, 1e-300, 0.25, 0.5, kernel::settle_alpha(1.0, 0.6), 1.0];
    for exp in -300..=300 {
        let out = rng.uniform(1.0, 2.0) * 10f64.powi(exp);
        for &alpha in &alphas {
            let stepped = kernel::settle(out, out, alpha);
            assert_eq!(
                stepped.to_bits(),
                out.to_bits(),
                "settle({out:e}, {out:e}, {alpha}) moved"
            );
        }
    }
    // Subnormals and extremes.
    for out in [f64::MIN_POSITIVE / 2.0, f64::MIN_POSITIVE, f64::MAX, 5e-324] {
        for &alpha in &alphas {
            assert_eq!(kernel::settle(out, out, alpha).to_bits(), out.to_bits());
        }
    }
}

#[test]
fn dead_server_is_immediately_a_fixed_point() {
    let demand = [240.0, 310.0];
    let limit = [f64::INFINITY, 180.0];
    let alive = [0.0, 0.0];
    let mut ni = [0.0, 1.0];
    let mut out = [150.0, 0.0];
    for _ in 0..5 {
        assert!(kernel::step_batch_settled(
            &demand, &limit, &alive, &mut ni, &mut out, 0.8
        ));
    }
    assert_eq!(out, [150.0, 0.0]);
    assert_eq!(ni, [0.0, 1.0]);
}

#[test]
fn uninitialized_live_server_is_not_a_fixed_point_until_snapped() {
    let demand = [240.0];
    let limit = [f64::INFINITY];
    let alive = [1.0];
    let mut ni = [1.0];
    let mut out = [0.0];
    let alpha = kernel::settle_alpha(1.0, 0.6);
    // First pass snaps output to target and clears not_init: a change.
    assert!(!kernel::step_batch_settled(
        &demand, &limit, &alive, &mut ni, &mut out, alpha
    ));
    assert_eq!(out, [240.0]);
    assert_eq!(ni, [0.0]);
    // Now at target: the very next pass is the identity.
    assert!(kernel::step_batch_settled(
        &demand, &limit, &alive, &mut ni, &mut out, alpha
    ));
}
