//! The utility side of the meter as a deterministic signal schedule.
//!
//! A [`GridScenario`] is a piecewise-constant schedule of
//! [`GridSignal`]s: wholesale price, grid frequency, and an optional
//! curtailment window expressed as a *fraction of site contractual
//! capacity* so the same preset scales from a one-RPP test rig to the
//! full 30 MW site. Signals are a pure function of simulated time —
//! nothing here needs snapshotting; a resumed run re-reads the same
//! schedule at the same clock.

use dcsim::SimTime;

/// Nominal wholesale price used when a scenario says nothing else
/// ($/MWh; a round mid-market number, not a market model).
pub const NOMINAL_PRICE: f64 = 40.0;

/// Nominal grid frequency (Hz, 60 Hz interconnection).
pub const NOMINAL_FREQUENCY_HZ: f64 = 60.0;

/// The utility signal in force at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSignal {
    /// Wholesale energy price ($/MWh).
    pub price_per_mwh: f64,
    /// Grid frequency (Hz). Below nominal means generation is short.
    pub frequency_hz: f64,
    /// Utility-imposed feed limit as a fraction of site contractual
    /// capacity, when a curtailment window is active.
    pub curtail_frac: Option<f64>,
}

impl GridSignal {
    /// The quiet-grid signal: nominal price and frequency, no
    /// curtailment.
    pub fn nominal() -> Self {
        GridSignal {
            price_per_mwh: NOMINAL_PRICE,
            frequency_hz: NOMINAL_FREQUENCY_HZ,
            curtail_frac: None,
        }
    }
}

/// One piece of a scenario: `signal` holds from `start` until the next
/// segment's start (or forever, for the last segment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSegment {
    /// When this signal takes effect.
    pub start: SimTime,
    /// The signal in force.
    pub signal: GridSignal,
}

/// A named, deterministic utility-signal schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct GridScenario {
    name: String,
    /// Ascending by `start`; the first segment starts at `SimTime::ZERO`.
    segments: Vec<GridSegment>,
}

impl GridScenario {
    /// Builds a scenario from explicit segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, unsorted, or does not start at
    /// time zero.
    pub fn from_segments(name: impl Into<String>, segments: Vec<GridSegment>) -> Self {
        assert!(!segments.is_empty(), "scenario needs at least one segment");
        assert_eq!(
            segments[0].start,
            SimTime::ZERO,
            "first segment must start at t=0"
        );
        for pair in segments.windows(2) {
            assert!(
                pair[0].start < pair[1].start,
                "segments must be strictly ascending by start"
            );
        }
        for s in &segments {
            if let Some(f) = s.signal.curtail_frac {
                assert!(f > 0.0 && f <= 1.0, "curtail fraction {f} outside (0, 1]");
            }
            assert!(s.signal.frequency_hz > 0.0, "non-positive frequency");
            assert!(s.signal.price_per_mwh.is_finite(), "non-finite price");
        }
        GridScenario {
            name: name.into(),
            segments,
        }
    }

    /// A quiet grid forever — the scenario a grid-enabled site runs when
    /// nothing is happening (the idle-overhead baseline).
    pub fn nominal() -> Self {
        GridScenario::from_segments(
            "nominal",
            vec![GridSegment {
                start: SimTime::ZERO,
                signal: GridSignal::nominal(),
            }],
        )
    }

    /// The named scenario presets.
    pub fn preset_names() -> [&'static str; 5] {
        [
            "nominal",
            "brownout",
            "curtailment-window",
            "frequency-excursion",
            "price-spike",
        ]
    }

    /// Looks up a named preset. Times are chosen so every preset's
    /// event fits comfortably in a 30–60 simulated-minute run.
    pub fn preset(name: &str) -> Option<Self> {
        let seg = |secs: u64, price: f64, hz: f64, curtail: Option<f64>| GridSegment {
            start: SimTime::from_secs(secs),
            signal: GridSignal {
                price_per_mwh: price,
                frequency_hz: hz,
                curtail_frac: curtail,
            },
        };
        let nominal = |secs| seg(secs, NOMINAL_PRICE, NOMINAL_FREQUENCY_HZ, None);
        Some(match name {
            "nominal" => GridScenario::nominal(),
            // A 10-minute utility curtailment call: feed capped at 80%
            // of site contractual capacity from t=300 s to t=900 s.
            "curtailment-window" => GridScenario::from_segments(
                name,
                vec![
                    nominal(0),
                    seg(300, NOMINAL_PRICE, NOMINAL_FREQUENCY_HZ, Some(0.80)),
                    nominal(900),
                ],
            ),
            // A sustained regional shortfall: deep curtailment with
            // depressed frequency and elevated price for 30 minutes.
            "brownout" => GridScenario::from_segments(
                name,
                vec![
                    nominal(0),
                    seg(240, 120.0, 59.90, Some(0.70)),
                    nominal(2040),
                ],
            ),
            // An under-frequency excursion (generator trip elsewhere):
            // no explicit curtailment order, the droop response sheds.
            "frequency-excursion" => GridScenario::from_segments(
                name,
                vec![
                    nominal(0),
                    seg(300, NOMINAL_PRICE, 59.75, None),
                    seg(420, NOMINAL_PRICE, 59.90, None),
                    nominal(480),
                ],
            ),
            // A 20-minute price spike: economic shedding, no hard limit.
            "price-spike" => GridScenario::from_segments(
                name,
                vec![
                    nominal(0),
                    seg(600, 400.0, NOMINAL_FREQUENCY_HZ, None),
                    nominal(1800),
                ],
            ),
            _ => return None,
        })
    }

    /// Parses the signal-file format: one segment per line,
    /// `start_s price_per_mwh frequency_hz curtail_frac`, where the
    /// curtail column is `-` for "no curtailment". Blank lines and
    /// `#` comments are skipped.
    ///
    /// ```text
    /// # a 5-minute 75% curtailment starting at t=120 s
    /// 0    40.0  60.0  -
    /// 120  40.0  60.0  0.75
    /// 420  40.0  60.0  -
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn parse(name: impl Into<String>, text: &str) -> Result<Self, String> {
        let mut segments = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(format!(
                    "line {}: expected 4 fields (start_s price freq curtail), got {}",
                    lineno + 1,
                    fields.len()
                ));
            }
            let parse_f = |s: &str, what: &str| {
                s.parse::<f64>()
                    .map_err(|_| format!("line {}: bad {what} '{s}'", lineno + 1))
            };
            let start = parse_f(fields[0], "start")?;
            if start < 0.0 || start.fract() != 0.0 {
                return Err(format!(
                    "line {}: start must be a non-negative whole second",
                    lineno + 1
                ));
            }
            let price = parse_f(fields[1], "price")?;
            let freq = parse_f(fields[2], "frequency")?;
            if freq <= 0.0 {
                return Err(format!("line {}: non-positive frequency", lineno + 1));
            }
            let curtail = if fields[3] == "-" {
                None
            } else {
                let f = parse_f(fields[3], "curtail fraction")?;
                if !(f > 0.0 && f <= 1.0) {
                    return Err(format!(
                        "line {}: curtail fraction {f} outside (0, 1]",
                        lineno + 1
                    ));
                }
                Some(f)
            };
            let start = SimTime::from_secs(start as u64);
            if let Some(prev) = segments.last() {
                let prev: &GridSegment = prev;
                if start <= prev.start {
                    return Err(format!(
                        "line {}: segment starts must be strictly ascending",
                        lineno + 1
                    ));
                }
            } else if start != SimTime::ZERO {
                return Err("first segment must start at t=0".to_string());
            }
            segments.push(GridSegment {
                start,
                signal: GridSignal {
                    price_per_mwh: price,
                    frequency_hz: freq,
                    curtail_frac: curtail,
                },
            });
        }
        if segments.is_empty() {
            return Err("signal file has no segments".to_string());
        }
        Ok(GridScenario {
            name: name.into(),
            segments,
        })
    }

    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The segments, ascending by start.
    pub fn segments(&self) -> &[GridSegment] {
        &self.segments
    }

    /// The signal in force at `now`. A binary search over the segment
    /// starts: allocation-free and stateless, so the per-tick lookup
    /// costs nothing on the steady path and resumes exactly.
    pub fn signal_at(&self, now: SimTime) -> &GridSignal {
        let idx = self.segments.partition_point(|s| s.start <= now);
        &self.segments[idx - 1].signal
    }

    /// Whether any segment ever deviates from the nominal signal — a
    /// scenario that never does lets callers skip event tracking
    /// entirely.
    pub fn has_activity(&self) -> bool {
        self.segments
            .iter()
            .any(|s| s.signal != GridSignal::nominal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_and_unknown_does_not() {
        for name in GridScenario::preset_names() {
            let s = GridScenario::preset(name).expect(name);
            assert_eq!(s.name(), name);
            assert_eq!(s.segments()[0].start, SimTime::ZERO);
        }
        assert!(GridScenario::preset("rolling-blackout").is_none());
    }

    #[test]
    fn signal_lookup_is_piecewise_constant() {
        let s = GridScenario::preset("curtailment-window").unwrap();
        assert_eq!(s.signal_at(SimTime::ZERO).curtail_frac, None);
        assert_eq!(s.signal_at(SimTime::from_secs(299)).curtail_frac, None);
        assert_eq!(
            s.signal_at(SimTime::from_secs(300)).curtail_frac,
            Some(0.80)
        );
        assert_eq!(
            s.signal_at(SimTime::from_secs(899)).curtail_frac,
            Some(0.80)
        );
        assert_eq!(s.signal_at(SimTime::from_secs(900)).curtail_frac, None);
        assert_eq!(s.signal_at(SimTime::from_secs(86_400)).curtail_frac, None);
    }

    #[test]
    fn nominal_has_no_activity_and_presets_do() {
        assert!(!GridScenario::nominal().has_activity());
        for name in ["brownout", "curtailment-window", "price-spike"] {
            assert!(GridScenario::preset(name).unwrap().has_activity());
        }
    }

    #[test]
    fn parses_signal_file_round_trip() {
        let text = "# comment\n0 40 60 -\n120 42.5 59.9 0.75\n\n420 40 60 -\n";
        let s = GridScenario::parse("custom", text).unwrap();
        assert_eq!(s.segments().len(), 3);
        assert_eq!(
            s.signal_at(SimTime::from_secs(200)).curtail_frac,
            Some(0.75)
        );
        assert_eq!(s.signal_at(SimTime::from_secs(200)).frequency_hz, 59.9);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for (text, needle) in [
            ("", "no segments"),
            ("5 40 60 -", "start at t=0"),
            ("0 40 60 -\n0 40 60 -", "ascending"),
            ("0 40 60 1.5", "outside"),
            ("0 40 60", "4 fields"),
            ("0 forty 60 -", "bad price"),
            ("0 40 0 -", "frequency"),
        ] {
            let err = GridScenario::parse("bad", text).unwrap_err();
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_segments_panic() {
        let seg = |t| GridSegment {
            start: SimTime::from_secs(t),
            signal: GridSignal::nominal(),
        };
        GridScenario::from_segments("bad", vec![seg(0), seg(10), seg(5)]);
    }
}
