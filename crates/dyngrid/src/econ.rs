//! The site economic controller: grid signals in, one site-wide
//! contractual limit out.
//!
//! Sits *above* Dynamo's capping hierarchy on a deliberately slow
//! [`CycleSchedule`] (60 s default, versus 3 s leaf / 9 s upper
//! cycles). Each cycle it reduces the current [`GridSignal`] to a
//! single **utility target** — the most binding of the curtailment
//! limit, the price-response target and the under-frequency droop
//! target — and moves the pushed contract toward `target + battery
//! headroom` under two stability rules:
//!
//! * **ramp limiting** — the contract moves at most `ramp_frac` of
//!   capacity per cycle, so the hierarchy below sees a staircase, not a
//!   step;
//! * **asymmetric deadband** — upward moves (releasing a limit) are
//!   suppressed inside `deadband_frac` of capacity, so a signal
//!   hovering at a threshold cannot make the controller flap; downward
//!   moves always land exactly on the desired limit, because
//!   containment beats hysteresis.
//!
//! Battery headroom is quantized to deadband steps before it widens the
//! contract: a slowly draining DCUPS bank retargets the contract at
//! most once per step it actually loses, bounding limit churn over an
//! episode by `initial_headroom / deadband + 2` pushes. Headroom only
//! ever *widens* a contract on the way in — while a target is in force
//! and has not risen, recovered headroom never loosens the pushed
//! limit. (Capping below the contract makes the banks' sustain look
//! better precisely because the contract is working; releasing on that
//! signal would re-raise the draw, re-drain the banks and oscillate —
//! the flap the deadband exists to prevent.)

use dcsim::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use dcsim::{CycleSchedule, SimDuration, SimTime};
use powerinfra::Power;

use crate::signal::{GridSignal, NOMINAL_FREQUENCY_HZ};

/// Tunables for the economic controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EconConfig {
    /// Cycle period. Must dominate the capping-loop periods below it
    /// (3 s / 9 s) for the timescale-separation argument to hold.
    pub period: SimDuration,
    /// Phase offset of the cycle schedule.
    pub phase: SimDuration,
    /// Deadband as a fraction of site capacity: upward contract moves
    /// smaller than this are suppressed.
    pub deadband_frac: f64,
    /// Maximum contract movement per cycle as a fraction of capacity.
    /// The default (0.5) reaches any curtailment target within two
    /// cycles — the containment budget the acceptance criteria quote.
    pub ramp_frac: f64,
    /// Price ($/MWh) at or above which the site sheds to
    /// `price_target_frac` of capacity.
    pub price_threshold: f64,
    /// Utility-draw target during a price event, as a fraction of
    /// capacity.
    pub price_target_frac: f64,
    /// Frequency deviation below nominal that is ignored (Hz).
    pub freq_deadband_hz: f64,
    /// Droop gain: fraction of capacity shed per Hz of under-frequency
    /// beyond the deadband.
    pub droop_per_hz: f64,
    /// The controller never targets below this fraction of capacity,
    /// whatever the signal asks — the site's essential load.
    pub floor_frac: f64,
}

impl Default for EconConfig {
    fn default() -> Self {
        EconConfig {
            period: SimDuration::from_secs(60),
            phase: SimDuration::ZERO,
            deadband_frac: 0.01,
            ramp_frac: 0.5,
            price_threshold: 200.0,
            price_target_frac: 0.90,
            freq_deadband_hz: 0.05,
            droop_per_hz: 1.0,
            floor_frac: 0.50,
        }
    }
}

impl EconConfig {
    /// Checks the configuration for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first inconsistent knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.period.as_millis() == 0 {
            return Err("economic period must be positive".into());
        }
        if !(self.deadband_frac > 0.0 && self.deadband_frac < 1.0) {
            return Err(format!(
                "deadband_frac {} outside (0, 1)",
                self.deadband_frac
            ));
        }
        if !(self.ramp_frac > self.deadband_frac && self.ramp_frac <= 1.0) {
            return Err(format!(
                "ramp_frac {} must exceed deadband_frac {} and be <= 1",
                self.ramp_frac, self.deadband_frac
            ));
        }
        if !(self.price_target_frac > 0.0 && self.price_target_frac <= 1.0) {
            return Err(format!(
                "price_target_frac {} outside (0, 1]",
                self.price_target_frac
            ));
        }
        if !(self.floor_frac > 0.0 && self.floor_frac <= self.price_target_frac) {
            return Err(format!(
                "floor_frac {} outside (0, price_target_frac]",
                self.floor_frac
            ));
        }
        if self.droop_per_hz < 0.0 || self.freq_deadband_hz < 0.0 {
            return Err("droop_per_hz and freq_deadband_hz must be non-negative".into());
        }
        if !self.price_threshold.is_finite() {
            return Err("price_threshold must be finite".into());
        }
        Ok(())
    }
}

/// What one economic cycle decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EconDecision {
    /// The site-wide contractual limit now in force (`None` = cleared:
    /// the hierarchy runs on physical ratings alone).
    pub contract: Option<Power>,
    /// Whether this cycle changed the pushed contract.
    pub changed: bool,
    /// The utility-draw target derived from the signal, before battery
    /// headroom (`None` = the grid asks nothing).
    pub utility_target: Option<Power>,
}

/// The site economic controller. See the module docs for the control
/// law.
#[derive(Debug, Clone)]
pub struct EconController {
    config: EconConfig,
    /// Site contractual capacity all fractions are quoted against.
    capacity: Power,
    schedule: CycleSchedule,
    /// Currently pushed site-wide contract (watts), if any.
    pushed_w: Option<f64>,
    /// Last derived utility target (watts), if the grid is asking.
    utility_target_w: Option<f64>,
    cycles: u64,
    limit_changes: u64,
}

impl EconController {
    /// Builds a controller for a site of `capacity` contractual watts.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or non-positive capacity.
    pub fn new(config: EconConfig, capacity: Power) -> Self {
        config
            .validate()
            .expect("invalid economic controller config");
        assert!(capacity.as_watts() > 0.0, "site capacity must be positive");
        EconController {
            config,
            capacity,
            schedule: CycleSchedule::with_phase(config.period, config.phase),
            pushed_w: None,
            utility_target_w: None,
            cycles: 0,
            limit_changes: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EconConfig {
        &self.config
    }

    /// The site contractual capacity.
    pub fn capacity(&self) -> Power {
        self.capacity
    }

    /// Whether a cycle is due at `now`.
    pub fn due(&self, now: SimTime) -> bool {
        self.schedule.due(now)
    }

    /// The currently pushed site contract, if any.
    pub fn pushed(&self) -> Option<Power> {
        self.pushed_w.map(Power::from_watts)
    }

    /// The utility-draw target from the last cycle, if the grid is
    /// asking for one. The fast battery loop shaves utility draw above
    /// this between cycles.
    pub fn utility_target(&self) -> Option<Power> {
        self.utility_target_w.map(Power::from_watts)
    }

    /// Cycles run.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Contract changes pushed (the churn the deadband bounds).
    pub fn limit_changes(&self) -> u64 {
        self.limit_changes
    }

    /// Reduces `signal` to the most binding utility-draw target, or
    /// `None` when the grid asks nothing.
    fn target_w(&self, signal: &GridSignal) -> Option<f64> {
        let c = self.capacity.as_watts();
        let mut t = f64::INFINITY;
        if let Some(frac) = signal.curtail_frac {
            t = t.min(c * frac);
        }
        if signal.price_per_mwh >= self.config.price_threshold {
            t = t.min(c * self.config.price_target_frac);
        }
        let under = (NOMINAL_FREQUENCY_HZ - self.config.freq_deadband_hz) - signal.frequency_hz;
        if under > 0.0 {
            t = t.min(c * (1.0 - self.config.droop_per_hz * under));
        }
        t.is_finite().then(|| t.max(c * self.config.floor_frac))
    }

    /// Runs one economic cycle: fires the schedule and moves the pushed
    /// contract toward `target + ride_headroom` under the ramp and
    /// deadband rules. `ride_headroom` is the battery power the site
    /// can sustain for one full period above its reserve floor.
    ///
    /// # Panics
    ///
    /// Panics (debug) if called when no cycle is due.
    pub fn cycle(
        &mut self,
        now: SimTime,
        signal: &GridSignal,
        ride_headroom: Power,
    ) -> EconDecision {
        let fired = self.schedule.fire(now);
        debug_assert!(fired, "economic cycle invoked when not due");
        self.cycles += 1;

        let c = self.capacity.as_watts();
        let deadband = self.config.deadband_frac * c;
        let ramp = self.config.ramp_frac * c;
        let prev_target = self.utility_target_w;
        let target = self.target_w(signal);
        self.utility_target_w = target;

        // Quantize headroom to deadband steps (see module docs).
        let headroom = (ride_headroom.as_watts().max(0.0) / deadband).floor() * deadband;
        let desired = target.map(|t| (t + headroom).min(c));

        let cur = self.pushed_w.unwrap_or(c);
        let mut changed = false;
        match desired {
            Some(d) if d < cur => {
                // Containment beats hysteresis: step down, ramp-limited,
                // landing exactly on the desired limit.
                self.pushed_w = Some((cur - ramp).max(d));
                changed = true;
            }
            Some(d) => {
                // Releasing only past the deadband, and only when the
                // *signal* relaxed: a steady or tightening target with
                // recovered battery headroom keeps the pushed limit in
                // force (see module docs).
                let signal_relaxed = match (prev_target, target) {
                    (Some(p), Some(t)) => t > p,
                    (None, Some(_)) => true,
                    _ => unreachable!("desired is Some only when target is"),
                };
                if signal_relaxed && d - cur >= deadband {
                    self.pushed_w = Some((cur + ramp).min(d));
                    changed = true;
                }
            }
            None => {
                // Signal cleared: ramp back up, then drop the contract.
                if self.pushed_w.is_some() {
                    let next = cur + ramp;
                    self.pushed_w = (next < c).then_some(next);
                    changed = true;
                }
            }
        }
        if changed {
            self.limit_changes += 1;
        }
        EconDecision {
            contract: self.pushed(),
            changed,
            utility_target: self.utility_target(),
        }
    }

    /// Captures the controller's dynamic state.
    pub fn state(&self) -> EconControllerState {
        EconControllerState {
            schedule: self.schedule,
            pushed_w: self.pushed_w,
            utility_target_w: self.utility_target_w,
            cycles: self.cycles,
            limit_changes: self.limit_changes,
        }
    }

    /// Restores dynamic state captured by [`EconController::state`].
    ///
    /// # Errors
    ///
    /// Rejects a schedule whose period disagrees with this controller's
    /// configuration.
    pub fn restore(&mut self, state: &EconControllerState) -> Result<(), SnapError> {
        if state.schedule.period() != self.config.period {
            return Err(SnapError::Corrupt(format!(
                "economic schedule period {:?} in snapshot, {:?} configured",
                state.schedule.period(),
                self.config.period
            )));
        }
        self.schedule = state.schedule;
        self.pushed_w = state.pushed_w;
        self.utility_target_w = state.utility_target_w;
        self.cycles = state.cycles;
        self.limit_changes = state.limit_changes;
        Ok(())
    }
}

/// Snapshot of an [`EconController`]'s dynamic state.
#[derive(Debug, Clone, PartialEq)]
pub struct EconControllerState {
    /// The cycle schedule (period, phase, next fire).
    pub schedule: CycleSchedule,
    /// Pushed site contract (watts), if any.
    pub pushed_w: Option<f64>,
    /// Last derived utility target (watts), if any.
    pub utility_target_w: Option<f64>,
    /// Cycles run.
    pub cycles: u64,
    /// Contract changes pushed.
    pub limit_changes: u64,
}

fn put_opt_f64(w: &mut SnapWriter, v: Option<f64>) {
    match v {
        Some(x) => {
            w.put_u8(1);
            w.put_f64(x);
        }
        None => w.put_u8(0),
    }
}

fn get_opt_f64(r: &mut SnapReader<'_>) -> Result<Option<f64>, SnapError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.get_f64()?)),
        other => Err(SnapError::Corrupt(format!("bad option tag {other}"))),
    }
}

impl Snapshot for EconControllerState {
    const KIND: &'static str = "dyngrid.EconControllerState";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        self.schedule.encode_body(w);
        put_opt_f64(w, self.pushed_w);
        put_opt_f64(w, self.utility_target_w);
        w.put_u64(self.cycles);
        w.put_u64(self.limit_changes);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(EconControllerState {
            schedule: CycleSchedule::decode_body(r)?,
            pushed_w: get_opt_f64(r)?,
            utility_target_w: get_opt_f64(r)?,
            cycles: r.get_u64()?,
            limit_changes: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::GridScenario;

    const MW: f64 = 1_000_000.0;

    fn controller() -> EconController {
        EconController::new(EconConfig::default(), Power::from_watts(MW))
    }

    fn curtailed(frac: f64) -> GridSignal {
        GridSignal {
            curtail_frac: Some(frac),
            ..GridSignal::nominal()
        }
    }

    #[test]
    fn reaches_curtail_target_within_two_cycles() {
        let mut ec = controller();
        let sig = curtailed(0.2); // below floor — clamps to 0.5 C
        let d1 = ec.cycle(SimTime::ZERO, &sig, Power::ZERO);
        assert!(d1.changed);
        assert_eq!(d1.contract.unwrap().as_watts(), 0.5 * MW);
        let d2 = ec.cycle(SimTime::from_secs(60), &sig, Power::ZERO);
        assert!(!d2.changed, "already at target, deadband holds");
        assert_eq!(ec.limit_changes(), 1);
    }

    #[test]
    fn deep_target_takes_the_ramp_staircase() {
        let mut ec = EconController::new(
            EconConfig {
                ramp_frac: 0.15,
                floor_frac: 0.3,
                ..EconConfig::default()
            },
            Power::from_watts(MW),
        );
        let sig = curtailed(0.7);
        let d1 = ec.cycle(SimTime::ZERO, &sig, Power::ZERO);
        assert_eq!(d1.contract.unwrap().as_watts(), 0.85 * MW);
        let d2 = ec.cycle(SimTime::from_secs(60), &sig, Power::ZERO);
        assert_eq!(d2.contract.unwrap().as_watts(), 0.70 * MW);
        assert_eq!(ec.limit_changes(), 2);
    }

    #[test]
    fn battery_headroom_widens_the_contract_and_quantizes() {
        let mut ec = controller();
        let sig = curtailed(0.8);
        // 123.4 kW of headroom quantizes down to 120 kW (12 deadbands).
        let d = ec.cycle(SimTime::ZERO, &sig, Power::from_watts(123_400.0));
        assert_eq!(d.contract.unwrap().as_watts(), 0.8 * MW + 120_000.0);
        assert_eq!(d.utility_target.unwrap().as_watts(), 0.8 * MW);
        // Headroom shrinking by less than a deadband changes nothing.
        let d2 = ec.cycle(SimTime::from_secs(60), &sig, Power::from_watts(121_000.0));
        assert!(!d2.changed);
        // A full step lost retargets once.
        let d3 = ec.cycle(SimTime::from_secs(120), &sig, Power::from_watts(70_000.0));
        assert!(d3.changed);
        assert_eq!(d3.contract.unwrap().as_watts(), 0.8 * MW + 70_000.0);
    }

    #[test]
    fn recovered_headroom_never_loosens_an_in_force_contract() {
        let mut ec = controller();
        let sig = curtailed(0.8);
        // Push in with no battery help: contract lands on the target.
        let d1 = ec.cycle(SimTime::ZERO, &sig, Power::ZERO);
        assert_eq!(d1.contract.unwrap().as_watts(), 0.8 * MW);
        // Capping below the contract makes the banks look healthy
        // again — that must NOT release the limit.
        let d2 = ec.cycle(SimTime::from_secs(60), &sig, Power::from_watts(100_000.0));
        assert!(!d2.changed, "headroom recovery loosened the contract");
        assert_eq!(ec.pushed().unwrap().as_watts(), 0.8 * MW);
        // The signal itself relaxing does release, headroom and all.
        let d3 = ec.cycle(
            SimTime::from_secs(120),
            &curtailed(0.85),
            Power::from_watts(100_000.0),
        );
        assert!(d3.changed);
        assert_eq!(d3.contract.unwrap().as_watts(), 0.85 * MW + 100_000.0);
    }

    #[test]
    fn clearing_ramps_up_then_drops_the_contract() {
        let mut ec = controller();
        ec.cycle(SimTime::ZERO, &curtailed(0.8), Power::ZERO);
        assert!(ec.pushed().is_some());
        let quiet = GridSignal::nominal();
        let d1 = ec.cycle(SimTime::from_secs(60), &quiet, Power::ZERO);
        assert!(d1.changed);
        assert!(d1.contract.is_none(), "0.8 + 0.5 ramp clears in one cycle");
        let d2 = ec.cycle(SimTime::from_secs(120), &quiet, Power::ZERO);
        assert!(!d2.changed, "cleared controller stays quiet");
    }

    #[test]
    fn price_and_frequency_targets_compose_min() {
        let ec = controller();
        let sig = GridSignal {
            price_per_mwh: 400.0, // -> 0.90 C
            frequency_hz: 59.75,  // 0.20 Hz under deadband -> 0.80 C
            curtail_frac: Some(0.85),
        };
        let t = ec.target_w(&sig).unwrap();
        assert!((t - 0.80 * MW).abs() < 1.0, "droop target {t}");
        let quiet = GridSignal::nominal();
        assert!(ec.target_w(&quiet).is_none());
    }

    #[test]
    fn quiet_scenario_never_changes_anything() {
        let mut ec = controller();
        let scenario = GridScenario::nominal();
        for k in 0..10 {
            let now = SimTime::from_secs(60 * k);
            let d = ec.cycle(now, scenario.signal_at(now), Power::ZERO);
            assert!(!d.changed);
            assert!(d.contract.is_none());
        }
        assert_eq!(ec.limit_changes(), 0);
        assert_eq!(ec.cycles(), 10);
    }

    #[test]
    fn state_round_trips_through_snapshot_bytes() {
        let mut ec = controller();
        ec.cycle(SimTime::ZERO, &curtailed(0.8), Power::from_watts(50_000.0));
        let state = ec.state();
        let bytes = state.to_snap_bytes();
        let decoded = EconControllerState::from_snap_bytes(&bytes).unwrap();
        assert_eq!(decoded, state);
        assert_eq!(bytes, decoded.to_snap_bytes());

        let mut other = controller();
        other.restore(&decoded).unwrap();
        assert_eq!(other.pushed(), ec.pushed());
        assert_eq!(other.cycles(), ec.cycles());

        let mut mismatched = EconController::new(
            EconConfig {
                period: SimDuration::from_secs(30),
                ..EconConfig::default()
            },
            Power::from_watts(MW),
        );
        assert!(mismatched.restore(&decoded).is_err());
    }

    #[test]
    fn invalid_configs_are_named() {
        for (cfg, needle) in [
            (
                EconConfig {
                    deadband_frac: 0.0,
                    ..EconConfig::default()
                },
                "deadband",
            ),
            (
                EconConfig {
                    ramp_frac: 0.005,
                    ..EconConfig::default()
                },
                "ramp",
            ),
            (
                EconConfig {
                    floor_frac: 0.95,
                    ..EconConfig::default()
                },
                "floor",
            ),
        ] {
            let err = cfg.validate().unwrap_err();
            assert!(err.contains(needle), "{err}");
        }
    }
}
