//! Grid-interactive demand response for the Dynamo reproduction.
//!
//! Dynamo (ISCA 2016) manages power *inside* the data center against
//! fixed breaker ratings; the utility side of the meter never appears.
//! This crate adds that missing half, following the virtual-power-plant
//! framing (data centers as controllable grid assets on multiple
//! timescales):
//!
//! * [`GridScenario`] — the utility signal as a deterministic piecewise
//!   schedule of price, frequency and curtailment windows, with named
//!   presets (`brownout`, `curtailment-window`, `frequency-excursion`,
//!   `price-spike`) and a text signal-file format;
//! * [`EconController`] — a site-level economic controller on its own
//!   slow [`dcsim::CycleSchedule`] (60 s default) that translates grid
//!   signals into temporary *contractual* limits for the §III-D
//!   hierarchy (`min(physical, contractual)`), with ramp-rate limiting
//!   and an asymmetric deadband so the 3 s / 9 s capping loops below it
//!   never see an oscillating setpoint;
//! * a DCUPS buffering policy: the controller may intentionally ride
//!   site batteries through a short curtailment — the contract it
//!   pushes is the utility target *plus* the battery headroom the banks
//!   can sustain for one period above their outage-reserve floor — and
//!   recharge once the signal clears.
//!
//! The crate is deliberately free of control-plane types: it speaks
//! watts in, watts out. The `dynamo` crate owns the wiring (which MSB
//! gets what share of the site contract, where the DCUPS banks sit).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod econ;
mod signal;

pub use econ::{EconConfig, EconController, EconControllerState, EconDecision};
pub use signal::{GridScenario, GridSegment, GridSignal, NOMINAL_FREQUENCY_HZ, NOMINAL_PRICE};
