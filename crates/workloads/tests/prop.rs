//! Randomized tests for the workload substrate, driven by the
//! deterministic [`SimRng`] stream.

use dcsim::{SimDuration, SimRng, SimTime};
use workloads::{ServiceKind, ServiceWorkload, TrafficEvent, TrafficPattern};

fn random_service(rng: &mut SimRng) -> ServiceKind {
    ServiceKind::all()[rng.next_below(ServiceKind::COUNT as u64) as usize]
}

/// Utilization stays in [0, 1] for any service, seed, traffic level
/// and step size.
#[test]
fn utilization_always_bounded() {
    let mut meta = SimRng::seed_from(0xA_C7E).split("bounded");
    for _ in 0..60 {
        let kind = random_service(&mut meta);
        let seed = meta.next_u64();
        let mult = meta.uniform(0.0, 3.0);
        let dt_ms = 100 + meta.next_below(9900);
        let mut wl = ServiceWorkload::new(kind, SimRng::seed_from(seed));
        let mut t = SimTime::ZERO;
        let dt = SimDuration::from_millis(dt_ms);
        for _ in 0..300 {
            let u = wl.utilization(t, mult, dt);
            assert!((0.0..=1.0).contains(&u), "{kind}: {u}");
            t += dt;
        }
    }
}

/// Two processes with the same seed and inputs produce identical
/// trajectories; different seeds diverge.
#[test]
fn trajectories_deterministic_per_seed() {
    let mut meta = SimRng::seed_from(0xA_C7E).split("determinism");
    for _ in 0..60 {
        let kind = random_service(&mut meta);
        let seed = meta.next_u64();
        let run = |s: u64| {
            let mut wl = ServiceWorkload::new(kind, SimRng::seed_from(s));
            let mut t = SimTime::ZERO;
            (0..50)
                .map(|_| {
                    let u = wl.utilization(t, 1.0, SimDuration::from_secs(1));
                    t += SimDuration::from_secs(1);
                    u
                })
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(seed), run(seed));
        assert_ne!(run(seed), run(seed.wrapping_add(1)));
    }
}

/// The traffic multiplier of any diurnal pattern stays within
/// [min_frac, 1] at all times.
#[test]
fn diurnal_multiplier_bounded() {
    let mut rng = SimRng::seed_from(0xA_C7E).split("diurnal");
    for _ in 0..500 {
        let min_frac = rng.uniform(0.01, 1.0);
        let peak_hour = rng.uniform(0.0, 24.0);
        let t_secs = rng.next_below(7 * 24 * 3600);
        let p = TrafficPattern::diurnal_with(min_frac, peak_hour);
        let m = p.multiplier(SimTime::from_secs(t_secs));
        assert!(m >= min_frac - 1e-9 && m <= 1.0 + 1e-9, "multiplier {m}");
    }
}

/// Event multipliers are exactly 1 outside their window and within
/// [min(1, factor), max(1, factor)] inside it.
#[test]
fn event_multiplier_bounded() {
    let mut rng = SimRng::seed_from(0xA_C7E).split("event");
    for _ in 0..500 {
        let start = rng.next_below(10_000);
        let len = 1 + rng.next_below(9_999);
        let factor = rng.uniform(0.05, 4.0);
        let ramp = rng.next_below(300);
        let t = rng.next_below(30_000);
        let e = TrafficEvent::new(
            SimTime::from_secs(start),
            SimTime::from_secs(start + len),
            factor,
        )
        .with_ramp(SimDuration::from_secs(ramp));
        let m = e.multiplier(SimTime::from_secs(t));
        if t < start || t >= start + len {
            assert_eq!(m, 1.0);
        } else {
            let lo = factor.min(1.0) - 1e-9;
            let hi = factor.max(1.0) + 1e-9;
            assert!(m >= lo && m <= hi, "mid-event multiplier {m}");
        }
    }
}

/// Composition: a pattern's multiplier with one event equals base ×
/// event at every instant.
#[test]
fn pattern_event_composition() {
    let mut rng = SimRng::seed_from(0xA_C7E).split("composition");
    for _ in 0..500 {
        let level = rng.uniform(0.1, 2.0);
        let start = rng.next_below(1000);
        let len = 1 + rng.next_below(999);
        let factor = rng.uniform(0.1, 3.0);
        let t = rng.next_below(3000);
        let e = TrafficEvent::new(
            SimTime::from_secs(start),
            SimTime::from_secs(start + len),
            factor,
        );
        let p = TrafficPattern::flat(level).with_event(e.clone());
        let at = SimTime::from_secs(t);
        assert!((p.multiplier(at) - level * e.multiplier(at)).abs() < 1e-12);
    }
}

/// Service priorities and SLA floors are internally consistent: a
/// higher-priority service never has a *lower* floor than hadoop
/// (the designated batch victim).
#[test]
fn sla_floors_consistent() {
    for kind in ServiceKind::all() {
        assert!(kind.sla_min_cap().as_watts() > 0.0);
        if kind.priority() > ServiceKind::Hadoop.priority() {
            assert!(kind.sla_min_cap() >= ServiceKind::Hadoop.sla_min_cap());
        }
    }
}
