//! Property-based tests for the workload substrate.

use dcsim::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;
use workloads::{ServiceKind, ServiceWorkload, TrafficEvent, TrafficPattern};

fn any_service() -> impl Strategy<Value = ServiceKind> {
    prop::sample::select(ServiceKind::all().to_vec())
}

proptest! {
    /// Utilization stays in [0, 1] for any service, seed, traffic level
    /// and step size.
    #[test]
    fn utilization_always_bounded(
        kind in any_service(),
        seed in any::<u64>(),
        mult in 0.0f64..3.0,
        dt_ms in 100u64..10_000,
    ) {
        let mut wl = ServiceWorkload::new(kind, SimRng::seed_from(seed));
        let mut t = SimTime::ZERO;
        let dt = SimDuration::from_millis(dt_ms);
        for _ in 0..300 {
            let u = wl.utilization(t, mult, dt);
            prop_assert!((0.0..=1.0).contains(&u), "{kind}: {u}");
            t += dt;
        }
    }

    /// Two processes with the same seed and inputs produce identical
    /// trajectories; different seeds diverge.
    #[test]
    fn trajectories_deterministic_per_seed(kind in any_service(), seed in any::<u64>()) {
        let run = |s: u64| {
            let mut wl = ServiceWorkload::new(kind, SimRng::seed_from(s));
            let mut t = SimTime::ZERO;
            (0..50)
                .map(|_| {
                    let u = wl.utilization(t, 1.0, SimDuration::from_secs(1));
                    t += SimDuration::from_secs(1);
                    u
                })
                .collect::<Vec<f64>>()
        };
        prop_assert_eq!(run(seed), run(seed));
        let other = run(seed.wrapping_add(1));
        prop_assert_ne!(run(seed), other);
    }

    /// The traffic multiplier of any diurnal pattern stays within
    /// [min_frac, 1] at all times.
    #[test]
    fn diurnal_multiplier_bounded(
        min_frac in 0.01f64..=1.0,
        peak_hour in 0.0f64..24.0,
        t_secs in 0u64..(7 * 24 * 3600),
    ) {
        let p = TrafficPattern::diurnal_with(min_frac, peak_hour);
        let m = p.multiplier(SimTime::from_secs(t_secs));
        prop_assert!(m >= min_frac - 1e-9 && m <= 1.0 + 1e-9, "multiplier {m}");
    }

    /// Event multipliers are exactly 1 outside their window and within
    /// [min(1, factor), max(1, factor)] inside it.
    #[test]
    fn event_multiplier_bounded(
        start in 0u64..10_000,
        len in 1u64..10_000,
        factor in 0.05f64..4.0,
        ramp in 0u64..300,
        t in 0u64..30_000,
    ) {
        let e = TrafficEvent::new(
            SimTime::from_secs(start),
            SimTime::from_secs(start + len),
            factor,
        )
        .with_ramp(SimDuration::from_secs(ramp));
        let m = e.multiplier(SimTime::from_secs(t));
        if t < start || t >= start + len {
            prop_assert_eq!(m, 1.0);
        } else {
            let lo = factor.min(1.0) - 1e-9;
            let hi = factor.max(1.0) + 1e-9;
            prop_assert!(m >= lo && m <= hi, "mid-event multiplier {m}");
        }
    }

    /// Composition: a pattern's multiplier with one event equals base ×
    /// event at every instant.
    #[test]
    fn pattern_event_composition(
        level in 0.1f64..2.0,
        start in 0u64..1000,
        len in 1u64..1000,
        factor in 0.1f64..3.0,
        t in 0u64..3000,
    ) {
        let e = TrafficEvent::new(SimTime::from_secs(start), SimTime::from_secs(start + len), factor);
        let p = TrafficPattern::flat(level).with_event(e.clone());
        let at = SimTime::from_secs(t);
        prop_assert!((p.multiplier(at) - level * e.multiplier(at)).abs() < 1e-12);
    }

    /// Service priorities and SLA floors are internally consistent: a
    /// higher-priority service never has a *lower* floor than hadoop
    /// (the designated batch victim).
    #[test]
    fn sla_floors_consistent(kind in any_service()) {
        prop_assert!(kind.sla_min_cap().as_watts() > 0.0);
        if kind.priority() > ServiceKind::Hadoop.priority() {
            prop_assert!(kind.sla_min_cap() >= ServiceKind::Hadoop.sla_min_cap());
        }
    }
}
