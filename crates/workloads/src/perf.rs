//! Cluster-level performance accounting.
//!
//! The paper's benefit claims are performance claims: Hadoop map-reduce
//! time (+13%), search QPS (+40%), web latency under capping
//! (Figure 13). This module aggregates per-server performance factors
//! (1.0 = turbo-off, uncapped) into the cluster metrics those claims
//! are stated in: mean throughput, mean and tail latency inflation.

use powerstats::{Cdf, Summary};
use serde::{Deserialize, Serialize};

/// Accumulates per-server performance factors over a run.
///
/// Feed one batch per sampling instant via [`ClusterPerf::record`];
/// read cluster metrics at the end.
///
/// # Example
///
/// ```
/// use workloads::ClusterPerf;
///
/// let mut perf = ClusterPerf::new();
/// // Two servers at full speed, one capped to 80%.
/// perf.record([1.0, 1.0, 0.8]);
/// assert!((perf.mean_throughput() - 0.933).abs() < 1e-3);
/// assert!(perf.mean_latency_inflation() > 1.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterPerf {
    throughput: Summary,
    /// Per-observation latency inflation (1/perf) samples, for tails.
    latency_samples: Vec<f64>,
}

impl ClusterPerf {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        ClusterPerf {
            throughput: Summary::new(),
            latency_samples: Vec::new(),
        }
    }

    /// Records one sampling instant's per-server performance factors.
    /// Dead servers (factor 0) count as zero throughput but are excluded
    /// from latency (they serve nothing).
    ///
    /// # Panics
    ///
    /// Panics if any factor is negative or not finite.
    pub fn record<I: IntoIterator<Item = f64>>(&mut self, factors: I) {
        for f in factors {
            assert!(f.is_finite() && f >= 0.0, "invalid performance factor {f}");
            self.throughput.record(f);
            if f > 0.0 {
                self.latency_samples.push(1.0 / f);
            }
        }
    }

    /// Observations recorded.
    pub fn observations(&self) -> u64 {
        self.throughput.count()
    }

    /// Mean throughput factor across all observations (QPS / job
    /// progress relative to the turbo-off uncapped baseline).
    pub fn mean_throughput(&self) -> f64 {
        self.throughput.mean()
    }

    /// Mean latency inflation (1.0 = baseline; 1.10 = 10% slower).
    pub fn mean_latency_inflation(&self) -> f64 {
        if self.latency_samples.is_empty() {
            return f64::NAN;
        }
        self.latency_samples.iter().sum::<f64>() / self.latency_samples.len() as f64
    }

    /// Tail latency inflation at quantile `q` (e.g. 0.99).
    ///
    /// # Panics
    ///
    /// Panics if no observations were recorded or `q` is outside [0, 1].
    pub fn latency_inflation_quantile(&self, q: f64) -> f64 {
        Cdf::from_samples(self.latency_samples.clone()).quantile(q)
    }

    /// Relative throughput gain versus a baseline run (`0.13` = +13%).
    ///
    /// # Panics
    ///
    /// Panics if either accumulator is empty.
    pub fn throughput_gain_over(&self, baseline: &ClusterPerf) -> f64 {
        let base = baseline.mean_throughput();
        assert!(base > 0.0, "baseline throughput must be positive");
        self.mean_throughput() / base - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_is_nan() {
        let p = ClusterPerf::new();
        assert_eq!(p.observations(), 0);
        assert!(p.mean_throughput().is_nan());
        assert!(p.mean_latency_inflation().is_nan());
    }

    #[test]
    fn uniform_fleet_is_exact() {
        let mut p = ClusterPerf::new();
        p.record(vec![1.13; 10]);
        assert!((p.mean_throughput() - 1.13).abs() < 1e-12);
        assert!((p.mean_latency_inflation() - 1.0 / 1.13).abs() < 1e-12);
    }

    #[test]
    fn dead_servers_hurt_throughput_not_latency() {
        let mut p = ClusterPerf::new();
        p.record([1.0, 1.0, 0.0, 0.0]);
        assert_eq!(p.mean_throughput(), 0.5);
        assert_eq!(p.mean_latency_inflation(), 1.0);
    }

    #[test]
    fn tail_latency_catches_the_capped_minority() {
        let mut p = ClusterPerf::new();
        // 99 healthy servers and one throttled to half speed.
        p.record(std::iter::repeat_n(1.0, 99).chain([0.5]));
        assert!(p.mean_latency_inflation() < 1.02);
        assert!(p.latency_inflation_quantile(0.995) > 1.5);
    }

    #[test]
    fn gain_over_baseline_matches_the_paper_math() {
        let mut base = ClusterPerf::new();
        base.record(vec![1.0; 50]);
        let mut turbo = ClusterPerf::new();
        turbo.record(vec![1.13; 50]);
        assert!((turbo.throughput_gain_over(&base) - 0.13).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid performance factor")]
    fn negative_factor_panics() {
        ClusterPerf::new().record([-0.1]);
    }

    #[test]
    fn accumulates_across_instants() {
        let mut p = ClusterPerf::new();
        for _ in 0..10 {
            p.record([1.0, 0.9]);
        }
        assert_eq!(p.observations(), 20);
        assert!((p.mean_throughput() - 0.95).abs() < 1e-12);
    }
}
