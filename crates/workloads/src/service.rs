//! Per-service utilization processes (Figure 6 of the paper).

use dcsim::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use dcsim::{SimDuration, SimRng, SimTime};
use powerinfra::Power;
use serde::{Deserialize, Serialize};

/// The six Facebook services whose power behaviour the paper
/// characterizes (§II-B, Figure 6), plus their capping priority metadata
/// (§III-C3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceKind {
    /// Front-end web servers. Strongly diurnal, high short-term
    /// variation (p50 37.2%, p99 62.2% in Figure 6).
    Web,
    /// Cache servers (TAO-style). Smooth (p50 9.2%, p99 26.2%), high
    /// priority: "a small number of cache servers may affect a large
    /// number of users".
    Cache,
    /// Hadoop/map-reduce batch. Steady high utilization with phase
    /// changes (p50 11.1%, p99 30.8%), lowest capping priority.
    Hadoop,
    /// MySQL database tier (p50 15.1%, p99 45.8%).
    Database,
    /// News feed ranking/aggregation. The most variable service
    /// (p50 42.4%, p99 78.1%).
    NewsFeed,
    /// f4 warm BLOB/photo storage. Near-idle with rare huge bursts —
    /// lowest median, heaviest tail (p50 5.9%, p99 87.7%).
    F4Storage,
}

impl ServiceKind {
    /// Number of service kinds — the length of [`ServiceKind::all`].
    pub const COUNT: usize = 6;

    /// All services in a stable order.
    pub fn all() -> [ServiceKind; ServiceKind::COUNT] {
        [
            ServiceKind::Web,
            ServiceKind::Cache,
            ServiceKind::Hadoop,
            ServiceKind::Database,
            ServiceKind::NewsFeed,
            ServiceKind::F4Storage,
        ]
    }

    /// Dense index of this service, consistent with the ordering of
    /// [`ServiceKind::all`]. Lets hot paths use fixed arrays instead of
    /// hash maps when storing per-service values.
    pub fn index(self) -> usize {
        match self {
            ServiceKind::Web => 0,
            ServiceKind::Cache => 1,
            ServiceKind::Hadoop => 2,
            ServiceKind::Database => 3,
            ServiceKind::NewsFeed => 4,
            ServiceKind::F4Storage => 5,
        }
    }

    /// Short lowercase label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            ServiceKind::Web => "webserver",
            ServiceKind::Cache => "cache",
            ServiceKind::Hadoop => "hadoop",
            ServiceKind::Database => "database",
            ServiceKind::NewsFeed => "newsfeed",
            ServiceKind::F4Storage => "f4storage",
        }
    }

    /// Capping priority group; higher numbers are capped *later*
    /// (§III-C3: cut power from the lowest priority group first).
    pub fn priority(self) -> u8 {
        match self {
            ServiceKind::Hadoop => 0,
            ServiceKind::Web | ServiceKind::NewsFeed => 1,
            ServiceKind::Database | ServiceKind::F4Storage => 2,
            ServiceKind::Cache => 3,
        }
    }

    /// The service-level agreement on the lowest allowable per-server
    /// power cap (§III-C3: "each priority group has its own SLA in terms
    /// of the lowest allowable power cap"). Figure 16 shows a 210 W
    /// floor for the web/feed group.
    pub fn sla_min_cap(self) -> Power {
        let watts = match self {
            ServiceKind::Hadoop => 140.0,
            ServiceKind::Web | ServiceKind::NewsFeed => 210.0,
            ServiceKind::Database => 250.0,
            ServiceKind::F4Storage => 220.0,
            ServiceKind::Cache => 260.0,
        };
        Power::from_watts(watts)
    }

    /// The tuned stochastic-process parameters for this service.
    pub fn params(self) -> ServiceParams {
        // base_util: nominal peak-hour utilization.
        // sigma: stationary std-dev of the mean-reverting component.
        // theta: mean-reversion rate (1/s).
        // burst_rate: Poisson burst arrivals (1/s).
        // burst span: additive utilization during a burst.
        // burst_dur: mean burst duration (s).
        // sensitivity: how strongly target follows cluster traffic.
        match self {
            ServiceKind::Web => ServiceParams {
                base_util: 0.55,
                sigma: 0.105,
                theta: 0.15,
                burst_rate: 1.0 / 600.0,
                burst_min: 0.15,
                burst_max: 0.30,
                burst_dur_secs: 15.0,
                traffic_sensitivity: 1.0,
            },
            ServiceKind::Cache => ServiceParams {
                base_util: 0.40,
                sigma: 0.020,
                theta: 0.20,
                burst_rate: 1.0 / 900.0,
                burst_min: 0.10,
                burst_max: 0.20,
                burst_dur_secs: 10.0,
                traffic_sensitivity: 0.7,
            },
            ServiceKind::Hadoop => ServiceParams {
                base_util: 0.70,
                sigma: 0.050,
                theta: 0.10,
                burst_rate: 1.0 / 600.0,
                burst_min: 0.10,
                burst_max: 0.25,
                burst_dur_secs: 30.0,
                // Batch load follows job-submission waves at about half
                // the elasticity of user-facing traffic.
                traffic_sensitivity: 0.5,
            },
            ServiceKind::Database => ServiceParams {
                base_util: 0.45,
                sigma: 0.043,
                theta: 0.15,
                burst_rate: 1.0 / 500.0,
                burst_min: 0.20,
                burst_max: 0.35,
                burst_dur_secs: 20.0,
                traffic_sensitivity: 0.5,
            },
            ServiceKind::NewsFeed => ServiceParams {
                base_util: 0.50,
                sigma: 0.120,
                theta: 0.15,
                burst_rate: 1.0 / 400.0,
                burst_min: 0.20,
                burst_max: 0.40,
                burst_dur_secs: 20.0,
                traffic_sensitivity: 1.0,
            },
            ServiceKind::F4Storage => ServiceParams {
                base_util: 0.18,
                sigma: 0.009,
                theta: 0.20,
                burst_rate: 1.0 / 2000.0,
                burst_min: 0.42,
                burst_max: 0.62,
                burst_dur_secs: 30.0,
                traffic_sensitivity: 0.2,
            },
        }
    }
}

impl std::fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Stochastic-process parameters for one service. See
/// [`ServiceKind::params`] for the calibrated values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceParams {
    /// Nominal peak-hour CPU utilization.
    pub base_util: f64,
    /// Stationary standard deviation of the mean-reverting noise.
    pub sigma: f64,
    /// Mean-reversion rate of the noise (1/s).
    pub theta: f64,
    /// Burst arrival rate (1/s).
    pub burst_rate: f64,
    /// Minimum additive utilization of a burst.
    pub burst_min: f64,
    /// Maximum additive utilization of a burst.
    pub burst_max: f64,
    /// Mean burst duration (seconds, exponentially distributed).
    pub burst_dur_secs: f64,
    /// 0 = ignores cluster traffic, 1 = proportional to it.
    pub traffic_sensitivity: f64,
}

/// Precomputed coefficients of the discretized Ornstein-Uhlenbeck
/// update for one `(params, dt)` pair.
///
/// The per-step `exp` and `sqrt` depend only on the service parameters
/// and the tick length, so hot loops stepping thousands of generators of
/// the same service can compute them once per tick
/// ([`OuCoeffs::for_params`]) and reuse them via
/// [`ServiceWorkload::utilization_with`]. The expressions are identical
/// to the inline ones in [`ServiceWorkload::utilization`], so the two
/// paths are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OuCoeffs {
    /// `exp(-theta * dt)`.
    pub decay: f64,
    /// `sigma * sqrt(1 - decay^2)` — the per-step innovation std-dev.
    pub innovation: f64,
}

impl OuCoeffs {
    /// Computes the coefficients for one parameter set and tick length.
    pub fn for_params(params: &ServiceParams, dt: SimDuration) -> OuCoeffs {
        let decay = (-params.theta * dt.as_secs_f64()).exp();
        OuCoeffs {
            decay,
            innovation: params.sigma * (1.0 - decay * decay).sqrt(),
        }
    }

    /// Coefficients for a service's calibrated parameters.
    pub fn for_kind(kind: ServiceKind, dt: SimDuration) -> OuCoeffs {
        OuCoeffs::for_params(&kind.params(), dt)
    }
}

/// The utilization process for a single server running one service.
///
/// A mean-reverting (Ornstein-Uhlenbeck) component models request-level
/// noise; a Poisson process of additive bursts models the heavy tail
/// (garbage collection, compactions, batch phase changes, storage
/// scans); and the target level follows the cluster's
/// [`crate::TrafficPattern`] according to the service's sensitivity.
///
/// # Example
///
/// ```
/// use dcsim::{SimDuration, SimRng, SimTime};
/// use workloads::{ServiceKind, ServiceWorkload};
///
/// let mut wl = ServiceWorkload::new(ServiceKind::Cache, SimRng::seed_from(3));
/// let u = wl.utilization(SimTime::ZERO, 1.0, SimDuration::from_secs(1));
/// assert!((0.0..=1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceWorkload {
    kind: ServiceKind,
    params: ServiceParams,
    /// Mean-reverting noise state.
    noise: f64,
    /// Active burst, if any: (expires_at, additional_utilization).
    burst: Option<(SimTime, f64)>,
    rng: SimRng,
}

impl ServiceWorkload {
    /// Creates the process with its own RNG stream.
    pub fn new(kind: ServiceKind, rng: SimRng) -> Self {
        ServiceWorkload {
            kind,
            params: kind.params(),
            noise: 0.0,
            burst: None,
            rng,
        }
    }

    /// Creates the process with custom parameters (ablations, tests).
    pub fn with_params(kind: ServiceKind, params: ServiceParams, rng: SimRng) -> Self {
        ServiceWorkload {
            kind,
            params,
            noise: 0.0,
            burst: None,
            rng,
        }
    }

    /// The service this process models.
    pub fn kind(&self) -> ServiceKind {
        self.kind
    }

    /// Advances the process by `dt` and returns the demanded CPU
    /// utilization in `[0.02, 1.0]` given the cluster traffic
    /// multiplier at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `traffic_mult` is negative or not finite, or `dt` is
    /// zero.
    pub fn utilization(&mut self, now: SimTime, traffic_mult: f64, dt: SimDuration) -> f64 {
        // Discretized OU step; sigma is the *stationary* std-dev, so the
        // per-step innovation is sigma * sqrt(1 - exp(-2 theta dt)).
        let ou = OuCoeffs::for_params(&self.params, dt);
        self.utilization_with(now, traffic_mult, dt, ou)
    }

    /// [`ServiceWorkload::utilization`] with the OU coefficients supplied
    /// by the caller, so batch steppers can hoist the per-tick `exp` /
    /// `sqrt` out of their inner loop. `ou` must equal
    /// [`OuCoeffs::for_params`] of this process's parameters and `dt` for
    /// the result to match `utilization` bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `traffic_mult` is negative or not finite, or `dt` is
    /// zero.
    pub fn utilization_with(
        &mut self,
        now: SimTime,
        traffic_mult: f64,
        dt: SimDuration,
        ou: OuCoeffs,
    ) -> f64 {
        assert!(
            traffic_mult.is_finite() && traffic_mult >= 0.0,
            "invalid traffic multiplier {traffic_mult}"
        );
        assert!(!dt.is_zero(), "dt must be positive");
        let p = &self.params;
        let dt_s = dt.as_secs_f64();

        self.noise = self.noise * ou.decay + self.rng.normal(0.0, ou.innovation);

        // Burst lifecycle.
        if let Some((until, _)) = self.burst {
            if now >= until {
                self.burst = None;
            }
        }
        if self.burst.is_none() && self.rng.chance(p.burst_rate * dt_s) {
            let dur = self.rng.exponential(1.0 / p.burst_dur_secs);
            let add = self.rng.uniform(p.burst_min, p.burst_max);
            self.burst = Some((now + SimDuration::from_secs_f64(dur.max(1.0)), add));
        }

        let target = p.base_util * (1.0 + p.traffic_sensitivity * (traffic_mult - 1.0));
        let burst_add = self.burst.map_or(0.0, |(_, a)| a);
        (target + self.noise + burst_add).clamp(0.02, 1.0)
    }

    /// True while a burst is in flight (exposed for tests/telemetry).
    pub fn in_burst(&self) -> bool {
        self.burst.is_some()
    }

    /// Captures the full process state (parameters included, so custom
    /// `with_params` processes restore exactly).
    pub fn state(&self) -> WorkloadState {
        WorkloadState {
            kind: self.kind.index(),
            params: self.params,
            noise: self.noise,
            burst: self.burst,
            rng: self.rng.clone(),
        }
    }

    /// Restores state captured by [`ServiceWorkload::state`].
    ///
    /// Fails with [`SnapError::Corrupt`] if the state belongs to a
    /// different service kind.
    pub fn restore(&mut self, state: &WorkloadState) -> Result<(), SnapError> {
        if state.kind != self.kind.index() {
            return Err(SnapError::Corrupt(format!(
                "workload state for service kind {} restored onto {}",
                state.kind,
                self.kind.index()
            )));
        }
        self.params = state.params;
        self.noise = state.noise;
        self.burst = state.burst;
        self.rng = state.rng.clone();
        Ok(())
    }
}

/// The dynamic state of one [`ServiceWorkload`]. Implements [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadState {
    /// Service kind index ([`ServiceKind::index`]).
    pub kind: usize,
    /// Parameters in effect (may differ from the kind's defaults).
    pub params: ServiceParams,
    /// Mean-reverting noise state.
    pub noise: f64,
    /// Active burst, if any.
    pub burst: Option<(SimTime, f64)>,
    /// The process's RNG stream.
    pub rng: SimRng,
}

impl Snapshot for WorkloadState {
    const KIND: &'static str = "workloads.WorkloadState";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        w.put_u64(self.kind as u64);
        w.put_f64(self.params.base_util);
        w.put_f64(self.params.sigma);
        w.put_f64(self.params.theta);
        w.put_f64(self.params.burst_rate);
        w.put_f64(self.params.burst_min);
        w.put_f64(self.params.burst_max);
        w.put_f64(self.params.burst_dur_secs);
        w.put_f64(self.params.traffic_sensitivity);
        w.put_f64(self.noise);
        match self.burst {
            Some((until, add)) => {
                w.put_bool(true);
                w.put_u64(until.as_millis());
                w.put_f64(add);
            }
            None => w.put_bool(false),
        }
        self.rng.encode_body(w);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let kind = r.get_u64()? as usize;
        let params = ServiceParams {
            base_util: r.get_f64()?,
            sigma: r.get_f64()?,
            theta: r.get_f64()?,
            burst_rate: r.get_f64()?,
            burst_min: r.get_f64()?,
            burst_max: r.get_f64()?,
            burst_dur_secs: r.get_f64()?,
            traffic_sensitivity: r.get_f64()?,
        };
        let noise = r.get_f64()?;
        let burst = if r.get_bool()? {
            let until = SimTime::from_millis(r.get_u64()?);
            let add = r.get_f64()?;
            Some((until, add))
        } else {
            None
        };
        Ok(WorkloadState {
            kind,
            params,
            noise,
            burst,
            rng: SimRng::decode_body(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::SimDuration;
    use powerstats::{sliding_variation, Cdf, Trace};
    use serverpower::ServerGeneration;

    #[test]
    fn priorities_match_paper_ordering() {
        // Cache must outrank web and news feed (§III-C3); hadoop is the
        // natural batch victim.
        assert!(ServiceKind::Cache.priority() > ServiceKind::Web.priority());
        assert!(ServiceKind::Cache.priority() > ServiceKind::NewsFeed.priority());
        assert_eq!(
            ServiceKind::Web.priority(),
            ServiceKind::NewsFeed.priority()
        );
        assert!(ServiceKind::Hadoop.priority() < ServiceKind::Web.priority());
    }

    #[test]
    fn utilization_stays_in_bounds() {
        for kind in ServiceKind::all() {
            let mut wl = ServiceWorkload::new(kind, SimRng::seed_from(17));
            let mut t = SimTime::ZERO;
            for _ in 0..5000 {
                let u = wl.utilization(t, 1.0, SimDuration::from_secs(1));
                assert!((0.0..=1.0).contains(&u), "{kind}: {u}");
                t += SimDuration::from_secs(1);
            }
        }
    }

    #[test]
    fn same_seed_is_deterministic() {
        let run = || {
            let mut wl = ServiceWorkload::new(ServiceKind::Web, SimRng::seed_from(5));
            let mut t = SimTime::ZERO;
            (0..100)
                .map(|_| {
                    let u = wl.utilization(t, 1.0, SimDuration::from_secs(1));
                    t += SimDuration::from_secs(1);
                    u
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn traffic_sensitivity_scales_target() {
        // Web follows traffic; hadoop ignores it.
        let mean_util = |kind: ServiceKind, mult: f64| {
            let mut wl = ServiceWorkload::new(kind, SimRng::seed_from(23));
            let mut t = SimTime::ZERO;
            let mut acc = 0.0;
            let n = 3000;
            for _ in 0..n {
                acc += wl.utilization(t, mult, SimDuration::from_secs(1));
                t += SimDuration::from_secs(1);
            }
            acc / n as f64
        };
        let web_low = mean_util(ServiceKind::Web, 0.6);
        let web_high = mean_util(ServiceKind::Web, 1.3);
        assert!(web_high > web_low + 0.2, "web {web_low} -> {web_high}");
        // Hadoop follows job waves but far less elastically than web.
        let hadoop_low = mean_util(ServiceKind::Hadoop, 0.6);
        let hadoop_high = mean_util(ServiceKind::Hadoop, 1.3);
        assert!(hadoop_high - hadoop_low < (web_high - web_low) * 0.75);
    }

    /// Runs `n` servers of a service for `hours` and returns the pooled
    /// 60 s power-variation samples, normalized to per-server peak-hour
    /// mean power — the Figure 6 methodology.
    fn variation_samples(kind: ServiceKind, n: usize, hours: u64, seed: u64) -> Vec<f64> {
        let curve = ServerGeneration::Haswell2015.power_curve();
        let mut root = SimRng::seed_from(seed);
        let mut all = Vec::new();
        for i in 0..n {
            let mut wl = ServiceWorkload::new(kind, root.split_index(i as u64));
            let mut t = SimTime::ZERO;
            let mut trace = Trace::empty(SimDuration::from_secs(3));
            for _ in 0..(hours * 1200) {
                let u = wl.utilization(t, 1.0, SimDuration::from_secs(3));
                trace.push(curve.power_at(u).as_watts());
                t += SimDuration::from_secs(3);
            }
            let norm = trace.peak_mean(0.3);
            for v in sliding_variation(&trace, SimDuration::from_secs(60)) {
                all.push(v / norm * 100.0);
            }
        }
        all
    }

    #[test]
    fn figure6_service_ordering_holds() {
        // The published p50 ordering:
        //   f4 (5.9) < cache (9.2) < hadoop (11.1) < database (15.1)
        //   < webserver (37.2) < newsfeed (42.4)
        // and f4 has the heaviest p99 tail (87.7).
        let services = [
            ServiceKind::F4Storage,
            ServiceKind::Cache,
            ServiceKind::Hadoop,
            ServiceKind::Database,
            ServiceKind::Web,
            ServiceKind::NewsFeed,
        ];
        let cdfs: Vec<Cdf> = services
            .iter()
            .map(|&k| Cdf::from_samples(variation_samples(k, 6, 2, 101)))
            .collect();
        let p50s: Vec<f64> = cdfs.iter().map(|c| c.median()).collect();
        for (i, w) in p50s.windows(2).enumerate() {
            assert!(
                w[0] < w[1],
                "p50 ordering broken between {} ({:.1}) and {} ({:.1})",
                services[i].label(),
                w[0],
                services[i + 1].label(),
                w[1]
            );
        }
        // f4's p99 dominates every other service's p99.
        let p99s: Vec<f64> = cdfs.iter().map(|c| c.p99()).collect();
        let f4_p99 = p99s[0];
        for (s, &p) in services.iter().zip(&p99s).skip(1) {
            assert!(
                f4_p99 > p,
                "f4 p99 {f4_p99:.1} should exceed {} p99 {p:.1}",
                s.label()
            );
        }
    }

    #[test]
    fn figure6_magnitudes_are_in_band() {
        // Loose absolute bands around the published p50s.
        let check = |kind: ServiceKind, lo: f64, hi: f64| {
            let cdf = Cdf::from_samples(variation_samples(kind, 6, 2, 202));
            let p50 = cdf.median();
            assert!(
                (lo..hi).contains(&p50),
                "{}: p50 {p50:.1} outside [{lo},{hi})",
                kind.label()
            );
        };
        check(ServiceKind::Web, 20.0, 55.0);
        check(ServiceKind::Cache, 4.0, 18.0);
        check(ServiceKind::F4Storage, 2.0, 12.0);
        check(ServiceKind::Hadoop, 5.0, 20.0);
    }

    #[test]
    fn bursts_eventually_fire_and_expire() {
        let mut wl = ServiceWorkload::new(ServiceKind::NewsFeed, SimRng::seed_from(9));
        let mut t = SimTime::ZERO;
        let mut saw_burst = false;
        let mut saw_quiet_after_burst = false;
        for _ in 0..20_000 {
            wl.utilization(t, 1.0, SimDuration::from_secs(1));
            if wl.in_burst() {
                saw_burst = true;
            } else if saw_burst {
                saw_quiet_after_burst = true;
            }
            t += SimDuration::from_secs(1);
        }
        assert!(saw_burst && saw_quiet_after_burst);
    }

    #[test]
    #[should_panic(expected = "invalid traffic multiplier")]
    fn negative_traffic_panics() {
        let mut wl = ServiceWorkload::new(ServiceKind::Web, SimRng::seed_from(1));
        wl.utilization(SimTime::ZERO, -1.0, SimDuration::from_secs(1));
    }

    #[test]
    fn sla_floors_are_positive_and_ordered() {
        for kind in ServiceKind::all() {
            assert!(kind.sla_min_cap().as_watts() > 0.0);
        }
        // The batch tier may be squeezed hardest.
        assert!(ServiceKind::Hadoop.sla_min_cap() < ServiceKind::Cache.sla_min_cap());
    }

    #[test]
    fn labels_match_figure6_legend() {
        assert_eq!(ServiceKind::Web.label(), "webserver");
        assert_eq!(ServiceKind::F4Storage.label(), "f4storage");
        assert_eq!(ServiceKind::all().len(), 6);
    }
}
