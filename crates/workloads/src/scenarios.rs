//! Ready-made traffic scenarios for the paper's operational events.
//!
//! The three case studies in §IV all hinge on a traffic shape: a
//! production load test (Figure 11), a site outage followed by a
//! recovery surge (Figure 12), and day-long batch job waves (Figure 14).
//! These constructors build those shapes so experiments, tests and
//! downstream users share one calibrated definition.

use dcsim::{SimDuration, SimTime};

use crate::traffic::{TrafficEvent, TrafficPattern};

/// Figure 11's scenario: a morning diurnal ramp with a production load
/// test that shifts `intensity`× extra user traffic onto the cluster
/// during `[start, end)`, ramping over ten minutes at each edge.
///
/// `t = 0` corresponds to the diurnal trough (early morning); the
/// pattern climbs toward its peak twelve hours in, like the 8:00 →
/// midday rise in the figure.
///
/// # Panics
///
/// Panics if `end <= start` or `intensity` is not positive.
pub fn production_load_test(start: SimTime, end: SimTime, intensity: f64) -> TrafficPattern {
    TrafficPattern::diurnal_with(0.55, 10.0)
        .with_event(TrafficEvent::new(start, end, intensity).with_ramp(SimDuration::from_mins(10)))
}

/// Figure 12's scenario relative to an outage at `outage_start`: a
/// sharp traffic collapse, two failed partial recoveries that make
/// power oscillate, a successful recovery whose surge overshoots to
/// `surge`× normal (returning users plus simultaneous server
/// restarts), and finally a load shift away from the site.
///
/// # Panics
///
/// Panics if `surge <= 1.0` — a recovery surge must overshoot.
pub fn site_recovery(outage_start: SimTime, surge: f64) -> TrafficPattern {
    assert!(
        surge > 1.0,
        "recovery surge must exceed normal traffic, got {surge}"
    );
    let m = |mins: u64| outage_start + SimDuration::from_mins(mins);
    let ramp = SimDuration::from_secs(60);
    let ev = |a: SimTime, b: SimTime, f: f64| TrafficEvent::new(a, b, f).with_ramp(ramp);
    TrafficPattern::flat(1.0)
        // Collapse.
        .with_event(ev(outage_start, m(10), 0.25))
        // Failed partial recoveries: oscillation.
        .with_event(ev(m(10), m(20), 0.6))
        .with_event(ev(m(20), m(30), 0.35))
        .with_event(ev(m(30), m(40), 0.7))
        .with_event(ev(m(40), m(48), 0.4))
        // Successful recovery: the surge.
        .with_event(ev(m(48), m(95), surge))
        // Traffic shifted to other datacenters.
        .with_event(ev(m(95), m(120), 0.95))
}

/// Figure 14's scenario: batch processing with `waves` distinct
/// job-submission surges of `wave_intensity`× spread evenly across
/// `horizon`, on a quiet base of `base`× nominal load. Each wave lasts
/// half its slot.
///
/// # Panics
///
/// Panics if `waves` is zero, `horizon` is zero, or intensities are not
/// positive.
pub fn batch_job_waves(
    base: f64,
    waves: usize,
    wave_intensity: f64,
    horizon: SimDuration,
) -> TrafficPattern {
    assert!(waves > 0, "need at least one wave");
    assert!(!horizon.is_zero(), "horizon must be positive");
    assert!(
        base > 0.0 && wave_intensity > 0.0,
        "intensities must be positive"
    );
    let mut pattern = TrafficPattern::flat(base);
    let slot = horizon.as_secs() / waves as u64;
    for w in 0..waves {
        let start = SimTime::from_secs(w as u64 * slot + slot / 4);
        let end = start + SimDuration::from_secs(slot / 2);
        pattern = pattern.with_event(
            TrafficEvent::new(start, end, wave_intensity).with_ramp(SimDuration::from_mins(5)),
        );
    }
    pattern
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_test_rises_plateaus_and_falls() {
        let p = production_load_test(SimTime::from_mins(160), SimTime::from_mins(225), 2.5);
        let at = |mins: u64| p.multiplier(SimTime::from_mins(mins));
        assert!(
            at(100) < at(150) * 1.2,
            "pre-test traffic should be diurnal scale"
        );
        assert!(
            at(190) > at(150) * 2.0,
            "plateau should carry the shifted traffic"
        );
        assert!(
            at(240) < at(190) * 0.6,
            "traffic should return after the test"
        );
    }

    #[test]
    fn site_recovery_has_trough_oscillation_and_surge() {
        let t0 = SimTime::from_mins(54);
        let p = site_recovery(t0, 1.5);
        let at = |mins: u64| p.multiplier(SimTime::from_mins(mins));
        assert!(at(40) > 0.95, "normal before the outage");
        assert!(at(59) < 0.4, "collapse during the outage");
        // Oscillation: a rise then another dip.
        assert!(at(69) > at(79), "partial recovery then relapse");
        assert!(at(110) > 1.4, "recovery surge overshoots");
        assert!((at(175) - 1.0).abs() < 0.1, "back to normal at the end");
    }

    #[test]
    #[should_panic(expected = "surge must exceed")]
    fn undershooting_surge_panics() {
        site_recovery(SimTime::ZERO, 0.9);
    }

    #[test]
    fn job_waves_count_and_spacing() {
        let horizon = SimDuration::from_hours(24);
        let p = batch_job_waves(0.85, 7, 1.5, horizon);
        assert_eq!(p.events().len(), 7);
        // Sample the day at 1-minute resolution and count surges above
        // the base.
        let mut above = 0;
        for m in 0..(24 * 60) {
            if p.multiplier(SimTime::from_mins(m)) > 0.85 * 1.3 {
                above += 1;
            }
        }
        // Each wave occupies ~half its slot: about 12 of 24 hours total.
        assert!((500..900).contains(&above), "{above} surge-minutes");
    }

    #[test]
    #[should_panic(expected = "at least one wave")]
    fn zero_waves_panics() {
        batch_job_waves(1.0, 0, 1.5, SimDuration::from_hours(1));
    }
}
