//! Cluster-level traffic: diurnal cycles and operational events.

use dcsim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// An operational event that scales a cluster's traffic during a time
/// window. Events multiply on top of the base pattern; overlapping
/// events compose multiplicatively.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficEvent {
    /// When the event starts.
    pub start: SimTime,
    /// When it ends.
    pub end: SimTime,
    /// Traffic multiplier during the event. `> 1` for load tests and
    /// recovery surges (Figure 11's production load test, Figure 12's
    /// post-outage surge); `< 1` for outages or load shedding.
    pub factor: f64,
    /// Ramp time at each edge of the window. Traffic shifts are not
    /// instantaneous — load balancers move requests over seconds to
    /// minutes.
    pub ramp: SimDuration,
}

impl TrafficEvent {
    /// A production load test shifting `factor`× traffic to the cluster
    /// (Figure 11: user traffic shifted in around 10:40 AM).
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`, if `factor` is not positive/finite.
    pub fn new(start: SimTime, end: SimTime, factor: f64) -> Self {
        assert!(end > start, "event must end after it starts");
        assert!(
            factor.is_finite() && factor > 0.0,
            "invalid traffic factor {factor}"
        );
        TrafficEvent {
            start,
            end,
            factor,
            ramp: SimDuration::from_secs(120),
        }
    }

    /// Overrides the edge ramp duration.
    pub fn with_ramp(mut self, ramp: SimDuration) -> Self {
        self.ramp = ramp;
        self
    }

    /// The multiplicative contribution of this event at time `t`
    /// (1.0 outside the window, `factor` in the plateau, interpolated on
    /// the ramps).
    pub fn multiplier(&self, t: SimTime) -> f64 {
        if t < self.start || t >= self.end {
            return 1.0;
        }
        let ramp = self.ramp.as_secs_f64();
        if ramp <= 0.0 {
            return self.factor;
        }
        let since_start = (t - self.start).as_secs_f64();
        let until_end = (self.end - t).as_secs_f64();
        let edge = (since_start / ramp).min(until_end / ramp).min(1.0);
        1.0 + (self.factor - 1.0) * edge
    }
}

/// A cluster's traffic intensity over time: a base shape (flat or
/// diurnal) times any number of [`TrafficEvent`]s.
///
/// The multiplier is interpreted by [`crate::ServiceWorkload`] relative
/// to the service's nominal load: 1.0 is a normal peak-hour level.
///
/// # Example
///
/// ```
/// use dcsim::{SimDuration, SimTime};
/// use workloads::{TrafficEvent, TrafficPattern};
///
/// // Figure 12's shape: outage drop, then a recovery surge.
/// let outage = TrafficEvent::new(
///     SimTime::from_secs(600), SimTime::from_secs(2400), 0.3);
/// let surge = TrafficEvent::new(
///     SimTime::from_secs(2400), SimTime::from_secs(4800), 1.35);
/// let p = TrafficPattern::flat(1.0).with_event(outage).with_event(surge);
/// assert!(p.multiplier(SimTime::from_secs(1500)) < 0.5);
/// assert!(p.multiplier(SimTime::from_secs(3600)) > 1.3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficPattern {
    base: BaseShape,
    events: Vec<TrafficEvent>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum BaseShape {
    Flat(f64),
    /// Sinusoidal daily cycle between `min_frac` and 1.0, peaking at
    /// `peak_hour`.
    Diurnal {
        min_frac: f64,
        peak_hour: f64,
    },
}

impl TrafficPattern {
    /// Constant traffic at `level` (1.0 = nominal peak).
    ///
    /// # Panics
    ///
    /// Panics if `level` is negative or not finite.
    pub fn flat(level: f64) -> Self {
        assert!(
            level.is_finite() && level >= 0.0,
            "invalid traffic level {level}"
        );
        TrafficPattern {
            base: BaseShape::Flat(level),
            events: Vec::new(),
        }
    }

    /// The standard daily cycle: a sinusoid between 0.55× and 1.0× of
    /// peak, peaking at 20:00 simulated time — the "normal daily traffic
    /// increase" visible from 8:00 to 10:30 in Figure 11.
    pub fn diurnal() -> Self {
        Self::diurnal_with(0.55, 20.0)
    }

    /// A daily cycle with explicit trough fraction and peak hour.
    ///
    /// # Panics
    ///
    /// Panics if `min_frac` is outside `(0, 1]` or `peak_hour` outside
    /// `[0, 24)`.
    pub fn diurnal_with(min_frac: f64, peak_hour: f64) -> Self {
        assert!(
            min_frac > 0.0 && min_frac <= 1.0,
            "invalid trough fraction {min_frac}"
        );
        assert!(
            (0.0..24.0).contains(&peak_hour),
            "invalid peak hour {peak_hour}"
        );
        TrafficPattern {
            base: BaseShape::Diurnal {
                min_frac,
                peak_hour,
            },
            events: Vec::new(),
        }
    }

    /// Adds an operational event.
    pub fn with_event(mut self, event: TrafficEvent) -> Self {
        self.events.push(event);
        self
    }

    /// The traffic multiplier at time `t`.
    pub fn multiplier(&self, t: SimTime) -> f64 {
        let base = match self.base {
            BaseShape::Flat(level) => level,
            BaseShape::Diurnal {
                min_frac,
                peak_hour,
            } => {
                let hour = (t.as_secs_f64() / 3600.0) % 24.0;
                let phase = (hour - peak_hour) / 24.0 * std::f64::consts::TAU;
                let mid = (1.0 + min_frac) / 2.0;
                let amp = (1.0 - min_frac) / 2.0;
                mid + amp * phase.cos()
            }
        };
        self.events
            .iter()
            .fold(base, |acc, e| acc * e.multiplier(t))
    }

    /// The registered events.
    pub fn events(&self) -> &[TrafficEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_constant() {
        let p = TrafficPattern::flat(0.8);
        assert_eq!(p.multiplier(SimTime::ZERO), 0.8);
        assert_eq!(p.multiplier(SimTime::from_secs(99_999)), 0.8);
    }

    #[test]
    fn diurnal_peaks_at_peak_hour_and_troughs_opposite() {
        let p = TrafficPattern::diurnal_with(0.5, 20.0);
        let at = |h: f64| p.multiplier(SimTime::from_secs((h * 3600.0) as u64));
        assert!((at(20.0) - 1.0).abs() < 1e-6);
        assert!((at(8.0) - 0.5).abs() < 1e-6);
        // Morning ramp: rising between 8:00 and 20:00 (Figure 11's
        // steady increase).
        assert!(at(10.0) < at(12.0));
        assert!(at(12.0) < at(16.0));
    }

    #[test]
    fn diurnal_is_24h_periodic() {
        let p = TrafficPattern::diurnal();
        let a = p.multiplier(SimTime::from_secs(3 * 3600));
        let b = p.multiplier(SimTime::from_secs(3 * 3600 + 24 * 3600));
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn event_plateau_and_edges() {
        let e = TrafficEvent::new(SimTime::from_secs(1000), SimTime::from_secs(2000), 1.5)
            .with_ramp(SimDuration::from_secs(100));
        assert_eq!(e.multiplier(SimTime::from_secs(999)), 1.0);
        assert_eq!(e.multiplier(SimTime::from_secs(2000)), 1.0);
        assert_eq!(e.multiplier(SimTime::from_secs(1500)), 1.5);
        // Mid-ramp is halfway up.
        let half = e.multiplier(SimTime::from_secs(1050));
        assert!((half - 1.25).abs() < 1e-9);
    }

    #[test]
    fn zero_ramp_is_a_step() {
        let e = TrafficEvent::new(SimTime::from_secs(10), SimTime::from_secs(20), 2.0)
            .with_ramp(SimDuration::ZERO);
        assert_eq!(e.multiplier(SimTime::from_secs(10)), 2.0);
        assert_eq!(e.multiplier(SimTime::from_secs(9)), 1.0);
    }

    #[test]
    fn events_compose_multiplicatively() {
        let a = TrafficEvent::new(
            SimTime::ZERO + dcsim::SimDuration::from_secs(0),
            SimTime::from_secs(100),
            2.0,
        )
        .with_ramp(SimDuration::ZERO);
        let b = TrafficEvent::new(SimTime::from_secs(50), SimTime::from_secs(100), 0.5)
            .with_ramp(SimDuration::ZERO);
        let p = TrafficPattern::flat(1.0).with_event(a).with_event(b);
        assert_eq!(p.multiplier(SimTime::from_secs(25)), 2.0);
        assert_eq!(p.multiplier(SimTime::from_secs(75)), 1.0);
    }

    #[test]
    fn outage_then_surge_shape() {
        // The Figure 12 scenario sketch.
        let outage = TrafficEvent::new(SimTime::from_secs(600), SimTime::from_secs(2400), 0.3);
        let surge = TrafficEvent::new(SimTime::from_secs(2400), SimTime::from_secs(4800), 1.35);
        let p = TrafficPattern::flat(1.0)
            .with_event(outage)
            .with_event(surge);
        assert!(p.multiplier(SimTime::from_secs(1500)) < 0.4);
        assert!(p.multiplier(SimTime::from_secs(3600)) > 1.3);
        assert!((p.multiplier(SimTime::from_secs(5000)) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "end after it starts")]
    fn inverted_event_panics() {
        TrafficEvent::new(SimTime::from_secs(10), SimTime::from_secs(10), 1.2);
    }

    #[test]
    #[should_panic(expected = "invalid traffic factor")]
    fn bad_factor_panics() {
        TrafficEvent::new(SimTime::ZERO, SimTime::from_secs(1), -1.0);
    }

    #[test]
    #[should_panic(expected = "invalid trough")]
    fn bad_trough_panics() {
        TrafficPattern::diurnal_with(0.0, 12.0);
    }
}
