//! Service workload substrate for the Dynamo reproduction.
//!
//! The paper's design space study (§II-B) rests on how real services make
//! server power move. This crate generates synthetic per-server CPU
//! utilization processes for the six services characterized in Figure 6 —
//! web, cache, hadoop, database, news feed, and f4/photo storage — with
//! per-service parameters tuned so the 60 s power-variation distributions
//! have the published shape (e.g. f4 has the lowest median but the
//! heaviest tail; news feed and web the highest medians).
//!
//! It also models cluster-level *traffic*: the diurnal daily cycle plus
//! the operational events the paper's case studies revolve around —
//! [`scenarios`] packages the three §IV shapes (production load test,
//! site recovery surge, batch job waves) as ready-made patterns.
//!
//! # Example
//!
//! ```
//! use dcsim::{SimDuration, SimRng, SimTime};
//! use workloads::{ServiceKind, ServiceWorkload, TrafficPattern};
//!
//! let mut rng = SimRng::seed_from(1);
//! let mut wl = ServiceWorkload::new(ServiceKind::Web, rng.split("w"));
//! let traffic = TrafficPattern::diurnal();
//! let mut t = SimTime::ZERO;
//! for _ in 0..60 {
//!     let mult = traffic.multiplier(t);
//!     let util = wl.utilization(t, mult, SimDuration::from_secs(1));
//!     assert!((0.0..=1.0).contains(&util));
//!     t += SimDuration::from_secs(1);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod perf;
pub mod scenarios;
mod service;
mod traffic;

pub use perf::ClusterPerf;
pub use service::{OuCoeffs, ServiceKind, ServiceParams, ServiceWorkload, WorkloadState};
pub use traffic::{TrafficEvent, TrafficPattern};
