//! Fused-vs-unfused equivalence suite.
//!
//! Hot-loop fusion — the tile-at-a-time settle pass, the fused
//! per-leaf control dispatch and the memoized total-power fold — must
//! be pure performance: under fault churn (kill/revive, breaker
//! trip/reset, primary failover, mid-run re-span) and across worker
//! thread counts 1/2/8/64 in both parallel dispatch modes, the run
//! report, the Prometheus exposition and every telemetry trace must be
//! byte-identical with fusion on and off.

use dcsim::SimDuration;
use dynamo::{Datacenter, DatacenterBuilder, ParallelMode, RunReport};
use dynobs::ObsConfig;
use powerinfra::Power;
use workloads::{ServiceKind, TrafficPattern};

/// A 2 SB / 4 RPP / 64-server site squeezed hard enough that leaf
/// capping engages immediately (tight RPP rating) and the SB breakers
/// overload faster than the slow upper tier can protect them (tighter
/// still), so a run exercises caps, trips and blackouts organically.
fn build(fuse: bool, threads: usize, mode: ParallelMode) -> Datacenter {
    DatacenterBuilder::new()
        .sbs_per_msb(2)
        .rpps_per_sb(2)
        .racks_per_rpp(2)
        .servers_per_rack(8)
        .rpp_rating(Power::from_kilowatts(3.2))
        .sb_rating(Power::from_kilowatts(4.0))
        .uniform_service(ServiceKind::Web)
        .traffic(ServiceKind::Web, TrafficPattern::flat(1.5))
        .observability(ObsConfig::on())
        .seed(42)
        .worker_threads(threads)
        .parallel_mode(mode)
        .fuse(fuse)
        .build()
}

/// Deterministic fault-churn script: every mutation site that feeds
/// the fused dispatch's deferred bookkeeping fires at least once.
fn churn(dc: &mut Datacenter) {
    dc.run_for(SimDuration::from_secs(45));

    // Kill/revive: the breaker-blackout hook, driven directly.
    dc.fleet_mut().set_server_alive(3, false);
    dc.fleet_mut().set_server_alive(17, false);
    dc.run_for(SimDuration::from_secs(15));
    dc.fleet_mut().set_server_alive(3, true);
    dc.run_for(SimDuration::from_secs(15));
    dc.fleet_mut().set_server_alive(17, true);

    // Primary failover on the first leaf.
    let victim = dc.system().leaf_devices()[0];
    dc.system_mut().fail_primary(victim);
    dc.run_for(SimDuration::from_secs(30));

    // Breaker reset: revive whatever the tight SB ratings tripped.
    let tripped: Vec<_> = dc
        .telemetry()
        .breaker_trips()
        .iter()
        .map(|e| e.device)
        .collect();
    for d in tripped {
        dc.reset_breaker(d);
    }
    dc.run_for(SimDuration::from_secs(15));

    // Mid-run re-span: re-register the same spans out of band, which
    // restarts every leaf epoch and invalidates the memoized fold's
    // generation watermark.
    let spans: Vec<std::ops::Range<usize>> = dc
        .system()
        .leaf_devices()
        .iter()
        .map(|&d| {
            let ids = dc.topology().servers_under(d);
            let start = *ids.first().unwrap() as usize;
            start..start + ids.len()
        })
        .collect();
    dc.fleet_mut().set_leaf_spans(&spans);
    dc.run_for(SimDuration::from_secs(30));
}

/// Everything a run externalizes: the human-readable report, the full
/// Prometheus exposition, and the raw bits of both fleet-wide traces.
fn fingerprint(dc: &Datacenter) -> (String, String, Vec<u64>, Vec<u64>) {
    (
        RunReport::from_datacenter(dc).to_string(),
        dynobs::render_prometheus(dc.system().observability().registry()),
        bits(dc.telemetry().total_power().values()),
        bits(dc.telemetry().capped_servers().values()),
    )
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn fused_matches_unfused_under_fault_churn_across_threads_and_modes() {
    let baseline = {
        let mut dc = build(false, 1, ParallelMode::Pooled);
        churn(&mut dc);
        // The script must exercise real churn or the equality below
        // proves nothing.
        assert!(
            !dc.telemetry().breaker_trips().is_empty(),
            "tight SB rating should have tripped a breaker"
        );
        let report = RunReport::from_datacenter(&dc);
        assert!(report.leaf_cap_events > 0, "tight RPP rating should cap");
        assert!(report.failovers > 0, "injected failover not recorded");
        fingerprint(&dc)
    };
    for &threads in &[1usize, 2, 8, 64] {
        for &mode in &[ParallelMode::Pooled, ParallelMode::Scoped] {
            let mut dc = build(true, threads, mode);
            churn(&mut dc);
            let got = fingerprint(&dc);
            assert_eq!(
                got, baseline,
                "fused run diverged at threads={threads} mode={mode:?}"
            );
        }
    }
    // And the unfused parallel paths against the same baseline, so a
    // fusion-conditional bug in the dispatch restructure cannot hide.
    for &threads in &[8usize] {
        for &mode in &[ParallelMode::Pooled, ParallelMode::Scoped] {
            let mut dc = build(false, threads, mode);
            churn(&mut dc);
            assert_eq!(
                fingerprint(&dc),
                baseline,
                "unfused parallel run diverged at threads={threads} mode={mode:?}"
            );
        }
    }
}

/// The incremental-telemetry invariant: with fusion on, sampled total
/// power comes from the quiescence-keyed memo (with a periodic forced
/// full refresh); with fusion off, every sample is a full flat fold.
/// Across a capping episode — caps placed, power bent downward, caps
/// released — the merged sample streams must match to the byte.
#[test]
fn incremental_telemetry_stream_matches_full_sampling_across_a_capping_episode() {
    let run = |fuse: bool| {
        let mut dc = build(fuse, 1, ParallelMode::Pooled);
        dc.run_for(SimDuration::from_mins(6));
        let report = RunReport::from_datacenter(&dc);
        assert!(report.leaf_cap_events > 0, "episode never capped");
        let mut traces: Vec<Vec<u64>> = vec![
            bits(dc.telemetry().total_power().values()),
            bits(dc.telemetry().capped_servers().values()),
        ];
        let devices: Vec<_> = dc.topology().iter().map(|d| d.id).collect();
        for d in devices {
            if let Some(t) = dc.telemetry().device_trace(d) {
                traces.push(bits(t.values()));
            }
        }
        traces
    };
    let full = run(false);
    let incremental = run(true);
    assert!(
        full[0].len() >= 100,
        "expected a dense sample stream, got {} samples",
        full[0].len()
    );
    assert_eq!(incremental, full);
}
