//! Steady-state allocation discipline: once warmed up, the leaf
//! control-plane hot loop (fleet physics + leaf pulling cycles in the
//! Hold band) must not touch the heap at all. Controller names are
//! interned, per-cycle readings live in reusable scratch buffers, and
//! traffic multipliers are a fixed array — a regression here shows up
//! as a nonzero count below.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use dcsim::{SimDuration, SimRng, SimTime};
use dynamo::{DynamoSystem, Fleet, ObsConfig, SystemConfig, WorkerPool};
use powerinfra::TopologyBuilder;
use serverpower::{ServerConfig, ServerGeneration};
use workloads::ServiceKind;

/// Counts heap operations while armed; forwards everything to the
/// system allocator.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// `ARMED` is process-global, so two tests measuring concurrently would
/// count each other's warmup (and pool worker) allocations. Every test
/// takes this lock for its whole body; a poisoned lock (an earlier test
/// failed) is fine — the counter state is reset per measurement.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialize_test() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

/// A 64-server, 2-leaf setup with ample power headroom (Hold band),
/// reliable RPC, no crashes: the steady state a healthy datacenter
/// spends almost all of its life in.
fn build_with(obs: ObsConfig) -> (Fleet, DynamoSystem) {
    let topo = TopologyBuilder::new()
        .sbs_per_msb(1)
        .rpps_per_sb(2)
        .racks_per_rpp(2)
        .servers_per_rack(16)
        .build();
    let n = topo.server_count();
    let configs = vec![ServerConfig::new(ServerGeneration::Haswell2015); n];
    let services = vec![ServiceKind::Web; n];
    let fleet = Fleet::new(configs, services, SimRng::seed_from(11).split("fleet"));
    let config = SystemConfig {
        rpc: dynrpc::LinkProfile::reliable(),
        obs,
        ..SystemConfig::default()
    };
    let service_of = |_: u32| dynamo::service_class_of(ServiceKind::Web);
    let system = DynamoSystem::build(
        &topo,
        &service_of,
        config,
        &mut SimRng::seed_from(11).split("sys"),
    );
    (fleet, system)
}

fn build() -> (Fleet, DynamoSystem) {
    build_with(ObsConfig::default())
}

/// Warms up, then counts heap operations across 20 leaf-only ticks.
/// With `threads > 1` the fleet steps through [`Fleet::step_parallel`]
/// and leaf cycles dispatch in parallel — onto the attached pool, if
/// any.
fn measure_steady_state(mut fleet: Fleet, mut system: DynamoSystem, threads: usize) -> u64 {
    assert!(system.supports_parallel_leaves());
    system.set_control_threads(threads);
    let dt = SimDuration::from_secs(3);
    let step = |fleet: &mut Fleet, now: SimTime| {
        if threads > 1 {
            fleet.step_parallel(now, dt, threads);
        } else {
            fleet.step(now, dt);
        }
    };

    // Warm up: fill scratch buffers, controller state and event
    // vectors, covering both leaf (3 s) and upper (9 s) cycles.
    let mut now = SimTime::ZERO;
    for _ in 0..12 {
        step(&mut fleet, now);
        let events = system.tick(now, &mut fleet);
        assert!(events.is_empty(), "expected a quiet Hold-band run");
        now += dt;
    }

    // Measure leaf-only ticks (skip the 9 s grid: upper cycles build
    // their directive list on the heap by design).
    let mut measured = 0;
    let mut total = 0u64;
    while measured < 20 {
        if now.as_secs().is_multiple_of(9) {
            step(&mut fleet, now);
            system.tick(now, &mut fleet);
            now += dt;
            continue;
        }
        total += count_allocs(|| {
            step(&mut fleet, now);
            let events = system.tick(now, &mut fleet);
            assert!(events.is_empty());
        });
        now += dt;
        measured += 1;
    }
    total
}

#[test]
fn steady_state_leaf_ticks_do_not_allocate() {
    let _serial = serialize_test();
    let (fleet, system) = build();
    assert_eq!(
        measure_steady_state(fleet, system, 1),
        0,
        "heap allocations leaked into the steady-state leaf tick path"
    );
}

/// The zero-alloc guarantee must hold with observability recording
/// live: shards, rings and histogram buckets are all preallocated, and
/// span/flight scratch reaches steady capacity during warmup.
#[test]
fn steady_state_leaf_ticks_do_not_allocate_with_observability() {
    let _serial = serialize_test();
    let (fleet, system) = build_with(ObsConfig::on());
    assert_eq!(
        measure_steady_state(fleet, system, 1),
        0,
        "observability recording allocated in the steady-state leaf tick path"
    );
}

/// The zero-alloc guarantee must also hold on the parallel hot path
/// once the pool is warm: waking parked workers, dispatching stack-slot
/// jobs over the precomputed partitions and merging results must never
/// touch the heap — with observability recording live, at 4 threads.
#[test]
fn steady_state_pooled_ticks_do_not_allocate() {
    let _serial = serialize_test();
    let (mut fleet, mut system) = build_with(ObsConfig::on());
    let pool = Arc::new(WorkerPool::new(4));
    fleet.attach_pool(Arc::clone(&pool));
    system.attach_pool(pool);
    assert_eq!(
        measure_steady_state(fleet, system, 4),
        0,
        "pooled dispatch allocated in the steady-state leaf tick path"
    );
}

/// Fleet with the active set engaged: leaf spans mirroring the two RPP
/// leaves of the test topology (sids are assigned in DFS order, so the
/// spans are `[0..32, 32..64]`), plus a demand-hold so leaves actually
/// settle between redraws.
fn build_active(obs: ObsConfig, hold: u32) -> (Fleet, DynamoSystem) {
    let (mut fleet, system) = build_with(obs);
    fleet.set_leaf_spans(&[0..32, 32..64]);
    fleet.set_demand_hold(hold);
    (fleet, system)
}

/// Active-set skipping must not buy its speed with heap traffic: the
/// settled-leaf skip, the demand-hold redraw (including the off-grid
/// OU coefficient recompute when `elapsed > 1`) and the control-flush
/// epoch check are all allocation-free.
#[test]
fn steady_state_active_set_ticks_do_not_allocate() {
    let _serial = serialize_test();
    let (fleet, system) = build_active(ObsConfig::on(), 30);
    assert_eq!(
        measure_steady_state(fleet, system, 1),
        0,
        "active-set physics allocated in the steady-state leaf tick path"
    );
}

/// Same guarantee on the pooled parallel path: the extra per-job
/// settled/last-draw/epoch slices ride in the same stack-slot jobs.
#[test]
fn steady_state_active_set_pooled_ticks_do_not_allocate() {
    let _serial = serialize_test();
    let (mut fleet, mut system) = build_active(ObsConfig::on(), 30);
    let pool = Arc::new(WorkerPool::new(4));
    fleet.attach_pool(Arc::clone(&pool));
    system.attach_pool(pool);
    assert_eq!(
        measure_steady_state(fleet, system, 4),
        0,
        "active-set pooled dispatch allocated in the steady-state leaf tick path"
    );
}

/// The skip must actually engage under measurement conditions, or the
/// two tests above prove nothing: after warmup, a held fleet spends
/// most ticks with every leaf settled.
#[test]
fn active_set_engages_in_steady_state() {
    let _serial = serialize_test();
    let (mut fleet, mut system) = build_active(ObsConfig::default(), 30);
    let dt = SimDuration::from_secs(3);
    let mut now = SimTime::ZERO;
    let mut max_settled = 0;
    for _ in 0..40 {
        fleet.step(now, dt);
        system.tick(now, &mut fleet);
        max_settled = max_settled.max(fleet.settled_leaf_count());
        now += dt;
    }
    assert_eq!(
        max_settled, 2,
        "both leaves should settle between demand redraws"
    );
}

/// The grid-interactive layer rides the same hot loop: with a quiet
/// (nominal) utility signal the per-tick work — signal lookup, episode
/// check, DCUPS availability scan over the reusable scratch buffer,
/// settlement accumulation and gauge updates — must stay off the heap.
/// Econ-cycle ticks (60 s) and upper-cycle ticks (9 s) are skipped for
/// the same reason the leaf-only measurement skips them: those paths
/// build directive lists by design.
#[test]
fn steady_state_grid_ticks_do_not_allocate() {
    let _serial = serialize_test();
    let mut dc = dynamo::DatacenterBuilder::new()
        .sbs_per_msb(1)
        .rpps_per_sb(2)
        .racks_per_rpp(2)
        .servers_per_rack(16)
        .uniform_service(ServiceKind::Web)
        .traffic(ServiceKind::Web, workloads::TrafficPattern::flat(1.0))
        .observability(ObsConfig::on())
        .grid_scenario("nominal")
        .seed(11)
        .build();
    // Warm up past several leaf, upper and econ cycles.
    dc.run_for(SimDuration::from_secs(130));
    let mut measured = 0;
    let mut total = 0u64;
    while measured < 20 {
        let t = dc.now().as_secs();
        if t.is_multiple_of(9) || (t + 1).is_multiple_of(60) || t.is_multiple_of(60) {
            dc.step();
            continue;
        }
        total += count_allocs(|| dc.step());
        measured += 1;
    }
    assert_eq!(
        total, 0,
        "grid layer allocated in the steady-state tick path"
    );
}

/// The whole parallel tick at once: pooled 4-thread dispatch (real
/// workers — `Pooled` does not clamp on small hosts), observability
/// recording, the grid layer, the sharded telemetry scratch with its
/// worker-side RPC codec round-trip (warm wire buffers), the parallel
/// breaker precompute (fixed chunk plan, preallocated scratch) and the
/// tick-phase profiler (preallocated histograms, `Instant` laps) must
/// all stay off the heap in the steady state.
#[test]
fn steady_state_parallel_profiled_grid_ticks_do_not_allocate() {
    let _serial = serialize_test();
    let mut dc = dynamo::DatacenterBuilder::new()
        .sbs_per_msb(1)
        .rpps_per_sb(2)
        .racks_per_rpp(2)
        .servers_per_rack(16)
        .uniform_service(ServiceKind::Web)
        .traffic(ServiceKind::Web, workloads::TrafficPattern::flat(1.0))
        .observability(ObsConfig::on())
        .grid_scenario("nominal")
        .worker_threads(4)
        .parallel_mode(dynamo::ParallelMode::Pooled)
        .profile_ticks(true)
        .seed(11)
        .build();
    // Warm up past several leaf, upper and econ cycles so every
    // scratch buffer — including the per-worker wire/event buffers and
    // the fold chunk plan — reaches steady capacity.
    dc.run_for(SimDuration::from_secs(130));
    let mut measured = 0;
    let mut total = 0u64;
    while measured < 20 {
        let t = dc.now().as_secs();
        if t.is_multiple_of(9) || (t + 1).is_multiple_of(60) || t.is_multiple_of(60) {
            dc.step();
            continue;
        }
        total += count_allocs(|| dc.step());
        measured += 1;
    }
    assert_eq!(
        total, 0,
        "parallel profiled tick allocated in the steady-state path"
    );
}

/// The Hold-band guarantee must survive an active cap: a capped fleet
/// in steady state (caps placed, nothing to change) is equally hot.
#[test]
fn idle_fleet_step_does_not_allocate() {
    let _serial = serialize_test();
    let (mut fleet, _system) = build();
    let dt = SimDuration::from_secs(3);
    let mut now = SimTime::ZERO;
    for _ in 0..8 {
        fleet.step(now, dt);
        now += dt;
    }
    let mut total = 0u64;
    for _ in 0..20 {
        total += count_allocs(|| fleet.step(now, dt));
        now += dt;
    }
    assert_eq!(total, 0, "fleet physics allocated in steady state");
}
