//! Control-plane behaviour through the public `DynamoSystem` API:
//! hierarchy construction, cycle scheduling, monitoring-only mode,
//! failover, staged rollout, and operator overrides.

use dcsim::{SimDuration, SimRng, SimTime};
use dynamo::{service_class_of, ControllerEventKind, DynamoSystem, Fleet, SystemConfig};
use powerinfra::{DeviceLevel, Power, Topology, TopologyBuilder};
use serverpower::{ServerConfig, ServerGeneration};
use workloads::ServiceKind;

fn topo() -> Topology {
    TopologyBuilder::new()
        .sbs_per_msb(2)
        .rpps_per_sb(2)
        .racks_per_rpp(1)
        .servers_per_rack(4)
        .build()
}

fn service_of(_sid: u32) -> dynamo_controller::ServiceClass {
    service_class_of(ServiceKind::Web)
}

fn build_system(topo: &Topology, config: SystemConfig) -> DynamoSystem {
    let mut rng = SimRng::seed_from(1);
    DynamoSystem::build(topo, &service_of, config, &mut rng)
}

fn fleet(n: usize) -> Fleet {
    Fleet::new(
        vec![ServerConfig::new(ServerGeneration::Haswell2015); n],
        vec![ServiceKind::Web; n],
        SimRng::seed_from(2),
    )
}

#[test]
fn hierarchy_mirrors_the_topology() {
    let topo = topo();
    let system = build_system(&topo, SystemConfig::default());
    // One leaf per RPP; one upper per SB plus one per MSB.
    assert_eq!(system.leaf_count(), 4);
    assert_eq!(system.upper_count(), 3);
    for rpp in topo.devices_at(DeviceLevel::Rpp) {
        assert!(system.leaf_for(rpp).is_some());
        assert!(system.upper_for(rpp).is_none());
    }
    for sb in topo.devices_at(DeviceLevel::Sb) {
        assert!(system.upper_for(sb).is_some());
    }
    assert!(system.upper_for(topo.root()).is_some());
}

#[test]
fn leaf_controllers_cover_every_server_exactly_once() {
    let topo = topo();
    let system = build_system(&topo, SystemConfig::default());
    let mut covered: Vec<u32> = system
        .leaf_devices()
        .iter()
        .flat_map(|&d| {
            system
                .leaf_for(d)
                .unwrap()
                .servers()
                .iter()
                .map(|h| h.server_id)
        })
        .collect();
    covered.sort_unstable();
    let expected: Vec<u32> = (0..topo.server_count() as u32).collect();
    assert_eq!(covered, expected);
}

#[test]
fn tick_respects_the_schedules() {
    let topo = topo();
    let mut system = build_system(&topo, SystemConfig::default());
    let mut fleet = fleet(topo.server_count());
    fleet.step(SimTime::ZERO, SimDuration::from_secs(1));
    // t=0: both tiers run. t=1,2: neither. t=3: leaves only.
    system.tick(SimTime::ZERO, &mut fleet);
    let leaf_cycles_t0 = system.leaf_for(system.leaf_devices()[0]).unwrap().cycles();
    assert_eq!(leaf_cycles_t0, 1);
    system.tick(SimTime::from_secs(1), &mut fleet);
    system.tick(SimTime::from_secs(2), &mut fleet);
    assert_eq!(
        system.leaf_for(system.leaf_devices()[0]).unwrap().cycles(),
        1
    );
    system.tick(SimTime::from_secs(3), &mut fleet);
    assert_eq!(
        system.leaf_for(system.leaf_devices()[0]).unwrap().cycles(),
        2
    );
}

#[test]
fn lockstep_phases_are_all_zero() {
    let topo = topo();
    let system = build_system(&topo, SystemConfig::default());
    for &d in system.leaf_devices() {
        assert_eq!(system.leaf_phase(d), Some(SimDuration::ZERO));
    }
}

#[test]
fn monitoring_only_mode_tracks_aggregates_without_cycles() {
    let topo = topo();
    let config = SystemConfig {
        capping_enabled: false,
        ..SystemConfig::default()
    };
    let mut system = build_system(&topo, config);
    let mut fleet = fleet(topo.server_count());
    for i in 0..fleet.len() as u32 {
        fleet.agent_mut(i).server_mut().set_demand(0.5);
        fleet
            .agent_mut(i)
            .server_mut()
            .step(SimDuration::from_secs(1));
    }
    let events = system.tick(SimTime::ZERO, &mut fleet);
    assert!(events.is_empty());
    // Aggregates still update so telemetry and parents see power.
    let rpp = system.leaf_devices()[0];
    let agg = system.leaf_aggregate(rpp).unwrap();
    assert!(agg.as_watts() > 100.0);
    // But no controller cycles ran.
    assert_eq!(system.leaf_for(rpp).unwrap().cycles(), 0);
}

#[test]
fn failover_is_reported_once_and_recovers() {
    let topo = topo();
    let mut system = build_system(&topo, SystemConfig::default());
    let mut fleet = fleet(topo.server_count());
    let rpp = system.leaf_devices()[0];
    system.fail_primary(rpp);
    let events = system.tick(SimTime::ZERO, &mut fleet);
    let failovers = events
        .iter()
        .filter(|e| matches!(e.kind, ControllerEventKind::Failover))
        .count();
    assert_eq!(failovers, 1);
    assert_eq!(system.failovers(), 1);
    // The next cycle runs normally on the backup.
    let events2 = system.tick(SimTime::from_secs(3), &mut fleet);
    assert!(!events2
        .iter()
        .any(|e| matches!(e.kind, ControllerEventKind::Failover)));
    assert_eq!(system.leaf_for(rpp).unwrap().cycles(), 1);
}

#[test]
fn staged_rollout_gates_actuation() {
    let topo = topo();
    let mut system = build_system(&topo, SystemConfig::default());
    // Phase 1: exactly one of the four leaves is live.
    assert_eq!(system.set_rollout_phase(1), 1);
    let dry: Vec<bool> = system
        .leaf_devices()
        .to_vec()
        .iter()
        .map(|&d| system.leaf_for(d).unwrap().config().dry_run)
        .collect();
    assert_eq!(dry.iter().filter(|&&x| !x).count(), 1);
    // Phase 3: half live; phase 4: all live.
    assert_eq!(system.set_rollout_phase(3), 2);
    assert_eq!(system.set_rollout_phase(4), 4);
    let all_live = system
        .leaf_devices()
        .to_vec()
        .iter()
        .all(|&d| !system.leaf_for(d).unwrap().config().dry_run);
    assert!(all_live);
}

#[test]
#[should_panic(expected = "rollout phase must be 1-4")]
fn invalid_rollout_phase_panics() {
    let topo = topo();
    let mut system = build_system(&topo, SystemConfig::default());
    system.set_rollout_phase(0);
}

#[test]
#[should_panic(expected = "no controller protects")]
fn failing_an_unprotected_device_panics() {
    let topo = topo();
    let mut system = build_system(&topo, SystemConfig::default());
    let rack = topo.devices_at(DeviceLevel::Rack)[0];
    system.fail_primary(rack);
}

#[test]
fn set_leaf_contract_round_trips() {
    let topo = topo();
    let mut system = build_system(&topo, SystemConfig::default());
    let rpp = system.leaf_devices()[0];
    system.set_leaf_contract(rpp, Some(Power::from_kilowatts(100.0)));
    assert_eq!(
        system.leaf_for(rpp).unwrap().contractual_limit(),
        Some(Power::from_kilowatts(100.0))
    );
    system.set_leaf_contract(rpp, None);
    assert_eq!(system.leaf_for(rpp).unwrap().contractual_limit(), None);
}
