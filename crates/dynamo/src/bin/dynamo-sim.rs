//! `dynamo-sim` — run a simulated datacenter under the Dynamo control
//! plane from the command line.
//!
//! ```text
//! dynamo-sim [--sbs N] [--rpps N] [--racks N] [--servers N]
//!            [--rpp-kw KW] [--sb-kw KW] [--msb-kw KW] [--service NAME] [--traffic X]
//!            [--minutes N] [--seed N] [--threads N] [--phase-spread SECS]
//!            [--no-capping] [--dry-run] [--turbo] [--report-every N]
//!            [--metrics-out FILE] [--trace-out FILE] [--incident-dir DIR]
//!            [--report-out FILE] [--profile-ticks] [--fail-leaf MIN]
//!            [--checkpoint-every MIN] [--checkpoint-dir DIR]
//!            [--resume FILE]
//!            [--grid-scenario NAME | --grid-signal-file FILE]
//! dynamo-sim replay --incident FILE --from SNAPSHOT [--out DIR]
//! ```
//!
//! Example — an oversubscribed web row that Dynamo must hold:
//!
//! ```text
//! dynamo-sim --rpps 1 --racks 2 --servers 20 --rpp-kw 11 --traffic 1.7
//! ```
//!
//! Checkpoints are versioned binary snapshots of every stateful layer
//! (clock, RNG streams, fleet physics, controllers, telemetry, rings).
//! A resumed run is bit-identical to the unbroken one: same report,
//! same Prometheus exposition, at any thread count. `replay`
//! re-executes an incident window deterministically from the nearest
//! checkpoint and verifies the regenerated flight-recorder dump matches
//! the original byte for byte.

use std::path::PathBuf;
use std::time::Instant;

use dcsim::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use dcsim::SimDuration;
use dynamo::{
    Datacenter, DatacenterBuilder, DatacenterState, GridConfig, ObsConfig, ParallelMode, RunReport,
};
use dyngrid::GridScenario;
use powerinfra::Power;
use serverpower::ServerGeneration;
use workloads::{ServiceKind, TrafficPattern};

#[derive(Debug)]
struct Args {
    sbs: usize,
    rpps: usize,
    racks: usize,
    servers: usize,
    rpp_kw: Option<f64>,
    sb_kw: Option<f64>,
    msb_kw: Option<f64>,
    service: ServiceKind,
    generation: ServerGeneration,
    traffic: f64,
    minutes: u64,
    seed: u64,
    threads: usize,
    phase_spread: f64,
    capping: bool,
    dry_run: bool,
    turbo: bool,
    report_every: u64,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    incident_dir: Option<PathBuf>,
    report_out: Option<PathBuf>,
    fail_leaf: Option<u64>,
    checkpoint_every: Option<u64>,
    checkpoint_dir: Option<PathBuf>,
    resume: Option<PathBuf>,
    grid_scenario: Option<String>,
    grid_signal_file: Option<PathBuf>,
    profile_ticks: bool,
    no_fuse: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sbs: 1,
            rpps: 2,
            racks: 2,
            servers: 20,
            rpp_kw: None,
            sb_kw: None,
            msb_kw: None,
            service: ServiceKind::Web,
            generation: ServerGeneration::Haswell2015,
            traffic: 1.2,
            minutes: 10,
            seed: 0,
            threads: 1,
            phase_spread: 0.0,
            capping: true,
            dry_run: false,
            turbo: false,
            report_every: 1,
            metrics_out: None,
            trace_out: None,
            incident_dir: None,
            report_out: None,
            fail_leaf: None,
            checkpoint_every: None,
            checkpoint_dir: None,
            resume: None,
            grid_scenario: None,
            grid_signal_file: None,
            profile_ticks: false,
            no_fuse: false,
        }
    }
}

impl Args {
    fn observing(&self) -> bool {
        self.metrics_out.is_some()
            || self.trace_out.is_some()
            || self.incident_dir.is_some()
            // The profiler observes into the registry's tick-phase
            // histograms, so it needs recording on.
            || self.profile_ticks
    }
}

fn parse_service(name: &str) -> Result<ServiceKind, String> {
    ServiceKind::all()
        .into_iter()
        .find(|k| k.label() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = ServiceKind::all().iter().map(|k| k.label()).collect();
            format!("unknown service '{name}'; one of: {}", names.join(", "))
        })
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    fn value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a str, String> {
        it.next()
            .map(String::as_str)
            .ok_or_else(|| format!("{flag} needs a value"))
    }
    fn num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
        v.parse()
            .map_err(|_| format!("invalid value '{v}' for {flag}"))
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--sbs" => args.sbs = num(value(&mut it, flag)?, flag)?,
            "--rpps" => args.rpps = num(value(&mut it, flag)?, flag)?,
            "--racks" => args.racks = num(value(&mut it, flag)?, flag)?,
            "--servers" => args.servers = num(value(&mut it, flag)?, flag)?,
            "--rpp-kw" => args.rpp_kw = Some(num(value(&mut it, flag)?, flag)?),
            "--sb-kw" => args.sb_kw = Some(num(value(&mut it, flag)?, flag)?),
            "--msb-kw" => args.msb_kw = Some(num(value(&mut it, flag)?, flag)?),
            "--service" => args.service = parse_service(value(&mut it, flag)?)?,
            "--generation" => {
                let v = value(&mut it, flag)?;
                args.generation = ServerGeneration::from_label(v)
                    .ok_or_else(|| format!("unknown generation '{v}'"))?;
            }
            "--traffic" => args.traffic = num(value(&mut it, flag)?, flag)?,
            "--minutes" => args.minutes = num(value(&mut it, flag)?, flag)?,
            "--seed" => args.seed = num(value(&mut it, flag)?, flag)?,
            "--threads" => args.threads = num(value(&mut it, flag)?, flag)?,
            "--phase-spread" => args.phase_spread = num(value(&mut it, flag)?, flag)?,
            "--report-every" => args.report_every = num(value(&mut it, flag)?, flag)?,
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value(&mut it, flag)?)),
            "--trace-out" => args.trace_out = Some(PathBuf::from(value(&mut it, flag)?)),
            "--incident-dir" => args.incident_dir = Some(PathBuf::from(value(&mut it, flag)?)),
            "--report-out" => args.report_out = Some(PathBuf::from(value(&mut it, flag)?)),
            "--fail-leaf" => args.fail_leaf = Some(num(value(&mut it, flag)?, flag)?),
            "--checkpoint-every" => args.checkpoint_every = Some(num(value(&mut it, flag)?, flag)?),
            "--checkpoint-dir" => args.checkpoint_dir = Some(PathBuf::from(value(&mut it, flag)?)),
            "--resume" => args.resume = Some(PathBuf::from(value(&mut it, flag)?)),
            "--grid-scenario" => {
                let v = value(&mut it, flag)?;
                if GridScenario::preset(v).is_none() {
                    return Err(format!(
                        "unknown grid scenario '{v}'; one of: {}",
                        GridScenario::preset_names().join(", ")
                    ));
                }
                args.grid_scenario = Some(v.to_string());
            }
            "--grid-signal-file" => {
                args.grid_signal_file = Some(PathBuf::from(value(&mut it, flag)?))
            }
            "--no-capping" => args.capping = false,
            "--dry-run" => args.dry_run = true,
            "--turbo" => args.turbo = true,
            "--profile-ticks" => args.profile_ticks = true,
            "--no-fuse" => args.no_fuse = true,
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    if args.minutes == 0 || args.report_every == 0 {
        return Err("--minutes and --report-every must be positive".to_string());
    }
    if args.threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    if !args.phase_spread.is_finite() || args.phase_spread < 0.0 {
        return Err("--phase-spread must be a non-negative number of seconds".to_string());
    }
    if let Some(m) = args.fail_leaf {
        if m == 0 || m > args.minutes {
            return Err(format!(
                "--fail-leaf must be between 1 and --minutes ({}), got {m}",
                args.minutes
            ));
        }
    }
    if args.checkpoint_every == Some(0) {
        return Err("--checkpoint-every must be a positive number of minutes".to_string());
    }
    if args.grid_scenario.is_some() && args.grid_signal_file.is_some() {
        return Err("--grid-scenario and --grid-signal-file are mutually exclusive".to_string());
    }
    Ok(args)
}

fn usage() -> &'static str {
    "dynamo-sim: simulate a datacenter under the Dynamo power control plane\n\
     \n\
     topology:  --sbs N --rpps N --racks N --servers N (per rack)\n\
     ratings:   --rpp-kw KW --sb-kw KW --msb-kw KW (defaults: OCP 190 kW / 1.25 MW / 2.5 MW)\n\
     workload:  --service web|cache|hadoop|database|newsfeed|f4storage\n\
     \x20          --generation westmere2011|sandybridge2012|ivybridge2013|haswell2015\n\
     \x20          --traffic X (multiplier, 1.0 = nominal) --turbo\n\
     run:       --minutes N --seed N --report-every N\n\
     \x20          --threads N (worker threads for fleet physics and leaf\n\
     \x20          control cycles; results are bit-identical at any count)\n\
     \x20          --phase-spread SECS (stagger controller cycle phases\n\
     \x20          evenly across this window; 0 = lockstep, the default)\n\
     modes:     --no-capping (monitor only) --dry-run (decide, don't act)\n\
     observability (enabling any of these turns recording on):\n\
     \x20          --metrics-out FILE (Prometheus text exposition)\n\
     \x20          --trace-out FILE (chrome-tracing JSON of controller cycles)\n\
     \x20          --incident-dir DIR (flight-recorder incident dumps)\n\
     \x20          --report-out FILE (final run report, for byte diffs)\n\
     \x20          --profile-ticks (time each tick phase into the\n\
     \x20          dynamo_tick_phase_seconds histograms and print an\n\
     \x20          Amdahl attribution table after the run)\n\
     perf:      --no-fuse (disable hot-loop fusion: tile-at-a-time\n\
     \x20          settling, fused control dispatch and the memoized\n\
     \x20          total-power fold; bit-identical either way — an escape\n\
     \x20          hatch for bisecting regressions to fusion vs. layout)\n\
     faults:    --fail-leaf MIN (crash the first leaf controller's primary\n\
     \x20          at the start of that minute; the backup takes over)\n\
     snapshots: --checkpoint-every MIN (write a versioned snapshot of every\n\
     \x20          stateful layer at that cadence; resumed runs are\n\
     \x20          bit-identical to unbroken ones)\n\
     \x20          --checkpoint-dir DIR (default: checkpoints)\n\
     \x20          --resume FILE (continue a checkpointed run; topology,\n\
     \x20          workload and seed come from the snapshot — only run\n\
     \x20          horizon, threads, cadence and output flags may change)\n\
     replay:    dynamo-sim replay --incident FILE --from SNAPSHOT [--out DIR]\n\
     \x20          re-execute an incident window from the nearest checkpoint\n\
     \x20          and verify the regenerated dump is byte-identical\n\
     grid:      --grid-scenario nominal|brownout|curtailment-window|\n\
     \x20          frequency-excursion|price-spike (deploy the grid-interactive\n\
     \x20          layer with a named utility-signal preset)\n\
     \x20          --grid-signal-file FILE (custom schedule: lines of\n\
     \x20          'start_s price_per_mwh frequency_hz curtail_frac|-')"
}

// ---------------------------------------------------------------------------
// Checkpoint file: an args envelope (so `--resume` can rebuild the exact
// same datacenter) plus the full DatacenterState snapshot.
// ---------------------------------------------------------------------------

/// One checkpoint file. The envelope is the canonical `key=value`
/// rendering of the original invocation's builder-relevant arguments;
/// the state is every stateful layer of the simulation.
struct Checkpoint {
    envelope: String,
    state: DatacenterState,
}

impl Snapshot for Checkpoint {
    const KIND: &'static str = "dynamo-sim.Checkpoint";
    // Bump when the envelope key set changes, so an old binary rejects
    // a newer checkpoint instead of misreading it.
    // v2: grid_scenario/grid_signal_file envelope keys, grid layer in
    // the datacenter state.
    const VERSION: u32 = 2;

    fn encode_body(&self, w: &mut SnapWriter) {
        w.put_str(&self.envelope);
        self.state.encode_body(w);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Checkpoint {
            envelope: r.get_str()?,
            state: DatacenterState::decode_body(r)?,
        })
    }
}

/// Renders the arguments that determine the simulated universe (plus
/// the run schedule) as deterministic `key=value` lines. Floats use
/// Rust's shortest-round-trip formatting, so parsing is exact.
fn envelope_of(args: &Args) -> String {
    let mut s = String::new();
    let mut kv = |k: &str, v: String| {
        s.push_str(k);
        s.push('=');
        s.push_str(&v);
        s.push('\n');
    };
    kv("sbs", args.sbs.to_string());
    kv("rpps", args.rpps.to_string());
    kv("racks", args.racks.to_string());
    kv("servers", args.servers.to_string());
    if let Some(kw) = args.rpp_kw {
        kv("rpp_kw", format!("{kw:?}"));
    }
    if let Some(kw) = args.sb_kw {
        kv("sb_kw", format!("{kw:?}"));
    }
    if let Some(kw) = args.msb_kw {
        kv("msb_kw", format!("{kw:?}"));
    }
    kv("service", args.service.label().to_string());
    kv("generation", args.generation.label().to_string());
    kv("traffic", format!("{:?}", args.traffic));
    kv("minutes", args.minutes.to_string());
    kv("seed", args.seed.to_string());
    kv("threads", args.threads.to_string());
    kv("phase_spread", format!("{:?}", args.phase_spread));
    kv("capping", args.capping.to_string());
    kv("dry_run", args.dry_run.to_string());
    kv("turbo", args.turbo.to_string());
    kv("report_every", args.report_every.to_string());
    if let Some(p) = &args.metrics_out {
        kv("metrics_out", p.display().to_string());
    }
    if let Some(p) = &args.trace_out {
        kv("trace_out", p.display().to_string());
    }
    if let Some(p) = &args.incident_dir {
        kv("incident_dir", p.display().to_string());
    }
    if let Some(m) = args.fail_leaf {
        kv("fail_leaf", m.to_string());
    }
    if let Some(name) = &args.grid_scenario {
        kv("grid_scenario", name.clone());
    }
    if let Some(p) = &args.grid_signal_file {
        kv("grid_signal_file", p.display().to_string());
    }
    s
}

/// Parses an envelope back into [`Args`]. Unknown keys are an error —
/// an envelope written by a newer binary must fail loudly, not be
/// half-applied.
fn args_from_envelope(envelope: &str) -> Result<Args, String> {
    let mut args = Args::default();
    for line in envelope.lines() {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| format!("malformed envelope line '{line}'"))?;
        fn num<T: std::str::FromStr>(v: &str, k: &str) -> Result<T, String> {
            v.parse()
                .map_err(|_| format!("invalid envelope value '{v}' for {k}"))
        }
        match k {
            "sbs" => args.sbs = num(v, k)?,
            "rpps" => args.rpps = num(v, k)?,
            "racks" => args.racks = num(v, k)?,
            "servers" => args.servers = num(v, k)?,
            "rpp_kw" => args.rpp_kw = Some(num(v, k)?),
            "sb_kw" => args.sb_kw = Some(num(v, k)?),
            "msb_kw" => args.msb_kw = Some(num(v, k)?),
            "service" => args.service = parse_service(v)?,
            "generation" => {
                args.generation = ServerGeneration::from_label(v)
                    .ok_or_else(|| format!("unknown generation '{v}' in envelope"))?;
            }
            "traffic" => args.traffic = num(v, k)?,
            "minutes" => args.minutes = num(v, k)?,
            "seed" => args.seed = num(v, k)?,
            "threads" => args.threads = num(v, k)?,
            "phase_spread" => args.phase_spread = num(v, k)?,
            "capping" => args.capping = num(v, k)?,
            "dry_run" => args.dry_run = num(v, k)?,
            "turbo" => args.turbo = num(v, k)?,
            "report_every" => args.report_every = num(v, k)?,
            "metrics_out" => args.metrics_out = Some(PathBuf::from(v)),
            "trace_out" => args.trace_out = Some(PathBuf::from(v)),
            "incident_dir" => args.incident_dir = Some(PathBuf::from(v)),
            "fail_leaf" => args.fail_leaf = Some(num(v, k)?),
            "grid_scenario" => args.grid_scenario = Some(v.to_string()),
            "grid_signal_file" => args.grid_signal_file = Some(PathBuf::from(v)),
            other => {
                return Err(format!(
                    "unknown envelope key '{other}' — checkpoint written by a newer dynamo-sim?"
                ))
            }
        }
    }
    Ok(args)
}

/// Resolves the grid flags into a scenario: a named preset, or a
/// custom schedule file parsed by [`GridScenario::parse`].
fn grid_scenario_of(args: &Args) -> Result<Option<GridScenario>, String> {
    if let Some(name) = &args.grid_scenario {
        let scenario =
            GridScenario::preset(name).ok_or_else(|| format!("unknown grid scenario '{name}'"))?;
        return Ok(Some(scenario));
    }
    if let Some(path) = &args.grid_signal_file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "custom".to_string());
        let scenario =
            GridScenario::parse(&name, &text).map_err(|e| format!("{}: {e}", path.display()))?;
        return Ok(Some(scenario));
    }
    Ok(None)
}

/// Builds the datacenter exactly as the original invocation did.
fn build_datacenter(args: &Args) -> Result<Datacenter, String> {
    let mut builder = DatacenterBuilder::new()
        .sbs_per_msb(args.sbs)
        .rpps_per_sb(args.rpps)
        .racks_per_rpp(args.racks)
        .servers_per_rack(args.servers)
        .uniform_service(args.service)
        .generation(args.generation)
        .traffic(args.service, TrafficPattern::flat(args.traffic))
        .capping_enabled(args.capping)
        .dry_run(args.dry_run)
        .worker_threads(args.threads)
        // Requesting more threads than the host has cores would only
        // oversubscribe it; the auto mode clamps (results unchanged).
        .parallel_mode(ParallelMode::PooledAuto)
        .phase_spread(SimDuration::from_secs_f64(args.phase_spread))
        .seed(args.seed);
    if let Some(kw) = args.rpp_kw {
        builder = builder.rpp_rating(Power::from_kilowatts(kw));
    }
    if let Some(kw) = args.sb_kw {
        builder = builder.sb_rating(Power::from_kilowatts(kw));
    }
    if let Some(kw) = args.msb_kw {
        builder = builder.msb_rating(Power::from_kilowatts(kw));
    }
    if args.turbo {
        builder = builder.turbo(args.service);
    }
    if let Some(scenario) = grid_scenario_of(args)? {
        builder = builder.grid(GridConfig::for_scenario(scenario));
    }
    if args.observing() {
        builder = builder.observability(ObsConfig {
            enabled: true,
            incident_dir: args.incident_dir.clone(),
            ..ObsConfig::default()
        });
    }
    builder = builder.profile_ticks(args.profile_ticks);
    builder = builder.fuse(!args.no_fuse);
    Ok(builder.build())
}

fn write_checkpoint(dc: &mut Datacenter, args: &Args, minute: u64) -> Result<PathBuf, String> {
    let dir = args
        .checkpoint_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("checkpoints"));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let cp = Checkpoint {
        envelope: envelope_of(args),
        state: dc.state(),
    };
    let path = dir.join(format!("checkpoint-{minute:05}.snap"));
    std::fs::write(&path, cp.to_snap_bytes()).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

fn load_checkpoint(path: &PathBuf) -> Result<Checkpoint, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Checkpoint::from_snap_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()))
}

/// Flags that define the simulated universe and therefore cannot be
/// changed on `--resume` — the snapshot's envelope is authoritative.
const FROZEN_ON_RESUME: &[&str] = &[
    "--sbs",
    "--rpps",
    "--racks",
    "--servers",
    "--rpp-kw",
    "--sb-kw",
    "--msb-kw",
    "--service",
    "--generation",
    "--traffic",
    "--seed",
    "--phase-spread",
    "--no-capping",
    "--dry-run",
    "--turbo",
    "--fail-leaf",
    "--grid-scenario",
    "--grid-signal-file",
];

/// Merges a resume invocation into the checkpoint's stored arguments:
/// universe-defining flags are frozen, run-control and output flags may
/// be overridden by the current command line.
fn merge_resume_args(stored: Args, current: &Args, argv: &[String]) -> Result<Args, String> {
    let explicit = |flag: &str| argv.iter().any(|a| a == flag);
    for flag in FROZEN_ON_RESUME {
        if explicit(flag) {
            return Err(format!(
                "{flag} cannot be changed on --resume; it is fixed by the checkpoint"
            ));
        }
    }
    let mut merged = stored;
    if explicit("--minutes") {
        merged.minutes = current.minutes;
    }
    if explicit("--report-every") {
        merged.report_every = current.report_every;
    }
    if explicit("--threads") {
        merged.threads = current.threads;
    }
    if explicit("--metrics-out") {
        merged.metrics_out = current.metrics_out.clone();
    }
    if explicit("--trace-out") {
        merged.trace_out = current.trace_out.clone();
    }
    if explicit("--incident-dir") {
        merged.incident_dir = current.incident_dir.clone();
    }
    if explicit("--report-out") {
        merged.report_out = current.report_out.clone();
    }
    if explicit("--profile-ticks") {
        merged.profile_ticks = current.profile_ticks;
    }
    if explicit("--no-fuse") {
        merged.no_fuse = current.no_fuse;
    }
    merged.checkpoint_every = current.checkpoint_every;
    merged.checkpoint_dir = current.checkpoint_dir.clone();
    merged.resume = None;
    Ok(merged)
}

/// Runs minutes `start_minute+1 ..= args.minutes`, injecting the
/// scheduled fault, reporting, and checkpointing. Returns the exit code.
fn run(dc: &mut Datacenter, args: &Args, start_minute: u64) -> i32 {
    for m in (start_minute + 1)..=args.minutes {
        if args.fail_leaf == Some(m) {
            let victim = dc.system().leaf_devices()[0];
            dc.system_mut().fail_primary(victim);
            println!("t={m:>4} min  injected primary failure at {victim}");
        }
        dc.run_for(SimDuration::from_mins(1));
        if m % args.report_every == 0 {
            let stats = dc.fleet().stats();
            println!(
                "t={m:>4} min  power {:>9.2} kW  capped {:>4}  trips {}  alerts {}",
                stats.total_power.as_kilowatts(),
                stats.capped_servers,
                dc.telemetry().breaker_trips().len(),
                dc.system().alerts().len()
            );
        }
        if let Some(every) = args.checkpoint_every {
            if m % every == 0 {
                let started = Instant::now();
                match write_checkpoint(dc, args, m) {
                    Ok(path) => println!(
                        "t={m:>4} min  checkpoint {} ({} ms)",
                        path.display(),
                        started.elapsed().as_millis()
                    ),
                    Err(e) => {
                        eprintln!("error: could not write checkpoint: {e}");
                        return 1;
                    }
                }
            }
        }
    }
    if args.observing() {
        if let Err(e) = dc.system_mut().observability_mut().flush_incidents() {
            eprintln!("error: could not write incident dumps: {e}");
            return 1;
        }
        let obs = dc.system().observability();
        if let Some(path) = &args.metrics_out {
            if let Err(e) = std::fs::write(path, obs.prometheus_text()) {
                eprintln!("error: could not write {}: {e}", path.display());
                return 1;
            }
            println!("metrics:   {}", path.display());
        }
        if let Some(path) = &args.trace_out {
            if let Err(e) = std::fs::write(path, obs.chrome_trace()) {
                eprintln!("error: could not write {}: {e}", path.display());
                return 1;
            }
            println!("trace:     {}", path.display());
        }
        if let Some(dir) = &args.incident_dir {
            println!("incidents: {} in {}", obs.incidents(), dir.display());
        }
    }
    if args.profile_ticks {
        print_tick_profile(dc);
    }
    let report = RunReport::from_datacenter(dc);
    if let Some(path) = &args.report_out {
        if let Err(e) = std::fs::write(path, report.to_string()) {
            eprintln!("error: could not write {}: {e}", path.display());
            return 1;
        }
        println!("report:    {}", path.display());
    }
    println!("\n{report}");
    i32::from(!report.is_healthy())
}

/// Prints the per-phase tick-time attribution recorded by
/// `--profile-ticks`: where the wall clock of a worst-case tick goes,
/// and therefore what Amdahl's law says further threads can buy.
fn print_tick_profile(dc: &Datacenter) {
    let rows = dc.system().observability().tick_phase_profile();
    let total: f64 = rows.iter().map(|&(_, _, sum)| sum).sum();
    println!("\ntick phase profile (wall time inside Datacenter::step):");
    println!(
        "  {:<16} {:>10} {:>12} {:>11} {:>7}",
        "phase", "ticks", "total s", "mean \u{00b5}s", "share"
    );
    for (phase, count, sum) in rows {
        let mean_us = if count > 0 {
            sum / count as f64 * 1e6
        } else {
            0.0
        };
        let share = if total > 0.0 { sum / total * 100.0 } else { 0.0 };
        println!("  {phase:<16} {count:>10} {sum:>12.4} {mean_us:>11.1} {share:>6.1}%");
    }
    println!("  {:<16} {:>10} {total:>12.4}", "total", "");
}

// ---------------------------------------------------------------------------
// replay: re-execute an incident window from the nearest checkpoint.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct ReplayArgs {
    incident: PathBuf,
    from: PathBuf,
    out: PathBuf,
}

fn parse_replay_args(argv: &[String]) -> Result<ReplayArgs, String> {
    let mut incident = None;
    let mut from = None;
    let mut out = PathBuf::from("replay-incidents");
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--incident" => incident = Some(value(flag)?),
            "--from" => from = Some(value(flag)?),
            "--out" => out = value(flag)?,
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown replay flag '{other}' (try --help)")),
        }
    }
    Ok(ReplayArgs {
        incident: incident.ok_or("replay needs --incident FILE")?,
        from: from.ok_or("replay needs --from SNAPSHOT")?,
        out,
    })
}

/// Pulls a `"key":<u64>` field out of a flat incident JSON dump.
fn json_u64_field(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let digits: String = json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Pulls a `"key":"<string>"` field out of a flat incident JSON dump.
fn json_str_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = json.find(&needle)? + needle.len();
    let end = json[start..].find('"')?;
    Some(&json[start..start + end])
}

fn replay(argv: &[String]) -> i32 {
    let rargs = match parse_replay_args(argv) {
        Ok(a) => a,
        Err(e) if e == "help" => {
            println!("{}", usage());
            return 0;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return 2;
        }
    };
    let original = match std::fs::read_to_string(&rargs.incident) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {}: {e}", rargs.incident.display());
            return 2;
        }
    };
    let (Some(seq), Some(at_ms), Some(trigger)) = (
        json_u64_field(&original, "incident"),
        json_u64_field(&original, "at_ms"),
        json_str_field(&original, "trigger"),
    ) else {
        eprintln!(
            "error: {} does not look like an incident dump (missing incident/at_ms/trigger)",
            rargs.incident.display()
        );
        return 2;
    };
    let cp = match load_checkpoint(&rargs.from) {
        Ok(cp) => cp,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let mut args = match args_from_envelope(&cp.envelope) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    if args.incident_dir.is_none() {
        eprintln!("error: the checkpointed run recorded no incidents (--incident-dir was not set)");
        return 2;
    }
    // Redirect regenerated dumps so the originals are never touched.
    args.incident_dir = Some(rargs.out.clone());

    let mut dc = match build_datacenter(&args) {
        Ok(dc) => dc,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    if let Err(e) = dc.restore(&cp.state) {
        eprintln!("error: restore from {}: {e}", rargs.from.display());
        return 2;
    }
    if dc.now().as_millis() > at_ms {
        eprintln!(
            "error: snapshot is at t={} s, after the incident at t={} s; use an earlier checkpoint",
            dc.now().as_secs(),
            at_ms / 1000
        );
        return 2;
    }
    println!(
        "replay: incident {seq} ({trigger}) at t={} s, from checkpoint at t={} s",
        at_ms / 1000,
        dc.now().as_secs()
    );

    let expected = rargs.out.join(format!("incident-{seq:04}-{trigger}.json"));
    let horizon_ms = args.minutes * 60_000;
    while dc.now().as_millis() < horizon_ms {
        if let Some(m) = args.fail_leaf {
            if dc.now().as_millis() == (m - 1) * 60_000 {
                let victim = dc.system().leaf_devices()[0];
                dc.system_mut().fail_primary(victim);
            }
        }
        dc.step();
        if let Err(e) = dc.system_mut().observability_mut().flush_incidents() {
            eprintln!("error: could not write replayed incident dumps: {e}");
            return 2;
        }
        if expected.exists() {
            break;
        }
    }
    let replayed = match std::fs::read_to_string(&expected) {
        Ok(s) => s,
        Err(_) => {
            eprintln!(
                "error: replay reached the run horizon without regenerating incident {seq}; \
                 is {} the right checkpoint for this incident?",
                rargs.from.display()
            );
            return 1;
        }
    };
    if replayed == original {
        println!(
            "replay: {} reproduced byte-for-byte ({} bytes)",
            expected.display(),
            replayed.len()
        );
        0
    } else {
        eprintln!(
            "error: replayed dump {} differs from {} ({} vs {} bytes)",
            expected.display(),
            rargs.incident.display(),
            replayed.len(),
            original.len()
        );
        1
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("replay") {
        std::process::exit(replay(&argv[1..]));
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) if e == "help" => {
            println!("{}", usage());
            return;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            std::process::exit(2);
        }
    };

    let (args, mut dc, start_minute) = if let Some(path) = &args.resume {
        let cp = match load_checkpoint(path) {
            Ok(cp) => cp,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let stored = match args_from_envelope(&cp.envelope) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let merged = match merge_resume_args(stored, &args, &argv) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let started = Instant::now();
        let mut dc = match build_datacenter(&merged) {
            Ok(dc) => dc,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        if let Err(e) = dc.restore(&cp.state) {
            eprintln!("error: restore from {}: {e}", path.display());
            std::process::exit(2);
        }
        let start_minute = dc.now().as_millis() / 60_000;
        if start_minute >= merged.minutes {
            eprintln!(
                "error: checkpoint is at minute {start_minute}, at or past the {} minute horizon; \
                 extend with --minutes",
                merged.minutes
            );
            std::process::exit(2);
        }
        println!(
            "dynamo-sim: resumed {} at t={} min ({} ms load+restore)\n",
            path.display(),
            start_minute,
            started.elapsed().as_millis()
        );
        (merged, dc, start_minute)
    } else {
        let dc = match build_datacenter(&args) {
            Ok(dc) => dc,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        (args, dc, 0)
    };

    if start_minute == 0 {
        println!(
            "dynamo-sim: {} {} servers, capping={}, dry_run={}, {} min at seed {}\n",
            dc.fleet().len(),
            args.service.label(),
            args.capping,
            args.dry_run,
            args.minutes,
            args.seed
        );
    }
    std::process::exit(run(&mut dc, &args, start_minute));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_apply_with_no_flags() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.servers, 20);
        assert!(a.capping);
        assert!(!a.dry_run);
        assert_eq!(a.service, ServiceKind::Web);
    }

    #[test]
    fn full_flag_set_parses() {
        let a = parse(&[
            "--sbs",
            "2",
            "--rpps",
            "3",
            "--racks",
            "4",
            "--servers",
            "10",
            "--rpp-kw",
            "12.5",
            "--service",
            "hadoop",
            "--generation",
            "westmere2011",
            "--traffic",
            "1.5",
            "--minutes",
            "30",
            "--seed",
            "9",
            "--threads",
            "4",
            "--no-capping",
            "--turbo",
        ])
        .unwrap();
        assert_eq!((a.sbs, a.rpps, a.racks, a.servers), (2, 3, 4, 10));
        assert_eq!(a.rpp_kw, Some(12.5));
        assert_eq!(a.service, ServiceKind::Hadoop);
        assert_eq!(a.generation, ServerGeneration::Westmere2011);
        assert!(!a.capping && a.turbo);
        assert_eq!(a.threads, 4);
    }

    #[test]
    fn unknown_flag_and_missing_value_error() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--servers"]).is_err());
        assert!(parse(&["--servers", "lots"]).is_err());
        assert!(parse(&["--service", "excel"]).is_err());
        assert!(parse(&["--minutes", "0"]).is_err());
    }

    #[test]
    fn help_is_signalled() {
        assert_eq!(parse(&["--help"]).unwrap_err(), "help");
        assert!(usage().contains("--no-capping"));
        assert!(usage().contains("--phase-spread"));
        assert!(usage().contains("--checkpoint-every"));
        assert!(usage().contains("--resume"));
        assert!(usage().contains("replay"));
    }

    #[test]
    fn observability_flags_parse() {
        let a = parse(&[
            "--metrics-out",
            "m.prom",
            "--trace-out",
            "t.json",
            "--incident-dir",
            "incidents",
            "--fail-leaf",
            "3",
        ])
        .unwrap();
        assert_eq!(a.metrics_out, Some(PathBuf::from("m.prom")));
        assert_eq!(a.trace_out, Some(PathBuf::from("t.json")));
        assert_eq!(a.incident_dir, Some(PathBuf::from("incidents")));
        assert_eq!(a.fail_leaf, Some(3));
        assert!(usage().contains("--metrics-out"));
        assert!(usage().contains("--fail-leaf"));
    }

    #[test]
    fn profile_ticks_flag_parses_and_stays_out_of_the_envelope() {
        assert!(!parse(&[]).unwrap().profile_ticks);
        let a = parse(&["--profile-ticks"]).unwrap();
        assert!(a.profile_ticks);
        // Profiling observes into the registry, so it must switch
        // recording on by itself.
        assert!(a.observing());
        // It is a run-control/output flag: keeping it out of the
        // checkpoint envelope means old binaries keep reading new
        // checkpoints (the envelope rejects unknown keys).
        assert!(!envelope_of(&a).contains("profile"));
        assert!(usage().contains("--profile-ticks"));
    }

    #[test]
    fn no_fuse_flag_parses_and_stays_out_of_the_envelope() {
        assert!(!parse(&[]).unwrap().no_fuse);
        let a = parse(&["--no-fuse"]).unwrap();
        assert!(a.no_fuse);
        // Fusion computes bit-identical results, so the flag is
        // run-control only: it must not enter the checkpoint envelope
        // (the envelope rejects unknown keys), and a resumed run may
        // flip it freely.
        assert!(!envelope_of(&a).contains("fuse"));
        assert!(usage().contains("--no-fuse"));
        let argv: Vec<String> = ["--no-fuse"].iter().map(|s| s.to_string()).collect();
        let merged = merge_resume_args(parse(&[]).unwrap(), &a, &argv).unwrap();
        assert!(merged.no_fuse);
    }

    #[test]
    fn fail_leaf_is_bounded_by_minutes() {
        assert!(parse(&["--fail-leaf", "0"]).is_err());
        assert!(parse(&["--minutes", "5", "--fail-leaf", "6"]).is_err());
        assert!(parse(&["--minutes", "5", "--fail-leaf", "5"]).is_ok());
    }

    #[test]
    fn phase_spread_parses_and_rejects_bad_values() {
        assert_eq!(parse(&[]).unwrap().phase_spread, 0.0);
        assert_eq!(parse(&["--phase-spread", "1.5"]).unwrap().phase_spread, 1.5);
        assert!(parse(&["--phase-spread"]).is_err());
        assert!(parse(&["--phase-spread", "-2"]).is_err());
        assert!(parse(&["--phase-spread", "NaN"]).is_err());
    }

    #[test]
    fn checkpoint_flags_parse() {
        let a = parse(&[
            "--checkpoint-every",
            "5",
            "--checkpoint-dir",
            "cps",
            "--report-out",
            "report.txt",
        ])
        .unwrap();
        assert_eq!(a.checkpoint_every, Some(5));
        assert_eq!(a.checkpoint_dir, Some(PathBuf::from("cps")));
        assert_eq!(a.report_out, Some(PathBuf::from("report.txt")));
        assert!(parse(&["--checkpoint-every", "0"]).is_err());
        let r = parse(&["--resume", "cps/checkpoint-00005.snap"]).unwrap();
        assert_eq!(r.resume, Some(PathBuf::from("cps/checkpoint-00005.snap")));
    }

    #[test]
    fn envelope_round_trips_every_field() {
        let a = parse(&[
            "--sbs",
            "2",
            "--rpps",
            "3",
            "--racks",
            "4",
            "--servers",
            "10",
            "--rpp-kw",
            "12.5",
            "--msb-kw",
            "2600.0",
            "--service",
            "hadoop",
            "--generation",
            "westmere2011",
            "--traffic",
            "1.5",
            "--minutes",
            "30",
            "--seed",
            "9",
            "--threads",
            "4",
            "--phase-spread",
            "2.25",
            "--no-capping",
            "--turbo",
            "--metrics-out",
            "m.prom",
            "--incident-dir",
            "incidents",
            "--fail-leaf",
            "3",
        ])
        .unwrap();
        let back = args_from_envelope(&envelope_of(&a)).unwrap();
        assert_eq!(envelope_of(&back), envelope_of(&a));
        assert_eq!(back.rpp_kw, Some(12.5));
        assert_eq!(back.msb_kw, Some(2600.0));
        assert_eq!(back.phase_spread, 2.25);
        assert_eq!(back.service, ServiceKind::Hadoop);
        assert_eq!(back.fail_leaf, Some(3));
        assert!(!back.capping && back.turbo);
    }

    #[test]
    fn envelope_rejects_unknown_keys() {
        let e = args_from_envelope("sbs=1\nflux_capacitor=88\n").unwrap_err();
        assert!(e.contains("flux_capacitor"), "{e}");
    }

    #[test]
    fn resume_freezes_universe_flags() {
        let argv: Vec<String> = ["--resume", "x.snap", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let current = parse(&["--resume", "x.snap", "--seed", "7"]).unwrap();
        let e = merge_resume_args(Args::default(), &current, &argv).unwrap_err();
        assert!(e.contains("--seed"), "{e}");

        let argv: Vec<String> = ["--resume", "x.snap", "--minutes", "40", "--threads", "8"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let current = parse(&["--resume", "x.snap", "--minutes", "40", "--threads", "8"]).unwrap();
        let merged = merge_resume_args(Args::default(), &current, &argv).unwrap();
        assert_eq!(merged.minutes, 40);
        assert_eq!(merged.threads, 8);
        assert_eq!(merged.seed, 0, "stored seed wins");
        assert!(merged.resume.is_none());
    }

    #[test]
    fn grid_flags_parse_and_validate() {
        let a = parse(&["--grid-scenario", "curtailment-window"]).unwrap();
        assert_eq!(a.grid_scenario.as_deref(), Some("curtailment-window"));
        assert!(a.grid_signal_file.is_none());
        let a = parse(&["--grid-signal-file", "sig.txt"]).unwrap();
        assert_eq!(a.grid_signal_file, Some(PathBuf::from("sig.txt")));
        assert!(parse(&["--grid-scenario", "blackout"]).is_err());
        assert!(parse(&[
            "--grid-scenario",
            "brownout",
            "--grid-signal-file",
            "sig.txt"
        ])
        .is_err());
        assert!(usage().contains("--grid-scenario"));
        assert!(usage().contains("--grid-signal-file"));
    }

    #[test]
    fn grid_flags_round_trip_the_envelope_and_freeze_on_resume() {
        let a = parse(&["--grid-scenario", "brownout"]).unwrap();
        let back = args_from_envelope(&envelope_of(&a)).unwrap();
        assert_eq!(back.grid_scenario.as_deref(), Some("brownout"));
        let a = parse(&["--grid-signal-file", "sig.txt"]).unwrap();
        let back = args_from_envelope(&envelope_of(&a)).unwrap();
        assert_eq!(back.grid_signal_file, Some(PathBuf::from("sig.txt")));

        let argv: Vec<String> = ["--resume", "x.snap", "--grid-scenario", "brownout"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let current = parse(&["--resume", "x.snap", "--grid-scenario", "brownout"]).unwrap();
        let e = merge_resume_args(Args::default(), &current, &argv).unwrap_err();
        assert!(e.contains("--grid-scenario"), "{e}");
    }

    #[test]
    fn replay_args_parse() {
        let argv: Vec<String> = [
            "--incident",
            "i/incident-0001-failover.json",
            "--from",
            "cps/checkpoint-00005.snap",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let r = parse_replay_args(&argv).unwrap();
        assert_eq!(r.incident, PathBuf::from("i/incident-0001-failover.json"));
        assert_eq!(r.out, PathBuf::from("replay-incidents"));
        assert!(parse_replay_args(&["--incident".to_string()]).is_err());
        assert!(parse_replay_args(&[]).is_err());
    }

    #[test]
    fn incident_json_fields_parse() {
        let json = "{\"incident\":7,\"trigger\":\"failover\",\"at_ms\":123000,\"records\":[]}";
        assert_eq!(json_u64_field(json, "incident"), Some(7));
        assert_eq!(json_u64_field(json, "at_ms"), Some(123000));
        assert_eq!(json_str_field(json, "trigger"), Some("failover"));
        assert_eq!(json_u64_field(json, "missing"), None);
    }
}
