//! `dynamo-sim` — run a simulated datacenter under the Dynamo control
//! plane from the command line.
//!
//! ```text
//! dynamo-sim [--sbs N] [--rpps N] [--racks N] [--servers N]
//!            [--rpp-kw KW] [--sb-kw KW] [--service NAME] [--traffic X]
//!            [--minutes N] [--seed N] [--threads N] [--phase-spread SECS]
//!            [--no-capping] [--dry-run] [--turbo] [--report-every N]
//!            [--metrics-out FILE] [--trace-out FILE] [--incident-dir DIR]
//!            [--fail-leaf MIN]
//! ```
//!
//! Example — an oversubscribed web row that Dynamo must hold:
//!
//! ```text
//! dynamo-sim --rpps 1 --racks 2 --servers 20 --rpp-kw 11 --traffic 1.7
//! ```

use std::path::PathBuf;

use dcsim::SimDuration;
use dynamo::{DatacenterBuilder, ObsConfig, ParallelMode, RunReport};
use powerinfra::Power;
use serverpower::ServerGeneration;
use workloads::{ServiceKind, TrafficPattern};

#[derive(Debug)]
struct Args {
    sbs: usize,
    rpps: usize,
    racks: usize,
    servers: usize,
    rpp_kw: Option<f64>,
    sb_kw: Option<f64>,
    service: ServiceKind,
    generation: ServerGeneration,
    traffic: f64,
    minutes: u64,
    seed: u64,
    threads: usize,
    phase_spread: f64,
    capping: bool,
    dry_run: bool,
    turbo: bool,
    report_every: u64,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    incident_dir: Option<PathBuf>,
    fail_leaf: Option<u64>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sbs: 1,
            rpps: 2,
            racks: 2,
            servers: 20,
            rpp_kw: None,
            sb_kw: None,
            service: ServiceKind::Web,
            generation: ServerGeneration::Haswell2015,
            traffic: 1.2,
            minutes: 10,
            seed: 0,
            threads: 1,
            phase_spread: 0.0,
            capping: true,
            dry_run: false,
            turbo: false,
            report_every: 1,
            metrics_out: None,
            trace_out: None,
            incident_dir: None,
            fail_leaf: None,
        }
    }
}

fn parse_service(name: &str) -> Result<ServiceKind, String> {
    ServiceKind::all()
        .into_iter()
        .find(|k| k.label() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = ServiceKind::all().iter().map(|k| k.label()).collect();
            format!("unknown service '{name}'; one of: {}", names.join(", "))
        })
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    fn value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a str, String> {
        it.next()
            .map(String::as_str)
            .ok_or_else(|| format!("{flag} needs a value"))
    }
    fn num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
        v.parse()
            .map_err(|_| format!("invalid value '{v}' for {flag}"))
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--sbs" => args.sbs = num(value(&mut it, flag)?, flag)?,
            "--rpps" => args.rpps = num(value(&mut it, flag)?, flag)?,
            "--racks" => args.racks = num(value(&mut it, flag)?, flag)?,
            "--servers" => args.servers = num(value(&mut it, flag)?, flag)?,
            "--rpp-kw" => args.rpp_kw = Some(num(value(&mut it, flag)?, flag)?),
            "--sb-kw" => args.sb_kw = Some(num(value(&mut it, flag)?, flag)?),
            "--service" => args.service = parse_service(value(&mut it, flag)?)?,
            "--generation" => {
                let v = value(&mut it, flag)?;
                args.generation = ServerGeneration::from_label(v)
                    .ok_or_else(|| format!("unknown generation '{v}'"))?;
            }
            "--traffic" => args.traffic = num(value(&mut it, flag)?, flag)?,
            "--minutes" => args.minutes = num(value(&mut it, flag)?, flag)?,
            "--seed" => args.seed = num(value(&mut it, flag)?, flag)?,
            "--threads" => args.threads = num(value(&mut it, flag)?, flag)?,
            "--phase-spread" => args.phase_spread = num(value(&mut it, flag)?, flag)?,
            "--report-every" => args.report_every = num(value(&mut it, flag)?, flag)?,
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value(&mut it, flag)?)),
            "--trace-out" => args.trace_out = Some(PathBuf::from(value(&mut it, flag)?)),
            "--incident-dir" => args.incident_dir = Some(PathBuf::from(value(&mut it, flag)?)),
            "--fail-leaf" => args.fail_leaf = Some(num(value(&mut it, flag)?, flag)?),
            "--no-capping" => args.capping = false,
            "--dry-run" => args.dry_run = true,
            "--turbo" => args.turbo = true,
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    if args.minutes == 0 || args.report_every == 0 {
        return Err("--minutes and --report-every must be positive".to_string());
    }
    if args.threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    if !args.phase_spread.is_finite() || args.phase_spread < 0.0 {
        return Err("--phase-spread must be a non-negative number of seconds".to_string());
    }
    if let Some(m) = args.fail_leaf {
        if m == 0 || m > args.minutes {
            return Err(format!(
                "--fail-leaf must be between 1 and --minutes ({}), got {m}",
                args.minutes
            ));
        }
    }
    Ok(args)
}

fn usage() -> &'static str {
    "dynamo-sim: simulate a datacenter under the Dynamo power control plane\n\
     \n\
     topology:  --sbs N --rpps N --racks N --servers N (per rack)\n\
     ratings:   --rpp-kw KW --sb-kw KW (defaults: OCP 190 kW / 1.25 MW)\n\
     workload:  --service web|cache|hadoop|database|newsfeed|f4storage\n\
     \x20          --generation westmere2011|sandybridge2012|ivybridge2013|haswell2015\n\
     \x20          --traffic X (multiplier, 1.0 = nominal) --turbo\n\
     run:       --minutes N --seed N --report-every N\n\
     \x20          --threads N (worker threads for fleet physics and leaf\n\
     \x20          control cycles; results are bit-identical at any count)\n\
     \x20          --phase-spread SECS (stagger controller cycle phases\n\
     \x20          evenly across this window; 0 = lockstep, the default)\n\
     modes:     --no-capping (monitor only) --dry-run (decide, don't act)\n\
     observability (enabling any of these turns recording on):\n\
     \x20          --metrics-out FILE (Prometheus text exposition)\n\
     \x20          --trace-out FILE (chrome-tracing JSON of controller cycles)\n\
     \x20          --incident-dir DIR (flight-recorder incident dumps)\n\
     faults:    --fail-leaf MIN (crash the first leaf controller's primary\n\
     \x20          at the start of that minute; the backup takes over)"
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) if e == "help" => {
            println!("{}", usage());
            return;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            std::process::exit(2);
        }
    };

    let mut builder = DatacenterBuilder::new()
        .sbs_per_msb(args.sbs)
        .rpps_per_sb(args.rpps)
        .racks_per_rpp(args.racks)
        .servers_per_rack(args.servers)
        .uniform_service(args.service)
        .generation(args.generation)
        .traffic(args.service, TrafficPattern::flat(args.traffic))
        .capping_enabled(args.capping)
        .dry_run(args.dry_run)
        .worker_threads(args.threads)
        // Requesting more threads than the host has cores would only
        // oversubscribe it; the auto mode clamps (results unchanged).
        .parallel_mode(ParallelMode::PooledAuto)
        .phase_spread(SimDuration::from_secs_f64(args.phase_spread))
        .seed(args.seed);
    if let Some(kw) = args.rpp_kw {
        builder = builder.rpp_rating(Power::from_kilowatts(kw));
    }
    if let Some(kw) = args.sb_kw {
        builder = builder.sb_rating(Power::from_kilowatts(kw));
    }
    if args.turbo {
        builder = builder.turbo(args.service);
    }
    let observing =
        args.metrics_out.is_some() || args.trace_out.is_some() || args.incident_dir.is_some();
    if observing {
        builder = builder.observability(ObsConfig {
            enabled: true,
            incident_dir: args.incident_dir.clone(),
            ..ObsConfig::default()
        });
    }
    let mut dc = builder.build();

    println!(
        "dynamo-sim: {} {} servers, capping={}, dry_run={}, {} min at seed {}\n",
        dc.fleet().len(),
        args.service.label(),
        args.capping,
        args.dry_run,
        args.minutes,
        args.seed
    );
    for m in 1..=args.minutes {
        if args.fail_leaf == Some(m) {
            let victim = dc.system().leaf_devices()[0];
            dc.system_mut().fail_primary(victim);
            println!("t={m:>4} min  injected primary failure at {victim}");
        }
        dc.run_for(SimDuration::from_mins(1));
        if m % args.report_every == 0 {
            let stats = dc.fleet().stats();
            println!(
                "t={m:>4} min  power {:>9.2} kW  capped {:>4}  trips {}  alerts {}",
                stats.total_power.as_kilowatts(),
                stats.capped_servers,
                dc.telemetry().breaker_trips().len(),
                dc.system().alerts().len()
            );
        }
    }
    if observing {
        if let Err(e) = dc.system_mut().observability_mut().flush_incidents() {
            eprintln!("error: could not write incident dumps: {e}");
            std::process::exit(1);
        }
        let obs = dc.system().observability();
        if let Some(path) = &args.metrics_out {
            if let Err(e) = std::fs::write(path, obs.prometheus_text()) {
                eprintln!("error: could not write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("metrics:   {}", path.display());
        }
        if let Some(path) = &args.trace_out {
            if let Err(e) = std::fs::write(path, obs.chrome_trace()) {
                eprintln!("error: could not write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("trace:     {}", path.display());
        }
        if let Some(dir) = &args.incident_dir {
            println!("incidents: {} in {}", obs.incidents(), dir.display());
        }
    }
    println!("\n{}", RunReport::from_datacenter(&dc));
    if !RunReport::from_datacenter(&dc).is_healthy() {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_apply_with_no_flags() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.servers, 20);
        assert!(a.capping);
        assert!(!a.dry_run);
        assert_eq!(a.service, ServiceKind::Web);
    }

    #[test]
    fn full_flag_set_parses() {
        let a = parse(&[
            "--sbs",
            "2",
            "--rpps",
            "3",
            "--racks",
            "4",
            "--servers",
            "10",
            "--rpp-kw",
            "12.5",
            "--service",
            "hadoop",
            "--generation",
            "westmere2011",
            "--traffic",
            "1.5",
            "--minutes",
            "30",
            "--seed",
            "9",
            "--threads",
            "4",
            "--no-capping",
            "--turbo",
        ])
        .unwrap();
        assert_eq!((a.sbs, a.rpps, a.racks, a.servers), (2, 3, 4, 10));
        assert_eq!(a.rpp_kw, Some(12.5));
        assert_eq!(a.service, ServiceKind::Hadoop);
        assert_eq!(a.generation, ServerGeneration::Westmere2011);
        assert!(!a.capping && a.turbo);
        assert_eq!(a.threads, 4);
    }

    #[test]
    fn unknown_flag_and_missing_value_error() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--servers"]).is_err());
        assert!(parse(&["--servers", "lots"]).is_err());
        assert!(parse(&["--service", "excel"]).is_err());
        assert!(parse(&["--minutes", "0"]).is_err());
    }

    #[test]
    fn help_is_signalled() {
        assert_eq!(parse(&["--help"]).unwrap_err(), "help");
        assert!(usage().contains("--no-capping"));
        assert!(usage().contains("--phase-spread"));
    }

    #[test]
    fn observability_flags_parse() {
        let a = parse(&[
            "--metrics-out",
            "m.prom",
            "--trace-out",
            "t.json",
            "--incident-dir",
            "incidents",
            "--fail-leaf",
            "3",
        ])
        .unwrap();
        assert_eq!(a.metrics_out, Some(PathBuf::from("m.prom")));
        assert_eq!(a.trace_out, Some(PathBuf::from("t.json")));
        assert_eq!(a.incident_dir, Some(PathBuf::from("incidents")));
        assert_eq!(a.fail_leaf, Some(3));
        assert!(usage().contains("--metrics-out"));
        assert!(usage().contains("--fail-leaf"));
    }

    #[test]
    fn fail_leaf_is_bounded_by_minutes() {
        assert!(parse(&["--fail-leaf", "0"]).is_err());
        assert!(parse(&["--minutes", "5", "--fail-leaf", "6"]).is_err());
        assert!(parse(&["--minutes", "5", "--fail-leaf", "5"]).is_ok());
    }

    #[test]
    fn phase_spread_parses_and_rejects_bad_values() {
        assert_eq!(parse(&[]).unwrap().phase_spread, 0.0);
        assert_eq!(parse(&["--phase-spread", "1.5"]).unwrap().phase_spread, 1.5);
        assert!(parse(&["--phase-spread"]).is_err());
        assert!(parse(&["--phase-spread", "-2"]).is_err());
        assert!(parse(&["--phase-spread", "NaN"]).is_err());
    }
}
