//! Dynamo: data center-wide power management (ISCA 2016), end to end.
//!
//! This crate couples every substrate in the workspace into a runnable
//! datacenter simulation with the full Dynamo control plane deployed on
//! top, mirroring the production configuration of §IV of the paper:
//!
//! * the [`powerinfra`] topology (MSB → SB → RPP → rack → server) with
//!   breaker models,
//! * a [`Fleet`] of simulated servers with [`dynamo_agent::Agent`]s,
//!   driven by [`workloads`] service processes and traffic patterns,
//! * a [`DynamoSystem`] of controllers — one
//!   [`dynamo_controller::LeafController`] per RPP (rack level skipped,
//!   as at Facebook), one [`dynamo_controller::UpperController`] per SB
//!   and MSB — coordinated through contractual limits,
//! * [`Telemetry`] recording 3-second device power traces, capping
//!   events, breaker trips and alerts.
//!
//! # Quickstart
//!
//! ```
//! use dcsim::SimDuration;
//! use dynamo::DatacenterBuilder;
//! use workloads::ServiceKind;
//!
//! // A small one-RPP datacenter running web servers, with Dynamo on.
//! let mut dc = DatacenterBuilder::new()
//!     .sbs_per_msb(1)
//!     .rpps_per_sb(1)
//!     .racks_per_rpp(2)
//!     .servers_per_rack(10)
//!     .uniform_service(ServiceKind::Web)
//!     .seed(7)
//!     .build();
//! dc.run_for(SimDuration::from_secs(60));
//! let root = dc.topology().root();
//! assert!(dc.device_power(root).as_watts() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod control_plane;
mod datacenter;
mod events;
mod failover;
mod fleet;
mod grid;
mod leaf_exec;
mod obs;
mod report;
mod telemetry;
mod upper_exec;
mod validator;

pub use builder::{DatacenterBuilder, ServicePlan};
pub use control_plane::{DynamoSystem, SystemConfig};
pub use datacenter::{Datacenter, DatacenterState, ParallelMode};
pub use dynobs::ObsConfig;
pub use dynpool::WorkerPool;
pub use events::{ControllerEvent, ControllerEventKind, PhasePolicy};
pub use fleet::{Fleet, FleetState, FleetStats, TickTraffic};
pub use grid::{DcupsBankConfig, GridConfig, GridLayer, GridSummary};
pub use obs::{Observability, TickPhase, TICK_PHASES};
pub use report::{LevelSummary, RunReport};
pub use telemetry::{Telemetry, TelemetryConfig, TelemetryState};
pub use validator::{BreakerValidator, ValidationAlert, ValidatorState};

/// Maps a workload-simulator service to the controller-facing metadata
/// triple (name, priority, SLA floor). This is the seam where production
/// Dynamo would read a service metadata store.
pub fn service_class_of(kind: workloads::ServiceKind) -> dynamo_controller::ServiceClass {
    dynamo_controller::ServiceClass::new(kind.label(), kind.priority(), kind.sla_min_cap())
}
