//! The simulated server fleet: agents, workloads, failures.
//!
//! # Hot-path layout (struct of arrays)
//!
//! The per-tick physics step runs entirely over flat parallel arrays —
//! no `Agent` → [`Server`] → actuator pointer chasing. The mutable
//! physics of every server (demanded watts, RAPL limit, settled output,
//! first-step flag, liveness) lives in `f64` arrays owned by the fleet,
//! and one branchless pass of [`serverpower::kernel::step_batch`]
//! advances all of them per tick. Power-curve evaluation goes through
//! the per-generation [`PowerLut`] uniform-grid tables, and the per-tick
//! Ornstein-Uhlenbeck `exp`/`sqrt` coefficients are hoisted per service
//! ([`OuCoeffs`]) instead of recomputed per server.
//!
//! ## Batched run order (stable permutation)
//!
//! At build time servers are grouped into *runs* of equal
//! `(generation, service, turbo)` so the demand loop has no per-element
//! branching on multiplier index, static cap, or turbo factor. The
//! grouping is a *leaf-local stable permutation*: server ids, leaf span
//! membership, per-server RNG streams, and every externally visible
//! array stay in server-id order, so results are bit-identical to the
//! unpermuted layout (each workload process owns a private RNG stream,
//! making evaluation order unobservable). Positions (`perm`/`inv`) are
//! only an internal storage order.
//!
//! The id-ordered views ([`Fleet::power_of`], [`Fleet::power_sum`],
//! per-leaf partials) are scattered back from the batch arrays each
//! step with the same ascending-index `f64` folds as before, so all
//! aggregates remain bit-identical at any worker count.
//!
//! ## State ownership
//!
//! While the cache is clean, the arrays are authoritative for demand,
//! output, init flag, and liveness; the scalar [`Server`] models hold
//! stale copies. Before agent RPC cycles run (which read true power
//! through the server model), [`Fleet::sync_servers_for_control`]
//! flushes the due leaves' state back into the servers, and
//! [`Fleet::absorb_caps`] pulls freshly programmed RAPL limits back
//! into the `limit_w` array afterwards. Out-of-band mutation through
//! [`Fleet::agent_mut`] flushes *all* servers first and marks the cache
//! dirty: queries fall back to live per-agent reads until the next step
//! resynchronizes the arrays from the servers. The breaker blackout
//! path uses [`Fleet::set_server_alive`], which keeps the cache exact
//! instead.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dcsim::snap::{
    get_bool_vec, get_f64_vec, get_u64_vec, put_bool_slice, put_f64_slice, put_u64_slice,
    SnapError, SnapReader, SnapWriter, Snapshot,
};
use dcsim::{SimDuration, SimRng, SimTime};
use dynamo_agent::Agent;
use dynpool::{WorkerPool, MAX_WORKERS};
use powerinfra::Power;
use serverpower::{kernel, PowerLut, Server, ServerConfig};
use workloads::{OuCoeffs, ServiceKind, ServiceWorkload, TrafficPattern};

/// Aggregate fleet statistics at an instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetStats {
    /// Servers currently under a RAPL cap.
    pub capped_servers: usize,
    /// Servers whose agent process is down.
    pub agents_down: usize,
    /// Total true power of all servers.
    pub total_power: Power,
}

/// Analytical main-memory roofline of one worst-case tick: the bytes
/// the hot loop must move through DRAM when every leaf redraws, every
/// controller cycles, and the tick samples telemetry, assuming the
/// caches hold nothing across passes (every fleet-wide pass re-streams
/// its arrays) but everything within one [`FUSE_TILE`] (a tile touched
/// by consecutive fused stages stays resident).
///
/// Computed from the live allocation sizes, not constants, so a layout
/// regression — an array added to the settle stride, a mask unpacked
/// back to `f64` — moves the number even before it shows up in wall
/// time. `crates/bench` records both flavours in
/// `BENCH_controlplane.json` and gates the fused roofline against a
/// baked baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickTraffic {
    /// Bytes per worst-case tick with fusion on: one streaming pass
    /// over the hot set — settle, absorb, telemetry partial and
    /// per-leaf partial all ride the tile while it is resident — plus
    /// the memoized total-power fold (O(leaves), counted exactly).
    pub fused: u64,
    /// Bytes per worst-case tick with fusion off: the same hot set
    /// re-streamed by each phase-at-a-time pass — settle, control
    /// sync, absorb, and the flat telemetry fold.
    pub unfused: u64,
}

/// Precomputed per-worker partitions for [`Fleet::step_parallel`],
/// cached so the hot path never re-carves chunk boundaries.
///
/// When the control plane's leaf spans are known, partitions are
/// leaf-aligned and built by the same chunking rule the leaf dispatch
/// uses (`div_ceil` over whole leaves), so a server's worker assignment
/// is identical across fleet stepping and leaf control cycles. Leaf
/// alignment also guarantees each worker's id range equals its position
/// range (the batch permutation is leaf-local), which is what lets a
/// worker scatter drawn power into its own disjoint id-order slice.
#[derive(Debug, Default)]
struct Partition {
    /// Requested thread count this partition was computed for.
    threads: usize,
    /// Per-worker agent index ranges (ascending, tiling `0..n`).
    agents: Vec<Range<usize>>,
    /// Per-worker leaf index ranges (empty ranges when the fleet has no
    /// leaf spans).
    leaves: Vec<Range<usize>>,
}

/// One maximal contiguous position range of servers sharing a
/// generation, service, and turbo setting. All batch-loop constants of
/// the demand computation are hoisted here once at build time.
struct Run {
    /// Position range (`perm` order) this run covers.
    range: Range<usize>,
    /// The generation's shared power LUT.
    lut: Arc<PowerLut>,
    /// Idle watts of the generation (LUT node 0).
    idle_w: f64,
    /// Turbo power factor; meaningful only when `turbo` is true.
    turbo_pf: f64,
    /// Turbo performance factor (1.0 when turbo is off).
    turbo_perf: f64,
    /// Whether turbo is enabled for this run. A per-run branch, hoisted
    /// out of the element loop: routing non-turbo servers through the
    /// turbo expression with factor 1.0 would not be a float identity.
    turbo: bool,
    /// [`ServiceKind::index`] — the traffic-multiplier / static-cap /
    /// OU-coefficient index for the whole run.
    svc: u8,
}

/// Every server in the datacenter: its [`Agent`] (which owns the
/// [`Server`] model), its service assignment, its utilization process,
/// and fleet-level failure injection.
pub struct Fleet {
    agents: Vec<Agent>,
    services: Vec<ServiceKind>,
    /// Per-server workload processes, in *position* order (see `perm`).
    generators: Vec<ServiceWorkload>,
    /// Per-service traffic patterns; services without an entry see
    /// constant nominal traffic.
    traffic: HashMap<ServiceKind, TrafficPattern>,
    /// Optional static utilization clamp per service, indexed by
    /// [`ServiceKind::index`] (the pre-Dynamo baseline for the search
    /// cluster in §IV-D: "all servers ... were required to limit their
    /// clock frequency").
    static_util_caps: [Option<f64>; ServiceKind::COUNT],
    /// Probability per server-hour of an agent crash.
    crash_rate_per_hour: f64,
    /// Watchdog restart delay.
    watchdog_delay: SimDuration,
    /// Crashed agents pending restart: (server, restart time).
    pending_restarts: Vec<(u32, SimTime)>,
    rng: SimRng,
    /// Position → server id. Identity without leaf spans; with spans, a
    /// leaf-local stable sort by `(generation, service, turbo)`.
    perm: Vec<u32>,
    /// Server id → position (inverse of `perm`).
    inv: Vec<u32>,
    /// Maximal equal-key position ranges with hoisted loop constants.
    runs: Vec<Run>,
    /// Batch state, position order: demanded watts (incl. turbo premium).
    demand_w: Vec<f64>,
    /// Batch state, position order: RAPL limit in watts
    /// (`f64::INFINITY` when uncapped, making `min` branchless).
    limit_w: Vec<f64>,
    /// Batch state, position order: settled RAPL output watts.
    out_w: Vec<f64>,
    /// Bit-packed first-step mask, one bit per server (bit set = not
    /// yet live-stepped, forcing the exact first-step snap). Packed in
    /// per-leaf regions (see [`Fleet::mask_base`]) so leaf-aligned
    /// worker partitions own disjoint words. The hot/cold split: what
    /// used to be two `f64` arrays in the settle stride is now a
    /// quarter byte per server.
    not_init_bits: Vec<u64>,
    /// Bit-packed liveness mask, one bit per server (bit set = alive),
    /// same region layout as [`Fleet::not_init_bits`].
    alive_bits: Vec<u64>,
    /// Mask region directory: entry `l` is `(first word, first
    /// position)` of leaf `l`'s mask words (one region covering
    /// everything when spans are unknown), with a final sentinel of
    /// `(total words, server count)`. Every region starts on a fresh
    /// word, so a worker owning whole leaves owns whole words — the
    /// parallel-carving invariant the packed masks rest on.
    mask_base: Vec<(usize, usize)>,
    /// Post-clamp demand utilization at the last step, position order.
    util: Vec<f64>,
    /// Uniform RAPL time constant of the fleet's servers.
    tau_secs: f64,
    /// SoA hot path: true power draw (watts) of each server after its
    /// last physics step, in server-id order (`out_w * alive`, scattered
    /// through `perm`).
    power_w: Vec<f64>,
    /// Set by [`Fleet::agent_mut`]: an embedder may have changed server
    /// power outside the step path, so cached sums cannot be trusted
    /// until the next step rewrites them. Queries fall back to live
    /// per-agent reads while set; the servers were flushed to be fresh
    /// at the moment the flag was raised.
    power_dirty: bool,
    /// The control plane's per-leaf server spans (ascending, tiling
    /// `0..n`), when known. Empty otherwise.
    leaf_spans: Vec<Range<usize>>,
    /// Monotone count of [`Fleet::set_leaf_spans`] registrations.
    /// Re-registering spans resets every per-leaf epoch to zero, so any
    /// consumer keying cached aggregates on those epochs must also
    /// compare this generation — a restarted epoch can coincidentally
    /// reach a pre-re-span watermark.
    span_generation: u64,
    /// Per-leaf power partial sums (watts), rebuilt by every step as
    /// the ascending flat fold over the leaf's span.
    leaf_power_w: Vec<f64>,
    /// Cached per-worker partition for the last-used thread count.
    partition: Partition,
    /// Persistent worker pool shared with the leaf control plane.
    /// Without one, [`Fleet::step_parallel`] falls back to per-call
    /// scoped threads (the legacy dispatch, kept for comparison).
    pool: Option<Arc<WorkerPool>>,
    /// Physics ticks completed so far; drives the leaf-phased demand
    /// redraw schedule. Incremented exactly once per step.
    tick_index: u64,
    /// Demand redraw period in ticks. `1` (the default) redraws every
    /// workload every tick — bit-identical to the always-redraw model.
    /// Larger values hold each leaf's demand between leaf-phased
    /// redraws, which is what lets a fully settled leaf skip physics.
    /// Only effective once leaf spans are registered.
    demand_hold: u32,
    /// Per-leaf active-set flags, bit-packed (bit `l % 64` of word
    /// `l / 64`): set iff the leaf's last physics pass was a *fixed
    /// point* (changed no bit of `out_w`/`not_init`), so repeating it
    /// with unchanged inputs is the exact floating-point identity.
    /// Cleared at every limit / liveness / out-of-band mutation site; a
    /// redraw steps the leaf regardless.
    settled_bits: Vec<u64>,
    /// Unpacked mirror of [`Fleet::settled_bits`], one `bool` per leaf.
    /// The step paths need per-worker `&mut` carving at leaf
    /// granularity, which packed words cannot give without `unsafe`;
    /// the bits are unpacked into this persistent scratch before a step
    /// and repacked after. Authoritative only inside a step.
    settled_scratch: Vec<bool>,
    /// Per-leaf tick of the last demand redraw; held redraws scale the
    /// workload step `dt` by the elapsed tick count.
    last_draw_tick: Vec<u64>,
    /// Per-leaf monotone power version: bumped whenever the leaf's
    /// drawn power may have changed bits. Aggregation layers key cached
    /// subtree sums on epoch watermarks over these.
    leaf_epoch: Vec<u64>,
    /// Per-leaf [`Fleet::leaf_epoch`] at the last control flush
    /// (`u64::MAX` = never flushed), used to skip redundant
    /// server-model flushes for leaves whose state cannot have moved.
    flushed_epoch: Vec<u64>,
    /// Per-leaf [`Fleet::last_draw_tick`] at the last control flush
    /// (utilization changes only on redraw, which an epoch bump does
    /// not always witness).
    flushed_draw: Vec<u64>,
    /// Per-leaf monotone *agent* version: bumped whenever something a
    /// leaf controller's pull could observe changes outside the power
    /// epochs — an agent process crashing or restarting, a server's
    /// liveness flipping, or a full resync after out-of-band mutation.
    /// Together with [`Fleet::leaf_epoch`] and
    /// [`Fleet::last_draw_tick`] this is the control plane's staleness
    /// witness for quiescent-cycle elision.
    agent_epoch: Vec<u64>,
    /// Maintained count of servers with a RAPL limit programmed,
    /// authoritative while the power cache is clean. Caps change only
    /// through controller RPC cycles — which [`Fleet::absorb_caps`]
    /// brackets — or through [`Fleet::agent_mut`], which dirties the
    /// cache; [`Fleet::resync_from_servers`] recounts on recovery. Keeps
    /// [`Fleet::stats`] O(1) instead of scanning every agent.
    capped_count: usize,
    /// Maintained count of agents whose process is down, same clean
    /// cache contract as [`Fleet::capped_count`]. Crash and watchdog
    /// restart both route through [`Fleet::process_failures`].
    down_count: usize,
    /// Hot-loop fusion switch (tile-at-a-time stepping plus the
    /// incremental total-power fold). On by default; run-control only —
    /// results are bit-identical either way, so the flag is not part of
    /// the checkpoint envelope.
    fuse: bool,
    /// Memoized flat fold over `power_w` (the [`Fleet::stats`] total)
    /// as `f64` bits, valid while the generation/epoch-sum marks below
    /// match the live watermark. Interior-mutable (relaxed atomics, not
    /// `Cell`, so `Fleet` stays `Sync` for the scoped fan-outs) because
    /// `stats` is a `&self` query; only the simulation thread writes.
    total_power_bits: AtomicU64,
    /// `span_generation` the cached total was folded at.
    total_power_gen: AtomicU64,
    /// `Σ leaf_epoch` the cached total was folded at. Leaf epochs are
    /// monotone within a span generation and every `power_w` mutation
    /// bumps one (or dirties the cache / bumps the generation), so sum
    /// equality proves the fold's inputs are byte-identical — the same
    /// watermark argument the breaker-tree draw cache rests on.
    total_power_esum: AtomicU64,
    /// Whether the memoized fold is populated at all (cleared on
    /// restore, on fusion toggles, and by the periodic full refresh).
    total_power_valid: AtomicBool,
}

/// Fused-step tile size in servers: each tile's demand draw, settle
/// kernel, and power scatter run back-to-back while the tile's slices
/// are cache-hot, instead of three leaf-wide array passes. A tile
/// spans ~5 hot `f64` arrays × 8 B × 2048 ≈ 80 KiB — comfortably
/// L2-resident — and must stay a multiple of 64 so every tile covers
/// whole mask words (and of the kernel lane width, which divides 64).
const FUSE_TILE: usize = 2048;

impl Fleet {
    /// Assembles a fleet. `configs[i]` and `services[i]` describe server
    /// `i`; workload processes get independent RNG streams from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `configs` and `services` differ in length or are empty.
    pub fn new(configs: Vec<ServerConfig>, services: Vec<ServiceKind>, mut rng: SimRng) -> Self {
        assert_eq!(
            configs.len(),
            services.len(),
            "configs/services length mismatch"
        );
        assert!(!configs.is_empty(), "fleet cannot be empty");
        let n = configs.len();
        let mut agents = Vec::with_capacity(n);
        let mut generators = Vec::with_capacity(n);
        let mut agent_rng = rng.split("agents");
        let mut wl_rng = rng.split("workloads");
        for (i, (config, &service)) in configs.into_iter().zip(&services).enumerate() {
            let server = Server::new(i as u32, config);
            agents.push(Agent::new(server, agent_rng.split_index(i as u64)));
            generators.push(ServiceWorkload::new(service, wl_rng.split_index(i as u64)));
        }
        let tau_secs = agents[0].server().rapl().tau_secs();
        let mut fleet = Fleet {
            agents,
            services,
            generators,
            traffic: HashMap::new(),
            static_util_caps: [None; ServiceKind::COUNT],
            crash_rate_per_hour: 0.0,
            watchdog_delay: SimDuration::from_secs(30),
            pending_restarts: Vec::new(),
            rng: rng.split("fleet-events"),
            perm: Vec::new(),
            inv: Vec::new(),
            runs: Vec::new(),
            demand_w: Vec::new(),
            limit_w: Vec::new(),
            out_w: Vec::new(),
            not_init_bits: Vec::new(),
            alive_bits: Vec::new(),
            mask_base: Vec::new(),
            util: Vec::new(),
            tau_secs,
            // Pre-step, every server's RAPL output is zero, matching a
            // live read.
            power_w: vec![0.0; n],
            power_dirty: false,
            leaf_spans: Vec::new(),
            span_generation: 0,
            leaf_power_w: Vec::new(),
            partition: Partition::default(),
            pool: None,
            tick_index: 0,
            demand_hold: 1,
            settled_bits: Vec::new(),
            settled_scratch: Vec::new(),
            last_draw_tick: Vec::new(),
            leaf_epoch: Vec::new(),
            flushed_epoch: Vec::new(),
            flushed_draw: Vec::new(),
            agent_epoch: Vec::new(),
            // Fresh agents are all running with no limit programmed.
            capped_count: 0,
            down_count: 0,
            fuse: true,
            total_power_bits: AtomicU64::new(0),
            total_power_gen: AtomicU64::new(0),
            total_power_esum: AtomicU64::new(0),
            total_power_valid: AtomicBool::new(false),
        };
        fleet.rebuild_layout();
        fleet
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// Always false — construction rejects empty fleets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sets the traffic pattern for a service.
    pub fn set_traffic(&mut self, kind: ServiceKind, pattern: TrafficPattern) {
        self.traffic.insert(kind, pattern);
    }

    /// Applies a static utilization clamp to every server of a service
    /// (the frequency-limit baseline of §IV-D).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is outside `(0, 1]`.
    pub fn set_static_util_cap(&mut self, kind: ServiceKind, cap: Option<f64>) {
        if let Some(c) = cap {
            assert!(
                c > 0.0 && c <= 1.0,
                "static util cap must be in (0,1], got {c}"
            );
        }
        self.static_util_caps[kind.index()] = cap;
    }

    /// Enables agent crash injection at the given rate (per server-hour).
    pub fn set_crash_rate(&mut self, per_hour: f64) {
        assert!(
            per_hour >= 0.0 && per_hour.is_finite(),
            "invalid crash rate {per_hour}"
        );
        self.crash_rate_per_hour = per_hour;
    }

    /// Attaches a persistent worker pool for [`Fleet::step_parallel`].
    /// The datacenter shares one pool between fleet physics and leaf
    /// control cycles so both fan-outs reuse the same parked workers.
    pub fn attach_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// Detaches the worker pool; parallel stepping falls back to
    /// per-call scoped threads.
    pub fn detach_pool(&mut self) {
        self.pool = None;
    }

    /// Registers the control plane's per-leaf server spans so the step
    /// maintains per-leaf power partials and leaf-aligned worker
    /// partitions, and regroups the batch arrays leaf-locally by
    /// `(generation, service, turbo)`. Spans must ascend and tile
    /// `0..len`. Also resets the per-leaf active-set state (everything
    /// starts unsettled and unflushed) and bumps the span generation,
    /// which invalidates any epoch-keyed aggregate cache built over the
    /// previous spans (the restarted epochs could otherwise collide
    /// with stale watermarks).
    pub fn set_leaf_spans(&mut self, spans: &[Range<usize>]) {
        debug_assert!(spans
            .iter()
            .zip(spans.iter().skip(1))
            .all(|(a, b)| a.end == b.start));
        self.leaf_spans = spans.to_vec();
        self.span_generation += 1;
        self.rebuild_layout();
        self.leaf_power_w = vec![0.0; spans.len()];
        leaf_partials(&self.power_w, 0, &self.leaf_spans, &mut self.leaf_power_w);
        self.partition = Partition::default();
        self.settled_bits = vec![0; spans.len().div_ceil(64)];
        self.settled_scratch = vec![false; spans.len()];
        // Pretend every leaf just redrew: a mid-run re-span must not
        // integrate the whole pre-span history into the next redraw.
        self.last_draw_tick = vec![self.tick_index; spans.len()];
        self.leaf_epoch = vec![0; spans.len()];
        self.flushed_epoch = vec![u64::MAX; spans.len()];
        self.flushed_draw = vec![u64::MAX; spans.len()];
        self.agent_epoch = vec![0; spans.len()];
    }

    /// Sets the demand redraw period in ticks.
    ///
    /// `1` (the default) redraws every workload every tick and is
    /// bit-identical to the always-redraw model — active-set skipping
    /// can never engage because every leaf is due every tick. Larger
    /// periods are an opt-in model coarsening: each leaf holds its
    /// demand between redraws (leaf-phased, so `1/hold` of the leaves
    /// redraw per tick) and a redraw integrates the skipped interval by
    /// scaling the workload step `dt` by the elapsed tick count.
    /// Between redraws a fully settled leaf's physics pass is the exact
    /// floating-point identity and is skipped outright.
    ///
    /// Only effective once leaf spans are registered; fleets without
    /// spans always redraw.
    ///
    /// # Panics
    ///
    /// Panics if `ticks` is zero.
    pub fn set_demand_hold(&mut self, ticks: u32) {
        assert!(ticks >= 1, "demand hold must be >= 1 tick, got {ticks}");
        self.demand_hold = ticks;
    }

    /// Current demand redraw period (ticks).
    pub fn demand_hold(&self) -> u32 {
        self.demand_hold
    }

    /// Number of leaves currently settled (their next physics pass
    /// would be the exact identity). Zero when leaf spans are unknown.
    pub fn settled_leaf_count(&self) -> usize {
        self.settled_bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Enables or disables hot-loop fusion: tile-at-a-time stepping and
    /// the incremental total-power fold. On by default. Run-control
    /// only — results are bit-identical either way — so the flag stays
    /// out of the checkpoint envelope; `off` is the bisection reference
    /// that recomputes everything from scratch each tick.
    pub fn set_fuse(&mut self, on: bool) {
        self.fuse = on;
        self.total_power_valid.store(false, Ordering::Relaxed);
    }

    /// Whether hot-loop fusion is enabled.
    pub fn fuse(&self) -> bool {
        self.fuse
    }

    /// Whether leaf `leaf` is settled (bit read of the packed flags).
    fn is_settled(&self, leaf: usize) -> bool {
        (self.settled_bits[leaf / 64] >> (leaf % 64)) & 1 == 1
    }

    /// Sets or clears leaf `leaf`'s settled flag.
    fn set_settled(&mut self, leaf: usize, v: bool) {
        let (w, b) = (leaf / 64, leaf % 64);
        if v {
            self.settled_bits[w] |= 1 << b;
        } else {
            self.settled_bits[w] &= !(1 << b);
        }
    }

    /// Unpacks the settled bits into the per-leaf `bool` scratch the
    /// step paths carve per worker. Zero-alloc: the scratch is sized at
    /// span registration.
    fn unpack_settled(&mut self) {
        for (l, s) in self.settled_scratch.iter_mut().enumerate() {
            *s = (self.settled_bits[l / 64] >> (l % 64)) & 1 == 1;
        }
    }

    /// Repacks the step's per-leaf settled results into the bits.
    fn pack_settled(&mut self) {
        self.settled_bits.fill(0);
        for (l, &s) in self.settled_scratch.iter().enumerate() {
            if s {
                self.settled_bits[l / 64] |= 1 << (l % 64);
            }
        }
    }

    /// Whether server at position `pos` is alive (packed-mask read).
    fn alive_at(&self, pos: usize) -> bool {
        bit_at(&self.mask_base, &self.alive_bits, pos)
    }

    /// Whether server at position `pos` still awaits its first live
    /// step (packed-mask read).
    fn not_init_at(&self, pos: usize) -> bool {
        bit_at(&self.mask_base, &self.not_init_bits, pos)
    }

    /// Sets or clears the liveness bit of position `pos`.
    fn set_alive_at(&mut self, pos: usize, v: bool) {
        let (w, b) = bit_addr(&self.mask_base, pos);
        if v {
            self.alive_bits[w] |= 1 << b;
        } else {
            self.alive_bits[w] &= !(1 << b);
        }
    }

    /// Sets or clears the first-step bit of position `pos`.
    fn set_not_init_at(&mut self, pos: usize, v: bool) {
        let (w, b) = bit_addr(&self.mask_base, pos);
        if v {
            self.not_init_bits[w] |= 1 << b;
        } else {
            self.not_init_bits[w] &= !(1 << b);
        }
    }

    /// Per-leaf monotone power epochs (see the field docs). Aggregation
    /// caches key subtree sums on watermarks over these; meaningful
    /// only while the power cache is clean.
    pub(crate) fn leaf_epochs(&self) -> &[u64] {
        &self.leaf_epoch
    }

    /// The registered per-leaf server spans (empty when unknown).
    pub(crate) fn leaf_spans(&self) -> &[Range<usize>] {
        &self.leaf_spans
    }

    /// Monotone count of span registrations; see the field docs. Any
    /// cache keyed on [`Fleet::leaf_epochs`] watermarks is only valid
    /// while this matches the generation it was built against.
    pub(crate) fn leaf_span_generation(&self) -> u64 {
        self.span_generation
    }

    /// Whether cached power arrays are currently untrustworthy because
    /// of out-of-band mutation (see [`Fleet::agent_mut`]).
    pub(crate) fn power_cache_dirty(&self) -> bool {
        self.power_dirty
    }

    /// Per-leaf monotone agent versions (see the field docs).
    pub(crate) fn agent_epochs(&self) -> &[u64] {
        &self.agent_epoch
    }

    /// Per-leaf tick index of the last demand redraw.
    pub(crate) fn last_draw_ticks(&self) -> &[u64] {
        &self.last_draw_tick
    }

    /// The maintained per-leaf power partials (watts), when the fleet
    /// knows the control plane's leaf spans and the cache is clean.
    /// `partials[l]` is the ascending flat fold over leaf `l`'s span.
    pub(crate) fn leaf_power_partials(&self) -> Option<&[f64]> {
        (!self.power_dirty && !self.leaf_power_w.is_empty()).then_some(&self.leaf_power_w[..])
    }

    /// Bumps the agent epoch of the leaf owning server `sid` (no-op
    /// while spans are unknown: without spans the control plane never
    /// elides, so there is nothing to witness).
    fn bump_agent_epoch(&mut self, sid: usize) {
        if self.leaf_spans.is_empty() {
            return;
        }
        let leaf = self.leaf_spans.partition_point(|s| s.end <= sid);
        if let Some(span) = self.leaf_spans.get(leaf) {
            if span.contains(&sid) {
                self.agent_epoch[leaf] += 1;
            }
        }
    }

    /// Test hook: forces every leaf back into the active set, making
    /// the next step recompute everything — the skip-free reference the
    /// active-set equivalence tests compare against.
    #[cfg(test)]
    fn clear_settled(&mut self) {
        self.settled_bits.fill(0);
    }

    /// (Re)builds the batch layout: the leaf-local stable permutation,
    /// its inverse, the equal-key runs, and the position-ordered state
    /// arrays. Existing state (including each server's workload process
    /// and RNG stream) is carried through the re-ordering untouched.
    fn rebuild_layout(&mut self) {
        let n = self.agents.len();
        // Gather current state back to id order under the old perm. At
        // construction (`perm` empty) the generators are already in id
        // order and the physics state takes its pre-step defaults.
        let mut gens_id: Vec<Option<ServiceWorkload>> =
            std::iter::repeat_with(|| None).take(n).collect();
        let mut demand_id = vec![0.0; n];
        let mut limit_id = vec![f64::INFINITY; n];
        let mut out_id = vec![0.0; n];
        let mut ni_id = vec![1.0; n];
        let mut alive_id = vec![1.0; n];
        let mut util_id = vec![0.0; n];
        if self.perm.is_empty() {
            for (id, g) in self.generators.drain(..).enumerate() {
                gens_id[id] = Some(g);
                // Pre-step demand power is the idle draw (demand
                // utilization 0), matching a live `demand_power` read.
                demand_id[id] = self.agents[id].server().lut().idle_w();
                alive_id[id] = if self.agents[id].server().is_alive() {
                    1.0
                } else {
                    0.0
                };
            }
        } else {
            for (pos, g) in self.generators.drain(..).enumerate() {
                let id = self.perm[pos] as usize;
                gens_id[id] = Some(g);
                demand_id[id] = self.demand_w[pos];
                limit_id[id] = self.limit_w[pos];
                out_id[id] = self.out_w[pos];
                // `mask_base` still describes the old packing here: the
                // mask words are rebuilt only after the new permutation
                // is in place, so this gather decodes the old layout.
                ni_id[id] = if bit_at(&self.mask_base, &self.not_init_bits, pos) {
                    1.0
                } else {
                    0.0
                };
                alive_id[id] = if bit_at(&self.mask_base, &self.alive_bits, pos) {
                    1.0
                } else {
                    0.0
                };
                util_id[id] = self.util[pos];
            }
        }
        // The new permutation: identity, then a stable sort of each
        // leaf span by run key. Without spans the layout stays identity
        // (arbitrary worker chunks must keep id range == position
        // range).
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for span in &self.leaf_spans {
            perm[span.clone()].sort_by_key(|&id| {
                run_key(
                    self.agents[id as usize].server(),
                    self.services[id as usize],
                )
            });
        }
        let mut inv = vec![0u32; n];
        for (pos, &id) in perm.iter().enumerate() {
            inv[id as usize] = pos as u32;
        }
        self.generators = perm
            .iter()
            .map(|&id| gens_id[id as usize].take().expect("perm is a permutation"))
            .collect();
        self.demand_w = perm.iter().map(|&id| demand_id[id as usize]).collect();
        self.limit_w = perm.iter().map(|&id| limit_id[id as usize]).collect();
        self.out_w = perm.iter().map(|&id| out_id[id as usize]).collect();
        self.util = perm.iter().map(|&id| util_id[id as usize]).collect();
        self.perm = perm;
        self.inv = inv;
        // Repack the bit masks under the new permutation and region
        // directory (one word-aligned region per leaf).
        self.rebuild_mask_layout();
        for pos in 0..n {
            let id = self.perm[pos] as usize;
            if ni_id[id] != 0.0 {
                self.set_not_init_at(pos, true);
            }
            if alive_id[id] != 0.0 {
                self.set_alive_at(pos, true);
            }
        }
        self.rebuild_runs();
        // Regrouping permutes `limit_w`; re-derive the maintained
        // tallies from the rebuilt state so mid-run span registration
        // cannot skew them.
        self.capped_count = self.limit_w.iter().filter(|l| l.is_finite()).count();
        self.down_count = self.agents.iter().filter(|a| !a.is_running()).count();
    }

    /// Rebuilds the mask region directory and zeroes the bit words for
    /// the current leaf spans: one region per leaf (one covering region
    /// when spans are unknown), each starting on a fresh word, plus a
    /// `(total words, server count)` sentinel. Word alignment per leaf
    /// is what lets leaf-aligned worker partitions carve the packed
    /// words with safe `split_at_mut`.
    fn rebuild_mask_layout(&mut self) {
        let n = self.agents.len();
        self.mask_base.clear();
        let mut w = 0usize;
        if self.leaf_spans.is_empty() {
            self.mask_base.push((0, 0));
            w = n.div_ceil(64);
        } else {
            for span in &self.leaf_spans {
                self.mask_base.push((w, span.start));
                w += span.len().div_ceil(64);
            }
        }
        self.mask_base.push((w, n));
        self.alive_bits.clear();
        self.alive_bits.resize(w, 0);
        self.not_init_bits.clear();
        self.not_init_bits.resize(w, 0);
    }

    /// Scans the position order into maximal equal-key runs with their
    /// hoisted demand-loop constants.
    fn rebuild_runs(&mut self) {
        let n = self.agents.len();
        self.runs.clear();
        let key_at = |pos: usize| {
            let id = self.perm[pos] as usize;
            run_key(self.agents[id].server(), self.services[id])
        };
        let mut start = 0;
        for pos in 1..=n {
            if pos < n && key_at(pos) == key_at(start) {
                continue;
            }
            let id = self.perm[start] as usize;
            let server = self.agents[id].server();
            let lut = server.lut().clone();
            let turbo = server.config().turbo;
            self.runs.push(Run {
                range: start..pos,
                idle_w: lut.idle_w(),
                lut,
                turbo_pf: turbo.map_or(1.0, |t| t.power_factor),
                turbo_perf: turbo.map_or(1.0, |t| t.perf_factor),
                turbo: turbo.is_some(),
                svc: self.services[id].index() as u8,
            });
            start = pos;
        }
    }

    /// The service running on server `sid`.
    pub fn service_of(&self, sid: u32) -> ServiceKind {
        self.services[sid as usize]
    }

    /// The agent (and host) of server `sid`.
    pub fn agent(&self, sid: u32) -> &Agent {
        &self.agents[sid as usize]
    }

    /// Mutable agent access (experiment hooks). Flushes the batch-owned
    /// physics state back into every server model (so the caller
    /// observes fresh state) and marks the cached power arrays dirty:
    /// power queries fall back to live per-agent reads until the next
    /// step resynchronizes the arrays from the servers.
    pub fn agent_mut(&mut self, sid: u32) -> &mut Agent {
        if !self.power_dirty {
            self.flush_span_to_servers(0..self.agents.len());
            self.power_dirty = true;
        }
        &mut self.agents[sid as usize]
    }

    /// Mutable access to the whole agent array, indexed by server id.
    /// The parallel control plane partitions this into disjoint
    /// per-leaf spans with `split_at_mut`. Does not mark the power
    /// cache dirty: the controller RPC path only programs RAPL limits,
    /// which change drawn power at the next physics step, never
    /// immediately. (The control plane brackets its cycles with
    /// [`Fleet::sync_servers_for_control`] / [`Fleet::absorb_caps`].)
    pub(crate) fn agents_mut(&mut self) -> &mut [Agent] {
        &mut self.agents
    }

    /// Pushes the batch-owned physics state of the due leaves' servers
    /// into their [`Server`] models, so the agent RPC cycles about to
    /// run observe fresh power. With unknown leaf spans every server is
    /// flushed. A no-op while the cache is dirty (the servers are
    /// already the authority then).
    ///
    /// A leaf whose epoch and redraw tick both match its last flush is
    /// skipped: `out_w`/`not_init` changes always bump the epoch, and
    /// utilization changes only on redraw, so matching markers prove
    /// the server models already hold this exact state.
    pub(crate) fn sync_servers_for_control(&mut self, due: &[usize]) {
        if self.power_dirty {
            return;
        }
        if self.leaf_spans.is_empty() {
            self.flush_span_to_servers(0..self.agents.len());
        } else {
            for &leaf in due {
                if self.flushed_epoch[leaf] == self.leaf_epoch[leaf]
                    && self.flushed_draw[leaf] == self.last_draw_tick[leaf]
                {
                    continue;
                }
                self.flush_span_to_servers(self.leaf_spans[leaf].clone());
                self.flushed_epoch[leaf] = self.leaf_epoch[leaf];
                self.flushed_draw[leaf] = self.last_draw_tick[leaf];
            }
        }
    }

    /// Pulls the RAPL limits the due leaves' controllers just programmed
    /// back into the batch `limit_w` array. The counterpart of
    /// [`Fleet::sync_servers_for_control`], run after the RPC cycles. A
    /// no-op while the cache is dirty (the next step resynchronizes
    /// everything from the servers anyway).
    /// Any limit whose bit pattern actually changed unsettles its leaf
    /// (the settle target moved, so the next pass is no longer known to
    /// be the identity). The leaf epoch is *not* bumped here: a limit
    /// change affects drawn power only at the next physics step, which
    /// bumps the epoch itself if anything moves.
    pub(crate) fn absorb_caps(&mut self, due: &[usize]) {
        if self.power_dirty {
            return;
        }
        if self.leaf_spans.is_empty() {
            for id in 0..self.agents.len() {
                let pos = self.inv[id] as usize;
                let new = self.agents[id]
                    .current_cap()
                    .map_or(f64::INFINITY, |l| l.as_watts());
                let old = self.limit_w[pos];
                if new.is_finite() != old.is_finite() {
                    if new.is_finite() {
                        self.capped_count += 1;
                    } else {
                        self.capped_count -= 1;
                    }
                }
                self.limit_w[pos] = new;
            }
        } else {
            for &leaf in due {
                let mut changed = false;
                for id in self.leaf_spans[leaf].clone() {
                    let pos = self.inv[id] as usize;
                    let new = self.agents[id]
                        .current_cap()
                        .map_or(f64::INFINITY, |l| l.as_watts());
                    let old = self.limit_w[pos];
                    if new.to_bits() != old.to_bits() {
                        if new.is_finite() != old.is_finite() {
                            if new.is_finite() {
                                self.capped_count += 1;
                            } else {
                                self.capped_count -= 1;
                            }
                        }
                        self.limit_w[pos] = new;
                        changed = true;
                    }
                }
                if changed {
                    self.set_settled(leaf, false);
                }
            }
        }
    }

    /// True when the control plane may run its fused per-leaf
    /// sync → cycle → absorb dispatch instead of the three
    /// phase-at-a-time passes ([`Fleet::sync_servers_for_control`],
    /// the RPC cycles, [`Fleet::absorb_caps`]): fusion is on, leaf
    /// spans are known (the per-leaf flush and the limit carving need
    /// them), and the power cache is clean (while dirty, sync and
    /// absorb are deliberate no-ops the fused path does not replicate,
    /// so the caller must fall back to the unfused passes).
    pub(crate) fn control_fuse_ready(&self) -> bool {
        self.fuse && !self.power_dirty && !self.leaf_spans.is_empty()
    }

    /// Splits the fleet into the parts a fused control dispatch needs:
    /// the agent array and the RAPL limit array as carvable `&mut`
    /// slices (the parallel paths partition both at the same leaf-span
    /// boundaries — leaf-aligned spans make position ranges equal id
    /// ranges), plus a read-only [`FuseShared`] view of everything
    /// [`fuse_sync_leaf`] and [`fuse_absorb_leaf`] read. All distinct
    /// fields, so the three borrows coexist.
    pub(crate) fn fused_control_parts(&mut self) -> (&mut [Agent], &mut [f64], FuseShared<'_>) {
        (
            &mut self.agents,
            &mut self.limit_w,
            FuseShared {
                perm: &self.perm,
                inv: &self.inv,
                util: &self.util,
                out_w: &self.out_w,
                not_init_bits: &self.not_init_bits,
                mask_base: &self.mask_base,
                leaf_spans: &self.leaf_spans,
                leaf_epoch: &self.leaf_epoch,
                last_draw: &self.last_draw_tick,
                flushed_epoch: &self.flushed_epoch,
                flushed_draw: &self.flushed_draw,
            },
        )
    }

    /// Applies the side effects a fused dispatch deferred past the
    /// join: flush markers for every due leaf (each was flushed — or
    /// proven fresh — by [`fuse_sync_leaf`] before its cycle),
    /// unsettling for leaves whose limits changed, and the
    /// capped-server tally folded in ascending due order — exactly the
    /// mutations [`Fleet::sync_servers_for_control`] and
    /// [`Fleet::absorb_caps`] would have made. Deferring is safe
    /// because the control tick never moves epochs or redraw ticks, so
    /// the markers recorded here equal what the per-leaf flush saw.
    pub(crate) fn finish_fused_control(&mut self, due: &[usize], changed: &[bool], deltas: &[i64]) {
        debug_assert!(!self.power_dirty, "fused dispatch ran on a dirty cache");
        for &leaf in due {
            self.flushed_epoch[leaf] = self.leaf_epoch[leaf];
            self.flushed_draw[leaf] = self.last_draw_tick[leaf];
            if changed[leaf] {
                self.set_settled(leaf, false);
            }
            self.capped_count = (self.capped_count as i64 + deltas[leaf]) as usize;
        }
    }

    /// Flushes batch state (demand utilization, RAPL output, init flag)
    /// into the scalar server models for one id/position span (the two
    /// coincide on leaf spans and on the full fleet).
    fn flush_span_to_servers(&mut self, span: Range<usize>) {
        for pos in span {
            let id = self.perm[pos] as usize;
            let initialized = !bit_at(&self.mask_base, &self.not_init_bits, pos);
            self.agents[id]
                .server_mut()
                .sync_physics(self.util[pos], self.out_w[pos], initialized);
        }
    }

    /// Rebuilds the batch arrays from the scalar server models after
    /// out-of-band mutation (the `power_dirty` recovery path).
    ///
    /// Unconditionally unsettles every leaf and bumps every epoch: the
    /// embedder may have changed anything (turbo flips and other config
    /// edits included), and a post-resync pass can be a fixed point
    /// while drawn power still changed (e.g. a server killed through
    /// [`Fleet::agent_mut`] freezes the kernel but zeroes its draw), so
    /// the bump cannot be left to the step.
    fn resync_from_servers(&mut self) {
        for pos in 0..self.agents.len() {
            let (out, initialized, alive, limit) = {
                let server = self.agents[self.perm[pos] as usize].server();
                debug_assert_eq!(server.rapl().tau_secs(), self.tau_secs);
                (
                    server.rapl().output().as_watts(),
                    server.rapl().is_initialized(),
                    server.is_alive(),
                    server
                        .rapl()
                        .limit()
                        .map_or(f64::INFINITY, |l| l.as_watts()),
                )
            };
            self.out_w[pos] = out;
            self.set_not_init_at(pos, !initialized);
            self.set_alive_at(pos, alive);
            self.limit_w[pos] = limit;
        }
        self.settled_bits.fill(0);
        for e in &mut self.leaf_epoch {
            *e += 1;
        }
        for e in &mut self.agent_epoch {
            *e += 1;
        }
        // Out-of-band mutation may have programmed limits or toggled
        // agent processes directly: recount the maintained tallies.
        self.capped_count = self.limit_w.iter().filter(|l| l.is_finite()).count();
        self.down_count = self.agents.iter().filter(|a| !a.is_running()).count();
    }

    /// Powers a server on or off (breaker blackout path), keeping the
    /// cached power arrays exact — a dead server reads zero watts
    /// immediately, a revived one its retained actuator output.
    pub fn set_server_alive(&mut self, sid: u32, alive: bool) {
        let i = sid as usize;
        self.agents[i].server_mut().set_alive(alive);
        // A pull to this server now reads differently regardless of
        // whether the power cache is clean.
        self.bump_agent_epoch(i);
        if self.power_dirty {
            // Live reads are in effect; the next step resynchronizes.
            return;
        }
        let pos = self.inv[i] as usize;
        self.set_alive_at(pos, alive);
        // Keep the scalar model coherent for any direct observer.
        let initialized = !self.not_init_at(pos);
        self.agents[i]
            .server_mut()
            .sync_physics(self.util[pos], self.out_w[pos], initialized);
        self.power_w[i] = if alive { self.out_w[pos] } else { 0.0 };
        if !self.leaf_spans.is_empty() {
            let leaf = self.leaf_spans.partition_point(|s| s.end <= i);
            if let Some(span) = self.leaf_spans.get(leaf) {
                if span.contains(&i) {
                    self.leaf_power_w[leaf] = self.power_w[span.clone()].iter().sum();
                    // The liveness mask is a kernel input and drawn
                    // power changed right now: unsettle and version.
                    self.set_settled(leaf, false);
                    self.leaf_epoch[leaf] += 1;
                }
            }
        }
    }

    /// The true (physics) power of server `sid` right now.
    pub fn power_of(&self, sid: u32) -> Power {
        if self.power_dirty {
            self.agents[sid as usize].server().power()
        } else {
            Power::from_watts(self.power_w[sid as usize])
        }
    }

    /// Sum of true power over a set of servers: an ascending flat scan
    /// of the cached watts array, bit-identical to summing live reads.
    pub fn power_sum(&self, sids: &[u32]) -> Power {
        if self.power_dirty {
            return sids
                .iter()
                .map(|&s| self.agents[s as usize].server().power())
                .sum();
        }
        Power::from_watts(sids.iter().map(|&s| self.power_w[s as usize]).sum())
    }

    /// Sum of true power over a contiguous server-id range — the
    /// telemetry fast path for grid topologies, where every device's
    /// subtree is one such range.
    pub(crate) fn power_sum_range(&self, range: Range<usize>) -> Power {
        if self.power_dirty {
            return self.agents[range].iter().map(|a| a.server().power()).sum();
        }
        Power::from_watts(self.power_w[range].iter().sum())
    }

    /// The maintained power partial of leaf `leaf`, if the fleet knows
    /// the control plane's leaf spans and the cache is clean. The
    /// partial is the ascending flat fold over the leaf's span — the
    /// exact sum [`Fleet::power_sum`] would compute over its ids.
    pub(crate) fn leaf_power(&self, leaf: usize) -> Option<Power> {
        if self.power_dirty {
            return None;
        }
        self.leaf_power_w.get(leaf).map(|&w| Power::from_watts(w))
    }

    /// Sum of true power over a set of servers, restricted to one
    /// service (Figure 15's per-service breakdown).
    pub fn power_sum_of_service(&self, sids: &[u32], kind: ServiceKind) -> Power {
        if self.power_dirty {
            return sids
                .iter()
                .filter(|&&s| self.services[s as usize] == kind)
                .map(|&s| self.agents[s as usize].server().power())
                .sum();
        }
        Power::from_watts(
            sids.iter()
                .filter(|&&s| self.services[s as usize] == kind)
                .map(|&s| self.power_w[s as usize])
                .sum(),
        )
    }

    /// The post-clamp demand utilization server `sid` was stepped with
    /// most recently.
    pub fn utilization_of(&self, sid: u32) -> f64 {
        self.util[self.inv[sid as usize] as usize]
    }

    /// The utilization level server `sid` actually achieves under its
    /// current cap — [`Server::achieved_utilization`] evaluated against
    /// the batch-owned drawn power, so it is correct even while the
    /// scalar model is stale.
    pub fn achieved_utilization_of(&self, sid: u32) -> f64 {
        let i = sid as usize;
        let server = self.agents[i].server();
        if self.power_dirty {
            return server.achieved_utilization();
        }
        if !self.alive_at(self.inv[i] as usize) {
            return 0.0;
        }
        server.achieved_utilization_at(Power::from_watts(self.power_w[i]))
    }

    /// Advances every server by one tick: samples traffic, draws demand
    /// from each workload process, applies static clamps, steps server
    /// physics in one batched kernel pass, and processes agent
    /// crash/restart events.
    pub fn step(&mut self, now: SimTime, dt: SimDuration) {
        if self.power_dirty {
            self.resync_from_servers();
        }
        self.unpack_settled();
        // Built inline (not via a &self helper) so `ctx` holds
        // field-precise borrows of `runs`/`perm`, disjoint from the
        // mutable state arrays below.
        let ctx = StepCtx {
            runs: &self.runs,
            perm: &self.perm,
            mults: self.traffic_multipliers(now),
            caps: self.static_util_caps,
            ou: ou_coefficients(dt),
            alpha: kernel::settle_alpha(dt.as_secs_f64(), self.tau_secs),
            now,
            dt,
            tick: self.tick_index,
            hold: self.demand_hold as u64,
            tile: if self.fuse { FUSE_TILE } else { usize::MAX },
        };
        if self.leaf_spans.is_empty() {
            step_range(
                &ctx,
                0,
                &mut self.generators,
                &mut self.util,
                &mut self.demand_w,
                &self.limit_w,
                &self.alive_bits,
                &mut self.not_init_bits,
                &mut self.out_w,
                &mut self.power_w,
            );
        } else {
            step_leaves(
                &ctx,
                0,
                0,
                &self.leaf_spans,
                &mut self.generators,
                &mut self.util,
                &mut self.demand_w,
                &self.limit_w,
                &self.alive_bits,
                &mut self.not_init_bits,
                &self.mask_base,
                &mut self.out_w,
                &mut self.power_w,
                &mut self.leaf_power_w,
                &mut self.settled_scratch,
                &mut self.last_draw_tick,
                &mut self.leaf_epoch,
            );
        }
        self.pack_settled();
        self.power_dirty = false;
        self.tick_index += 1;
        self.process_failures(now, dt);
    }

    /// Like [`Fleet::step`] but advances servers on `threads` workers.
    /// Per-server workload processes own independent RNG streams, so
    /// the result is bit-identical to the serial path — this mirrors
    /// the production deployment where one consolidated binary runs
    /// ~100 controller/agent threads (§IV).
    ///
    /// With a pool attached ([`Fleet::attach_pool`]) the dispatch wakes
    /// the persistent parked workers over precomputed leaf-aligned
    /// partitions and allocates nothing once warm; without one it falls
    /// back to per-call scoped threads over the same partitions.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or a worker thread panics.
    pub fn step_parallel(&mut self, now: SimTime, dt: SimDuration, threads: usize) {
        assert!(threads >= 1, "need at least one worker thread");
        if threads == 1 || self.agents.len() < 64 {
            return self.step(now, dt);
        }
        if self.power_dirty {
            self.resync_from_servers();
        }
        match &self.pool {
            Some(pool) => {
                let pool = Arc::clone(pool);
                self.step_pooled(now, dt, threads, &pool);
            }
            None => self.step_scoped(now, dt, threads),
        }
        self.power_dirty = false;
        self.tick_index += 1;
        self.process_failures(now, dt);
    }

    /// Pooled parallel step: per-worker jobs over the precomputed
    /// partition, zero-alloc once the partition is cached.
    fn step_pooled(&mut self, now: SimTime, dt: SimDuration, threads: usize, pool: &WorkerPool) {
        let workers = threads.min(pool.workers());
        self.ensure_partition(workers);
        self.unpack_settled();
        let ctx = StepCtx {
            runs: &self.runs,
            perm: &self.perm,
            mults: self.traffic_multipliers(now),
            caps: self.static_util_caps,
            ou: ou_coefficients(dt),
            alpha: kernel::settle_alpha(dt.as_secs_f64(), self.tau_secs),
            now,
            dt,
            tick: self.tick_index,
            hold: self.demand_hold as u64,
            tile: if self.fuse { FUSE_TILE } else { usize::MAX },
        };

        /// One worker's disjoint view of the fleet arrays.
        struct StepJob<'a> {
            generators: &'a mut [ServiceWorkload],
            util: &'a mut [f64],
            demand_w: &'a mut [f64],
            /// This worker's packed mask words. Leaf-aligned partitions
            /// own whole words (every leaf's region starts on a fresh
            /// word; spanless chunks are rounded to word multiples).
            not_init_bits: &'a mut [u64],
            alive_bits: &'a [u64],
            /// Global mask directory entries for this worker's leaves
            /// (`lrange.len() + 1` entries, the last the next worker's
            /// first region / the sentinel).
            word_base: &'a [(usize, usize)],
            out_w: &'a mut [f64],
            power_w: &'a mut [f64],
            /// This worker's leaves: partial-sum outputs, active-set
            /// state, and the matching global spans.
            leaf_power_w: &'a mut [f64],
            settled: &'a mut [bool],
            last_draw: &'a mut [u64],
            leaf_epoch: &'a mut [u64],
            leaf_spans: &'a [Range<usize>],
            /// Server id / position of element 0 of the local slices
            /// (the two coincide on leaf-aligned partitions).
            base: usize,
            /// Global index of the first leaf in `leaf_spans`.
            leaf_base: usize,
        }

        let limit_w = &self.limit_w;
        let alive_bits_all = &self.alive_bits;
        let mask_base = &self.mask_base;
        let mut jobs: [Option<StepJob>; MAX_WORKERS] = std::array::from_fn(|_| None);
        let njobs = self.partition.agents.len();
        {
            let mut generators = &mut self.generators[..];
            let mut util = &mut self.util[..];
            let mut demand_w = &mut self.demand_w[..];
            let mut not_init_bits = &mut self.not_init_bits[..];
            let mut out_w = &mut self.out_w[..];
            let mut power_w = &mut self.power_w[..];
            let mut leaf_power_w = &mut self.leaf_power_w[..];
            let mut settled = &mut self.settled_scratch[..];
            let mut last_draw = &mut self.last_draw_tick[..];
            let mut leaf_epoch = &mut self.leaf_epoch[..];
            let mut consumed = 0usize;
            let mut leaves_consumed = 0usize;
            let mut words_consumed = 0usize;
            for (job, (arange, lrange)) in jobs
                .iter_mut()
                .zip(self.partition.agents.iter().zip(&self.partition.leaves))
            {
                debug_assert_eq!(arange.start, consumed, "partition must tile the fleet");
                let take = arange.end - arange.start;
                let (g, rest) = generators.split_at_mut(take);
                generators = rest;
                let (u, rest) = util.split_at_mut(take);
                util = rest;
                let (d, rest) = demand_w.split_at_mut(take);
                demand_w = rest;
                let (o, rest) = out_w.split_at_mut(take);
                out_w = rest;
                let (p, rest) = power_w.split_at_mut(take);
                power_w = rest;
                // This worker's mask word range: leaf regions when
                // spans are known, position/64 otherwise (chunk starts
                // are 64-multiples by construction).
                let (wlo, whi) = if self.leaf_spans.is_empty() {
                    (arange.start / 64, arange.end.div_ceil(64))
                } else {
                    (mask_base[lrange.start].0, mask_base[lrange.end].0)
                };
                debug_assert_eq!(wlo, words_consumed, "mask words must tile the fleet");
                let (nib, rest) = not_init_bits.split_at_mut(whi - wlo);
                not_init_bits = rest;
                words_consumed = whi;
                debug_assert_eq!(lrange.start, leaves_consumed);
                let ltake = lrange.end - lrange.start;
                let (lp, rest) = leaf_power_w.split_at_mut(ltake);
                leaf_power_w = rest;
                let (st, rest) = settled.split_at_mut(ltake);
                settled = rest;
                let (ld, rest) = last_draw.split_at_mut(ltake);
                last_draw = rest;
                let (le, rest) = leaf_epoch.split_at_mut(ltake);
                leaf_epoch = rest;
                *job = Some(StepJob {
                    generators: g,
                    util: u,
                    demand_w: d,
                    not_init_bits: nib,
                    alive_bits: &alive_bits_all[wlo..whi],
                    word_base: &mask_base[lrange.start..lrange.end + 1],
                    out_w: o,
                    power_w: p,
                    leaf_power_w: lp,
                    settled: st,
                    last_draw: ld,
                    leaf_epoch: le,
                    leaf_spans: &self.leaf_spans[lrange.clone()],
                    base: consumed,
                    leaf_base: lrange.start,
                });
                consumed = arange.end;
                leaves_consumed = lrange.end;
            }
        }
        let ctx = &ctx;
        pool.run_on(&mut jobs[..njobs], |_w, slot| {
            let job = slot.as_mut().expect("partition slot filled above");
            let lo = job.base;
            let n = job.generators.len();
            if job.leaf_spans.is_empty() {
                step_range(
                    ctx,
                    lo,
                    job.generators,
                    job.util,
                    job.demand_w,
                    &limit_w[lo..lo + n],
                    job.alive_bits,
                    job.not_init_bits,
                    job.out_w,
                    job.power_w,
                );
            } else {
                step_leaves(
                    ctx,
                    lo,
                    job.leaf_base,
                    job.leaf_spans,
                    job.generators,
                    job.util,
                    job.demand_w,
                    &limit_w[lo..lo + n],
                    job.alive_bits,
                    job.not_init_bits,
                    job.word_base,
                    job.out_w,
                    job.power_w,
                    job.leaf_power_w,
                    job.settled,
                    job.last_draw,
                    job.leaf_epoch,
                );
            }
        });
        self.pack_settled();
    }

    /// No-pool parallel step: per-call scoped threads over the same
    /// leaf-aligned partitions the pooled path uses. Kept as the
    /// fallback and the baseline the pool is benchmarked against.
    fn step_scoped(&mut self, now: SimTime, dt: SimDuration, threads: usize) {
        self.ensure_partition(threads);
        self.unpack_settled();
        let ctx = StepCtx {
            runs: &self.runs,
            perm: &self.perm,
            mults: self.traffic_multipliers(now),
            caps: self.static_util_caps,
            ou: ou_coefficients(dt),
            alpha: kernel::settle_alpha(dt.as_secs_f64(), self.tau_secs),
            now,
            dt,
            tick: self.tick_index,
            hold: self.demand_hold as u64,
            tile: if self.fuse { FUSE_TILE } else { usize::MAX },
        };
        let parts: Vec<(Range<usize>, Range<usize>)> = self
            .partition
            .agents
            .iter()
            .cloned()
            .zip(self.partition.leaves.iter().cloned())
            .collect();
        let limit_w = &self.limit_w;
        let alive_bits_all = &self.alive_bits;
        let mask_base = &self.mask_base;
        let leaf_spans = &self.leaf_spans;
        let mut generators = &mut self.generators[..];
        let mut util = &mut self.util[..];
        let mut demand_w = &mut self.demand_w[..];
        let mut not_init_bits = &mut self.not_init_bits[..];
        let mut out_w = &mut self.out_w[..];
        let mut power_w = &mut self.power_w[..];
        let mut leaf_power_w = &mut self.leaf_power_w[..];
        let mut settled = &mut self.settled_scratch[..];
        let mut last_draw = &mut self.last_draw_tick[..];
        let mut leaf_epoch = &mut self.leaf_epoch[..];
        let mut words_consumed = 0usize;
        let ctx = &ctx;
        std::thread::scope(|scope| {
            for (arange, lrange) in parts {
                let take = arange.end - arange.start;
                let (g, rest) = generators.split_at_mut(take);
                generators = rest;
                let (u, rest) = util.split_at_mut(take);
                util = rest;
                let (d, rest) = demand_w.split_at_mut(take);
                demand_w = rest;
                let (o, rest) = out_w.split_at_mut(take);
                out_w = rest;
                let (p, rest) = power_w.split_at_mut(take);
                power_w = rest;
                let (wlo, whi) = if leaf_spans.is_empty() {
                    (arange.start / 64, arange.end.div_ceil(64))
                } else {
                    (mask_base[lrange.start].0, mask_base[lrange.end].0)
                };
                debug_assert_eq!(wlo, words_consumed, "mask words must tile the fleet");
                let (nib, rest) = not_init_bits.split_at_mut(whi - wlo);
                not_init_bits = rest;
                words_consumed = whi;
                let ab = &alive_bits_all[wlo..whi];
                let wb = &mask_base[lrange.start..lrange.end + 1];
                let ltake = lrange.end - lrange.start;
                let (lp, rest) = leaf_power_w.split_at_mut(ltake);
                leaf_power_w = rest;
                let (st, rest) = settled.split_at_mut(ltake);
                settled = rest;
                let (ld, rest) = last_draw.split_at_mut(ltake);
                last_draw = rest;
                let (le, rest) = leaf_epoch.split_at_mut(ltake);
                leaf_epoch = rest;
                let leaf_base = lrange.start;
                let spans = &leaf_spans[lrange];
                let lo = arange.start;
                scope.spawn(move || {
                    let n = g.len();
                    if spans.is_empty() {
                        step_range(
                            ctx,
                            lo,
                            g,
                            u,
                            d,
                            &limit_w[lo..lo + n],
                            ab,
                            nib,
                            o,
                            p,
                        );
                    } else {
                        step_leaves(
                            ctx,
                            lo,
                            leaf_base,
                            spans,
                            g,
                            u,
                            d,
                            &limit_w[lo..lo + n],
                            ab,
                            nib,
                            wb,
                            o,
                            p,
                            lp,
                            st,
                            ld,
                            le,
                        );
                    }
                });
            }
        });
        self.pack_settled();
    }

    /// Rebuilds the cached per-worker partition if the thread count
    /// changed. Leaf-aligned when spans are known — the same
    /// whole-leaf `div_ceil` chunking the leaf dispatch uses, so a
    /// server's worker assignment is stable across both fan-outs.
    fn ensure_partition(&mut self, threads: usize) {
        let threads = threads.clamp(1, MAX_WORKERS);
        if self.partition.threads == threads && !self.partition.agents.is_empty() {
            return;
        }
        let mut agents = Vec::new();
        let mut leaves = Vec::new();
        if self.leaf_spans.is_empty() {
            let n = self.agents.len();
            // Chunk starts must fall on 64-server boundaries so every
            // worker owns whole packed-mask words. Which partition the
            // step runs over is unobservable (per-server RNG streams,
            // ascending folds), so the rounding cannot change results.
            let per = n.div_ceil(threads).div_ceil(64) * 64;
            let mut start = 0;
            while start < n {
                let end = (start + per).min(n);
                agents.push(start..end);
                leaves.push(0..0);
                start = end;
            }
        } else {
            let l = self.leaf_spans.len();
            let per = l.div_ceil(threads.min(l));
            let mut lo = 0;
            while lo < l {
                let hi = (lo + per).min(l);
                agents.push(self.leaf_spans[lo].start..self.leaf_spans[hi - 1].end);
                leaves.push(lo..hi);
                lo = hi;
            }
        }
        self.partition = Partition {
            threads,
            agents,
            leaves,
        };
    }

    /// Per-service traffic multipliers at `now`, indexed by
    /// [`ServiceKind::index`]. A fixed array instead of a per-tick
    /// `HashMap`: the fleet step allocates nothing.
    fn traffic_multipliers(&self, now: SimTime) -> [f64; ServiceKind::COUNT] {
        let mut mults = [1.0; ServiceKind::COUNT];
        for kind in ServiceKind::all() {
            if let Some(pattern) = self.traffic.get(&kind) {
                mults[kind.index()] = pattern.multiplier(now);
            }
        }
        mults
    }

    /// Failure injection: crashes are per-server Poisson events; the
    /// watchdog restarts agents after a fixed delay (§III-E).
    fn process_failures(&mut self, now: SimTime, dt: SimDuration) {
        if self.crash_rate_per_hour > 0.0 {
            let p = self.crash_rate_per_hour * dt.as_secs_f64() / 3600.0;
            for i in 0..self.agents.len() {
                if self.agents[i].is_running() && self.rng.chance(p) {
                    self.agents[i].crash();
                    self.down_count += 1;
                    self.bump_agent_epoch(i);
                    self.pending_restarts
                        .push((i as u32, now + self.watchdog_delay));
                }
            }
        }
        let due: Vec<u32> = self
            .pending_restarts
            .iter()
            .filter(|&&(_, t)| t <= now)
            .map(|&(s, _)| s)
            .collect();
        self.pending_restarts.retain(|&(_, t)| t > now);
        for s in due {
            if !self.agents[s as usize].is_running() {
                self.down_count -= 1;
            }
            self.agents[s as usize].restart();
            self.bump_agent_epoch(s as usize);
        }
    }

    /// Mean performance factor over a set of servers (1.0 = turbo-off
    /// uncapped baseline). Computed from the batch arrays while the
    /// cache is clean — the same arithmetic as
    /// [`Server::performance_factor`], against the same post-step state.
    pub fn mean_performance(&self, sids: &[u32]) -> f64 {
        if sids.is_empty() {
            return f64::NAN;
        }
        if self.power_dirty {
            return sids
                .iter()
                .map(|&s| self.agents[s as usize].server().performance_factor())
                .sum::<f64>()
                / sids.len() as f64;
        }
        let sum: f64 = sids
            .iter()
            .map(|&s| {
                let i = s as usize;
                let pos = self.inv[i] as usize;
                if !self.alive_at(pos) {
                    return 0.0;
                }
                let run = &self.runs[self.runs.partition_point(|r| r.range.end <= pos)];
                let demand = self.demand_w[pos];
                let drawn = self.power_w[i];
                let reduction = if demand <= 0.0 {
                    0.0
                } else {
                    (1.0 - drawn / demand).clamp(0.0, 1.0)
                };
                run.turbo_perf / (1.0 + serverpower::capping_slowdown(reduction))
            })
            .sum();
        sum / sids.len() as f64
    }

    /// Instantaneous fleet statistics. While the power cache is clean
    /// this is O(1) in the cap/down tallies (maintained at their
    /// mutation sites) plus one flat sum over the cached watts; the
    /// dirty path falls back to live per-agent scans.
    pub fn stats(&self) -> FleetStats {
        if self.power_dirty {
            return FleetStats {
                capped_servers: self
                    .agents
                    .iter()
                    .filter(|a| a.current_cap().is_some())
                    .count(),
                agents_down: self.agents.iter().filter(|a| !a.is_running()).count(),
                total_power: self.agents.iter().map(|a| a.server().power()).sum(),
            };
        }
        FleetStats {
            capped_servers: self.capped_count,
            agents_down: self.down_count,
            total_power: Power::from_watts(self.total_power_w()),
        }
    }

    /// The flat ascending fold over `power_w` — the total every sample
    /// reports. With fusion on, the fold is *incremental*: it is
    /// memoized against the `(span generation, Σ leaf epoch)` watermark
    /// and only recomputed when some leaf's drawn power actually moved
    /// bits, so a quiescent fleet answers telemetry samples in O(leaves)
    /// instead of O(servers). The cached value is the bit-exact fold it
    /// replaced — every `power_w` mutation provably bumps a leaf epoch,
    /// dirties the cache, or bumps the span generation — so the merged
    /// sample stream is byte-identical to full re-sampling.
    fn total_power_w(&self) -> f64 {
        if !self.fuse || self.leaf_spans.is_empty() {
            return self.power_w.iter().sum();
        }
        let esum: u64 = self.leaf_epoch.iter().sum();
        if self.total_power_valid.load(Ordering::Acquire)
            && self.total_power_gen.load(Ordering::Relaxed) == self.span_generation
            && self.total_power_esum.load(Ordering::Relaxed) == esum
        {
            return f64::from_bits(self.total_power_bits.load(Ordering::Relaxed));
        }
        let sum: f64 = self.power_w.iter().sum();
        self.total_power_valid.store(false, Ordering::Relaxed);
        self.total_power_bits.store(sum.to_bits(), Ordering::Relaxed);
        self.total_power_gen.store(self.span_generation, Ordering::Relaxed);
        self.total_power_esum.store(esum, Ordering::Relaxed);
        self.total_power_valid.store(true, Ordering::Release);
        sum
    }

    /// Periodic full-refresh hook for the incremental telemetry fold:
    /// drops the memoized total so the next sample recomputes it from
    /// the flat array. Called by the datacenter on a fixed cadence of
    /// telemetry samples; in debug builds it first cross-checks that
    /// the memo had not drifted from the array.
    pub(crate) fn refresh_total_power(&self) {
        let esum: u64 = self.leaf_epoch.iter().sum();
        if self.total_power_valid.load(Ordering::Acquire)
            && !self.power_dirty
            && self.total_power_gen.load(Ordering::Relaxed) == self.span_generation
            && self.total_power_esum.load(Ordering::Relaxed) == esum
        {
            debug_assert_eq!(
                self.total_power_bits.load(Ordering::Relaxed),
                self.power_w.iter().sum::<f64>().to_bits(),
                "incremental total-power fold drifted from the flat array"
            );
        }
        self.total_power_valid.store(false, Ordering::Relaxed);
    }

    /// The worst-case per-tick DRAM roofline, fused and unfused — see
    /// [`TickTraffic`]. Every term is derived from the live allocation
    /// lengths of the arrays the corresponding pass actually streams.
    pub fn bytes_per_tick(&self) -> TickTraffic {
        const F64: u64 = 8;
        const U32: u64 = 4;
        let n = self.agents.len() as u64;
        let leaves = self.leaf_spans.len().max(1) as u64;
        let mask_bytes =
            (self.not_init_bits.len() + self.alive_bits.len() + self.settled_bits.len()) as u64 * 8;
        // The settle stride: demand/limit gathered, out/util read and
        // rewritten, the packed masks tested, and the result scattered
        // into id-ordered `power_w` through `perm`.
        let settle = (self.demand_w.len() + self.limit_w.len()) as u64 * F64
            + (self.out_w.len() + self.util.len()) as u64 * 2 * F64
            + self.perm.len() as u64 * U32
            + self.power_w.len() as u64 * F64
            + mask_bytes;
        // Per-leaf partial sums, written once per step either way.
        let partials = self.leaf_power_w.len() as u64 * F64;
        // Unfused-only re-streams: the control-tick sync pass gathers
        // `util`/`out_w` through `perm` into the agent models, absorb
        // re-reads `limit_w`, and every telemetry sample folds the
        // whole of `power_w` flat.
        let control_sync = (self.util.len() + self.out_w.len()) as u64 * F64
            + self.perm.len() as u64 * U32
            + n * F64; // agent-model writeback, one hot f64 per server
        let absorb = self.limit_w.len() as u64 * F64;
        let telemetry_fold = self.power_w.len() as u64 * F64;
        // Fused: one pass over the hot set (sync/absorb ride the
        // leaf's resident span, telemetry partials ride the tile) plus
        // the memoized fold's O(leaves) epoch walk.
        TickTraffic {
            fused: settle + partials + leaves * F64,
            unfused: settle + partials + control_sync + absorb + telemetry_fold,
        }
    }

    /// Iterates `(server_id, service)` pairs.
    pub fn iter_services(&self) -> impl Iterator<Item = (u32, ServiceKind)> + '_ {
        self.services
            .iter()
            .enumerate()
            .map(|(i, &k)| (i as u32, k))
    }

    /// Captures the fleet's dynamic state for a snapshot.
    ///
    /// Must be called at a tick boundary with a clean power cache: the
    /// SoA arrays are the authority then, and the flush markers
    /// describe exactly how coherent the scalar server models are.
    ///
    /// # Panics
    ///
    /// Panics if the power cache is dirty (snapshot between
    /// [`Fleet::agent_mut`] and the next step would lose the
    /// out-of-band mutation).
    pub fn state(&self) -> FleetState {
        assert!(
            !self.power_dirty,
            "fleet snapshot requires a clean power cache (step once after agent_mut)"
        );
        let n = self.agents.len();
        FleetState {
            agents: self.agents.iter().map(|a| a.state()).collect(),
            generators: self.generators.iter().map(|g| g.state()).collect(),
            pending_restarts: self.pending_restarts.clone(),
            rng: self.rng.clone(),
            perm: self.perm.clone(),
            demand_w: self.demand_w.clone(),
            limit_w: self.limit_w.clone(),
            out_w: self.out_w.clone(),
            // Materialize the packed masks back to the f64/bool vectors
            // the VERSION 1 codec carries: the on-disk envelope is
            // byte-identical to the pre-packing layout, so old
            // snapshots restore and new ones replay on old readers.
            not_init: (0..n)
                .map(|pos| if self.not_init_at(pos) { 1.0 } else { 0.0 })
                .collect(),
            alive_m: (0..n)
                .map(|pos| if self.alive_at(pos) { 1.0 } else { 0.0 })
                .collect(),
            util: self.util.clone(),
            power_w: self.power_w.clone(),
            leaf_power_w: self.leaf_power_w.clone(),
            span_generation: self.span_generation,
            tick_index: self.tick_index,
            settled: (0..self.leaf_spans.len())
                .map(|l| self.is_settled(l))
                .collect(),
            last_draw_tick: self.last_draw_tick.clone(),
            leaf_epoch: self.leaf_epoch.clone(),
            flushed_epoch: self.flushed_epoch.clone(),
            flushed_draw: self.flushed_draw.clone(),
            agent_epoch: self.agent_epoch.clone(),
            capped_count: self.capped_count as u64,
            down_count: self.down_count as u64,
        }
    }

    /// Restores dynamic state captured by [`Fleet::state`] into a fleet
    /// rebuilt from the identical configuration (same server configs,
    /// services, leaf spans and seed). The stored permutation must
    /// equal the rebuilt one — a mismatch means the topology or server
    /// mix drifted and the snapshot does not describe this fleet.
    pub fn restore(&mut self, state: &FleetState) -> Result<(), SnapError> {
        let n = self.agents.len();
        if state.agents.len() != n
            || state.generators.len() != n
            || state.perm.len() != n
            || state.demand_w.len() != n
            || state.limit_w.len() != n
            || state.out_w.len() != n
            || state.not_init.len() != n
            || state.alive_m.len() != n
            || state.util.len() != n
            || state.power_w.len() != n
        {
            return Err(SnapError::Corrupt(format!(
                "fleet snapshot server count disagrees with rebuilt fleet of {n}"
            )));
        }
        if state.perm != self.perm {
            return Err(SnapError::Corrupt(
                "fleet snapshot permutation differs from the rebuilt layout \
                 (topology or server mix drifted since the snapshot)"
                    .into(),
            ));
        }
        let leaves = self.leaf_spans.len();
        if state.settled.len() != leaves
            || state.last_draw_tick.len() != leaves
            || state.leaf_epoch.len() != leaves
            || state.flushed_epoch.len() != leaves
            || state.flushed_draw.len() != leaves
            || state.agent_epoch.len() != leaves
            || state.leaf_power_w.len() != self.leaf_power_w.len()
        {
            return Err(SnapError::Corrupt(format!(
                "fleet snapshot leaf count disagrees with rebuilt fleet of {leaves} leaves"
            )));
        }
        for (agent, s) in self.agents.iter_mut().zip(&state.agents) {
            agent.restore(s)?;
        }
        for (gen, s) in self.generators.iter_mut().zip(&state.generators) {
            gen.restore(s)?;
        }
        self.pending_restarts.clone_from(&state.pending_restarts);
        self.rng = state.rng.clone();
        self.demand_w.clone_from(&state.demand_w);
        self.limit_w.clone_from(&state.limit_w);
        self.out_w.clone_from(&state.out_w);
        // Repack the codec's f64 masks into the bit words (the rebuilt
        // region directory already matches: spans and permutation were
        // validated identical above). Every bit is written, so no stale
        // state survives; tail bits stay zero.
        for pos in 0..n {
            self.set_not_init_at(pos, state.not_init[pos] != 0.0);
            self.set_alive_at(pos, state.alive_m[pos] != 0.0);
        }
        self.util.clone_from(&state.util);
        self.power_w.clone_from(&state.power_w);
        self.leaf_power_w.clone_from(&state.leaf_power_w);
        self.span_generation = state.span_generation;
        self.tick_index = state.tick_index;
        for (l, &s) in state.settled.iter().enumerate() {
            self.set_settled(l, s);
        }
        self.last_draw_tick.clone_from(&state.last_draw_tick);
        self.leaf_epoch.clone_from(&state.leaf_epoch);
        self.flushed_epoch.clone_from(&state.flushed_epoch);
        self.flushed_draw.clone_from(&state.flushed_draw);
        self.agent_epoch.clone_from(&state.agent_epoch);
        self.capped_count = state.capped_count as usize;
        self.down_count = state.down_count as usize;
        self.power_dirty = false;
        self.total_power_valid.store(false, Ordering::Relaxed);
        // The cached worker partition is layout-derived and left as is;
        // the next parallel step revalidates it against the thread
        // count.
        Ok(())
    }
}

/// Dynamic state of a [`Fleet`], snapshot-serializable. Everything
/// derivable from configuration (the permutation layout, runs, worker
/// partitions, traffic patterns, LUTs) is rebuilt, not stored; the
/// permutation itself is stored only to *verify* the rebuilt layout
/// matches.
#[derive(Debug, Clone)]
pub struct FleetState {
    /// Per-agent state, server-id order.
    pub agents: Vec<dynamo_agent::AgentState>,
    /// Per-server workload processes, *position* order.
    pub generators: Vec<workloads::WorkloadState>,
    /// Crashed agents pending watchdog restart.
    pub pending_restarts: Vec<(u32, SimTime)>,
    /// Fleet-event RNG stream (crash draws).
    pub rng: SimRng,
    /// Position → id permutation at snapshot time (validation only).
    pub perm: Vec<u32>,
    /// Batch arrays, position order (see the [`Fleet`] field docs).
    pub demand_w: Vec<f64>,
    /// RAPL limits in watts, `+Inf` = uncapped.
    pub limit_w: Vec<f64>,
    /// Settled RAPL output watts.
    pub out_w: Vec<f64>,
    /// First-step flags (1.0 until first live step).
    pub not_init: Vec<f64>,
    /// Liveness mask.
    pub alive_m: Vec<f64>,
    /// Post-clamp demand utilization.
    pub util: Vec<f64>,
    /// True power draw, server-id order.
    pub power_w: Vec<f64>,
    /// Per-leaf power partials.
    pub leaf_power_w: Vec<f64>,
    /// Span registration generation.
    pub span_generation: u64,
    /// Physics ticks completed.
    pub tick_index: u64,
    /// Per-leaf active-set flags.
    pub settled: Vec<bool>,
    /// Per-leaf tick of last demand redraw.
    pub last_draw_tick: Vec<u64>,
    /// Per-leaf power epochs.
    pub leaf_epoch: Vec<u64>,
    /// Per-leaf epoch at last control flush (`u64::MAX` = never).
    pub flushed_epoch: Vec<u64>,
    /// Per-leaf redraw tick at last control flush.
    pub flushed_draw: Vec<u64>,
    /// Per-leaf agent epochs.
    pub agent_epoch: Vec<u64>,
    /// Maintained capped-server tally.
    pub capped_count: u64,
    /// Maintained down-agent tally.
    pub down_count: u64,
}

impl Snapshot for FleetState {
    const KIND: &'static str = "dynamo.FleetState";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        w.put_u64(self.agents.len() as u64);
        for a in &self.agents {
            a.encode_body(w);
        }
        w.put_u64(self.generators.len() as u64);
        for g in &self.generators {
            g.encode_body(w);
        }
        w.put_u64(self.pending_restarts.len() as u64);
        for &(sid, at) in &self.pending_restarts {
            w.put_u32(sid);
            w.put_u64(at.as_millis());
        }
        self.rng.encode_body(w);
        w.put_u64(self.perm.len() as u64);
        for &p in &self.perm {
            w.put_u32(p);
        }
        put_f64_slice(w, &self.demand_w);
        put_f64_slice(w, &self.limit_w);
        put_f64_slice(w, &self.out_w);
        put_f64_slice(w, &self.not_init);
        put_f64_slice(w, &self.alive_m);
        put_f64_slice(w, &self.util);
        put_f64_slice(w, &self.power_w);
        put_f64_slice(w, &self.leaf_power_w);
        w.put_u64(self.span_generation);
        w.put_u64(self.tick_index);
        put_bool_slice(w, &self.settled);
        put_u64_slice(w, &self.last_draw_tick);
        put_u64_slice(w, &self.leaf_epoch);
        put_u64_slice(w, &self.flushed_epoch);
        put_u64_slice(w, &self.flushed_draw);
        put_u64_slice(w, &self.agent_epoch);
        w.put_u64(self.capped_count);
        w.put_u64(self.down_count);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n_agents = r.get_u64()? as usize;
        let mut agents = Vec::with_capacity(n_agents.min(1 << 24));
        for _ in 0..n_agents {
            agents.push(dynamo_agent::AgentState::decode_body(r)?);
        }
        let n_gens = r.get_u64()? as usize;
        let mut generators = Vec::with_capacity(n_gens.min(1 << 24));
        for _ in 0..n_gens {
            generators.push(workloads::WorkloadState::decode_body(r)?);
        }
        let n_pending = r.get_u64()? as usize;
        let mut pending_restarts = Vec::with_capacity(n_pending.min(1 << 24));
        for _ in 0..n_pending {
            let sid = r.get_u32()?;
            let at = SimTime::from_millis(r.get_u64()?);
            pending_restarts.push((sid, at));
        }
        let rng = SimRng::decode_body(r)?;
        let n_perm = r.get_u64()? as usize;
        let mut perm = Vec::with_capacity(n_perm.min(1 << 24));
        for _ in 0..n_perm {
            perm.push(r.get_u32()?);
        }
        Ok(FleetState {
            agents,
            generators,
            pending_restarts,
            rng,
            perm,
            demand_w: get_f64_vec(r)?,
            limit_w: get_f64_vec(r)?,
            out_w: get_f64_vec(r)?,
            not_init: get_f64_vec(r)?,
            alive_m: get_f64_vec(r)?,
            util: get_f64_vec(r)?,
            power_w: get_f64_vec(r)?,
            leaf_power_w: get_f64_vec(r)?,
            span_generation: r.get_u64()?,
            tick_index: r.get_u64()?,
            settled: get_bool_vec(r)?,
            last_draw_tick: get_u64_vec(r)?,
            leaf_epoch: get_u64_vec(r)?,
            flushed_epoch: get_u64_vec(r)?,
            flushed_draw: get_u64_vec(r)?,
            agent_epoch: get_u64_vec(r)?,
            capped_count: r.get_u64()?,
            down_count: r.get_u64()?,
        })
    }
}

/// Resolves position `pos` to its `(word, bit)` address under a mask
/// region directory (see [`Fleet::mask_base`]): binary search for the
/// owning region, then offset from its first word.
#[inline]
fn bit_addr(mask_base: &[(usize, usize)], pos: usize) -> (usize, u32) {
    let r = mask_base.partition_point(|&(_, p0)| p0 <= pos) - 1;
    let (w0, p0) = mask_base[r];
    (w0 + (pos - p0) / 64, ((pos - p0) % 64) as u32)
}

/// Reads one packed mask bit at position `pos`.
#[inline]
fn bit_at(mask_base: &[(usize, usize)], bits: &[u64], pos: usize) -> bool {
    let (w, b) = bit_addr(mask_base, pos);
    (bits[w] >> b) & 1 == 1
}

/// The batching key: servers with equal keys share every hoisted
/// constant of the demand loop. Stable-sorting a leaf span by this key
/// groups its servers into maximal runs.
fn run_key(server: &Server, service: ServiceKind) -> (u8, u8, u8, u64, u64) {
    let turbo = server.config().turbo;
    (
        server.config().generation.index() as u8,
        service.index() as u8,
        turbo.is_some() as u8,
        turbo.map_or(0, |t| t.power_factor.to_bits()),
        turbo.map_or(0, |t| t.perf_factor.to_bits()),
    )
}

/// Splits the fleet's agent array into disjoint `&mut` slices, one per
/// span, for the parallel control plane. Spans must be ascending and
/// non-overlapping (agents between spans are skipped); each returned
/// slice starts at its span's `start` server id.
pub(crate) fn split_agent_spans(
    agents: &mut [Agent],
    spans: impl Iterator<Item = std::ops::Range<usize>>,
) -> Vec<&mut [Agent]> {
    dynpool::split_spans(agents, spans)
}

/// Read-only view of the fleet state the fused control dispatch needs,
/// shareable across workers (`Copy`, all shared borrows). Handed out by
/// [`Fleet::fused_control_parts`] alongside the carvable agent and
/// limit arrays.
#[derive(Clone, Copy)]
pub(crate) struct FuseShared<'a> {
    perm: &'a [u32],
    inv: &'a [u32],
    util: &'a [f64],
    out_w: &'a [f64],
    not_init_bits: &'a [u64],
    mask_base: &'a [(usize, usize)],
    leaf_spans: &'a [Range<usize>],
    leaf_epoch: &'a [u64],
    last_draw: &'a [u64],
    flushed_epoch: &'a [u64],
    flushed_draw: &'a [u64],
}

/// Fused per-leaf server flush: [`Fleet::sync_servers_for_control`]'s
/// body for one leaf, run against a worker's private agent slice
/// immediately before the leaf's RPC cycle (while the leaf's agents
/// are about to be hot anyway — the whole point of the fusion). A leaf
/// whose flush markers match is skipped exactly as the unfused pass
/// would; the markers themselves are updated after the join by
/// [`Fleet::finish_fused_control`], which is equivalent because each
/// due leaf is flushed at most once per control tick.
pub(crate) fn fuse_sync_leaf(sh: &FuseShared<'_>, leaf: usize, agents: &mut [Agent], agents_base: usize) {
    if sh.flushed_epoch[leaf] == sh.leaf_epoch[leaf] && sh.flushed_draw[leaf] == sh.last_draw[leaf]
    {
        return;
    }
    for pos in sh.leaf_spans[leaf].clone() {
        let id = sh.perm[pos] as usize;
        let initialized = !bit_at(sh.mask_base, sh.not_init_bits, pos);
        agents[id - agents_base]
            .server_mut()
            .sync_physics(sh.util[pos], sh.out_w[pos], initialized);
    }
}

/// Fused per-leaf cap absorb: [`Fleet::absorb_caps`]'s body for one
/// leaf, run right after the leaf's RPC cycle against the worker's
/// private `limit_w` slice (carved at the same span boundaries as the
/// agents, so `limit_base == agents_base`). Returns whether any limit
/// bit changed (→ the leaf unsettles) and the signed capped-server
/// delta; both are recorded per leaf and applied serially after the
/// join by [`Fleet::finish_fused_control`], keeping the shared tallies
/// off the worker threads.
pub(crate) fn fuse_absorb_leaf(
    sh: &FuseShared<'_>,
    leaf: usize,
    agents: &[Agent],
    agents_base: usize,
    limit_w: &mut [f64],
    limit_base: usize,
) -> (bool, i64) {
    let mut changed = false;
    let mut delta = 0i64;
    for id in sh.leaf_spans[leaf].clone() {
        let pos = sh.inv[id] as usize;
        let new = agents[id - agents_base]
            .current_cap()
            .map_or(f64::INFINITY, |l| l.as_watts());
        let old = limit_w[pos - limit_base];
        if new.to_bits() != old.to_bits() {
            if new.is_finite() != old.is_finite() {
                delta += if new.is_finite() { 1 } else { -1 };
            }
            limit_w[pos - limit_base] = new;
            changed = true;
        }
    }
    (changed, delta)
}

/// Per-service OU coefficients for this tick length, hoisting the
/// per-step `exp`/`sqrt` out of the inner demand loop.
fn ou_coefficients(dt: SimDuration) -> [OuCoeffs; ServiceKind::COUNT] {
    let mut out = [OuCoeffs {
        decay: 0.0,
        innovation: 0.0,
    }; ServiceKind::COUNT];
    for kind in ServiceKind::all() {
        out[kind.index()] = OuCoeffs::for_kind(kind, dt);
    }
    out
}

/// Per-tick constants of the physics step, shared by the serial, scoped
/// and pooled paths so their arithmetic cannot drift apart.
struct StepCtx<'a> {
    /// Maximal equal-key position ranges with hoisted loop constants.
    runs: &'a [Run],
    /// Position → server id.
    perm: &'a [u32],
    /// Per-service traffic multipliers at `now`.
    mults: [f64; ServiceKind::COUNT],
    /// Per-service static utilization clamps.
    caps: [Option<f64>; ServiceKind::COUNT],
    /// Per-service OU coefficients for a single-tick step.
    ou: [OuCoeffs; ServiceKind::COUNT],
    /// Settle coefficient for a single-tick step.
    alpha: f64,
    now: SimTime,
    dt: SimDuration,
    /// Tick index of this step; with `hold`, drives the leaf-phased
    /// redraw schedule (a pure function of `(tick, leaf index, hold)`,
    /// so the schedule is identical at any worker count).
    tick: u64,
    /// Demand redraw period in ticks (1 = redraw every tick).
    hold: u64,
    /// Fused-step tile size in servers ([`FUSE_TILE`] with fusion on,
    /// `usize::MAX` — whole-span passes — with fusion off). Always a
    /// multiple of 64; tiling is unobservable because every pass is
    /// elementwise and the per-leaf folds run after all tiles.
    tile: usize,
}

/// Draws fresh demand for the local subrange `a..b`: per-run workload
/// draw → static clamp into `util`, then the batched LUT evaluation and
/// (per turbo run) the batched turbo premium — the vector passes feeding
/// [`kernel::step_batch`], each bit-identical to its scalar form.
///
/// `elapsed` is the tick count since this span's last redraw; held
/// redraws integrate the skipped interval by scaling the workload step
/// to `dt * elapsed` (OU coefficients recomputed for the longer step).
/// `elapsed == 1` reuses the hoisted per-tick coefficients and is
/// bit-identical to the always-redraw demand pass.
#[allow(clippy::too_many_arguments)]
fn demand_pass(
    ctx: &StepCtx,
    base: usize,
    a: usize,
    b: usize,
    generators: &mut [ServiceWorkload],
    util: &mut [f64],
    demand_w: &mut [f64],
    elapsed: u64,
) {
    let dt_eff = ctx.dt * elapsed;
    let (glo, ghi) = (base + a, base + b);
    let first = ctx.runs.partition_point(|r| r.range.end <= glo);
    for run in &ctx.runs[first..] {
        if run.range.start >= ghi {
            break;
        }
        let ra = run.range.start.max(glo) - base;
        let rb = run.range.end.min(ghi) - base;
        let k = run.svc as usize;
        let mult = ctx.mults[k];
        // `min(1.0)` is a bitwise no-op on the workload's `[0.02, 1.0]`
        // output, so "no static cap" needs no branch in the loop.
        let cap = ctx.caps[k].unwrap_or(1.0);
        let oc = if elapsed == 1 {
            ctx.ou[k]
        } else {
            OuCoeffs::for_kind(ServiceKind::all()[k], dt_eff)
        };
        for j in ra..rb {
            util[j] = generators[j]
                .utilization_with(ctx.now, mult, dt_eff, oc)
                .min(cap);
        }
        run.lut.power_batch_w(&util[ra..rb], &mut demand_w[ra..rb]);
        if run.turbo {
            kernel::turbo_demand_batch(&mut demand_w[ra..rb], run.idle_w, run.turbo_pf);
        }
    }
}

/// Scatters drawn power (`out_w * alive`) for the local subrange `a..b`
/// back to id order, reading liveness from the packed words.
/// `alive_words[0]` must hold element `a`'s bit at bit 0 (tile starts
/// are word-aligned). `(bit as f64)` is exactly `0.0`/`1.0`, the same
/// multiplicand the f64 mask carried — bit-identical. Leaf alignment
/// guarantees `perm` maps the range onto itself, so the scatter stays
/// within the local `power_w` view.
fn scatter_power(
    perm: &[u32],
    base: usize,
    a: usize,
    b: usize,
    alive_words: &[u64],
    out_w: &[f64],
    power_w: &mut [f64],
) {
    for j in a..b {
        let k = j - a;
        let alive = ((alive_words[k / 64] >> (k % 64)) & 1) as f64;
        power_w[perm[base + j] as usize - base] = out_w[j] * alive;
    }
}

/// Advances a contiguous position range of servers with no leaf
/// structure, tile-at-a-time: per [`StepCtx::tile`]-sized tile, one
/// demand pass, one packed-mask settle pass, one scatter — the tile's
/// slices stay cache-hot across all three instead of each pass
/// re-streaming the whole range from DRAM. The path for fleets without
/// leaf spans (demand hold and active-set skipping require spans);
/// `base` must be a multiple of 64 so local words align with positions.
#[allow(clippy::too_many_arguments)]
fn step_range(
    ctx: &StepCtx,
    base: usize,
    generators: &mut [ServiceWorkload],
    util: &mut [f64],
    demand_w: &mut [f64],
    limit_w: &[f64],
    alive_bits: &[u64],
    not_init_bits: &mut [u64],
    out_w: &mut [f64],
    power_w: &mut [f64],
) {
    let n = generators.len();
    let mut t0 = 0;
    while t0 < n {
        let t1 = t0.saturating_add(ctx.tile).min(n);
        demand_pass(ctx, base, t0, t1, generators, util, demand_w, 1);
        let (wa, wb) = (t0 / 64, t1.div_ceil(64));
        kernel::step_batch_settled_bits(
            &demand_w[t0..t1],
            &limit_w[t0..t1],
            &alive_bits[wa..wb],
            &mut not_init_bits[wa..wb],
            &mut out_w[t0..t1],
            ctx.alpha,
        );
        scatter_power(ctx.perm, base, t0, t1, &alive_bits[wa..wb], out_w, power_w);
        t0 = t1;
    }
}

/// Advances a contiguous range of whole leaves, the active-set hot
/// path. Per leaf:
///
/// 1. **Skip check** — a leaf that is settled (its last pass was a
///    fixed point) and not due for a redraw is skipped outright: its
///    next pass is provably the exact floating-point identity, so its
///    arrays, drawn power, and partial already hold the step's result.
/// 2. **Tiles** — the leaf is walked in [`StepCtx::tile`]-sized,
///    word-aligned tiles; per tile the demand redraw (when due under
///    the leaf-phased hold schedule, with the elapsed interval folded
///    into `dt`), the packed-mask settle kernel, and the power scatter
///    run back-to-back while the tile is cache-hot. Tiling is
///    unobservable: every pass is elementwise, so the bits match the
///    whole-leaf passes exactly.
/// 3. **Publish** — after all tiles, the leaf partial is re-folded in
///    id order over the whole span (same ascending fold as always —
///    fusing it into the permuted scatter would change association),
///    the leaf's settled flag becomes the AND of its tiles' fixed-point
///    reports, and the leaf epoch is bumped iff any tile changed state
///    bits.
///
/// All slice arguments from `generators` on are local views of the
/// worker's position range starting at `base`, except the mask words:
/// `alive_bits`/`not_init_bits` are the worker's word range and
/// `word_base` the matching global directory entries
/// (`spans.len() + 1` of them), from which each leaf's local word
/// offset is derived. `spans` hold global server-id ranges, `leaf_base`
/// the global index of `spans[0]`.
#[allow(clippy::too_many_arguments)]
fn step_leaves(
    ctx: &StepCtx,
    base: usize,
    leaf_base: usize,
    spans: &[Range<usize>],
    generators: &mut [ServiceWorkload],
    util: &mut [f64],
    demand_w: &mut [f64],
    limit_w: &[f64],
    alive_bits: &[u64],
    not_init_bits: &mut [u64],
    word_base: &[(usize, usize)],
    out_w: &mut [f64],
    power_w: &mut [f64],
    leaf_power_w: &mut [f64],
    settled: &mut [bool],
    last_draw: &mut [u64],
    leaf_epoch: &mut [u64],
) {
    let w_org = word_base[0].0;
    for (l, span) in spans.iter().enumerate() {
        let due = ctx.hold <= 1 || ctx.tick % ctx.hold == (leaf_base + l) as u64 % ctx.hold;
        if settled[l] && !due {
            continue;
        }
        let (a, b) = (span.start - base, span.end - base);
        let elapsed = if due {
            let e = (ctx.tick - last_draw[l]).max(1);
            last_draw[l] = ctx.tick;
            e
        } else {
            0
        };
        let lw = word_base[l].0 - w_org;
        let mut fixed = true;
        let mut t0 = a;
        while t0 < b {
            let t1 = t0.saturating_add(ctx.tile).min(b);
            if due {
                demand_pass(ctx, base, t0, t1, generators, util, demand_w, elapsed);
            }
            let (wa, wb) = (lw + (t0 - a) / 64, lw + (t1 - a).div_ceil(64));
            fixed &= kernel::step_batch_settled_bits(
                &demand_w[t0..t1],
                &limit_w[t0..t1],
                &alive_bits[wa..wb],
                &mut not_init_bits[wa..wb],
                &mut out_w[t0..t1],
                ctx.alpha,
            );
            scatter_power(ctx.perm, base, t0, t1, &alive_bits[wa..wb], out_w, power_w);
            t0 = t1;
        }
        leaf_power_w[l] = power_w[a..b].iter().sum();
        settled[l] = fixed;
        if !fixed {
            leaf_epoch[l] += 1;
        }
    }
}

/// Rebuilds per-leaf power partials from the flat watts array. `base`
/// is the server id of `power_w[0]`; `spans` hold global server-id
/// ranges. Each partial is the ascending flat fold over its span — the
/// same additions, in the same order, at any worker count.
fn leaf_partials(power_w: &[f64], base: usize, spans: &[Range<usize>], out: &mut [f64]) {
    for (partial, span) in out.iter_mut().zip(spans) {
        *partial = power_w[span.start - base..span.end - base].iter().sum();
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("servers", &self.agents.len())
            .field("crash_rate_per_hour", &self.crash_rate_per_hour)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serverpower::ServerGeneration;

    fn small_fleet(n: usize, kind: ServiceKind) -> Fleet {
        let configs = vec![ServerConfig::new(ServerGeneration::Haswell2015); n];
        let services = vec![kind; n];
        Fleet::new(configs, services, SimRng::seed_from(11))
    }

    fn run(fleet: &mut Fleet, secs: u64) -> SimTime {
        let mut t = SimTime::ZERO;
        for _ in 0..secs {
            fleet.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        t
    }

    #[test]
    fn servers_draw_power_after_stepping() {
        let mut fleet = small_fleet(8, ServiceKind::Web);
        run(&mut fleet, 10);
        for i in 0..8 {
            assert!(fleet.power_of(i).as_watts() > 90.0, "server {i} idle");
        }
        let total = fleet.stats().total_power;
        assert!(
            (total - fleet.power_sum(&(0..8).collect::<Vec<_>>()))
                .abs()
                .as_watts()
                < 1e-9
        );
    }

    #[test]
    fn per_service_power_split_sums_to_total() {
        let configs = vec![ServerConfig::new(ServerGeneration::Haswell2015); 6];
        let services = vec![
            ServiceKind::Web,
            ServiceKind::Web,
            ServiceKind::Cache,
            ServiceKind::Cache,
            ServiceKind::NewsFeed,
            ServiceKind::NewsFeed,
        ];
        let mut fleet = Fleet::new(configs, services, SimRng::seed_from(3));
        run(&mut fleet, 10);
        let all: Vec<u32> = (0..6).collect();
        let split: Power = [ServiceKind::Web, ServiceKind::Cache, ServiceKind::NewsFeed]
            .iter()
            .map(|&k| fleet.power_sum_of_service(&all, k))
            .sum();
        assert!((split - fleet.power_sum(&all)).abs().as_watts() < 1e-9);
    }

    #[test]
    fn static_util_cap_lowers_power() {
        let mut capped = small_fleet(10, ServiceKind::Hadoop);
        capped.set_static_util_cap(ServiceKind::Hadoop, Some(0.3));
        run(&mut capped, 30);
        let mut free = small_fleet(10, ServiceKind::Hadoop);
        run(&mut free, 30);
        assert!(
            capped.stats().total_power < free.stats().total_power * 0.85,
            "clamp had no effect: {} vs {}",
            capped.stats().total_power,
            free.stats().total_power
        );
    }

    #[test]
    fn traffic_pattern_modulates_demand() {
        let mut fleet = small_fleet(10, ServiceKind::Web);
        fleet.set_traffic(ServiceKind::Web, TrafficPattern::flat(0.4));
        run(&mut fleet, 30);
        let low = fleet.stats().total_power;
        let mut busy = small_fleet(10, ServiceKind::Web);
        busy.set_traffic(ServiceKind::Web, TrafficPattern::flat(1.3));
        run(&mut busy, 30);
        assert!(busy.stats().total_power > low * 1.1);
    }

    #[test]
    fn crashes_and_watchdog_restarts() {
        let mut fleet = small_fleet(50, ServiceKind::Web);
        fleet.set_crash_rate(3600.0); // ~1 per server-second: crash storm
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            fleet.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        assert!(fleet.stats().agents_down > 0, "no crashes observed");
        // Stop crashing; watchdog (30 s) brings everyone back.
        fleet.set_crash_rate(0.0);
        for _ in 0..40 {
            fleet.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        assert_eq!(
            fleet.stats().agents_down,
            0,
            "watchdog failed to restart agents"
        );
    }

    #[test]
    fn capped_server_count_tracks_rapl() {
        let mut fleet = small_fleet(4, ServiceKind::Web);
        run(&mut fleet, 5);
        assert_eq!(fleet.stats().capped_servers, 0);
        fleet
            .agent_mut(2)
            .server_mut()
            .rapl_mut()
            .set_limit(Power::from_watts(150.0));
        assert_eq!(fleet.stats().capped_servers, 1);
    }

    fn mixed_fleet(seed: u64) -> Fleet {
        let configs = vec![ServerConfig::new(ServerGeneration::Haswell2015); 200];
        let services: Vec<ServiceKind> = (0..200).map(|i| ServiceKind::all()[i % 6]).collect();
        Fleet::new(configs, services, SimRng::seed_from(seed))
    }

    #[test]
    fn parallel_step_matches_serial() {
        let mut serial = mixed_fleet(77);
        let mut parallel = mixed_fleet(77);
        let mut t = SimTime::ZERO;
        for _ in 0..30 {
            serial.step(t, SimDuration::from_secs(1));
            parallel.step_parallel(t, SimDuration::from_secs(1), 4);
            t += SimDuration::from_secs(1);
        }
        for i in 0..200 {
            assert_eq!(
                serial.power_of(i).as_watts(),
                parallel.power_of(i).as_watts(),
                "server {i} diverged between serial and parallel stepping"
            );
        }
    }

    #[test]
    fn pooled_step_matches_serial_and_scoped() {
        let mut serial = mixed_fleet(78);
        let mut scoped = mixed_fleet(78);
        let mut pooled = mixed_fleet(78);
        pooled.attach_pool(Arc::new(WorkerPool::new(4)));
        let mut t = SimTime::ZERO;
        for _ in 0..30 {
            serial.step(t, SimDuration::from_secs(1));
            scoped.step_parallel(t, SimDuration::from_secs(1), 4);
            pooled.step_parallel(t, SimDuration::from_secs(1), 4);
            t += SimDuration::from_secs(1);
        }
        for i in 0..200 {
            let s = serial.power_of(i).as_watts();
            assert_eq!(s, scoped.power_of(i).as_watts(), "server {i} scoped drift");
            assert_eq!(s, pooled.power_of(i).as_watts(), "server {i} pooled drift");
        }
    }

    #[test]
    fn pooled_step_with_leaf_spans_maintains_partials() {
        let mut fleet = mixed_fleet(79);
        let spans: Vec<Range<usize>> = (0..4).map(|l| l * 50..(l + 1) * 50).collect();
        fleet.set_leaf_spans(&spans);
        fleet.attach_pool(Arc::new(WorkerPool::new(3)));
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            fleet.step_parallel(t, SimDuration::from_secs(1), 3);
            t += SimDuration::from_secs(1);
        }
        for (l, span) in spans.iter().enumerate() {
            let ids: Vec<u32> = (span.start as u32..span.end as u32).collect();
            assert_eq!(
                fleet.leaf_power(l).expect("partials maintained").as_watts(),
                fleet.power_sum(&ids).as_watts(),
                "leaf {l} partial drifted from its span sum"
            );
        }
    }

    #[test]
    fn batched_permutation_is_observationally_invisible() {
        // With leaf spans, servers are regrouped by (generation,
        // service, turbo) internally. Per-server RNG streams make the
        // evaluation order unobservable: every per-id result must be
        // bit-identical to the unpermuted (no spans) fleet.
        let mut plain = mixed_fleet(80);
        let mut grouped = mixed_fleet(80);
        let spans: Vec<Range<usize>> = (0..4).map(|l| l * 50..(l + 1) * 50).collect();
        grouped.set_leaf_spans(&spans);
        let mut t = SimTime::ZERO;
        for _ in 0..25 {
            plain.step(t, SimDuration::from_secs(1));
            grouped.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        for i in 0..200 {
            assert_eq!(
                plain.power_of(i).as_watts(),
                grouped.power_of(i).as_watts(),
                "server {i} diverged under batching permutation"
            );
            assert_eq!(
                plain.utilization_of(i),
                grouped.utilization_of(i),
                "server {i} utilization diverged under batching permutation"
            );
        }
    }

    #[test]
    fn regrouping_mid_run_preserves_state() {
        // set_leaf_spans after stepping must carry all physics state
        // through the permutation rebuild.
        let mut plain = mixed_fleet(81);
        let mut regrouped = mixed_fleet(81);
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            plain.step(t, SimDuration::from_secs(1));
            regrouped.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        let spans: Vec<Range<usize>> = (0..4).map(|l| l * 50..(l + 1) * 50).collect();
        regrouped.set_leaf_spans(&spans);
        for _ in 0..10 {
            plain.step(t, SimDuration::from_secs(1));
            regrouped.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        for i in 0..200 {
            assert_eq!(
                plain.power_of(i).as_watts(),
                regrouped.power_of(i).as_watts(),
                "server {i} diverged after mid-run regrouping"
            );
        }
    }

    #[test]
    fn agent_mut_falls_back_to_live_reads_until_next_step() {
        let mut fleet = small_fleet(8, ServiceKind::Web);
        run(&mut fleet, 10);
        let before = fleet.power_of(3);
        assert!(before.as_watts() > 0.0);
        fleet.agent_mut(3).server_mut().set_alive(false);
        // Dirty cache: the query must see the live (dead) server.
        assert_eq!(fleet.power_of(3), Power::ZERO);
        assert_eq!(fleet.power_sum(&[3]), Power::ZERO);
        run(&mut fleet, 1);
        assert_eq!(fleet.power_of(3), Power::ZERO);
    }

    #[test]
    fn agent_mut_flush_exposes_fresh_state() {
        // The scalar server models are stale while the arrays own the
        // physics; agent_mut must flush before handing out the borrow.
        let mut fleet = small_fleet(8, ServiceKind::Web);
        run(&mut fleet, 10);
        let cached = fleet.power_of(5);
        let live = fleet.agent_mut(5).server().power();
        assert_eq!(cached, live, "flush must reveal the batch-owned state");
    }

    #[test]
    fn set_server_alive_keeps_cache_exact() {
        let mut fleet = small_fleet(8, ServiceKind::Web);
        let spans = vec![0..4, 4..8];
        fleet.set_leaf_spans(&spans);
        run(&mut fleet, 10);
        let leaf0_before = fleet.leaf_power(0).unwrap();
        fleet.set_server_alive(1, false);
        assert_eq!(fleet.power_of(1), Power::ZERO);
        let leaf0_after = fleet.leaf_power(0).expect("cache stays clean");
        assert!(leaf0_after < leaf0_before);
        let ids: Vec<u32> = (0..4).collect();
        assert_eq!(leaf0_after.as_watts(), fleet.power_sum(&ids).as_watts());
        fleet.set_server_alive(1, true);
        assert!(fleet.power_of(1).as_watts() > 0.0);
    }

    /// A 200-server, 4-leaf mixed fleet with a demand-hold period — the
    /// configuration where active-set skipping can actually engage.
    fn spanned_fleet(seed: u64, hold: u32) -> Fleet {
        let mut fleet = mixed_fleet(seed);
        let spans: Vec<Range<usize>> = (0..4).map(|l| l * 50..(l + 1) * 50).collect();
        fleet.set_leaf_spans(&spans);
        fleet.set_demand_hold(hold);
        fleet
    }

    #[test]
    fn active_set_skipping_is_bit_identical_to_full_compute() {
        // `skipping` runs the real active-set path; `full` has its
        // settled flags force-cleared before every tick, so every leaf
        // recomputes every step. Identical bits across a run spanning
        // every mutation site prove a skipped pass truly is the FP
        // identity.
        let mut skipping = spanned_fleet(90, 30);
        let mut full = spanned_fleet(90, 30);
        let mut t = SimTime::ZERO;
        let mut max_settled = 0;
        for step in 0..400u64 {
            full.clear_settled();
            if step == 120 {
                for f in [&mut skipping, &mut full] {
                    f.set_traffic(ServiceKind::Web, TrafficPattern::flat(2.0));
                }
            }
            if step == 200 {
                for f in [&mut skipping, &mut full] {
                    f.set_server_alive(17, false);
                }
            }
            if step == 260 {
                for f in [&mut skipping, &mut full] {
                    f.set_server_alive(17, true);
                }
            }
            if step == 300 {
                for f in [&mut skipping, &mut full] {
                    f.agents_mut()[60]
                        .server_mut()
                        .rapl_mut()
                        .set_limit(Power::from_watts(140.0));
                    f.absorb_caps(&[1]);
                }
            }
            skipping.step(t, SimDuration::from_secs(1));
            full.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
            max_settled = max_settled.max(skipping.settled_leaf_count());
            for i in 0..200 {
                assert_eq!(
                    skipping.power_of(i).as_watts().to_bits(),
                    full.power_of(i).as_watts().to_bits(),
                    "server {i} diverged under active-set skipping at step {step}"
                );
            }
        }
        for l in 0..4 {
            assert_eq!(
                skipping.leaf_power(l).unwrap().as_watts().to_bits(),
                full.leaf_power(l).unwrap().as_watts().to_bits(),
                "leaf {l} partial diverged under active-set skipping"
            );
        }
        assert!(max_settled > 0, "skipping never engaged: vacuous test");
    }

    #[test]
    fn demand_hold_is_bit_identical_across_thread_counts() {
        let mut serial = spanned_fleet(91, 30);
        let mut scoped2 = spanned_fleet(91, 30);
        let mut pooled8 = spanned_fleet(91, 30);
        let mut pooled64 = spanned_fleet(91, 30);
        pooled8.attach_pool(Arc::new(WorkerPool::new(8)));
        // A full-width pool: step_parallel clamps the dispatch to
        // min(threads, pool.workers()), so anything smaller would make
        // the @64 case repeat the @8 partition.
        pooled64.attach_pool(Arc::new(WorkerPool::new(64)));
        let mut t = SimTime::ZERO;
        for _ in 0..150 {
            serial.step(t, SimDuration::from_secs(1));
            scoped2.step_parallel(t, SimDuration::from_secs(1), 2);
            pooled8.step_parallel(t, SimDuration::from_secs(1), 8);
            pooled64.step_parallel(t, SimDuration::from_secs(1), 64);
            t += SimDuration::from_secs(1);
        }
        for i in 0..200 {
            let s = serial.power_of(i).as_watts().to_bits();
            assert_eq!(s, scoped2.power_of(i).as_watts().to_bits(), "server {i} @2");
            assert_eq!(s, pooled8.power_of(i).as_watts().to_bits(), "server {i} @8");
            assert_eq!(
                s,
                pooled64.power_of(i).as_watts().to_bits(),
                "server {i} @64"
            );
        }
    }

    #[test]
    fn settled_leaf_reenters_active_set_on_every_mutation_site() {
        let mut fleet = spanned_fleet(92, 50);
        let mut t = SimTime::ZERO;
        let tick = |f: &mut Fleet, t: &mut SimTime| {
            f.step(*t, SimDuration::from_secs(1));
            *t += SimDuration::from_secs(1);
        };
        // Warm up past each leaf's first redraw (ticks 0..3) and well
        // into the hold window: everything settles.
        for _ in 0..40 {
            tick(&mut fleet, &mut t);
        }
        assert_eq!(fleet.settled_leaf_count(), 4, "fleet failed to settle");

        // Crash: immediate zero draw, leaf unsettled, epoch bumped.
        let epoch0 = fleet.leaf_epoch[0];
        fleet.set_server_alive(0, false);
        assert_eq!(fleet.power_of(0), Power::ZERO);
        assert!(!fleet.is_settled(0), "crash must unsettle its leaf");
        assert_eq!(fleet.leaf_epoch[0], epoch0 + 1);
        tick(&mut fleet, &mut t);

        // Revive: draw returns to the retained actuator output.
        fleet.set_server_alive(0, true);
        assert!(!fleet.is_settled(0), "revive must unsettle its leaf");
        assert!(fleet.power_of(0).as_watts() > 0.0);

        // RAPL limit change via the controller absorb path: leaf 1
        // unsettles and its power settles down toward the cap.
        for _ in 0..10 {
            tick(&mut fleet, &mut t);
        }
        let before_cap = fleet.leaf_power(1).unwrap();
        for id in 50..100 {
            fleet.agents_mut()[id]
                .server_mut()
                .rapl_mut()
                .set_limit(Power::from_watts(130.0));
        }
        fleet.absorb_caps(&[1]);
        assert!(!fleet.is_settled(1), "cap change must unsettle its leaf");
        for _ in 0..15 {
            tick(&mut fleet, &mut t);
        }
        assert!(
            fleet.leaf_power(1).unwrap() < before_cap * 0.95,
            "cap never bit: {} vs {}",
            fleet.leaf_power(1).unwrap(),
            before_cap
        );

        // Demand spike: a settled leaf reacts at its next due redraw.
        // Leaf 1 is the exception that proves the model: its servers
        // are capped at 130 W and the snap band parked them *exactly*
        // on the cap, so a spike above the cap leaves the clamped
        // target — and therefore the leaf's power bits — unchanged.
        fleet.set_traffic(ServiceKind::Web, TrafficPattern::flat(3.0));
        let before_spike: Vec<u64> = fleet.leaf_epoch.clone();
        for _ in 0..55 {
            tick(&mut fleet, &mut t);
        }
        for l in [0, 2, 3] {
            assert!(
                fleet.leaf_epoch[l] > before_spike[l],
                "leaf {l} never reacted to the traffic spike"
            );
        }
        assert_eq!(
            fleet.leaf_epoch[1], before_spike[1],
            "cap-clamped leaf must stay at its fixed point through the spike"
        );
        assert_eq!(
            fleet.leaf_power(1).unwrap(),
            Power::from_watts(130.0) * 50.0
        );

        // Out-of-band mutation (the path a turbo flip would take):
        // agent_mut dirties the cache; the next step resyncs and bumps
        // every epoch.
        for _ in 0..60 {
            tick(&mut fleet, &mut t);
        }
        let before_oob: Vec<u64> = fleet.leaf_epoch.clone();
        fleet.agent_mut(150).server_mut().set_alive(false);
        tick(&mut fleet, &mut t);
        for (l, &before) in before_oob.iter().enumerate() {
            assert!(
                fleet.leaf_epoch[l] > before,
                "leaf {l} epoch must bump after out-of-band mutation"
            );
        }
        assert_eq!(fleet.power_of(150), Power::ZERO);
    }

    #[test]
    fn hold_one_is_bit_identical_to_always_redraw() {
        // The default hold of 1 must reproduce the pre-active-set model
        // exactly; `clear_settled` turns the skip logic off wholesale.
        let mut held = spanned_fleet(93, 1);
        let mut reference = spanned_fleet(93, 1);
        let mut t = SimTime::ZERO;
        for _ in 0..60 {
            reference.clear_settled();
            held.step(t, SimDuration::from_secs(1));
            reference.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        for i in 0..200 {
            assert_eq!(
                held.power_of(i).as_watts().to_bits(),
                reference.power_of(i).as_watts().to_bits(),
                "server {i} diverged at hold=1"
            );
        }
    }

    #[test]
    #[should_panic(expected = "demand hold")]
    fn zero_demand_hold_panics() {
        small_fleet(1, ServiceKind::Web).set_demand_hold(0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        small_fleet(100, ServiceKind::Web).step_parallel(
            SimTime::ZERO,
            SimDuration::from_secs(1),
            0,
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_construction_panics() {
        Fleet::new(
            vec![ServerConfig::new(ServerGeneration::Haswell2015)],
            vec![],
            SimRng::seed_from(1),
        );
    }

    #[test]
    #[should_panic(expected = "static util cap")]
    fn invalid_static_cap_panics() {
        small_fleet(1, ServiceKind::Web).set_static_util_cap(ServiceKind::Web, Some(0.0));
    }
}
