//! The simulated server fleet: agents, workloads, failures.
//!
//! # Hot-path layout (struct of arrays)
//!
//! The per-tick step writes every server's post-step state into flat
//! parallel arrays — power draw in watts, post-clamp utilization, and
//! the service (traffic-multiplier) index — so the aggregation queries
//! ([`Fleet::power_sum`], [`Fleet::power_sum_of_service`],
//! [`Fleet::stats`]) scan contiguous `f64` slices instead of
//! pointer-chasing through [`Agent`] → server → actuator. When the
//! control plane has leaf spans, the step additionally maintains one
//! power partial sum per leaf, so telemetry pulls of leaf aggregates
//! are a single lookup. Every cached sum is computed as the same
//! ascending-index `f64` fold the old per-agent walk performed, so all
//! results are bit-identical to live reads.
//!
//! Out-of-band mutation through [`Fleet::agent_mut`] marks the cache
//! dirty; queries then fall back to live reads until the next step
//! rebuilds the arrays. The breaker blackout path uses
//! [`Fleet::set_server_alive`], which keeps the cache exact instead.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use dcsim::{SimDuration, SimRng, SimTime};
use dynamo_agent::Agent;
use dynpool::{WorkerPool, MAX_WORKERS};
use powerinfra::Power;
use serverpower::{Server, ServerConfig};
use workloads::{ServiceKind, ServiceWorkload, TrafficPattern};

/// Aggregate fleet statistics at an instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetStats {
    /// Servers currently under a RAPL cap.
    pub capped_servers: usize,
    /// Servers whose agent process is down.
    pub agents_down: usize,
    /// Total true power of all servers.
    pub total_power: Power,
}

/// Precomputed per-worker partitions for [`Fleet::step_parallel`],
/// cached so the hot path never re-carves chunk boundaries.
///
/// When the control plane's leaf spans are known, partitions are
/// leaf-aligned and built by the same chunking rule the leaf dispatch
/// uses (`div_ceil` over whole leaves), so a server's worker assignment
/// is identical across fleet stepping and leaf control cycles.
#[derive(Debug, Default)]
struct Partition {
    /// Requested thread count this partition was computed for.
    threads: usize,
    /// Per-worker agent index ranges (ascending, tiling `0..n`).
    agents: Vec<Range<usize>>,
    /// Per-worker leaf index ranges (empty ranges when the fleet has no
    /// leaf spans).
    leaves: Vec<Range<usize>>,
}

/// Every server in the datacenter: its [`Agent`] (which owns the
/// [`Server`] model), its service assignment, its utilization process,
/// and fleet-level failure injection.
pub struct Fleet {
    agents: Vec<Agent>,
    services: Vec<ServiceKind>,
    generators: Vec<ServiceWorkload>,
    /// Per-service traffic patterns; services without an entry see
    /// constant nominal traffic.
    traffic: HashMap<ServiceKind, TrafficPattern>,
    /// Optional static utilization clamp per service, indexed by
    /// [`ServiceKind::index`] (the pre-Dynamo baseline for the search
    /// cluster in §IV-D: "all servers ... were required to limit their
    /// clock frequency").
    static_util_caps: [Option<f64>; ServiceKind::COUNT],
    /// Probability per server-hour of an agent crash.
    crash_rate_per_hour: f64,
    /// Watchdog restart delay.
    watchdog_delay: SimDuration,
    /// Crashed agents pending restart: (server, restart time).
    pending_restarts: Vec<(u32, SimTime)>,
    rng: SimRng,
    /// SoA hot path: true power draw (watts) of each server after its
    /// last physics step, in server-id order.
    power_w: Vec<f64>,
    /// SoA hot path: post-clamp demand utilization at the last step.
    util: Vec<f64>,
    /// SoA hot path: [`ServiceKind::index`] per server — the traffic
    /// multiplier / static-cap index, denormalized out of `services`.
    mult_idx: Vec<u8>,
    /// Set by [`Fleet::agent_mut`]: an embedder may have changed server
    /// power outside the step path, so cached sums cannot be trusted
    /// until the next step rewrites them. Queries fall back to live
    /// per-agent reads while set.
    power_dirty: bool,
    /// The control plane's per-leaf server spans (ascending, tiling
    /// `0..n`), when known. Empty otherwise.
    leaf_spans: Vec<Range<usize>>,
    /// Per-leaf power partial sums (watts), rebuilt by every step as
    /// the ascending flat fold over the leaf's span.
    leaf_power_w: Vec<f64>,
    /// Cached per-worker partition for the last-used thread count.
    partition: Partition,
    /// Persistent worker pool shared with the leaf control plane.
    /// Without one, [`Fleet::step_parallel`] falls back to per-call
    /// scoped threads (the legacy dispatch, kept for comparison).
    pool: Option<Arc<WorkerPool>>,
}

impl Fleet {
    /// Assembles a fleet. `configs[i]` and `services[i]` describe server
    /// `i`; workload processes get independent RNG streams from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `configs` and `services` differ in length or are empty.
    pub fn new(configs: Vec<ServerConfig>, services: Vec<ServiceKind>, mut rng: SimRng) -> Self {
        assert_eq!(
            configs.len(),
            services.len(),
            "configs/services length mismatch"
        );
        assert!(!configs.is_empty(), "fleet cannot be empty");
        let n = configs.len();
        let mut agents = Vec::with_capacity(n);
        let mut generators = Vec::with_capacity(n);
        let mut agent_rng = rng.split("agents");
        let mut wl_rng = rng.split("workloads");
        for (i, (config, &service)) in configs.into_iter().zip(&services).enumerate() {
            let server = Server::new(i as u32, config);
            agents.push(Agent::new(server, agent_rng.split_index(i as u64)));
            generators.push(ServiceWorkload::new(service, wl_rng.split_index(i as u64)));
        }
        let mult_idx = services.iter().map(|s| s.index() as u8).collect();
        Fleet {
            agents,
            services,
            generators,
            traffic: HashMap::new(),
            static_util_caps: [None; ServiceKind::COUNT],
            crash_rate_per_hour: 0.0,
            watchdog_delay: SimDuration::from_secs(30),
            pending_restarts: Vec::new(),
            rng: rng.split("fleet-events"),
            // Pre-step, every server's RAPL output is zero, matching a
            // live read.
            power_w: vec![0.0; n],
            util: vec![0.0; n],
            mult_idx,
            power_dirty: false,
            leaf_spans: Vec::new(),
            leaf_power_w: Vec::new(),
            partition: Partition::default(),
            pool: None,
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// Always false — construction rejects empty fleets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sets the traffic pattern for a service.
    pub fn set_traffic(&mut self, kind: ServiceKind, pattern: TrafficPattern) {
        self.traffic.insert(kind, pattern);
    }

    /// Applies a static utilization clamp to every server of a service
    /// (the frequency-limit baseline of §IV-D).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is outside `(0, 1]`.
    pub fn set_static_util_cap(&mut self, kind: ServiceKind, cap: Option<f64>) {
        if let Some(c) = cap {
            assert!(
                c > 0.0 && c <= 1.0,
                "static util cap must be in (0,1], got {c}"
            );
        }
        self.static_util_caps[kind.index()] = cap;
    }

    /// Enables agent crash injection at the given rate (per server-hour).
    pub fn set_crash_rate(&mut self, per_hour: f64) {
        assert!(
            per_hour >= 0.0 && per_hour.is_finite(),
            "invalid crash rate {per_hour}"
        );
        self.crash_rate_per_hour = per_hour;
    }

    /// Attaches a persistent worker pool for [`Fleet::step_parallel`].
    /// The datacenter shares one pool between fleet physics and leaf
    /// control cycles so both fan-outs reuse the same parked workers.
    pub fn attach_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// Detaches the worker pool; parallel stepping falls back to
    /// per-call scoped threads.
    pub fn detach_pool(&mut self) {
        self.pool = None;
    }

    /// Registers the control plane's per-leaf server spans so the step
    /// maintains per-leaf power partials and leaf-aligned worker
    /// partitions. Spans must ascend and tile `0..len`.
    pub(crate) fn set_leaf_spans(&mut self, spans: &[Range<usize>]) {
        debug_assert!(spans
            .iter()
            .zip(spans.iter().skip(1))
            .all(|(a, b)| a.end == b.start));
        self.leaf_spans = spans.to_vec();
        self.leaf_power_w = vec![0.0; spans.len()];
        leaf_partials(&self.power_w, 0, &self.leaf_spans, &mut self.leaf_power_w);
        self.partition = Partition::default();
    }

    /// The service running on server `sid`.
    pub fn service_of(&self, sid: u32) -> ServiceKind {
        self.services[sid as usize]
    }

    /// The agent (and host) of server `sid`.
    pub fn agent(&self, sid: u32) -> &Agent {
        &self.agents[sid as usize]
    }

    /// Mutable agent access (experiment hooks). Marks the fleet's
    /// cached power arrays dirty: power queries fall back to live
    /// per-agent reads until the next step rebuilds the cache.
    pub fn agent_mut(&mut self, sid: u32) -> &mut Agent {
        self.power_dirty = true;
        &mut self.agents[sid as usize]
    }

    /// Mutable access to the whole agent array, indexed by server id.
    /// The parallel control plane partitions this into disjoint
    /// per-leaf spans with `split_at_mut`. Does not mark the power
    /// cache dirty: the controller RPC path only programs RAPL limits,
    /// which change drawn power at the next physics step, never
    /// immediately.
    pub(crate) fn agents_mut(&mut self) -> &mut [Agent] {
        &mut self.agents
    }

    /// Powers a server on or off (breaker blackout path), keeping the
    /// cached power arrays exact — a dead server reads zero watts
    /// immediately, a revived one its retained actuator output.
    pub fn set_server_alive(&mut self, sid: u32, alive: bool) {
        let i = sid as usize;
        self.agents[i].server_mut().set_alive(alive);
        self.power_w[i] = self.agents[i].server().power().as_watts();
        if !self.leaf_spans.is_empty() {
            let leaf = self.leaf_spans.partition_point(|s| s.end <= i);
            if let Some(span) = self.leaf_spans.get(leaf) {
                if span.contains(&i) {
                    self.leaf_power_w[leaf] = self.power_w[span.clone()].iter().sum();
                }
            }
        }
    }

    /// The true (physics) power of server `sid` right now.
    pub fn power_of(&self, sid: u32) -> Power {
        if self.power_dirty {
            self.agents[sid as usize].server().power()
        } else {
            Power::from_watts(self.power_w[sid as usize])
        }
    }

    /// Sum of true power over a set of servers: an ascending flat scan
    /// of the cached watts array, bit-identical to summing live reads.
    pub fn power_sum(&self, sids: &[u32]) -> Power {
        if self.power_dirty {
            return sids
                .iter()
                .map(|&s| self.agents[s as usize].server().power())
                .sum();
        }
        Power::from_watts(sids.iter().map(|&s| self.power_w[s as usize]).sum())
    }

    /// Sum of true power over a contiguous server-id range — the
    /// telemetry fast path for grid topologies, where every device's
    /// subtree is one such range.
    pub(crate) fn power_sum_range(&self, range: Range<usize>) -> Power {
        if self.power_dirty {
            return self.agents[range].iter().map(|a| a.server().power()).sum();
        }
        Power::from_watts(self.power_w[range].iter().sum())
    }

    /// The maintained power partial of leaf `leaf`, if the fleet knows
    /// the control plane's leaf spans and the cache is clean. The
    /// partial is the ascending flat fold over the leaf's span — the
    /// exact sum [`Fleet::power_sum`] would compute over its ids.
    pub(crate) fn leaf_power(&self, leaf: usize) -> Option<Power> {
        if self.power_dirty {
            return None;
        }
        self.leaf_power_w.get(leaf).map(|&w| Power::from_watts(w))
    }

    /// Sum of true power over a set of servers, restricted to one
    /// service (Figure 15's per-service breakdown).
    pub fn power_sum_of_service(&self, sids: &[u32], kind: ServiceKind) -> Power {
        if self.power_dirty {
            return sids
                .iter()
                .filter(|&&s| self.services[s as usize] == kind)
                .map(|&s| self.agents[s as usize].server().power())
                .sum();
        }
        Power::from_watts(
            sids.iter()
                .filter(|&&s| self.services[s as usize] == kind)
                .map(|&s| self.power_w[s as usize])
                .sum(),
        )
    }

    /// The post-clamp demand utilization server `sid` was stepped with
    /// most recently.
    pub fn utilization_of(&self, sid: u32) -> f64 {
        self.util[sid as usize]
    }

    /// Advances every server by one tick: samples traffic, draws demand
    /// from each workload process, applies static clamps, steps server
    /// physics, and processes agent crash/restart events.
    pub fn step(&mut self, now: SimTime, dt: SimDuration) {
        let mults = self.traffic_multipliers(now);
        step_span(
            &mut self.agents,
            &mut self.generators,
            &self.mult_idx,
            &mut self.power_w,
            &mut self.util,
            &mults,
            &self.static_util_caps,
            now,
            dt,
        );
        leaf_partials(&self.power_w, 0, &self.leaf_spans, &mut self.leaf_power_w);
        self.power_dirty = false;
        self.process_failures(now, dt);
    }

    /// Like [`Fleet::step`] but advances servers on `threads` workers.
    /// Per-server workload processes own independent RNG streams, so
    /// the result is bit-identical to the serial path — this mirrors
    /// the production deployment where one consolidated binary runs
    /// ~100 controller/agent threads (§IV).
    ///
    /// With a pool attached ([`Fleet::attach_pool`]) the dispatch wakes
    /// the persistent parked workers over precomputed leaf-aligned
    /// partitions and allocates nothing once warm; without one it falls
    /// back to the legacy per-call scoped threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or a worker thread panics.
    pub fn step_parallel(&mut self, now: SimTime, dt: SimDuration, threads: usize) {
        assert!(threads >= 1, "need at least one worker thread");
        if threads == 1 || self.agents.len() < 64 {
            return self.step(now, dt);
        }
        match &self.pool {
            Some(pool) => {
                let pool = Arc::clone(pool);
                self.step_pooled(now, dt, threads, &pool);
            }
            None => self.step_scoped(now, dt, threads),
        }
        self.power_dirty = false;
        self.process_failures(now, dt);
    }

    /// Pooled parallel step: per-worker jobs over the precomputed
    /// partition, zero-alloc once the partition is cached.
    fn step_pooled(&mut self, now: SimTime, dt: SimDuration, threads: usize, pool: &WorkerPool) {
        let workers = threads.min(pool.workers());
        self.ensure_partition(workers);
        let mults = self.traffic_multipliers(now);
        let caps = self.static_util_caps;

        /// One worker's disjoint view of the fleet arrays.
        struct StepJob<'a> {
            agents: &'a mut [Agent],
            generators: &'a mut [ServiceWorkload],
            mult_idx: &'a [u8],
            power_w: &'a mut [f64],
            util: &'a mut [f64],
            /// This worker's leaves: partial-sum outputs and the
            /// matching global spans.
            leaf_power_w: &'a mut [f64],
            leaf_spans: &'a [Range<usize>],
            /// Server id of `agents[0]`.
            base: usize,
        }

        let mut jobs: [Option<StepJob>; MAX_WORKERS] = std::array::from_fn(|_| None);
        let njobs = self.partition.agents.len();
        {
            let mut agents = &mut self.agents[..];
            let mut generators = &mut self.generators[..];
            let mut mult_idx = &self.mult_idx[..];
            let mut power_w = &mut self.power_w[..];
            let mut util = &mut self.util[..];
            let mut leaf_power_w = &mut self.leaf_power_w[..];
            let mut consumed = 0usize;
            let mut leaves_consumed = 0usize;
            for (job, (arange, lrange)) in jobs
                .iter_mut()
                .zip(self.partition.agents.iter().zip(&self.partition.leaves))
            {
                debug_assert_eq!(arange.start, consumed, "partition must tile the fleet");
                let take = arange.end - arange.start;
                let (a, rest) = agents.split_at_mut(take);
                agents = rest;
                let (g, rest) = generators.split_at_mut(take);
                generators = rest;
                let (m, rest) = mult_idx.split_at(take);
                mult_idx = rest;
                let (p, rest) = power_w.split_at_mut(take);
                power_w = rest;
                let (u, rest) = util.split_at_mut(take);
                util = rest;
                debug_assert_eq!(lrange.start, leaves_consumed);
                let (lp, rest) = leaf_power_w.split_at_mut(lrange.end - lrange.start);
                leaf_power_w = rest;
                *job = Some(StepJob {
                    agents: a,
                    generators: g,
                    mult_idx: m,
                    power_w: p,
                    util: u,
                    leaf_power_w: lp,
                    leaf_spans: &self.leaf_spans[lrange.clone()],
                    base: consumed,
                });
                consumed = arange.end;
                leaves_consumed = lrange.end;
            }
        }
        pool.run_on(&mut jobs[..njobs], |_w, slot| {
            let job = slot.as_mut().expect("partition slot filled above");
            step_span(
                job.agents,
                job.generators,
                job.mult_idx,
                job.power_w,
                job.util,
                &mults,
                &caps,
                now,
                dt,
            );
            leaf_partials(job.power_w, job.base, job.leaf_spans, job.leaf_power_w);
        });
    }

    /// Legacy parallel step: per-call scoped threads over plain
    /// `div_ceil` agent chunks. Kept as the no-pool fallback and the
    /// baseline the pool is benchmarked against.
    fn step_scoped(&mut self, now: SimTime, dt: SimDuration, threads: usize) {
        let mults = self.traffic_multipliers(now);
        let caps = self.static_util_caps;
        let chunk = self.agents.len().div_ceil(threads);
        let mult_idx = &self.mult_idx;
        let agents = &mut self.agents;
        let generators = &mut self.generators;
        let power_w = &mut self.power_w;
        let util = &mut self.util;
        std::thread::scope(|scope| {
            for ((((agent_chunk, gen_chunk), midx_chunk), power_chunk), util_chunk) in agents
                .chunks_mut(chunk)
                .zip(generators.chunks_mut(chunk))
                .zip(mult_idx.chunks(chunk))
                .zip(power_w.chunks_mut(chunk))
                .zip(util.chunks_mut(chunk))
            {
                scope.spawn(move || {
                    step_span(
                        agent_chunk,
                        gen_chunk,
                        midx_chunk,
                        power_chunk,
                        util_chunk,
                        &mults,
                        &caps,
                        now,
                        dt,
                    );
                });
            }
        });
        leaf_partials(&self.power_w, 0, &self.leaf_spans, &mut self.leaf_power_w);
    }

    /// Rebuilds the cached per-worker partition if the thread count
    /// changed. Leaf-aligned when spans are known — the same
    /// whole-leaf `div_ceil` chunking the leaf dispatch uses, so a
    /// server's worker assignment is stable across both fan-outs.
    fn ensure_partition(&mut self, threads: usize) {
        let threads = threads.clamp(1, MAX_WORKERS);
        if self.partition.threads == threads && !self.partition.agents.is_empty() {
            return;
        }
        let mut agents = Vec::new();
        let mut leaves = Vec::new();
        if self.leaf_spans.is_empty() {
            let n = self.agents.len();
            let per = n.div_ceil(threads);
            let mut start = 0;
            while start < n {
                let end = (start + per).min(n);
                agents.push(start..end);
                leaves.push(0..0);
                start = end;
            }
        } else {
            let l = self.leaf_spans.len();
            let per = l.div_ceil(threads.min(l));
            let mut lo = 0;
            while lo < l {
                let hi = (lo + per).min(l);
                agents.push(self.leaf_spans[lo].start..self.leaf_spans[hi - 1].end);
                leaves.push(lo..hi);
                lo = hi;
            }
        }
        self.partition = Partition {
            threads,
            agents,
            leaves,
        };
    }

    /// Per-service traffic multipliers at `now`, indexed by
    /// [`ServiceKind::index`]. A fixed array instead of a per-tick
    /// `HashMap`: the fleet step allocates nothing.
    fn traffic_multipliers(&self, now: SimTime) -> [f64; ServiceKind::COUNT] {
        let mut mults = [1.0; ServiceKind::COUNT];
        for kind in ServiceKind::all() {
            if let Some(pattern) = self.traffic.get(&kind) {
                mults[kind.index()] = pattern.multiplier(now);
            }
        }
        mults
    }

    /// Failure injection: crashes are per-server Poisson events; the
    /// watchdog restarts agents after a fixed delay (§III-E).
    fn process_failures(&mut self, now: SimTime, dt: SimDuration) {
        if self.crash_rate_per_hour > 0.0 {
            let p = self.crash_rate_per_hour * dt.as_secs_f64() / 3600.0;
            for i in 0..self.agents.len() {
                if self.agents[i].is_running() && self.rng.chance(p) {
                    self.agents[i].crash();
                    self.pending_restarts
                        .push((i as u32, now + self.watchdog_delay));
                }
            }
        }
        let due: Vec<u32> = self
            .pending_restarts
            .iter()
            .filter(|&&(_, t)| t <= now)
            .map(|&(s, _)| s)
            .collect();
        self.pending_restarts.retain(|&(_, t)| t > now);
        for s in due {
            self.agents[s as usize].restart();
        }
    }

    /// Mean performance factor over a set of servers (1.0 = turbo-off
    /// uncapped baseline).
    pub fn mean_performance(&self, sids: &[u32]) -> f64 {
        if sids.is_empty() {
            return f64::NAN;
        }
        sids.iter()
            .map(|&s| self.agents[s as usize].server().performance_factor())
            .sum::<f64>()
            / sids.len() as f64
    }

    /// Instantaneous fleet statistics.
    pub fn stats(&self) -> FleetStats {
        let total_power = if self.power_dirty {
            self.agents.iter().map(|a| a.server().power()).sum()
        } else {
            Power::from_watts(self.power_w.iter().sum())
        };
        FleetStats {
            capped_servers: self
                .agents
                .iter()
                .filter(|a| a.current_cap().is_some())
                .count(),
            agents_down: self.agents.iter().filter(|a| !a.is_running()).count(),
            total_power,
        }
    }

    /// Iterates `(server_id, service)` pairs.
    pub fn iter_services(&self) -> impl Iterator<Item = (u32, ServiceKind)> + '_ {
        self.services
            .iter()
            .enumerate()
            .map(|(i, &k)| (i as u32, k))
    }
}

/// Splits the fleet's agent array into disjoint `&mut` slices, one per
/// span, for the parallel control plane. Spans must be ascending and
/// non-overlapping (agents between spans are skipped); each returned
/// slice starts at its span's `start` server id.
pub(crate) fn split_agent_spans(
    mut agents: &mut [Agent],
    spans: impl Iterator<Item = std::ops::Range<usize>>,
) -> Vec<&mut [Agent]> {
    let mut out = Vec::new();
    let mut consumed = 0;
    for span in spans {
        let (_, rest) = agents.split_at_mut(span.start - consumed);
        let (mine, rest) = rest.split_at_mut(span.end - span.start);
        out.push(mine);
        consumed = span.end;
        agents = rest;
    }
    out
}

/// Advances a contiguous run of servers: workload draw, static clamp,
/// physics step, flat-array writeback. Shared verbatim by the serial,
/// scoped and pooled paths so their arithmetic cannot drift apart.
#[allow(clippy::too_many_arguments)]
fn step_span(
    agents: &mut [Agent],
    generators: &mut [ServiceWorkload],
    mult_idx: &[u8],
    power_w: &mut [f64],
    util: &mut [f64],
    mults: &[f64; ServiceKind::COUNT],
    static_caps: &[Option<f64>; ServiceKind::COUNT],
    now: SimTime,
    dt: SimDuration,
) {
    for i in 0..agents.len() {
        let k = mult_idx[i] as usize;
        let mut u = generators[i].utilization(now, mults[k], dt);
        if let Some(cap) = static_caps[k] {
            u = u.min(cap);
        }
        util[i] = u;
        let server = agents[i].server_mut();
        server.set_demand(u);
        power_w[i] = server.step(dt).as_watts();
    }
}

/// Rebuilds per-leaf power partials from the flat watts array. `base`
/// is the server id of `power_w[0]`; `spans` hold global server-id
/// ranges. Each partial is the ascending flat fold over its span — the
/// same additions, in the same order, at any worker count.
fn leaf_partials(power_w: &[f64], base: usize, spans: &[Range<usize>], out: &mut [f64]) {
    for (partial, span) in out.iter_mut().zip(spans) {
        *partial = power_w[span.start - base..span.end - base].iter().sum();
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("servers", &self.agents.len())
            .field("crash_rate_per_hour", &self.crash_rate_per_hour)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serverpower::ServerGeneration;

    fn small_fleet(n: usize, kind: ServiceKind) -> Fleet {
        let configs = vec![ServerConfig::new(ServerGeneration::Haswell2015); n];
        let services = vec![kind; n];
        Fleet::new(configs, services, SimRng::seed_from(11))
    }

    fn run(fleet: &mut Fleet, secs: u64) -> SimTime {
        let mut t = SimTime::ZERO;
        for _ in 0..secs {
            fleet.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        t
    }

    #[test]
    fn servers_draw_power_after_stepping() {
        let mut fleet = small_fleet(8, ServiceKind::Web);
        run(&mut fleet, 10);
        for i in 0..8 {
            assert!(fleet.power_of(i).as_watts() > 90.0, "server {i} idle");
        }
        let total = fleet.stats().total_power;
        assert!(
            (total - fleet.power_sum(&(0..8).collect::<Vec<_>>()))
                .abs()
                .as_watts()
                < 1e-9
        );
    }

    #[test]
    fn per_service_power_split_sums_to_total() {
        let configs = vec![ServerConfig::new(ServerGeneration::Haswell2015); 6];
        let services = vec![
            ServiceKind::Web,
            ServiceKind::Web,
            ServiceKind::Cache,
            ServiceKind::Cache,
            ServiceKind::NewsFeed,
            ServiceKind::NewsFeed,
        ];
        let mut fleet = Fleet::new(configs, services, SimRng::seed_from(3));
        run(&mut fleet, 10);
        let all: Vec<u32> = (0..6).collect();
        let split: Power = [ServiceKind::Web, ServiceKind::Cache, ServiceKind::NewsFeed]
            .iter()
            .map(|&k| fleet.power_sum_of_service(&all, k))
            .sum();
        assert!((split - fleet.power_sum(&all)).abs().as_watts() < 1e-9);
    }

    #[test]
    fn static_util_cap_lowers_power() {
        let mut capped = small_fleet(10, ServiceKind::Hadoop);
        capped.set_static_util_cap(ServiceKind::Hadoop, Some(0.3));
        run(&mut capped, 30);
        let mut free = small_fleet(10, ServiceKind::Hadoop);
        run(&mut free, 30);
        assert!(
            capped.stats().total_power < free.stats().total_power * 0.85,
            "clamp had no effect: {} vs {}",
            capped.stats().total_power,
            free.stats().total_power
        );
    }

    #[test]
    fn traffic_pattern_modulates_demand() {
        let mut fleet = small_fleet(10, ServiceKind::Web);
        fleet.set_traffic(ServiceKind::Web, TrafficPattern::flat(0.4));
        run(&mut fleet, 30);
        let low = fleet.stats().total_power;
        let mut busy = small_fleet(10, ServiceKind::Web);
        busy.set_traffic(ServiceKind::Web, TrafficPattern::flat(1.3));
        run(&mut busy, 30);
        assert!(busy.stats().total_power > low * 1.1);
    }

    #[test]
    fn crashes_and_watchdog_restarts() {
        let mut fleet = small_fleet(50, ServiceKind::Web);
        fleet.set_crash_rate(3600.0); // ~1 per server-second: crash storm
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            fleet.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        assert!(fleet.stats().agents_down > 0, "no crashes observed");
        // Stop crashing; watchdog (30 s) brings everyone back.
        fleet.set_crash_rate(0.0);
        for _ in 0..40 {
            fleet.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        assert_eq!(
            fleet.stats().agents_down,
            0,
            "watchdog failed to restart agents"
        );
    }

    #[test]
    fn capped_server_count_tracks_rapl() {
        let mut fleet = small_fleet(4, ServiceKind::Web);
        run(&mut fleet, 5);
        assert_eq!(fleet.stats().capped_servers, 0);
        fleet
            .agent_mut(2)
            .server_mut()
            .rapl_mut()
            .set_limit(Power::from_watts(150.0));
        assert_eq!(fleet.stats().capped_servers, 1);
    }

    fn mixed_fleet(seed: u64) -> Fleet {
        let configs = vec![ServerConfig::new(ServerGeneration::Haswell2015); 200];
        let services: Vec<ServiceKind> = (0..200).map(|i| ServiceKind::all()[i % 6]).collect();
        Fleet::new(configs, services, SimRng::seed_from(seed))
    }

    #[test]
    fn parallel_step_matches_serial() {
        let mut serial = mixed_fleet(77);
        let mut parallel = mixed_fleet(77);
        let mut t = SimTime::ZERO;
        for _ in 0..30 {
            serial.step(t, SimDuration::from_secs(1));
            parallel.step_parallel(t, SimDuration::from_secs(1), 4);
            t += SimDuration::from_secs(1);
        }
        for i in 0..200 {
            assert_eq!(
                serial.power_of(i).as_watts(),
                parallel.power_of(i).as_watts(),
                "server {i} diverged between serial and parallel stepping"
            );
        }
    }

    #[test]
    fn pooled_step_matches_serial_and_scoped() {
        let mut serial = mixed_fleet(78);
        let mut scoped = mixed_fleet(78);
        let mut pooled = mixed_fleet(78);
        pooled.attach_pool(Arc::new(WorkerPool::new(4)));
        let mut t = SimTime::ZERO;
        for _ in 0..30 {
            serial.step(t, SimDuration::from_secs(1));
            scoped.step_parallel(t, SimDuration::from_secs(1), 4);
            pooled.step_parallel(t, SimDuration::from_secs(1), 4);
            t += SimDuration::from_secs(1);
        }
        for i in 0..200 {
            let s = serial.power_of(i).as_watts();
            assert_eq!(s, scoped.power_of(i).as_watts(), "server {i} scoped drift");
            assert_eq!(s, pooled.power_of(i).as_watts(), "server {i} pooled drift");
        }
    }

    #[test]
    fn pooled_step_with_leaf_spans_maintains_partials() {
        let mut fleet = mixed_fleet(79);
        let spans: Vec<Range<usize>> = (0..4).map(|l| l * 50..(l + 1) * 50).collect();
        fleet.set_leaf_spans(&spans);
        fleet.attach_pool(Arc::new(WorkerPool::new(3)));
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            fleet.step_parallel(t, SimDuration::from_secs(1), 3);
            t += SimDuration::from_secs(1);
        }
        for (l, span) in spans.iter().enumerate() {
            let ids: Vec<u32> = (span.start as u32..span.end as u32).collect();
            assert_eq!(
                fleet.leaf_power(l).expect("partials maintained").as_watts(),
                fleet.power_sum(&ids).as_watts(),
                "leaf {l} partial drifted from its span sum"
            );
        }
    }

    #[test]
    fn agent_mut_falls_back_to_live_reads_until_next_step() {
        let mut fleet = small_fleet(8, ServiceKind::Web);
        run(&mut fleet, 10);
        let before = fleet.power_of(3);
        assert!(before.as_watts() > 0.0);
        fleet.agent_mut(3).server_mut().set_alive(false);
        // Dirty cache: the query must see the live (dead) server.
        assert_eq!(fleet.power_of(3), Power::ZERO);
        assert_eq!(fleet.power_sum(&[3]), Power::ZERO);
        run(&mut fleet, 1);
        assert_eq!(fleet.power_of(3), Power::ZERO);
    }

    #[test]
    fn set_server_alive_keeps_cache_exact() {
        let mut fleet = small_fleet(8, ServiceKind::Web);
        let spans = vec![0..4, 4..8];
        fleet.set_leaf_spans(&spans);
        run(&mut fleet, 10);
        let leaf0_before = fleet.leaf_power(0).unwrap();
        fleet.set_server_alive(1, false);
        assert_eq!(fleet.power_of(1), Power::ZERO);
        let leaf0_after = fleet.leaf_power(0).expect("cache stays clean");
        assert!(leaf0_after < leaf0_before);
        let ids: Vec<u32> = (0..4).collect();
        assert_eq!(leaf0_after.as_watts(), fleet.power_sum(&ids).as_watts());
        fleet.set_server_alive(1, true);
        assert!(fleet.power_of(1).as_watts() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        small_fleet(100, ServiceKind::Web).step_parallel(
            SimTime::ZERO,
            SimDuration::from_secs(1),
            0,
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_construction_panics() {
        Fleet::new(
            vec![ServerConfig::new(ServerGeneration::Haswell2015)],
            vec![],
            SimRng::seed_from(1),
        );
    }

    #[test]
    #[should_panic(expected = "static util cap")]
    fn invalid_static_cap_panics() {
        small_fleet(1, ServiceKind::Web).set_static_util_cap(ServiceKind::Web, Some(0.0));
    }
}
