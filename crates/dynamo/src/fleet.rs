//! The simulated server fleet: agents, workloads, failures.
//!
//! # Hot-path layout (struct of arrays)
//!
//! The per-tick physics step runs entirely over flat parallel arrays —
//! no `Agent` → [`Server`] → actuator pointer chasing. The mutable
//! physics of every server (demanded watts, RAPL limit, settled output,
//! first-step flag, liveness) lives in `f64` arrays owned by the fleet,
//! and one branchless pass of [`serverpower::kernel::step_batch`]
//! advances all of them per tick. Power-curve evaluation goes through
//! the per-generation [`PowerLut`] uniform-grid tables, and the per-tick
//! Ornstein-Uhlenbeck `exp`/`sqrt` coefficients are hoisted per service
//! ([`OuCoeffs`]) instead of recomputed per server.
//!
//! ## Batched run order (stable permutation)
//!
//! At build time servers are grouped into *runs* of equal
//! `(generation, service, turbo)` so the demand loop has no per-element
//! branching on multiplier index, static cap, or turbo factor. The
//! grouping is a *leaf-local stable permutation*: server ids, leaf span
//! membership, per-server RNG streams, and every externally visible
//! array stay in server-id order, so results are bit-identical to the
//! unpermuted layout (each workload process owns a private RNG stream,
//! making evaluation order unobservable). Positions (`perm`/`inv`) are
//! only an internal storage order.
//!
//! The id-ordered views ([`Fleet::power_of`], [`Fleet::power_sum`],
//! per-leaf partials) are scattered back from the batch arrays each
//! step with the same ascending-index `f64` folds as before, so all
//! aggregates remain bit-identical at any worker count.
//!
//! ## State ownership
//!
//! While the cache is clean, the arrays are authoritative for demand,
//! output, init flag, and liveness; the scalar [`Server`] models hold
//! stale copies. Before agent RPC cycles run (which read true power
//! through the server model), [`Fleet::sync_servers_for_control`]
//! flushes the due leaves' state back into the servers, and
//! [`Fleet::absorb_caps`] pulls freshly programmed RAPL limits back
//! into the `limit_w` array afterwards. Out-of-band mutation through
//! [`Fleet::agent_mut`] flushes *all* servers first and marks the cache
//! dirty: queries fall back to live per-agent reads until the next step
//! resynchronizes the arrays from the servers. The breaker blackout
//! path uses [`Fleet::set_server_alive`], which keeps the cache exact
//! instead.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use dcsim::{SimDuration, SimRng, SimTime};
use dynamo_agent::Agent;
use dynpool::{WorkerPool, MAX_WORKERS};
use powerinfra::Power;
use serverpower::{kernel, PowerLut, Server, ServerConfig};
use workloads::{OuCoeffs, ServiceKind, ServiceWorkload, TrafficPattern};

/// Aggregate fleet statistics at an instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetStats {
    /// Servers currently under a RAPL cap.
    pub capped_servers: usize,
    /// Servers whose agent process is down.
    pub agents_down: usize,
    /// Total true power of all servers.
    pub total_power: Power,
}

/// Precomputed per-worker partitions for [`Fleet::step_parallel`],
/// cached so the hot path never re-carves chunk boundaries.
///
/// When the control plane's leaf spans are known, partitions are
/// leaf-aligned and built by the same chunking rule the leaf dispatch
/// uses (`div_ceil` over whole leaves), so a server's worker assignment
/// is identical across fleet stepping and leaf control cycles. Leaf
/// alignment also guarantees each worker's id range equals its position
/// range (the batch permutation is leaf-local), which is what lets a
/// worker scatter drawn power into its own disjoint id-order slice.
#[derive(Debug, Default)]
struct Partition {
    /// Requested thread count this partition was computed for.
    threads: usize,
    /// Per-worker agent index ranges (ascending, tiling `0..n`).
    agents: Vec<Range<usize>>,
    /// Per-worker leaf index ranges (empty ranges when the fleet has no
    /// leaf spans).
    leaves: Vec<Range<usize>>,
}

/// One maximal contiguous position range of servers sharing a
/// generation, service, and turbo setting. All batch-loop constants of
/// the demand computation are hoisted here once at build time.
struct Run {
    /// Position range (`perm` order) this run covers.
    range: Range<usize>,
    /// The generation's shared power LUT.
    lut: Arc<PowerLut>,
    /// Idle watts of the generation (LUT node 0).
    idle_w: f64,
    /// Turbo power factor; meaningful only when `turbo` is true.
    turbo_pf: f64,
    /// Turbo performance factor (1.0 when turbo is off).
    turbo_perf: f64,
    /// Whether turbo is enabled for this run. A per-run branch, hoisted
    /// out of the element loop: routing non-turbo servers through the
    /// turbo expression with factor 1.0 would not be a float identity.
    turbo: bool,
    /// [`ServiceKind::index`] — the traffic-multiplier / static-cap /
    /// OU-coefficient index for the whole run.
    svc: u8,
}

/// Every server in the datacenter: its [`Agent`] (which owns the
/// [`Server`] model), its service assignment, its utilization process,
/// and fleet-level failure injection.
pub struct Fleet {
    agents: Vec<Agent>,
    services: Vec<ServiceKind>,
    /// Per-server workload processes, in *position* order (see `perm`).
    generators: Vec<ServiceWorkload>,
    /// Per-service traffic patterns; services without an entry see
    /// constant nominal traffic.
    traffic: HashMap<ServiceKind, TrafficPattern>,
    /// Optional static utilization clamp per service, indexed by
    /// [`ServiceKind::index`] (the pre-Dynamo baseline for the search
    /// cluster in §IV-D: "all servers ... were required to limit their
    /// clock frequency").
    static_util_caps: [Option<f64>; ServiceKind::COUNT],
    /// Probability per server-hour of an agent crash.
    crash_rate_per_hour: f64,
    /// Watchdog restart delay.
    watchdog_delay: SimDuration,
    /// Crashed agents pending restart: (server, restart time).
    pending_restarts: Vec<(u32, SimTime)>,
    rng: SimRng,
    /// Position → server id. Identity without leaf spans; with spans, a
    /// leaf-local stable sort by `(generation, service, turbo)`.
    perm: Vec<u32>,
    /// Server id → position (inverse of `perm`).
    inv: Vec<u32>,
    /// Maximal equal-key position ranges with hoisted loop constants.
    runs: Vec<Run>,
    /// Batch state, position order: demanded watts (incl. turbo premium).
    demand_w: Vec<f64>,
    /// Batch state, position order: RAPL limit in watts
    /// (`f64::INFINITY` when uncapped, making `min` branchless).
    limit_w: Vec<f64>,
    /// Batch state, position order: settled RAPL output watts.
    out_w: Vec<f64>,
    /// Batch state, position order: 1.0 until the first live step
    /// (forces the exact first-step snap), 0.0 afterwards.
    not_init: Vec<f64>,
    /// Batch state, position order: liveness mask (1.0 alive, 0.0 dead).
    alive_m: Vec<f64>,
    /// Post-clamp demand utilization at the last step, position order.
    util: Vec<f64>,
    /// Uniform RAPL time constant of the fleet's servers.
    tau_secs: f64,
    /// SoA hot path: true power draw (watts) of each server after its
    /// last physics step, in server-id order (`out_w * alive`, scattered
    /// through `perm`).
    power_w: Vec<f64>,
    /// Set by [`Fleet::agent_mut`]: an embedder may have changed server
    /// power outside the step path, so cached sums cannot be trusted
    /// until the next step rewrites them. Queries fall back to live
    /// per-agent reads while set; the servers were flushed to be fresh
    /// at the moment the flag was raised.
    power_dirty: bool,
    /// The control plane's per-leaf server spans (ascending, tiling
    /// `0..n`), when known. Empty otherwise.
    leaf_spans: Vec<Range<usize>>,
    /// Per-leaf power partial sums (watts), rebuilt by every step as
    /// the ascending flat fold over the leaf's span.
    leaf_power_w: Vec<f64>,
    /// Cached per-worker partition for the last-used thread count.
    partition: Partition,
    /// Persistent worker pool shared with the leaf control plane.
    /// Without one, [`Fleet::step_parallel`] falls back to per-call
    /// scoped threads (the legacy dispatch, kept for comparison).
    pool: Option<Arc<WorkerPool>>,
}

impl Fleet {
    /// Assembles a fleet. `configs[i]` and `services[i]` describe server
    /// `i`; workload processes get independent RNG streams from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `configs` and `services` differ in length or are empty.
    pub fn new(configs: Vec<ServerConfig>, services: Vec<ServiceKind>, mut rng: SimRng) -> Self {
        assert_eq!(
            configs.len(),
            services.len(),
            "configs/services length mismatch"
        );
        assert!(!configs.is_empty(), "fleet cannot be empty");
        let n = configs.len();
        let mut agents = Vec::with_capacity(n);
        let mut generators = Vec::with_capacity(n);
        let mut agent_rng = rng.split("agents");
        let mut wl_rng = rng.split("workloads");
        for (i, (config, &service)) in configs.into_iter().zip(&services).enumerate() {
            let server = Server::new(i as u32, config);
            agents.push(Agent::new(server, agent_rng.split_index(i as u64)));
            generators.push(ServiceWorkload::new(service, wl_rng.split_index(i as u64)));
        }
        let tau_secs = agents[0].server().rapl().tau_secs();
        let mut fleet = Fleet {
            agents,
            services,
            generators,
            traffic: HashMap::new(),
            static_util_caps: [None; ServiceKind::COUNT],
            crash_rate_per_hour: 0.0,
            watchdog_delay: SimDuration::from_secs(30),
            pending_restarts: Vec::new(),
            rng: rng.split("fleet-events"),
            perm: Vec::new(),
            inv: Vec::new(),
            runs: Vec::new(),
            demand_w: Vec::new(),
            limit_w: Vec::new(),
            out_w: Vec::new(),
            not_init: Vec::new(),
            alive_m: Vec::new(),
            util: Vec::new(),
            tau_secs,
            // Pre-step, every server's RAPL output is zero, matching a
            // live read.
            power_w: vec![0.0; n],
            power_dirty: false,
            leaf_spans: Vec::new(),
            leaf_power_w: Vec::new(),
            partition: Partition::default(),
            pool: None,
        };
        fleet.rebuild_layout();
        fleet
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// Always false — construction rejects empty fleets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sets the traffic pattern for a service.
    pub fn set_traffic(&mut self, kind: ServiceKind, pattern: TrafficPattern) {
        self.traffic.insert(kind, pattern);
    }

    /// Applies a static utilization clamp to every server of a service
    /// (the frequency-limit baseline of §IV-D).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is outside `(0, 1]`.
    pub fn set_static_util_cap(&mut self, kind: ServiceKind, cap: Option<f64>) {
        if let Some(c) = cap {
            assert!(
                c > 0.0 && c <= 1.0,
                "static util cap must be in (0,1], got {c}"
            );
        }
        self.static_util_caps[kind.index()] = cap;
    }

    /// Enables agent crash injection at the given rate (per server-hour).
    pub fn set_crash_rate(&mut self, per_hour: f64) {
        assert!(
            per_hour >= 0.0 && per_hour.is_finite(),
            "invalid crash rate {per_hour}"
        );
        self.crash_rate_per_hour = per_hour;
    }

    /// Attaches a persistent worker pool for [`Fleet::step_parallel`].
    /// The datacenter shares one pool between fleet physics and leaf
    /// control cycles so both fan-outs reuse the same parked workers.
    pub fn attach_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// Detaches the worker pool; parallel stepping falls back to
    /// per-call scoped threads.
    pub fn detach_pool(&mut self) {
        self.pool = None;
    }

    /// Registers the control plane's per-leaf server spans so the step
    /// maintains per-leaf power partials and leaf-aligned worker
    /// partitions, and regroups the batch arrays leaf-locally by
    /// `(generation, service, turbo)`. Spans must ascend and tile
    /// `0..len`.
    pub(crate) fn set_leaf_spans(&mut self, spans: &[Range<usize>]) {
        debug_assert!(spans
            .iter()
            .zip(spans.iter().skip(1))
            .all(|(a, b)| a.end == b.start));
        self.leaf_spans = spans.to_vec();
        self.rebuild_layout();
        self.leaf_power_w = vec![0.0; spans.len()];
        leaf_partials(&self.power_w, 0, &self.leaf_spans, &mut self.leaf_power_w);
        self.partition = Partition::default();
    }

    /// (Re)builds the batch layout: the leaf-local stable permutation,
    /// its inverse, the equal-key runs, and the position-ordered state
    /// arrays. Existing state (including each server's workload process
    /// and RNG stream) is carried through the re-ordering untouched.
    fn rebuild_layout(&mut self) {
        let n = self.agents.len();
        // Gather current state back to id order under the old perm. At
        // construction (`perm` empty) the generators are already in id
        // order and the physics state takes its pre-step defaults.
        let mut gens_id: Vec<Option<ServiceWorkload>> =
            std::iter::repeat_with(|| None).take(n).collect();
        let mut demand_id = vec![0.0; n];
        let mut limit_id = vec![f64::INFINITY; n];
        let mut out_id = vec![0.0; n];
        let mut ni_id = vec![1.0; n];
        let mut alive_id = vec![1.0; n];
        let mut util_id = vec![0.0; n];
        if self.perm.is_empty() {
            for (id, g) in self.generators.drain(..).enumerate() {
                gens_id[id] = Some(g);
                // Pre-step demand power is the idle draw (demand
                // utilization 0), matching a live `demand_power` read.
                demand_id[id] = self.agents[id].server().lut().idle_w();
                alive_id[id] = if self.agents[id].server().is_alive() {
                    1.0
                } else {
                    0.0
                };
            }
        } else {
            for (pos, g) in self.generators.drain(..).enumerate() {
                let id = self.perm[pos] as usize;
                gens_id[id] = Some(g);
                demand_id[id] = self.demand_w[pos];
                limit_id[id] = self.limit_w[pos];
                out_id[id] = self.out_w[pos];
                ni_id[id] = self.not_init[pos];
                alive_id[id] = self.alive_m[pos];
                util_id[id] = self.util[pos];
            }
        }
        // The new permutation: identity, then a stable sort of each
        // leaf span by run key. Without spans the layout stays identity
        // (arbitrary worker chunks must keep id range == position
        // range).
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for span in &self.leaf_spans {
            perm[span.clone()].sort_by_key(|&id| {
                run_key(
                    self.agents[id as usize].server(),
                    self.services[id as usize],
                )
            });
        }
        let mut inv = vec![0u32; n];
        for (pos, &id) in perm.iter().enumerate() {
            inv[id as usize] = pos as u32;
        }
        self.generators = perm
            .iter()
            .map(|&id| gens_id[id as usize].take().expect("perm is a permutation"))
            .collect();
        self.demand_w = perm.iter().map(|&id| demand_id[id as usize]).collect();
        self.limit_w = perm.iter().map(|&id| limit_id[id as usize]).collect();
        self.out_w = perm.iter().map(|&id| out_id[id as usize]).collect();
        self.not_init = perm.iter().map(|&id| ni_id[id as usize]).collect();
        self.alive_m = perm.iter().map(|&id| alive_id[id as usize]).collect();
        self.util = perm.iter().map(|&id| util_id[id as usize]).collect();
        self.perm = perm;
        self.inv = inv;
        self.rebuild_runs();
    }

    /// Scans the position order into maximal equal-key runs with their
    /// hoisted demand-loop constants.
    fn rebuild_runs(&mut self) {
        let n = self.agents.len();
        self.runs.clear();
        let key_at = |pos: usize| {
            let id = self.perm[pos] as usize;
            run_key(self.agents[id].server(), self.services[id])
        };
        let mut start = 0;
        for pos in 1..=n {
            if pos < n && key_at(pos) == key_at(start) {
                continue;
            }
            let id = self.perm[start] as usize;
            let server = self.agents[id].server();
            let lut = server.lut().clone();
            let turbo = server.config().turbo;
            self.runs.push(Run {
                range: start..pos,
                idle_w: lut.idle_w(),
                lut,
                turbo_pf: turbo.map_or(1.0, |t| t.power_factor),
                turbo_perf: turbo.map_or(1.0, |t| t.perf_factor),
                turbo: turbo.is_some(),
                svc: self.services[id].index() as u8,
            });
            start = pos;
        }
    }

    /// The service running on server `sid`.
    pub fn service_of(&self, sid: u32) -> ServiceKind {
        self.services[sid as usize]
    }

    /// The agent (and host) of server `sid`.
    pub fn agent(&self, sid: u32) -> &Agent {
        &self.agents[sid as usize]
    }

    /// Mutable agent access (experiment hooks). Flushes the batch-owned
    /// physics state back into every server model (so the caller
    /// observes fresh state) and marks the cached power arrays dirty:
    /// power queries fall back to live per-agent reads until the next
    /// step resynchronizes the arrays from the servers.
    pub fn agent_mut(&mut self, sid: u32) -> &mut Agent {
        if !self.power_dirty {
            self.flush_span_to_servers(0..self.agents.len());
            self.power_dirty = true;
        }
        &mut self.agents[sid as usize]
    }

    /// Mutable access to the whole agent array, indexed by server id.
    /// The parallel control plane partitions this into disjoint
    /// per-leaf spans with `split_at_mut`. Does not mark the power
    /// cache dirty: the controller RPC path only programs RAPL limits,
    /// which change drawn power at the next physics step, never
    /// immediately. (The control plane brackets its cycles with
    /// [`Fleet::sync_servers_for_control`] / [`Fleet::absorb_caps`].)
    pub(crate) fn agents_mut(&mut self) -> &mut [Agent] {
        &mut self.agents
    }

    /// Pushes the batch-owned physics state of the due leaves' servers
    /// into their [`Server`] models, so the agent RPC cycles about to
    /// run observe fresh power. With unknown leaf spans every server is
    /// flushed. A no-op while the cache is dirty (the servers are
    /// already the authority then).
    pub(crate) fn sync_servers_for_control(&mut self, due: &[usize]) {
        if self.power_dirty {
            return;
        }
        if self.leaf_spans.is_empty() {
            self.flush_span_to_servers(0..self.agents.len());
        } else {
            for &leaf in due {
                self.flush_span_to_servers(self.leaf_spans[leaf].clone());
            }
        }
    }

    /// Pulls the RAPL limits the due leaves' controllers just programmed
    /// back into the batch `limit_w` array. The counterpart of
    /// [`Fleet::sync_servers_for_control`], run after the RPC cycles. A
    /// no-op while the cache is dirty (the next step resynchronizes
    /// everything from the servers anyway).
    pub(crate) fn absorb_caps(&mut self, due: &[usize]) {
        if self.power_dirty {
            return;
        }
        let mut absorb = |ids: Range<usize>| {
            for id in ids {
                let pos = self.inv[id] as usize;
                self.limit_w[pos] = self.agents[id]
                    .current_cap()
                    .map_or(f64::INFINITY, |l| l.as_watts());
            }
        };
        if self.leaf_spans.is_empty() {
            absorb(0..self.agents.len());
        } else {
            for &leaf in due {
                absorb(self.leaf_spans[leaf].clone());
            }
        }
    }

    /// Flushes batch state (demand utilization, RAPL output, init flag)
    /// into the scalar server models for one id/position span (the two
    /// coincide on leaf spans and on the full fleet).
    fn flush_span_to_servers(&mut self, span: Range<usize>) {
        for pos in span {
            let id = self.perm[pos] as usize;
            let initialized = self.not_init[pos] == 0.0;
            self.agents[id]
                .server_mut()
                .sync_physics(self.util[pos], self.out_w[pos], initialized);
        }
    }

    /// Rebuilds the batch arrays from the scalar server models after
    /// out-of-band mutation (the `power_dirty` recovery path).
    fn resync_from_servers(&mut self) {
        for pos in 0..self.agents.len() {
            let server = self.agents[self.perm[pos] as usize].server();
            debug_assert_eq!(server.rapl().tau_secs(), self.tau_secs);
            self.out_w[pos] = server.rapl().output().as_watts();
            self.not_init[pos] = if server.rapl().is_initialized() {
                0.0
            } else {
                1.0
            };
            self.alive_m[pos] = if server.is_alive() { 1.0 } else { 0.0 };
            self.limit_w[pos] = server
                .rapl()
                .limit()
                .map_or(f64::INFINITY, |l| l.as_watts());
        }
    }

    /// Powers a server on or off (breaker blackout path), keeping the
    /// cached power arrays exact — a dead server reads zero watts
    /// immediately, a revived one its retained actuator output.
    pub fn set_server_alive(&mut self, sid: u32, alive: bool) {
        let i = sid as usize;
        self.agents[i].server_mut().set_alive(alive);
        if self.power_dirty {
            // Live reads are in effect; the next step resynchronizes.
            return;
        }
        let pos = self.inv[i] as usize;
        self.alive_m[pos] = if alive { 1.0 } else { 0.0 };
        // Keep the scalar model coherent for any direct observer.
        let initialized = self.not_init[pos] == 0.0;
        self.agents[i]
            .server_mut()
            .sync_physics(self.util[pos], self.out_w[pos], initialized);
        self.power_w[i] = if alive { self.out_w[pos] } else { 0.0 };
        if !self.leaf_spans.is_empty() {
            let leaf = self.leaf_spans.partition_point(|s| s.end <= i);
            if let Some(span) = self.leaf_spans.get(leaf) {
                if span.contains(&i) {
                    self.leaf_power_w[leaf] = self.power_w[span.clone()].iter().sum();
                }
            }
        }
    }

    /// The true (physics) power of server `sid` right now.
    pub fn power_of(&self, sid: u32) -> Power {
        if self.power_dirty {
            self.agents[sid as usize].server().power()
        } else {
            Power::from_watts(self.power_w[sid as usize])
        }
    }

    /// Sum of true power over a set of servers: an ascending flat scan
    /// of the cached watts array, bit-identical to summing live reads.
    pub fn power_sum(&self, sids: &[u32]) -> Power {
        if self.power_dirty {
            return sids
                .iter()
                .map(|&s| self.agents[s as usize].server().power())
                .sum();
        }
        Power::from_watts(sids.iter().map(|&s| self.power_w[s as usize]).sum())
    }

    /// Sum of true power over a contiguous server-id range — the
    /// telemetry fast path for grid topologies, where every device's
    /// subtree is one such range.
    pub(crate) fn power_sum_range(&self, range: Range<usize>) -> Power {
        if self.power_dirty {
            return self.agents[range].iter().map(|a| a.server().power()).sum();
        }
        Power::from_watts(self.power_w[range].iter().sum())
    }

    /// The maintained power partial of leaf `leaf`, if the fleet knows
    /// the control plane's leaf spans and the cache is clean. The
    /// partial is the ascending flat fold over the leaf's span — the
    /// exact sum [`Fleet::power_sum`] would compute over its ids.
    pub(crate) fn leaf_power(&self, leaf: usize) -> Option<Power> {
        if self.power_dirty {
            return None;
        }
        self.leaf_power_w.get(leaf).map(|&w| Power::from_watts(w))
    }

    /// Sum of true power over a set of servers, restricted to one
    /// service (Figure 15's per-service breakdown).
    pub fn power_sum_of_service(&self, sids: &[u32], kind: ServiceKind) -> Power {
        if self.power_dirty {
            return sids
                .iter()
                .filter(|&&s| self.services[s as usize] == kind)
                .map(|&s| self.agents[s as usize].server().power())
                .sum();
        }
        Power::from_watts(
            sids.iter()
                .filter(|&&s| self.services[s as usize] == kind)
                .map(|&s| self.power_w[s as usize])
                .sum(),
        )
    }

    /// The post-clamp demand utilization server `sid` was stepped with
    /// most recently.
    pub fn utilization_of(&self, sid: u32) -> f64 {
        self.util[self.inv[sid as usize] as usize]
    }

    /// The utilization level server `sid` actually achieves under its
    /// current cap — [`Server::achieved_utilization`] evaluated against
    /// the batch-owned drawn power, so it is correct even while the
    /// scalar model is stale.
    pub fn achieved_utilization_of(&self, sid: u32) -> f64 {
        let i = sid as usize;
        let server = self.agents[i].server();
        if self.power_dirty {
            return server.achieved_utilization();
        }
        if self.alive_m[self.inv[i] as usize] == 0.0 {
            return 0.0;
        }
        server.achieved_utilization_at(Power::from_watts(self.power_w[i]))
    }

    /// Advances every server by one tick: samples traffic, draws demand
    /// from each workload process, applies static clamps, steps server
    /// physics in one batched kernel pass, and processes agent
    /// crash/restart events.
    pub fn step(&mut self, now: SimTime, dt: SimDuration) {
        if self.power_dirty {
            self.resync_from_servers();
        }
        let mults = self.traffic_multipliers(now);
        let ou = ou_coefficients(dt);
        let alpha = kernel::settle_alpha(dt.as_secs_f64(), self.tau_secs);
        step_range(
            0,
            &self.runs,
            &self.perm,
            &mut self.generators,
            &mut self.util,
            &mut self.demand_w,
            &self.limit_w,
            &self.alive_m,
            &mut self.not_init,
            &mut self.out_w,
            &mut self.power_w,
            &mults,
            &self.static_util_caps,
            &ou,
            alpha,
            now,
            dt,
        );
        leaf_partials(&self.power_w, 0, &self.leaf_spans, &mut self.leaf_power_w);
        self.power_dirty = false;
        self.process_failures(now, dt);
    }

    /// Like [`Fleet::step`] but advances servers on `threads` workers.
    /// Per-server workload processes own independent RNG streams, so
    /// the result is bit-identical to the serial path — this mirrors
    /// the production deployment where one consolidated binary runs
    /// ~100 controller/agent threads (§IV).
    ///
    /// With a pool attached ([`Fleet::attach_pool`]) the dispatch wakes
    /// the persistent parked workers over precomputed leaf-aligned
    /// partitions and allocates nothing once warm; without one it falls
    /// back to per-call scoped threads over the same partitions.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or a worker thread panics.
    pub fn step_parallel(&mut self, now: SimTime, dt: SimDuration, threads: usize) {
        assert!(threads >= 1, "need at least one worker thread");
        if threads == 1 || self.agents.len() < 64 {
            return self.step(now, dt);
        }
        if self.power_dirty {
            self.resync_from_servers();
        }
        match &self.pool {
            Some(pool) => {
                let pool = Arc::clone(pool);
                self.step_pooled(now, dt, threads, &pool);
            }
            None => self.step_scoped(now, dt, threads),
        }
        self.power_dirty = false;
        self.process_failures(now, dt);
    }

    /// Pooled parallel step: per-worker jobs over the precomputed
    /// partition, zero-alloc once the partition is cached.
    fn step_pooled(&mut self, now: SimTime, dt: SimDuration, threads: usize, pool: &WorkerPool) {
        let workers = threads.min(pool.workers());
        self.ensure_partition(workers);
        let mults = self.traffic_multipliers(now);
        let caps = self.static_util_caps;
        let ou = ou_coefficients(dt);
        let alpha = kernel::settle_alpha(dt.as_secs_f64(), self.tau_secs);

        /// One worker's disjoint view of the fleet arrays.
        struct StepJob<'a> {
            generators: &'a mut [ServiceWorkload],
            util: &'a mut [f64],
            demand_w: &'a mut [f64],
            not_init: &'a mut [f64],
            out_w: &'a mut [f64],
            power_w: &'a mut [f64],
            /// This worker's leaves: partial-sum outputs and the
            /// matching global spans.
            leaf_power_w: &'a mut [f64],
            leaf_spans: &'a [Range<usize>],
            /// Server id / position of element 0 of the local slices
            /// (the two coincide on leaf-aligned partitions).
            base: usize,
        }

        let runs = &self.runs;
        let perm = &self.perm;
        let limit_w = &self.limit_w;
        let alive_m = &self.alive_m;
        let mut jobs: [Option<StepJob>; MAX_WORKERS] = std::array::from_fn(|_| None);
        let njobs = self.partition.agents.len();
        {
            let mut generators = &mut self.generators[..];
            let mut util = &mut self.util[..];
            let mut demand_w = &mut self.demand_w[..];
            let mut not_init = &mut self.not_init[..];
            let mut out_w = &mut self.out_w[..];
            let mut power_w = &mut self.power_w[..];
            let mut leaf_power_w = &mut self.leaf_power_w[..];
            let mut consumed = 0usize;
            let mut leaves_consumed = 0usize;
            for (job, (arange, lrange)) in jobs
                .iter_mut()
                .zip(self.partition.agents.iter().zip(&self.partition.leaves))
            {
                debug_assert_eq!(arange.start, consumed, "partition must tile the fleet");
                let take = arange.end - arange.start;
                let (g, rest) = generators.split_at_mut(take);
                generators = rest;
                let (u, rest) = util.split_at_mut(take);
                util = rest;
                let (d, rest) = demand_w.split_at_mut(take);
                demand_w = rest;
                let (ni, rest) = not_init.split_at_mut(take);
                not_init = rest;
                let (o, rest) = out_w.split_at_mut(take);
                out_w = rest;
                let (p, rest) = power_w.split_at_mut(take);
                power_w = rest;
                debug_assert_eq!(lrange.start, leaves_consumed);
                let (lp, rest) = leaf_power_w.split_at_mut(lrange.end - lrange.start);
                leaf_power_w = rest;
                *job = Some(StepJob {
                    generators: g,
                    util: u,
                    demand_w: d,
                    not_init: ni,
                    out_w: o,
                    power_w: p,
                    leaf_power_w: lp,
                    leaf_spans: &self.leaf_spans[lrange.clone()],
                    base: consumed,
                });
                consumed = arange.end;
                leaves_consumed = lrange.end;
            }
        }
        pool.run_on(&mut jobs[..njobs], |_w, slot| {
            let job = slot.as_mut().expect("partition slot filled above");
            let lo = job.base;
            let n = job.generators.len();
            step_range(
                lo,
                runs,
                perm,
                job.generators,
                job.util,
                job.demand_w,
                &limit_w[lo..lo + n],
                &alive_m[lo..lo + n],
                job.not_init,
                job.out_w,
                job.power_w,
                &mults,
                &caps,
                &ou,
                alpha,
                now,
                dt,
            );
            leaf_partials(job.power_w, lo, job.leaf_spans, job.leaf_power_w);
        });
    }

    /// No-pool parallel step: per-call scoped threads over the same
    /// leaf-aligned partitions the pooled path uses. Kept as the
    /// fallback and the baseline the pool is benchmarked against.
    fn step_scoped(&mut self, now: SimTime, dt: SimDuration, threads: usize) {
        self.ensure_partition(threads);
        let mults = self.traffic_multipliers(now);
        let caps = self.static_util_caps;
        let ou = ou_coefficients(dt);
        let alpha = kernel::settle_alpha(dt.as_secs_f64(), self.tau_secs);
        let parts: Vec<(Range<usize>, Range<usize>)> = self
            .partition
            .agents
            .iter()
            .cloned()
            .zip(self.partition.leaves.iter().cloned())
            .collect();
        let runs = &self.runs;
        let perm = &self.perm;
        let limit_w = &self.limit_w;
        let alive_m = &self.alive_m;
        let leaf_spans = &self.leaf_spans;
        let mut generators = &mut self.generators[..];
        let mut util = &mut self.util[..];
        let mut demand_w = &mut self.demand_w[..];
        let mut not_init = &mut self.not_init[..];
        let mut out_w = &mut self.out_w[..];
        let mut power_w = &mut self.power_w[..];
        let mut leaf_power_w = &mut self.leaf_power_w[..];
        std::thread::scope(|scope| {
            for (arange, lrange) in parts {
                let take = arange.end - arange.start;
                let (g, rest) = generators.split_at_mut(take);
                generators = rest;
                let (u, rest) = util.split_at_mut(take);
                util = rest;
                let (d, rest) = demand_w.split_at_mut(take);
                demand_w = rest;
                let (ni, rest) = not_init.split_at_mut(take);
                not_init = rest;
                let (o, rest) = out_w.split_at_mut(take);
                out_w = rest;
                let (p, rest) = power_w.split_at_mut(take);
                power_w = rest;
                let (lp, rest) = leaf_power_w.split_at_mut(lrange.end - lrange.start);
                leaf_power_w = rest;
                let spans = &leaf_spans[lrange];
                let lo = arange.start;
                scope.spawn(move || {
                    let n = g.len();
                    step_range(
                        lo,
                        runs,
                        perm,
                        g,
                        u,
                        d,
                        &limit_w[lo..lo + n],
                        &alive_m[lo..lo + n],
                        ni,
                        o,
                        p,
                        &mults,
                        &caps,
                        &ou,
                        alpha,
                        now,
                        dt,
                    );
                    leaf_partials(p, lo, spans, lp);
                });
            }
        });
    }

    /// Rebuilds the cached per-worker partition if the thread count
    /// changed. Leaf-aligned when spans are known — the same
    /// whole-leaf `div_ceil` chunking the leaf dispatch uses, so a
    /// server's worker assignment is stable across both fan-outs.
    fn ensure_partition(&mut self, threads: usize) {
        let threads = threads.clamp(1, MAX_WORKERS);
        if self.partition.threads == threads && !self.partition.agents.is_empty() {
            return;
        }
        let mut agents = Vec::new();
        let mut leaves = Vec::new();
        if self.leaf_spans.is_empty() {
            let n = self.agents.len();
            let per = n.div_ceil(threads);
            let mut start = 0;
            while start < n {
                let end = (start + per).min(n);
                agents.push(start..end);
                leaves.push(0..0);
                start = end;
            }
        } else {
            let l = self.leaf_spans.len();
            let per = l.div_ceil(threads.min(l));
            let mut lo = 0;
            while lo < l {
                let hi = (lo + per).min(l);
                agents.push(self.leaf_spans[lo].start..self.leaf_spans[hi - 1].end);
                leaves.push(lo..hi);
                lo = hi;
            }
        }
        self.partition = Partition {
            threads,
            agents,
            leaves,
        };
    }

    /// Per-service traffic multipliers at `now`, indexed by
    /// [`ServiceKind::index`]. A fixed array instead of a per-tick
    /// `HashMap`: the fleet step allocates nothing.
    fn traffic_multipliers(&self, now: SimTime) -> [f64; ServiceKind::COUNT] {
        let mut mults = [1.0; ServiceKind::COUNT];
        for kind in ServiceKind::all() {
            if let Some(pattern) = self.traffic.get(&kind) {
                mults[kind.index()] = pattern.multiplier(now);
            }
        }
        mults
    }

    /// Failure injection: crashes are per-server Poisson events; the
    /// watchdog restarts agents after a fixed delay (§III-E).
    fn process_failures(&mut self, now: SimTime, dt: SimDuration) {
        if self.crash_rate_per_hour > 0.0 {
            let p = self.crash_rate_per_hour * dt.as_secs_f64() / 3600.0;
            for i in 0..self.agents.len() {
                if self.agents[i].is_running() && self.rng.chance(p) {
                    self.agents[i].crash();
                    self.pending_restarts
                        .push((i as u32, now + self.watchdog_delay));
                }
            }
        }
        let due: Vec<u32> = self
            .pending_restarts
            .iter()
            .filter(|&&(_, t)| t <= now)
            .map(|&(s, _)| s)
            .collect();
        self.pending_restarts.retain(|&(_, t)| t > now);
        for s in due {
            self.agents[s as usize].restart();
        }
    }

    /// Mean performance factor over a set of servers (1.0 = turbo-off
    /// uncapped baseline). Computed from the batch arrays while the
    /// cache is clean — the same arithmetic as
    /// [`Server::performance_factor`], against the same post-step state.
    pub fn mean_performance(&self, sids: &[u32]) -> f64 {
        if sids.is_empty() {
            return f64::NAN;
        }
        if self.power_dirty {
            return sids
                .iter()
                .map(|&s| self.agents[s as usize].server().performance_factor())
                .sum::<f64>()
                / sids.len() as f64;
        }
        let sum: f64 = sids
            .iter()
            .map(|&s| {
                let i = s as usize;
                let pos = self.inv[i] as usize;
                if self.alive_m[pos] == 0.0 {
                    return 0.0;
                }
                let run = &self.runs[self.runs.partition_point(|r| r.range.end <= pos)];
                let demand = self.demand_w[pos];
                let drawn = self.power_w[i];
                let reduction = if demand <= 0.0 {
                    0.0
                } else {
                    (1.0 - drawn / demand).clamp(0.0, 1.0)
                };
                run.turbo_perf / (1.0 + serverpower::capping_slowdown(reduction))
            })
            .sum();
        sum / sids.len() as f64
    }

    /// Instantaneous fleet statistics.
    pub fn stats(&self) -> FleetStats {
        let total_power = if self.power_dirty {
            self.agents.iter().map(|a| a.server().power()).sum()
        } else {
            Power::from_watts(self.power_w.iter().sum())
        };
        FleetStats {
            capped_servers: self
                .agents
                .iter()
                .filter(|a| a.current_cap().is_some())
                .count(),
            agents_down: self.agents.iter().filter(|a| !a.is_running()).count(),
            total_power,
        }
    }

    /// Iterates `(server_id, service)` pairs.
    pub fn iter_services(&self) -> impl Iterator<Item = (u32, ServiceKind)> + '_ {
        self.services
            .iter()
            .enumerate()
            .map(|(i, &k)| (i as u32, k))
    }
}

/// The batching key: servers with equal keys share every hoisted
/// constant of the demand loop. Stable-sorting a leaf span by this key
/// groups its servers into maximal runs.
fn run_key(server: &Server, service: ServiceKind) -> (u8, u8, u8, u64, u64) {
    let turbo = server.config().turbo;
    (
        server.config().generation.index() as u8,
        service.index() as u8,
        turbo.is_some() as u8,
        turbo.map_or(0, |t| t.power_factor.to_bits()),
        turbo.map_or(0, |t| t.perf_factor.to_bits()),
    )
}

/// Splits the fleet's agent array into disjoint `&mut` slices, one per
/// span, for the parallel control plane. Spans must be ascending and
/// non-overlapping (agents between spans are skipped); each returned
/// slice starts at its span's `start` server id.
pub(crate) fn split_agent_spans(
    mut agents: &mut [Agent],
    spans: impl Iterator<Item = std::ops::Range<usize>>,
) -> Vec<&mut [Agent]> {
    let mut out = Vec::new();
    let mut consumed = 0;
    for span in spans {
        let (_, rest) = agents.split_at_mut(span.start - consumed);
        let (mine, rest) = rest.split_at_mut(span.end - span.start);
        out.push(mine);
        consumed = span.end;
        agents = rest;
    }
    out
}

/// Per-service OU coefficients for this tick length, hoisting the
/// per-step `exp`/`sqrt` out of the inner demand loop.
fn ou_coefficients(dt: SimDuration) -> [OuCoeffs; ServiceKind::COUNT] {
    let mut out = [OuCoeffs {
        decay: 0.0,
        innovation: 0.0,
    }; ServiceKind::COUNT];
    for kind in ServiceKind::all() {
        out[kind.index()] = OuCoeffs::for_kind(kind, dt);
    }
    out
}

/// Advances a contiguous position range of servers: a per-run demand
/// pass (workload draw → static clamp → LUT power, with all run
/// constants hoisted), one branchless [`kernel::step_batch`] physics
/// pass over the whole range, and a scatter of drawn power back to
/// id order. Shared verbatim by the serial, scoped and pooled paths so
/// their arithmetic cannot drift apart.
///
/// All slice arguments except `runs` and `perm` are local views of the
/// range `base..base + len`; leaf alignment guarantees `perm` maps the
/// range onto itself, so the scatter stays within `power_w`.
#[allow(clippy::too_many_arguments)]
fn step_range(
    base: usize,
    runs: &[Run],
    perm: &[u32],
    generators: &mut [ServiceWorkload],
    util: &mut [f64],
    demand_w: &mut [f64],
    limit_w: &[f64],
    alive_m: &[f64],
    not_init: &mut [f64],
    out_w: &mut [f64],
    power_w: &mut [f64],
    mults: &[f64; ServiceKind::COUNT],
    static_caps: &[Option<f64>; ServiceKind::COUNT],
    ou: &[OuCoeffs; ServiceKind::COUNT],
    alpha: f64,
    now: SimTime,
    dt: SimDuration,
) {
    let n = generators.len();
    let (lo, hi) = (base, base + n);
    let first = runs.partition_point(|r| r.range.end <= lo);
    for run in &runs[first..] {
        if run.range.start >= hi {
            break;
        }
        let a = run.range.start.max(lo) - lo;
        let b = run.range.end.min(hi) - lo;
        let k = run.svc as usize;
        let mult = mults[k];
        // `min(1.0)` is a bitwise no-op on the workload's `[0.02, 1.0]`
        // output, so "no static cap" needs no branch in the loop.
        let cap = static_caps[k].unwrap_or(1.0);
        let oc = ou[k];
        if run.turbo {
            for j in a..b {
                let u = generators[j].utilization_with(now, mult, dt, oc).min(cap);
                util[j] = u;
                demand_w[j] =
                    kernel::turbo_demand_w(run.lut.power_at_w(u), run.idle_w, run.turbo_pf);
            }
        } else {
            for j in a..b {
                let u = generators[j].utilization_with(now, mult, dt, oc).min(cap);
                util[j] = u;
                demand_w[j] = run.lut.power_at_w(u);
            }
        }
    }
    kernel::step_batch(demand_w, limit_w, alive_m, not_init, out_w, alpha);
    for j in 0..n {
        power_w[perm[lo + j] as usize - lo] = out_w[j] * alive_m[j];
    }
}

/// Rebuilds per-leaf power partials from the flat watts array. `base`
/// is the server id of `power_w[0]`; `spans` hold global server-id
/// ranges. Each partial is the ascending flat fold over its span — the
/// same additions, in the same order, at any worker count.
fn leaf_partials(power_w: &[f64], base: usize, spans: &[Range<usize>], out: &mut [f64]) {
    for (partial, span) in out.iter_mut().zip(spans) {
        *partial = power_w[span.start - base..span.end - base].iter().sum();
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("servers", &self.agents.len())
            .field("crash_rate_per_hour", &self.crash_rate_per_hour)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serverpower::ServerGeneration;

    fn small_fleet(n: usize, kind: ServiceKind) -> Fleet {
        let configs = vec![ServerConfig::new(ServerGeneration::Haswell2015); n];
        let services = vec![kind; n];
        Fleet::new(configs, services, SimRng::seed_from(11))
    }

    fn run(fleet: &mut Fleet, secs: u64) -> SimTime {
        let mut t = SimTime::ZERO;
        for _ in 0..secs {
            fleet.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        t
    }

    #[test]
    fn servers_draw_power_after_stepping() {
        let mut fleet = small_fleet(8, ServiceKind::Web);
        run(&mut fleet, 10);
        for i in 0..8 {
            assert!(fleet.power_of(i).as_watts() > 90.0, "server {i} idle");
        }
        let total = fleet.stats().total_power;
        assert!(
            (total - fleet.power_sum(&(0..8).collect::<Vec<_>>()))
                .abs()
                .as_watts()
                < 1e-9
        );
    }

    #[test]
    fn per_service_power_split_sums_to_total() {
        let configs = vec![ServerConfig::new(ServerGeneration::Haswell2015); 6];
        let services = vec![
            ServiceKind::Web,
            ServiceKind::Web,
            ServiceKind::Cache,
            ServiceKind::Cache,
            ServiceKind::NewsFeed,
            ServiceKind::NewsFeed,
        ];
        let mut fleet = Fleet::new(configs, services, SimRng::seed_from(3));
        run(&mut fleet, 10);
        let all: Vec<u32> = (0..6).collect();
        let split: Power = [ServiceKind::Web, ServiceKind::Cache, ServiceKind::NewsFeed]
            .iter()
            .map(|&k| fleet.power_sum_of_service(&all, k))
            .sum();
        assert!((split - fleet.power_sum(&all)).abs().as_watts() < 1e-9);
    }

    #[test]
    fn static_util_cap_lowers_power() {
        let mut capped = small_fleet(10, ServiceKind::Hadoop);
        capped.set_static_util_cap(ServiceKind::Hadoop, Some(0.3));
        run(&mut capped, 30);
        let mut free = small_fleet(10, ServiceKind::Hadoop);
        run(&mut free, 30);
        assert!(
            capped.stats().total_power < free.stats().total_power * 0.85,
            "clamp had no effect: {} vs {}",
            capped.stats().total_power,
            free.stats().total_power
        );
    }

    #[test]
    fn traffic_pattern_modulates_demand() {
        let mut fleet = small_fleet(10, ServiceKind::Web);
        fleet.set_traffic(ServiceKind::Web, TrafficPattern::flat(0.4));
        run(&mut fleet, 30);
        let low = fleet.stats().total_power;
        let mut busy = small_fleet(10, ServiceKind::Web);
        busy.set_traffic(ServiceKind::Web, TrafficPattern::flat(1.3));
        run(&mut busy, 30);
        assert!(busy.stats().total_power > low * 1.1);
    }

    #[test]
    fn crashes_and_watchdog_restarts() {
        let mut fleet = small_fleet(50, ServiceKind::Web);
        fleet.set_crash_rate(3600.0); // ~1 per server-second: crash storm
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            fleet.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        assert!(fleet.stats().agents_down > 0, "no crashes observed");
        // Stop crashing; watchdog (30 s) brings everyone back.
        fleet.set_crash_rate(0.0);
        for _ in 0..40 {
            fleet.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        assert_eq!(
            fleet.stats().agents_down,
            0,
            "watchdog failed to restart agents"
        );
    }

    #[test]
    fn capped_server_count_tracks_rapl() {
        let mut fleet = small_fleet(4, ServiceKind::Web);
        run(&mut fleet, 5);
        assert_eq!(fleet.stats().capped_servers, 0);
        fleet
            .agent_mut(2)
            .server_mut()
            .rapl_mut()
            .set_limit(Power::from_watts(150.0));
        assert_eq!(fleet.stats().capped_servers, 1);
    }

    fn mixed_fleet(seed: u64) -> Fleet {
        let configs = vec![ServerConfig::new(ServerGeneration::Haswell2015); 200];
        let services: Vec<ServiceKind> = (0..200).map(|i| ServiceKind::all()[i % 6]).collect();
        Fleet::new(configs, services, SimRng::seed_from(seed))
    }

    #[test]
    fn parallel_step_matches_serial() {
        let mut serial = mixed_fleet(77);
        let mut parallel = mixed_fleet(77);
        let mut t = SimTime::ZERO;
        for _ in 0..30 {
            serial.step(t, SimDuration::from_secs(1));
            parallel.step_parallel(t, SimDuration::from_secs(1), 4);
            t += SimDuration::from_secs(1);
        }
        for i in 0..200 {
            assert_eq!(
                serial.power_of(i).as_watts(),
                parallel.power_of(i).as_watts(),
                "server {i} diverged between serial and parallel stepping"
            );
        }
    }

    #[test]
    fn pooled_step_matches_serial_and_scoped() {
        let mut serial = mixed_fleet(78);
        let mut scoped = mixed_fleet(78);
        let mut pooled = mixed_fleet(78);
        pooled.attach_pool(Arc::new(WorkerPool::new(4)));
        let mut t = SimTime::ZERO;
        for _ in 0..30 {
            serial.step(t, SimDuration::from_secs(1));
            scoped.step_parallel(t, SimDuration::from_secs(1), 4);
            pooled.step_parallel(t, SimDuration::from_secs(1), 4);
            t += SimDuration::from_secs(1);
        }
        for i in 0..200 {
            let s = serial.power_of(i).as_watts();
            assert_eq!(s, scoped.power_of(i).as_watts(), "server {i} scoped drift");
            assert_eq!(s, pooled.power_of(i).as_watts(), "server {i} pooled drift");
        }
    }

    #[test]
    fn pooled_step_with_leaf_spans_maintains_partials() {
        let mut fleet = mixed_fleet(79);
        let spans: Vec<Range<usize>> = (0..4).map(|l| l * 50..(l + 1) * 50).collect();
        fleet.set_leaf_spans(&spans);
        fleet.attach_pool(Arc::new(WorkerPool::new(3)));
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            fleet.step_parallel(t, SimDuration::from_secs(1), 3);
            t += SimDuration::from_secs(1);
        }
        for (l, span) in spans.iter().enumerate() {
            let ids: Vec<u32> = (span.start as u32..span.end as u32).collect();
            assert_eq!(
                fleet.leaf_power(l).expect("partials maintained").as_watts(),
                fleet.power_sum(&ids).as_watts(),
                "leaf {l} partial drifted from its span sum"
            );
        }
    }

    #[test]
    fn batched_permutation_is_observationally_invisible() {
        // With leaf spans, servers are regrouped by (generation,
        // service, turbo) internally. Per-server RNG streams make the
        // evaluation order unobservable: every per-id result must be
        // bit-identical to the unpermuted (no spans) fleet.
        let mut plain = mixed_fleet(80);
        let mut grouped = mixed_fleet(80);
        let spans: Vec<Range<usize>> = (0..4).map(|l| l * 50..(l + 1) * 50).collect();
        grouped.set_leaf_spans(&spans);
        let mut t = SimTime::ZERO;
        for _ in 0..25 {
            plain.step(t, SimDuration::from_secs(1));
            grouped.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        for i in 0..200 {
            assert_eq!(
                plain.power_of(i).as_watts(),
                grouped.power_of(i).as_watts(),
                "server {i} diverged under batching permutation"
            );
            assert_eq!(
                plain.utilization_of(i),
                grouped.utilization_of(i),
                "server {i} utilization diverged under batching permutation"
            );
        }
    }

    #[test]
    fn regrouping_mid_run_preserves_state() {
        // set_leaf_spans after stepping must carry all physics state
        // through the permutation rebuild.
        let mut plain = mixed_fleet(81);
        let mut regrouped = mixed_fleet(81);
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            plain.step(t, SimDuration::from_secs(1));
            regrouped.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        let spans: Vec<Range<usize>> = (0..4).map(|l| l * 50..(l + 1) * 50).collect();
        regrouped.set_leaf_spans(&spans);
        for _ in 0..10 {
            plain.step(t, SimDuration::from_secs(1));
            regrouped.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        for i in 0..200 {
            assert_eq!(
                plain.power_of(i).as_watts(),
                regrouped.power_of(i).as_watts(),
                "server {i} diverged after mid-run regrouping"
            );
        }
    }

    #[test]
    fn agent_mut_falls_back_to_live_reads_until_next_step() {
        let mut fleet = small_fleet(8, ServiceKind::Web);
        run(&mut fleet, 10);
        let before = fleet.power_of(3);
        assert!(before.as_watts() > 0.0);
        fleet.agent_mut(3).server_mut().set_alive(false);
        // Dirty cache: the query must see the live (dead) server.
        assert_eq!(fleet.power_of(3), Power::ZERO);
        assert_eq!(fleet.power_sum(&[3]), Power::ZERO);
        run(&mut fleet, 1);
        assert_eq!(fleet.power_of(3), Power::ZERO);
    }

    #[test]
    fn agent_mut_flush_exposes_fresh_state() {
        // The scalar server models are stale while the arrays own the
        // physics; agent_mut must flush before handing out the borrow.
        let mut fleet = small_fleet(8, ServiceKind::Web);
        run(&mut fleet, 10);
        let cached = fleet.power_of(5);
        let live = fleet.agent_mut(5).server().power();
        assert_eq!(cached, live, "flush must reveal the batch-owned state");
    }

    #[test]
    fn set_server_alive_keeps_cache_exact() {
        let mut fleet = small_fleet(8, ServiceKind::Web);
        let spans = vec![0..4, 4..8];
        fleet.set_leaf_spans(&spans);
        run(&mut fleet, 10);
        let leaf0_before = fleet.leaf_power(0).unwrap();
        fleet.set_server_alive(1, false);
        assert_eq!(fleet.power_of(1), Power::ZERO);
        let leaf0_after = fleet.leaf_power(0).expect("cache stays clean");
        assert!(leaf0_after < leaf0_before);
        let ids: Vec<u32> = (0..4).collect();
        assert_eq!(leaf0_after.as_watts(), fleet.power_sum(&ids).as_watts());
        fleet.set_server_alive(1, true);
        assert!(fleet.power_of(1).as_watts() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        small_fleet(100, ServiceKind::Web).step_parallel(
            SimTime::ZERO,
            SimDuration::from_secs(1),
            0,
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_construction_panics() {
        Fleet::new(
            vec![ServerConfig::new(ServerGeneration::Haswell2015)],
            vec![],
            SimRng::seed_from(1),
        );
    }

    #[test]
    #[should_panic(expected = "static util cap")]
    fn invalid_static_cap_panics() {
        small_fleet(1, ServiceKind::Web).set_static_util_cap(ServiceKind::Web, Some(0.0));
    }
}
