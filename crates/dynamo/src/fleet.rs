//! The simulated server fleet: agents, workloads, failures.

use std::collections::HashMap;

use dcsim::{SimDuration, SimRng, SimTime};
use dynamo_agent::Agent;
use powerinfra::Power;
use serverpower::{Server, ServerConfig};
use workloads::{ServiceKind, ServiceWorkload, TrafficPattern};

/// Aggregate fleet statistics at an instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetStats {
    /// Servers currently under a RAPL cap.
    pub capped_servers: usize,
    /// Servers whose agent process is down.
    pub agents_down: usize,
    /// Total true power of all servers.
    pub total_power: Power,
}

/// Every server in the datacenter: its [`Agent`] (which owns the
/// [`Server`] model), its service assignment, its utilization process,
/// and fleet-level failure injection.
pub struct Fleet {
    agents: Vec<Agent>,
    services: Vec<ServiceKind>,
    generators: Vec<ServiceWorkload>,
    /// Per-service traffic patterns; services without an entry see
    /// constant nominal traffic.
    traffic: HashMap<ServiceKind, TrafficPattern>,
    /// Optional static utilization clamp per service, indexed by
    /// [`ServiceKind::index`] (the pre-Dynamo baseline for the search
    /// cluster in §IV-D: "all servers ... were required to limit their
    /// clock frequency").
    static_util_caps: [Option<f64>; ServiceKind::COUNT],
    /// Probability per server-hour of an agent crash.
    crash_rate_per_hour: f64,
    /// Watchdog restart delay.
    watchdog_delay: SimDuration,
    /// Crashed agents pending restart: (server, restart time).
    pending_restarts: Vec<(u32, SimTime)>,
    rng: SimRng,
}

impl Fleet {
    /// Assembles a fleet. `configs[i]` and `services[i]` describe server
    /// `i`; workload processes get independent RNG streams from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `configs` and `services` differ in length or are empty.
    pub fn new(configs: Vec<ServerConfig>, services: Vec<ServiceKind>, mut rng: SimRng) -> Self {
        assert_eq!(
            configs.len(),
            services.len(),
            "configs/services length mismatch"
        );
        assert!(!configs.is_empty(), "fleet cannot be empty");
        let mut agents = Vec::with_capacity(configs.len());
        let mut generators = Vec::with_capacity(configs.len());
        let mut agent_rng = rng.split("agents");
        let mut wl_rng = rng.split("workloads");
        for (i, (config, &service)) in configs.into_iter().zip(&services).enumerate() {
            let server = Server::new(i as u32, config);
            agents.push(Agent::new(server, agent_rng.split_index(i as u64)));
            generators.push(ServiceWorkload::new(service, wl_rng.split_index(i as u64)));
        }
        Fleet {
            agents,
            services,
            generators,
            traffic: HashMap::new(),
            static_util_caps: [None; ServiceKind::COUNT],
            crash_rate_per_hour: 0.0,
            watchdog_delay: SimDuration::from_secs(30),
            pending_restarts: Vec::new(),
            rng: rng.split("fleet-events"),
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// Always false — construction rejects empty fleets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sets the traffic pattern for a service.
    pub fn set_traffic(&mut self, kind: ServiceKind, pattern: TrafficPattern) {
        self.traffic.insert(kind, pattern);
    }

    /// Applies a static utilization clamp to every server of a service
    /// (the frequency-limit baseline of §IV-D).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is outside `(0, 1]`.
    pub fn set_static_util_cap(&mut self, kind: ServiceKind, cap: Option<f64>) {
        if let Some(c) = cap {
            assert!(
                c > 0.0 && c <= 1.0,
                "static util cap must be in (0,1], got {c}"
            );
        }
        self.static_util_caps[kind.index()] = cap;
    }

    /// Enables agent crash injection at the given rate (per server-hour).
    pub fn set_crash_rate(&mut self, per_hour: f64) {
        assert!(
            per_hour >= 0.0 && per_hour.is_finite(),
            "invalid crash rate {per_hour}"
        );
        self.crash_rate_per_hour = per_hour;
    }

    /// The service running on server `sid`.
    pub fn service_of(&self, sid: u32) -> ServiceKind {
        self.services[sid as usize]
    }

    /// The agent (and host) of server `sid`.
    pub fn agent(&self, sid: u32) -> &Agent {
        &self.agents[sid as usize]
    }

    /// Mutable agent access (the controller RPC path goes through this).
    pub fn agent_mut(&mut self, sid: u32) -> &mut Agent {
        &mut self.agents[sid as usize]
    }

    /// Mutable access to the whole agent array, indexed by server id.
    /// The parallel control plane partitions this into disjoint
    /// per-leaf spans with `split_at_mut`.
    pub(crate) fn agents_mut(&mut self) -> &mut [Agent] {
        &mut self.agents
    }

    /// The true (physics) power of server `sid` right now.
    pub fn power_of(&self, sid: u32) -> Power {
        self.agents[sid as usize].server().power()
    }

    /// Sum of true power over a set of servers.
    pub fn power_sum(&self, sids: &[u32]) -> Power {
        sids.iter().map(|&s| self.power_of(s)).sum()
    }

    /// Sum of true power over a set of servers, restricted to one
    /// service (Figure 15's per-service breakdown).
    pub fn power_sum_of_service(&self, sids: &[u32], kind: ServiceKind) -> Power {
        sids.iter()
            .filter(|&&s| self.services[s as usize] == kind)
            .map(|&s| self.power_of(s))
            .sum()
    }

    /// Advances every server by one tick: samples traffic, draws demand
    /// from each workload process, applies static clamps, steps server
    /// physics, and processes agent crash/restart events.
    pub fn step(&mut self, now: SimTime, dt: SimDuration) {
        let mults = self.traffic_multipliers(now);
        for i in 0..self.agents.len() {
            let kind = self.services[i];
            advance_one(
                &mut self.agents[i],
                &mut self.generators[i],
                kind,
                mults[kind.index()],
                &self.static_util_caps,
                now,
                dt,
            );
        }
        self.process_failures(now, dt);
    }

    /// Like [`Fleet::step`] but advances servers on `threads` worker
    /// threads. Per-server workload processes own independent RNG
    /// streams, so the result is bit-identical to the serial path —
    /// this mirrors the production deployment where one consolidated
    /// binary runs ~100 controller/agent threads (§IV).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or a worker thread panics.
    pub fn step_parallel(&mut self, now: SimTime, dt: SimDuration, threads: usize) {
        assert!(threads >= 1, "need at least one worker thread");
        if threads == 1 || self.agents.len() < 64 {
            return self.step(now, dt);
        }
        let mults = self.traffic_multipliers(now);
        let caps = self.static_util_caps;
        let chunk = self.agents.len().div_ceil(threads);
        let services = &self.services;
        let agents = &mut self.agents;
        let generators = &mut self.generators;
        std::thread::scope(|scope| {
            for ((agent_chunk, gen_chunk), svc_chunk) in agents
                .chunks_mut(chunk)
                .zip(generators.chunks_mut(chunk))
                .zip(services.chunks(chunk))
            {
                scope.spawn(move || {
                    for ((agent, generator), &kind) in
                        agent_chunk.iter_mut().zip(gen_chunk).zip(svc_chunk)
                    {
                        advance_one(agent, generator, kind, mults[kind.index()], &caps, now, dt);
                    }
                });
            }
        });
        self.process_failures(now, dt);
    }

    /// Per-service traffic multipliers at `now`, indexed by
    /// [`ServiceKind::index`]. A fixed array instead of a per-tick
    /// `HashMap`: the fleet step allocates nothing.
    fn traffic_multipliers(&self, now: SimTime) -> [f64; ServiceKind::COUNT] {
        let mut mults = [1.0; ServiceKind::COUNT];
        for kind in ServiceKind::all() {
            if let Some(pattern) = self.traffic.get(&kind) {
                mults[kind.index()] = pattern.multiplier(now);
            }
        }
        mults
    }

    /// Failure injection: crashes are per-server Poisson events; the
    /// watchdog restarts agents after a fixed delay (§III-E).
    fn process_failures(&mut self, now: SimTime, dt: SimDuration) {
        if self.crash_rate_per_hour > 0.0 {
            let p = self.crash_rate_per_hour * dt.as_secs_f64() / 3600.0;
            for i in 0..self.agents.len() {
                if self.agents[i].is_running() && self.rng.chance(p) {
                    self.agents[i].crash();
                    self.pending_restarts
                        .push((i as u32, now + self.watchdog_delay));
                }
            }
        }
        let due: Vec<u32> = self
            .pending_restarts
            .iter()
            .filter(|&&(_, t)| t <= now)
            .map(|&(s, _)| s)
            .collect();
        self.pending_restarts.retain(|&(_, t)| t > now);
        for s in due {
            self.agents[s as usize].restart();
        }
    }

    /// Mean performance factor over a set of servers (1.0 = turbo-off
    /// uncapped baseline).
    pub fn mean_performance(&self, sids: &[u32]) -> f64 {
        if sids.is_empty() {
            return f64::NAN;
        }
        sids.iter()
            .map(|&s| self.agents[s as usize].server().performance_factor())
            .sum::<f64>()
            / sids.len() as f64
    }

    /// Instantaneous fleet statistics.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            capped_servers: self
                .agents
                .iter()
                .filter(|a| a.current_cap().is_some())
                .count(),
            agents_down: self.agents.iter().filter(|a| !a.is_running()).count(),
            total_power: self.agents.iter().map(|a| a.server().power()).sum(),
        }
    }

    /// Iterates `(server_id, service)` pairs.
    pub fn iter_services(&self) -> impl Iterator<Item = (u32, ServiceKind)> + '_ {
        self.services
            .iter()
            .enumerate()
            .map(|(i, &k)| (i as u32, k))
    }
}

/// Splits the fleet's agent array into disjoint `&mut` slices, one per
/// span, for the parallel control plane. Spans must be ascending and
/// non-overlapping (agents between spans are skipped); each returned
/// slice starts at its span's `start` server id.
pub(crate) fn split_agent_spans(
    mut agents: &mut [Agent],
    spans: impl Iterator<Item = std::ops::Range<usize>>,
) -> Vec<&mut [Agent]> {
    let mut out = Vec::new();
    let mut consumed = 0;
    for span in spans {
        let (_, rest) = agents.split_at_mut(span.start - consumed);
        let (mine, rest) = rest.split_at_mut(span.end - span.start);
        out.push(mine);
        consumed = span.end;
        agents = rest;
    }
    out
}

/// Advances one server: workload draw, static clamp, physics step.
fn advance_one(
    agent: &mut Agent,
    generator: &mut ServiceWorkload,
    kind: ServiceKind,
    traffic_mult: f64,
    static_caps: &[Option<f64>; ServiceKind::COUNT],
    now: SimTime,
    dt: SimDuration,
) {
    let mut util = generator.utilization(now, traffic_mult, dt);
    if let Some(cap) = static_caps[kind.index()] {
        util = util.min(cap);
    }
    let server = agent.server_mut();
    server.set_demand(util);
    server.step(dt);
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("servers", &self.agents.len())
            .field("crash_rate_per_hour", &self.crash_rate_per_hour)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serverpower::ServerGeneration;

    fn small_fleet(n: usize, kind: ServiceKind) -> Fleet {
        let configs = vec![ServerConfig::new(ServerGeneration::Haswell2015); n];
        let services = vec![kind; n];
        Fleet::new(configs, services, SimRng::seed_from(11))
    }

    fn run(fleet: &mut Fleet, secs: u64) -> SimTime {
        let mut t = SimTime::ZERO;
        for _ in 0..secs {
            fleet.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        t
    }

    #[test]
    fn servers_draw_power_after_stepping() {
        let mut fleet = small_fleet(8, ServiceKind::Web);
        run(&mut fleet, 10);
        for i in 0..8 {
            assert!(fleet.power_of(i).as_watts() > 90.0, "server {i} idle");
        }
        let total = fleet.stats().total_power;
        assert!(
            (total - fleet.power_sum(&(0..8).collect::<Vec<_>>()))
                .abs()
                .as_watts()
                < 1e-9
        );
    }

    #[test]
    fn per_service_power_split_sums_to_total() {
        let configs = vec![ServerConfig::new(ServerGeneration::Haswell2015); 6];
        let services = vec![
            ServiceKind::Web,
            ServiceKind::Web,
            ServiceKind::Cache,
            ServiceKind::Cache,
            ServiceKind::NewsFeed,
            ServiceKind::NewsFeed,
        ];
        let mut fleet = Fleet::new(configs, services, SimRng::seed_from(3));
        run(&mut fleet, 10);
        let all: Vec<u32> = (0..6).collect();
        let split: Power = [ServiceKind::Web, ServiceKind::Cache, ServiceKind::NewsFeed]
            .iter()
            .map(|&k| fleet.power_sum_of_service(&all, k))
            .sum();
        assert!((split - fleet.power_sum(&all)).abs().as_watts() < 1e-9);
    }

    #[test]
    fn static_util_cap_lowers_power() {
        let mut capped = small_fleet(10, ServiceKind::Hadoop);
        capped.set_static_util_cap(ServiceKind::Hadoop, Some(0.3));
        run(&mut capped, 30);
        let mut free = small_fleet(10, ServiceKind::Hadoop);
        run(&mut free, 30);
        assert!(
            capped.stats().total_power < free.stats().total_power * 0.85,
            "clamp had no effect: {} vs {}",
            capped.stats().total_power,
            free.stats().total_power
        );
    }

    #[test]
    fn traffic_pattern_modulates_demand() {
        let mut fleet = small_fleet(10, ServiceKind::Web);
        fleet.set_traffic(ServiceKind::Web, TrafficPattern::flat(0.4));
        run(&mut fleet, 30);
        let low = fleet.stats().total_power;
        let mut busy = small_fleet(10, ServiceKind::Web);
        busy.set_traffic(ServiceKind::Web, TrafficPattern::flat(1.3));
        run(&mut busy, 30);
        assert!(busy.stats().total_power > low * 1.1);
    }

    #[test]
    fn crashes_and_watchdog_restarts() {
        let mut fleet = small_fleet(50, ServiceKind::Web);
        fleet.set_crash_rate(3600.0); // ~1 per server-second: crash storm
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            fleet.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        assert!(fleet.stats().agents_down > 0, "no crashes observed");
        // Stop crashing; watchdog (30 s) brings everyone back.
        fleet.set_crash_rate(0.0);
        for _ in 0..40 {
            fleet.step(t, SimDuration::from_secs(1));
            t += SimDuration::from_secs(1);
        }
        assert_eq!(
            fleet.stats().agents_down,
            0,
            "watchdog failed to restart agents"
        );
    }

    #[test]
    fn capped_server_count_tracks_rapl() {
        let mut fleet = small_fleet(4, ServiceKind::Web);
        run(&mut fleet, 5);
        assert_eq!(fleet.stats().capped_servers, 0);
        fleet
            .agent_mut(2)
            .server_mut()
            .rapl_mut()
            .set_limit(Power::from_watts(150.0));
        assert_eq!(fleet.stats().capped_servers, 1);
    }

    #[test]
    fn parallel_step_matches_serial() {
        let build = || {
            let configs = vec![ServerConfig::new(ServerGeneration::Haswell2015); 200];
            let services: Vec<ServiceKind> = (0..200).map(|i| ServiceKind::all()[i % 6]).collect();
            Fleet::new(configs, services, SimRng::seed_from(77))
        };
        let mut serial = build();
        let mut parallel = build();
        let mut t = SimTime::ZERO;
        for _ in 0..30 {
            serial.step(t, SimDuration::from_secs(1));
            parallel.step_parallel(t, SimDuration::from_secs(1), 4);
            t += SimDuration::from_secs(1);
        }
        for i in 0..200 {
            assert_eq!(
                serial.power_of(i).as_watts(),
                parallel.power_of(i).as_watts(),
                "server {i} diverged between serial and parallel stepping"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        small_fleet(100, ServiceKind::Web).step_parallel(
            SimTime::ZERO,
            SimDuration::from_secs(1),
            0,
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_construction_panics() {
        Fleet::new(
            vec![ServerConfig::new(ServerGeneration::Haswell2015)],
            vec![],
            SimRng::seed_from(1),
        );
    }

    #[test]
    #[should_panic(expected = "static util cap")]
    fn invalid_static_cap_panics() {
        small_fleet(1, ServiceKind::Web).set_static_util_cap(ServiceKind::Web, Some(0.0));
    }
}
