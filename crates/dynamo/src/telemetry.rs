//! Fine-grained power monitoring (§VI: "Monitoring is as important as
//! capping").

use std::collections::HashMap;
use std::sync::Arc;

use dcsim::snap::{get_f64_vec, put_f64_slice, SnapError, SnapReader, SnapWriter, Snapshot};
use dcsim::{PeriodicSchedule, SimDuration, SimTime};
use powerinfra::{BreakerStatus, DeviceId, DeviceLevel, Power};
use powerstats::Trace;

use crate::events::{ControllerEvent, ControllerEventKind};

/// What the telemetry recorder samples.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Sampling interval (3 s in production — Table I's "fine-grained
    /// real-time monitoring: 3-second granularity power readings").
    pub sample_interval: SimDuration,
    /// Hierarchy levels whose devices get power traces. Tracing every
    /// rack in a big run is expensive; experiments pick what they need.
    pub levels: Vec<DeviceLevel>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            sample_interval: SimDuration::from_secs(3),
            levels: vec![DeviceLevel::Rpp, DeviceLevel::Sb, DeviceLevel::Msb],
        }
    }
}

/// A breaker state change worth recording.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerEvent {
    /// When it happened.
    pub at: SimTime,
    /// Which device's breaker.
    pub device: DeviceId,
    /// The new status.
    pub status: BreakerStatus,
}

/// The telemetry store for one simulation run: per-device power traces
/// at the sampling interval, the capped-server count series, controller
/// events, and breaker events.
#[derive(Debug)]
pub struct Telemetry {
    config: TelemetryConfig,
    device_traces: HashMap<DeviceId, Trace>,
    capped_servers: Trace,
    total_power: Trace,
    controller_events: Vec<ControllerEvent>,
    breaker_events: Vec<BreakerEvent>,
    schedule: PeriodicSchedule,
}

impl Telemetry {
    /// Creates an empty store.
    pub fn new(config: TelemetryConfig) -> Self {
        let interval = config.sample_interval;
        Telemetry {
            config,
            device_traces: HashMap::new(),
            capped_servers: Trace::empty(interval),
            total_power: Trace::empty(interval),
            controller_events: Vec::new(),
            breaker_events: Vec::new(),
            schedule: PeriodicSchedule::new(interval),
        }
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// True if a sample is due at `now`.
    pub fn sample_due(&self, now: SimTime) -> bool {
        self.schedule.due(now)
    }

    /// Records one sample row. `device_power` yields the current power
    /// of each watched device; `capped` and `total` are fleet-level.
    ///
    /// Call only when [`Telemetry::sample_due`]; the recorder advances
    /// its own schedule.
    pub fn record_sample(
        &mut self,
        now: SimTime,
        watched: &[(DeviceId, Power)],
        capped: usize,
        total: Power,
    ) {
        for &(dev, p) in watched {
            self.device_traces
                .entry(dev)
                .or_insert_with(|| Trace::empty(self.config.sample_interval).with_start(now))
                .push(p.as_watts());
        }
        self.capped_servers.push(capped as f64);
        self.total_power.push(total.as_watts());
        self.schedule.fire(now);
    }

    /// Appends controller events, keeping the store sorted by
    /// `(at, device)`.
    ///
    /// The parallel leaf path merges per-leaf buffers in leaf-index
    /// order and the event-driven dispatcher can interleave tiers, so a
    /// batch arrives grouped by controller, not by key; sorting here
    /// gives consumers one canonical order regardless of thread count
    /// or phase policy.
    ///
    /// # Panics
    ///
    /// Panics if a batch contains an event older than the newest event
    /// already stored — ticks must deliver batches in time order.
    pub fn record_controller_events(&mut self, mut events: Vec<ControllerEvent>) {
        events.sort_by_key(|e| (e.at, e.device));
        if let (Some(first), Some(last)) = (events.first(), self.controller_events.last()) {
            assert!(
                first.at >= last.at,
                "controller event batch at {:?} arrived after events at {:?}",
                first.at,
                last.at
            );
        }
        self.controller_events.extend(events);
    }

    /// Appends a breaker event.
    pub fn record_breaker_event(&mut self, event: BreakerEvent) {
        self.breaker_events.push(event);
    }

    /// The power trace of `device`, if watched.
    pub fn device_trace(&self, device: DeviceId) -> Option<&Trace> {
        self.device_traces.get(&device)
    }

    /// The capped-server count series.
    pub fn capped_servers(&self) -> &Trace {
        &self.capped_servers
    }

    /// The fleet total power series.
    pub fn total_power(&self) -> &Trace {
        &self.total_power
    }

    /// All controller events so far.
    pub fn controller_events(&self) -> &[ControllerEvent] {
        &self.controller_events
    }

    /// All breaker events so far.
    pub fn breaker_events(&self) -> &[BreakerEvent] {
        &self.breaker_events
    }

    /// Breaker trips only (the outages Dynamo exists to prevent).
    pub fn breaker_trips(&self) -> Vec<BreakerEvent> {
        self.breaker_events
            .iter()
            .filter(|e| e.status == BreakerStatus::Tripped)
            .copied()
            .collect()
    }

    /// Captures the recorder's state for a snapshot: every trace, the
    /// event stores, and the sampling schedule. Device traces are keyed
    /// by raw device index in ascending order so the bytes are
    /// deterministic regardless of hash-map iteration order.
    pub fn state(&self) -> TelemetryState {
        let mut traces: Vec<(u32, u64, Vec<f64>)> = self
            .device_traces
            .iter()
            .map(|(dev, t)| {
                (
                    dev.index() as u32,
                    t.start().as_millis(),
                    t.values().to_vec(),
                )
            })
            .collect();
        traces.sort_unstable_by_key(|&(i, _, _)| i);
        TelemetryState {
            device_traces: traces,
            capped_servers: (
                self.capped_servers.start().as_millis(),
                self.capped_servers.values().to_vec(),
            ),
            total_power: (
                self.total_power.start().as_millis(),
                self.total_power.values().to_vec(),
            ),
            controller_events: self.controller_events.clone(),
            breaker_events: self.breaker_events.clone(),
            schedule: self.schedule,
        }
    }

    /// Restores the recorder from a decoded snapshot taken against the
    /// same topology and telemetry configuration.
    pub fn restore(&mut self, state: &TelemetryState) -> Result<(), SnapError> {
        let interval = self.config.sample_interval;
        self.device_traces.clear();
        for (idx, start_ms, values) in &state.device_traces {
            let trace =
                Trace::new(interval, values.clone()).with_start(SimTime::from_millis(*start_ms));
            self.device_traces
                .insert(DeviceId::from_index(*idx as usize), trace);
        }
        self.capped_servers = Trace::new(interval, state.capped_servers.1.clone())
            .with_start(SimTime::from_millis(state.capped_servers.0));
        self.total_power = Trace::new(interval, state.total_power.1.clone())
            .with_start(SimTime::from_millis(state.total_power.0));
        self.controller_events.clone_from(&state.controller_events);
        self.breaker_events.clone_from(&state.breaker_events);
        self.schedule = state.schedule;
        Ok(())
    }
}

/// The telemetry recorder's dynamic state. Traces are stored as
/// `(start millis, raw values)`; the sampling interval is part of the
/// run configuration and re-applied on restore.
pub struct TelemetryState {
    /// `(device index, trace start, values)`, ascending by index.
    pub device_traces: Vec<(u32, u64, Vec<f64>)>,
    /// Capped-server count series as `(start millis, values)`.
    pub capped_servers: (u64, Vec<f64>),
    /// Fleet total power series as `(start millis, values)`.
    pub total_power: (u64, Vec<f64>),
    /// All controller events recorded so far.
    pub controller_events: Vec<ControllerEvent>,
    /// All breaker events recorded so far.
    pub breaker_events: Vec<BreakerEvent>,
    /// The sampling schedule (next due time).
    pub schedule: PeriodicSchedule,
}

fn put_controller_event(w: &mut SnapWriter, e: &ControllerEvent) {
    w.put_u64(e.at.as_millis());
    w.put_u32(e.device.index() as u32);
    w.put_str(&e.controller);
    match &e.kind {
        ControllerEventKind::LeafCapped { total_cut, servers } => {
            w.put_u8(0);
            w.put_f64(total_cut.as_watts());
            w.put_u64(*servers as u64);
        }
        ControllerEventKind::LeafUncapped => w.put_u8(1),
        ControllerEventKind::LeafInvalid { failures } => {
            w.put_u8(2);
            w.put_u64(*failures as u64);
        }
        ControllerEventKind::UpperCapped { contracts } => {
            w.put_u8(3);
            w.put_u64(*contracts as u64);
        }
        ControllerEventKind::UpperUncapped => w.put_u8(4),
        ControllerEventKind::Failover => w.put_u8(5),
    }
}

fn get_controller_event(r: &mut SnapReader<'_>) -> Result<ControllerEvent, SnapError> {
    let at = SimTime::from_millis(r.get_u64()?);
    let device = DeviceId::from_index(r.get_u32()? as usize);
    let controller: Arc<str> = r.get_str()?.into();
    let kind = match r.get_u8()? {
        0 => ControllerEventKind::LeafCapped {
            total_cut: Power::from_watts(r.get_f64()?),
            servers: r.get_u64()? as usize,
        },
        1 => ControllerEventKind::LeafUncapped,
        2 => ControllerEventKind::LeafInvalid {
            failures: r.get_u64()? as usize,
        },
        3 => ControllerEventKind::UpperCapped {
            contracts: r.get_u64()? as usize,
        },
        4 => ControllerEventKind::UpperUncapped,
        5 => ControllerEventKind::Failover,
        other => {
            return Err(SnapError::Corrupt(format!(
                "bad controller event kind tag {other}"
            )))
        }
    };
    Ok(ControllerEvent {
        at,
        device,
        controller,
        kind,
    })
}

impl Snapshot for TelemetryState {
    const KIND: &'static str = "dynamo.TelemetryState";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        w.put_u64(self.device_traces.len() as u64);
        for (idx, start_ms, values) in &self.device_traces {
            w.put_u32(*idx);
            w.put_u64(*start_ms);
            put_f64_slice(w, values);
        }
        w.put_u64(self.capped_servers.0);
        put_f64_slice(w, &self.capped_servers.1);
        w.put_u64(self.total_power.0);
        put_f64_slice(w, &self.total_power.1);
        w.put_u64(self.controller_events.len() as u64);
        for e in &self.controller_events {
            put_controller_event(w, e);
        }
        w.put_u64(self.breaker_events.len() as u64);
        for e in &self.breaker_events {
            w.put_u64(e.at.as_millis());
            w.put_u32(e.device.index() as u32);
            w.put_u8(e.status.snap_code());
        }
        self.schedule.encode_body(w);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let nt = r.get_u64()? as usize;
        let mut device_traces = Vec::with_capacity(nt.min(1 << 20));
        let mut prev: Option<u32> = None;
        for _ in 0..nt {
            let idx = r.get_u32()?;
            if prev.is_some_and(|p| p >= idx) {
                return Err(SnapError::Corrupt(
                    "telemetry device traces not strictly ascending by device index".into(),
                ));
            }
            prev = Some(idx);
            let start_ms = r.get_u64()?;
            device_traces.push((idx, start_ms, get_f64_vec(r)?));
        }
        let capped_servers = (r.get_u64()?, get_f64_vec(r)?);
        let total_power = (r.get_u64()?, get_f64_vec(r)?);
        let ne = r.get_u64()? as usize;
        let mut controller_events = Vec::with_capacity(ne.min(1 << 20));
        for _ in 0..ne {
            controller_events.push(get_controller_event(r)?);
        }
        let nb = r.get_u64()? as usize;
        let mut breaker_events = Vec::with_capacity(nb.min(1 << 20));
        for _ in 0..nb {
            breaker_events.push(BreakerEvent {
                at: SimTime::from_millis(r.get_u64()?),
                device: DeviceId::from_index(r.get_u32()? as usize),
                status: BreakerStatus::from_snap_code(r.get_u8()?)?,
            });
        }
        Ok(TelemetryState {
            device_traces,
            capped_servers,
            total_power,
            controller_events,
            breaker_events,
            schedule: PeriodicSchedule::decode_body(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::ControllerEventKind;

    fn dev(topo: &powerinfra::Topology) -> DeviceId {
        topo.devices_at(DeviceLevel::Rpp)[0]
    }

    fn topo() -> powerinfra::Topology {
        powerinfra::TopologyBuilder::new()
            .sbs_per_msb(1)
            .rpps_per_sb(1)
            .racks_per_rpp(1)
            .servers_per_rack(2)
            .build()
    }

    #[test]
    fn samples_follow_the_schedule() {
        let mut t = Telemetry::new(TelemetryConfig::default());
        assert!(t.sample_due(SimTime::ZERO));
        t.record_sample(SimTime::ZERO, &[], 0, Power::ZERO);
        assert!(!t.sample_due(SimTime::from_secs(2)));
        assert!(t.sample_due(SimTime::from_secs(3)));
    }

    #[test]
    fn device_traces_accumulate() {
        let topo = topo();
        let d = dev(&topo);
        let mut t = Telemetry::new(TelemetryConfig::default());
        for k in 0..5u64 {
            t.record_sample(
                SimTime::from_secs(3 * k),
                &[(d, Power::from_kilowatts(100.0 + k as f64))],
                k as usize,
                Power::from_kilowatts(100.0),
            );
        }
        let trace = t.device_trace(d).unwrap();
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.values()[4], 104_000.0);
        assert_eq!(t.capped_servers().values(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert!(t.device_trace(topo.root()).is_none());
    }

    #[test]
    fn breaker_trips_filters_status() {
        let topo = topo();
        let d = dev(&topo);
        let mut t = Telemetry::new(TelemetryConfig::default());
        t.record_breaker_event(BreakerEvent {
            at: SimTime::ZERO,
            device: d,
            status: BreakerStatus::Overloaded,
        });
        t.record_breaker_event(BreakerEvent {
            at: SimTime::from_secs(9),
            device: d,
            status: BreakerStatus::Tripped,
        });
        assert_eq!(t.breaker_events().len(), 2);
        assert_eq!(t.breaker_trips().len(), 1);
        assert_eq!(t.breaker_trips()[0].at, SimTime::from_secs(9));
    }

    #[test]
    fn controller_events_append() {
        let topo = topo();
        let d = dev(&topo);
        let mut t = Telemetry::new(TelemetryConfig::default());
        t.record_controller_events(vec![ControllerEvent {
            at: SimTime::ZERO,
            device: d,
            controller: "rpp0".into(),
            kind: ControllerEventKind::LeafUncapped,
        }]);
        assert_eq!(t.controller_events().len(), 1);
    }

    fn event(at: SimTime, device: DeviceId) -> ControllerEvent {
        ControllerEvent {
            at,
            device,
            controller: "c".into(),
            kind: ControllerEventKind::LeafUncapped,
        }
    }

    #[test]
    fn controller_events_stay_sorted_by_time_then_device() {
        let topo = powerinfra::TopologyBuilder::new()
            .sbs_per_msb(1)
            .rpps_per_sb(2)
            .racks_per_rpp(1)
            .servers_per_rack(2)
            .build();
        let rpps = topo.devices_at(DeviceLevel::Rpp);
        let mut t = Telemetry::new(TelemetryConfig::default());
        // A parallel-path batch arrives in leaf-index order with mixed
        // devices; a staggered-phase batch can even mix timestamps.
        t.record_controller_events(vec![
            event(SimTime::from_secs(3), rpps[1]),
            event(SimTime::from_secs(3), rpps[0]),
        ]);
        t.record_controller_events(vec![
            event(SimTime::from_secs(6), rpps[0]),
            event(SimTime::from_secs(4), rpps[1]),
        ]);
        let keys: Vec<(SimTime, DeviceId)> = t
            .controller_events()
            .iter()
            .map(|e| (e.at, e.device))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "store must be monotone in (at, device)");
        assert_eq!(keys[0].1, rpps[0]);
    }

    #[test]
    #[should_panic(expected = "arrived after events")]
    fn out_of_order_batches_are_rejected() {
        let topo = topo();
        let d = dev(&topo);
        let mut t = Telemetry::new(TelemetryConfig::default());
        t.record_controller_events(vec![event(SimTime::from_secs(9), d)]);
        t.record_controller_events(vec![event(SimTime::from_secs(3), d)]);
    }
}
