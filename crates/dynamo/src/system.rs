//! The deployed controller hierarchy.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use dcsim::{PeriodicSchedule, SimDuration, SimRng, SimTime};
use dynamo_agent::Agent;
use dynamo_controller::{
    ChildDirective, ChildReport, ControlAction, LeafConfig, LeafController, ServerHandle,
    ServiceClass, ThreeBandConfig, UpperConfig, UpperController,
};
use dynrpc::{LinkProfile, Network, RpcError};
use powerinfra::{DeviceId, DeviceLevel, Power, Topology};

use crate::fleet::Fleet;

/// Deployment configuration for the control plane.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Bands for leaf controllers.
    pub leaf_bands: ThreeBandConfig,
    /// Bands for upper controllers.
    pub upper_bands: ThreeBandConfig,
    /// Leaf pulling cycle (paper: 3 s).
    pub leaf_interval: SimDuration,
    /// Upper pulling cycle (paper: 9 s).
    pub upper_interval: SimDuration,
    /// Controller↔agent link characteristics.
    pub rpc: LinkProfile,
    /// Master switch: with capping disabled Dynamo only monitors —
    /// the baseline configuration for "what if we had no Dynamo"
    /// experiments.
    pub capping_enabled: bool,
    /// Constant non-server draw charged to every leaf device.
    pub leaf_overhead: Power,
    /// Dry-run mode (§VI): leaf controllers compute and log decisions
    /// but never actuate.
    pub dry_run: bool,
    /// Worker threads for leaf control cycles (1 = serial). The paper
    /// runs ~100 leaf controllers as concurrent threads in one
    /// consolidated binary (§IV); the parallel path is bit-identical to
    /// the serial one because every leaf owns a disjoint server span
    /// and a private RPC RNG stream.
    pub control_threads: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            leaf_bands: ThreeBandConfig::default(),
            upper_bands: ThreeBandConfig::default(),
            leaf_interval: SimDuration::from_secs(3),
            upper_interval: SimDuration::from_secs(9),
            rpc: LinkProfile::datacenter(),
            capping_enabled: true,
            leaf_overhead: Power::ZERO,
            dry_run: false,
            control_threads: 1,
        }
    }
}

/// A notable controller action, for telemetry and assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerEvent {
    /// When it happened.
    pub at: SimTime,
    /// The protected device.
    pub device: DeviceId,
    /// The controller's name (interned — cloning events is cheap).
    pub controller: Arc<str>,
    /// What happened.
    pub kind: ControllerEventKind,
}

/// The kinds of controller events.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerEventKind {
    /// A leaf controller issued caps.
    LeafCapped {
        /// Aggregate power removed.
        total_cut: Power,
        /// Servers that received caps.
        servers: usize,
    },
    /// A leaf controller released its caps.
    LeafUncapped,
    /// A leaf controller declared its aggregation invalid.
    LeafInvalid {
        /// Pull failures that triggered it.
        failures: usize,
    },
    /// An upper controller pushed contractual limits.
    UpperCapped {
        /// Children that received contracts this cycle.
        contracts: usize,
    },
    /// An upper controller cleared its contracts.
    UpperUncapped,
    /// The backup controller took over after a primary failure (§III-E).
    Failover,
}

/// Which tier an upper controller's child belongs to.
#[derive(Debug, Clone, Copy)]
enum ChildRef {
    Leaf(usize),
    Upper(usize),
}

/// The full Dynamo control plane for one datacenter: a leaf controller
/// per RPP and an upper controller per SB and MSB, mirroring §IV's
/// production configuration ("we configure RPPs or PDU Breakers as the
/// leaf controllers and skip rack-level power monitoring").
pub struct DynamoSystem {
    config: SystemConfig,
    // Leaf tier (parallel arrays so cycles can split borrows).
    leaf_devices: Vec<DeviceId>,
    leaf_controllers: Vec<LeafController>,
    leaf_networks: Vec<Network>,
    leaf_last_aggregate: Vec<Power>,
    leaf_primary_failed: Vec<bool>,
    /// Server ids under each leaf, prebuilt at construction so the
    /// monitoring-only path never rebuilds them per cycle.
    leaf_server_ids: Vec<Vec<u32>>,
    /// When every leaf owns a contiguous ascending server-id range and
    /// the ranges tile `0..server_count` in leaf order, the ranges —
    /// the parallel control plane hands each leaf a private disjoint
    /// `&mut [Agent]` slice. `None` forces the serial path.
    leaf_spans: Option<Vec<Range<usize>>>,
    /// Per-leaf event buffers, reused across parallel cycles (cleared,
    /// capacity kept) and merged in leaf index order after the join.
    leaf_events: Vec<Vec<ControllerEvent>>,
    /// Child-report scratch reused across upper cycles.
    upper_reports: Vec<ChildReport>,
    // Upper tier, ordered SBs first then MSBs (children before parents).
    upper_devices: Vec<DeviceId>,
    upper_controllers: Vec<UpperController>,
    upper_children: Vec<Vec<ChildRef>>,
    upper_last_total: Vec<Power>,
    upper_primary_failed: Vec<bool>,
    leaf_quotas: Vec<Power>,
    upper_quotas: Vec<Power>,
    leaf_index_of: HashMap<DeviceId, usize>,
    upper_index_of: HashMap<DeviceId, usize>,
    leaf_schedule: PeriodicSchedule,
    upper_schedule: PeriodicSchedule,
    failovers: u64,
}

impl DynamoSystem {
    /// Builds the controller hierarchy for `topo`, using `service_of`
    /// to fetch the controller-facing metadata of each server.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no RPP devices.
    pub fn build(
        topo: &Topology,
        service_of: &dyn Fn(u32) -> ServiceClass,
        config: SystemConfig,
        rng: &mut SimRng,
    ) -> Self {
        let rpps = topo.devices_at(DeviceLevel::Rpp);
        assert!(!rpps.is_empty(), "topology has no RPPs to protect");

        let mut leaf_devices = Vec::new();
        let mut leaf_controllers = Vec::new();
        let mut leaf_networks = Vec::new();
        let mut leaf_index_of = HashMap::new();
        for rpp in rpps {
            let dev = topo.device(rpp);
            let servers: Vec<ServerHandle> = topo
                .servers_under(rpp)
                .into_iter()
                .map(|sid| ServerHandle {
                    server_id: sid,
                    service: service_of(sid),
                })
                .collect();
            let leaf_config = LeafConfig {
                physical_limit: dev.rating,
                bands: config.leaf_bands,
                poll_interval: config.leaf_interval,
                bucket_width: Power::from_watts(20.0),
                max_failure_frac: 0.20,
                non_server_overhead: config.leaf_overhead,
                dry_run: config.dry_run,
            };
            leaf_index_of.insert(rpp, leaf_controllers.len());
            leaf_controllers.push(LeafController::new(dev.name.clone(), leaf_config, servers));
            leaf_networks.push(Network::new(config.rpc, rng.split(&dev.name)));
            leaf_devices.push(rpp);
        }

        // SB uppers over leaf children, then MSB uppers over SB uppers.
        let mut upper_devices = Vec::new();
        let mut upper_controllers = Vec::new();
        let mut upper_children: Vec<Vec<ChildRef>> = Vec::new();
        let mut upper_index_of = HashMap::new();
        for sb in topo.devices_at(DeviceLevel::Sb) {
            let dev = topo.device(sb);
            let children: Vec<ChildRef> = dev
                .children
                .iter()
                .map(|c| ChildRef::Leaf(leaf_index_of[c]))
                .collect();
            if children.is_empty() {
                continue;
            }
            upper_index_of.insert(sb, upper_controllers.len());
            upper_controllers.push(UpperController::new(
                dev.name.clone(),
                UpperConfig {
                    physical_limit: dev.rating,
                    bands: config.upper_bands,
                    poll_interval: config.upper_interval,
                    bucket_width: dev.rating * 0.01,
                    policy: dynamo_controller::CoordinationPolicy::PunishOffenderFirst,
                },
                children.len(),
            ));
            upper_children.push(children);
            upper_devices.push(sb);
        }
        for msb in topo.devices_at(DeviceLevel::Msb) {
            let dev = topo.device(msb);
            let children: Vec<ChildRef> = dev
                .children
                .iter()
                .filter_map(|c| upper_index_of.get(c).map(|&i| ChildRef::Upper(i)))
                .collect();
            if children.is_empty() {
                continue;
            }
            upper_index_of.insert(msb, upper_controllers.len());
            upper_controllers.push(UpperController::new(
                dev.name.clone(),
                UpperConfig {
                    physical_limit: dev.rating,
                    bands: config.upper_bands,
                    poll_interval: config.upper_interval,
                    bucket_width: dev.rating * 0.01,
                    policy: dynamo_controller::CoordinationPolicy::PunishOffenderFirst,
                },
                children.len(),
            ));
            upper_children.push(children);
            upper_devices.push(msb);
        }

        let n_leaves = leaf_devices.len();
        let n_uppers = upper_devices.len();
        let leaf_quotas: Vec<Power> = leaf_devices.iter().map(|&d| topo.device(d).quota).collect();
        let upper_quotas: Vec<Power> = upper_devices
            .iter()
            .map(|&d| topo.device(d).quota)
            .collect();
        let leaf_server_ids: Vec<Vec<u32>> = leaf_controllers
            .iter()
            .map(|c| c.servers().iter().map(|h| h.server_id).collect())
            .collect();
        let leaf_spans = compute_leaf_spans(&leaf_server_ids, topo.server_count());
        DynamoSystem {
            leaf_devices,
            leaf_controllers,
            leaf_networks,
            leaf_last_aggregate: vec![Power::ZERO; n_leaves],
            leaf_primary_failed: vec![false; n_leaves],
            leaf_server_ids,
            leaf_spans,
            leaf_events: vec![Vec::new(); n_leaves],
            upper_reports: Vec::new(),
            upper_devices,
            upper_controllers,
            upper_children,
            upper_last_total: vec![Power::ZERO; n_uppers],
            upper_primary_failed: vec![false; n_uppers],
            leaf_quotas,
            upper_quotas,
            leaf_index_of,
            upper_index_of,
            leaf_schedule: PeriodicSchedule::new(config.leaf_interval),
            upper_schedule: PeriodicSchedule::new(config.upper_interval),
            config,
            failovers: 0,
        }
    }

    /// The deployment configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Number of leaf controllers.
    pub fn leaf_count(&self) -> usize {
        self.leaf_controllers.len()
    }

    /// Number of upper controllers.
    pub fn upper_count(&self) -> usize {
        self.upper_controllers.len()
    }

    /// The leaf controller protecting `device`, if any.
    pub fn leaf_for(&self, device: DeviceId) -> Option<&LeafController> {
        self.leaf_index_of
            .get(&device)
            .map(|&i| &self.leaf_controllers[i])
    }

    /// The upper controller protecting `device`, if any.
    pub fn upper_for(&self, device: DeviceId) -> Option<&UpperController> {
        self.upper_index_of
            .get(&device)
            .map(|&i| &self.upper_controllers[i])
    }

    /// The last aggregated power the leaf controller for `device`
    /// computed, if the device has one.
    pub fn leaf_aggregate(&self, device: DeviceId) -> Option<Power> {
        self.leaf_index_of
            .get(&device)
            .map(|&i| self.leaf_last_aggregate[i])
    }

    /// All leaf-protected devices, in build order.
    pub fn leaf_devices(&self) -> &[DeviceId] {
        &self.leaf_devices
    }

    /// §VI staged rollout: "we use a four-phase staged roll-out for new
    /// changes to the agent or control logic, so any serious issues will
    /// be captured in early phases before going wide."
    ///
    /// Phase 1 activates capping on ~1% of leaf controllers (at least
    /// one), phase 2 on 10%, phase 3 on 50%, phase 4 on all; the rest
    /// run in dry-run mode — deciding and logging without actuating.
    /// Returns the number of active (non-dry-run) leaf controllers.
    ///
    /// # Panics
    ///
    /// Panics unless `phase` is 1–4.
    pub fn set_rollout_phase(&mut self, phase: u8) -> usize {
        assert!(
            (1..=4).contains(&phase),
            "rollout phase must be 1-4, got {phase}"
        );
        let frac = match phase {
            1 => 0.01,
            2 => 0.10,
            3 => 0.50,
            _ => 1.0,
        };
        let n = self.leaf_controllers.len();
        let active = ((n as f64 * frac).ceil() as usize).clamp(1, n);
        for (i, leaf) in self.leaf_controllers.iter_mut().enumerate() {
            leaf.set_dry_run(i >= active);
        }
        active
    }

    /// Operator override: pushes (or clears) a contractual limit on the
    /// leaf controller protecting `device`. This is how production
    /// end-to-end tests "manually trigger the power capping by lowering
    /// the capping threshold during the test" (§IV-C).
    ///
    /// # Panics
    ///
    /// Panics if no leaf controller protects `device`.
    pub fn set_leaf_contract(&mut self, device: DeviceId, limit: Option<Power>) {
        let &i = self
            .leaf_index_of
            .get(&device)
            .unwrap_or_else(|| panic!("no leaf controller protects {device}"));
        self.leaf_controllers[i].set_contractual_limit(limit);
    }

    /// Total failovers so far.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Simulates a primary controller crash for `device`; the redundant
    /// backup takes over at that controller's next cycle (§III-E).
    ///
    /// # Panics
    ///
    /// Panics if no controller protects `device`.
    pub fn fail_primary(&mut self, device: DeviceId) {
        if let Some(&i) = self.leaf_index_of.get(&device) {
            self.leaf_primary_failed[i] = true;
        } else if let Some(&i) = self.upper_index_of.get(&device) {
            self.upper_primary_failed[i] = true;
        } else {
            panic!("no controller protects {device}");
        }
    }

    /// All alerts raised by any controller.
    pub fn alerts(&self) -> Vec<dynamo_controller::Alert> {
        let mut out = Vec::new();
        for c in &self.leaf_controllers {
            out.extend_from_slice(c.alerts());
        }
        for c in &self.upper_controllers {
            out.extend_from_slice(c.alerts());
        }
        out
    }

    /// Sets the number of worker threads for leaf control cycles
    /// (1 = serial; the result is bit-identical at any thread count).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn set_control_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "need at least one worker thread");
        self.config.control_threads = threads;
    }

    /// True if this system can run leaf cycles in parallel: every leaf
    /// owns a contiguous server-id span and the spans tile the fleet.
    /// Standard topologies always qualify; exotic hand-built ones fall
    /// back to the serial path.
    pub fn supports_parallel_leaves(&self) -> bool {
        self.leaf_spans.is_some()
    }

    /// Runs any controller cycles due at `now`. Call once per simulation
    /// tick; the system tracks its own 3 s / 9 s schedules.
    pub fn tick(&mut self, now: SimTime, fleet: &mut Fleet) -> Vec<ControllerEvent> {
        let mut events = Vec::new();
        if self.leaf_schedule.fire(now) {
            let threads = self.config.control_threads.min(self.leaf_controllers.len());
            if threads > 1 && self.config.capping_enabled && self.leaf_spans.is_some() {
                self.run_leaf_cycles_parallel(now, fleet, &mut events, threads);
            } else {
                self.run_leaf_cycles(now, fleet, &mut events);
            }
        }
        if self.upper_schedule.fire(now) && self.config.capping_enabled {
            self.run_upper_cycles(now, &mut events);
        }
        events
    }

    fn run_leaf_cycles(
        &mut self,
        now: SimTime,
        fleet: &mut Fleet,
        events: &mut Vec<ControllerEvent>,
    ) {
        for i in 0..self.leaf_controllers.len() {
            if self.leaf_primary_failed[i] {
                // Backup takes over: one cycle of downtime, then the
                // redundant instance (sharing the same decision state
                // via its own polling) continues.
                self.leaf_primary_failed[i] = false;
                self.failovers += 1;
                events.push(ControllerEvent {
                    at: now,
                    device: self.leaf_devices[i],
                    controller: self.leaf_controllers[i].name_shared(),
                    kind: ControllerEventKind::Failover,
                });
                continue;
            }
            if !self.config.capping_enabled {
                // Monitoring-only baseline: track the true aggregate so
                // upper tiers and telemetry still see power.
                self.leaf_last_aggregate[i] = fleet.power_sum(&self.leaf_server_ids[i]);
                continue;
            }
            run_one_leaf_cycle(
                now,
                self.leaf_devices[i],
                &mut self.leaf_controllers[i],
                &mut self.leaf_networks[i],
                fleet.agents_mut(),
                0,
                &mut self.leaf_last_aggregate[i],
                events,
            );
        }
    }

    /// The parallel leaf control plane: mirrors the paper's consolidated
    /// binary running ~100 controller threads (§IV). Each worker owns a
    /// contiguous chunk of leaves and, through the precomputed spans, a
    /// private disjoint `&mut [Agent]` slice of the fleet; every leaf's
    /// RPC RNG stream is its own, so each cycle computes exactly what
    /// the serial path would. Workers buffer events per leaf; the merge
    /// after the join restores serial (leaf index) order, making the
    /// whole run bit-identical to `run_leaf_cycles`.
    fn run_leaf_cycles_parallel(
        &mut self,
        now: SimTime,
        fleet: &mut Fleet,
        events: &mut Vec<ControllerEvent>,
        threads: usize,
    ) {
        let spans = self
            .leaf_spans
            .as_deref()
            .expect("parallel path requires leaf spans");
        let n = self.leaf_controllers.len();
        let per_chunk = n.div_ceil(threads);

        let devices = &self.leaf_devices;
        let mut controllers = self.leaf_controllers.as_mut_slice();
        let mut networks = self.leaf_networks.as_mut_slice();
        let mut aggregates = self.leaf_last_aggregate.as_mut_slice();
        let mut failed_flags = self.leaf_primary_failed.as_mut_slice();
        let mut buffers = self.leaf_events.as_mut_slice();
        let mut agents: &mut [Agent] = fleet.agents_mut();

        std::thread::scope(|scope| {
            let mut lo = 0;
            while lo < n {
                let count = per_chunk.min(n - lo);
                let hi = lo + count;
                let (chunk_controllers, rest) = controllers.split_at_mut(count);
                controllers = rest;
                let (chunk_networks, rest) = networks.split_at_mut(count);
                networks = rest;
                let (chunk_aggregates, rest) = aggregates.split_at_mut(count);
                aggregates = rest;
                let (chunk_failed, rest) = failed_flags.split_at_mut(count);
                failed_flags = rest;
                let (chunk_buffers, rest) = buffers.split_at_mut(count);
                buffers = rest;
                let agent_count = spans[hi - 1].end - spans[lo].start;
                let (chunk_agents, rest) = agents.split_at_mut(agent_count);
                agents = rest;
                let chunk_devices = &devices[lo..hi];
                let chunk_spans = &spans[lo..hi];

                scope.spawn(move || {
                    let mut agents = chunk_agents;
                    for j in 0..chunk_controllers.len() {
                        let span = &chunk_spans[j];
                        let (mine, rest) = agents.split_at_mut(span.end - span.start);
                        agents = rest;
                        let buf = &mut chunk_buffers[j];
                        buf.clear();
                        if chunk_failed[j] {
                            chunk_failed[j] = false;
                            buf.push(ControllerEvent {
                                at: now,
                                device: chunk_devices[j],
                                controller: chunk_controllers[j].name_shared(),
                                kind: ControllerEventKind::Failover,
                            });
                            continue;
                        }
                        run_one_leaf_cycle(
                            now,
                            chunk_devices[j],
                            &mut chunk_controllers[j],
                            &mut chunk_networks[j],
                            mine,
                            span.start,
                            &mut chunk_aggregates[j],
                            buf,
                        );
                    }
                });
                lo = hi;
            }
        });

        // Deterministic merge: leaf index order, exactly as the serial
        // loop would have emitted. Failovers are counted here because
        // workers cannot touch the shared counter.
        for buf in &mut self.leaf_events {
            for event in buf.drain(..) {
                if matches!(event.kind, ControllerEventKind::Failover) {
                    self.failovers += 1;
                }
                events.push(event);
            }
        }
    }

    fn run_upper_cycles(&mut self, now: SimTime, events: &mut Vec<ControllerEvent>) {
        // SBs were pushed before MSBs, so iterating in order runs
        // children before parents and parents see fresh child totals.
        for i in 0..self.upper_controllers.len() {
            if self.upper_primary_failed[i] {
                self.upper_primary_failed[i] = false;
                self.failovers += 1;
                events.push(ControllerEvent {
                    at: now,
                    device: self.upper_devices[i],
                    controller: self.upper_controllers[i].name_shared(),
                    kind: ControllerEventKind::Failover,
                });
                continue;
            }
            self.upper_reports.clear();
            for &child in &self.upper_children[i] {
                self.upper_reports.push(match child {
                    ChildRef::Leaf(j) => ChildReport {
                        power: self.leaf_last_aggregate[j],
                        quota: self.quota_of_leaf(j),
                        physical_limit: self.leaf_controllers[j].config().physical_limit,
                    },
                    ChildRef::Upper(j) => ChildReport {
                        power: self.upper_last_total[j],
                        quota: self.quota_of_upper(j),
                        physical_limit: self.upper_controllers[j].config().physical_limit,
                    },
                });
            }
            let outcome = self.upper_controllers[i].cycle(now, &self.upper_reports);
            self.upper_last_total[i] = outcome.total;

            // Apply directives to children (contract propagation).
            // Indexed access instead of iterating `upper_children[i]`
            // keeps the child list borrow disjoint from the controller
            // mutations below — no per-cycle clone of the child list.
            let mut contracts = 0;
            for (k, &directive) in outcome.directives.iter().enumerate() {
                let limit = match directive {
                    ChildDirective::SetContract(l) => {
                        contracts += 1;
                        Some(l)
                    }
                    ChildDirective::ClearContract => None,
                    ChildDirective::Unchanged => continue,
                };
                match self.upper_children[i][k] {
                    ChildRef::Leaf(j) => self.leaf_controllers[j].set_contractual_limit(limit),
                    ChildRef::Upper(j) => self.upper_controllers[j].set_contractual_limit(limit),
                }
            }
            if outcome.capped {
                events.push(ControllerEvent {
                    at: now,
                    device: self.upper_devices[i],
                    controller: self.upper_controllers[i].name_shared(),
                    kind: ControllerEventKind::UpperCapped { contracts },
                });
            } else if outcome.uncapped {
                events.push(ControllerEvent {
                    at: now,
                    device: self.upper_devices[i],
                    controller: self.upper_controllers[i].name_shared(),
                    kind: ControllerEventKind::UpperUncapped,
                });
            }
        }
    }

    /// Planned-peak quota for a leaf child (from topology metadata).
    fn quota_of_leaf(&self, j: usize) -> Power {
        self.leaf_quotas[j]
    }

    /// Planned-peak quota for an upper child (from topology metadata).
    fn quota_of_upper(&self, j: usize) -> Power {
        self.upper_quotas[j]
    }
}

/// One leaf controller cycle against its private agent span.
///
/// `agents` is the slice of agents this leaf may touch and `span_start`
/// the server id of `agents[0]` — the serial path passes the whole
/// fleet with `span_start == 0`, the parallel path a disjoint per-leaf
/// slice. Shared by both so they cannot drift apart.
#[allow(clippy::too_many_arguments)]
fn run_one_leaf_cycle(
    now: SimTime,
    device: DeviceId,
    controller: &mut LeafController,
    network: &mut Network,
    agents: &mut [Agent],
    span_start: usize,
    last_aggregate: &mut Power,
    events: &mut Vec<ControllerEvent>,
) {
    let outcome = controller.cycle(now, |sid, req| {
        let agent = &mut agents[sid as usize - span_start];
        if !agent.is_running() {
            return Err(RpcError::AgentDown);
        }
        network.call(agent, req)
    });
    if let Some(total) = outcome.aggregated {
        *last_aggregate = total;
    }
    let kind = match &outcome.action {
        ControlAction::Capped {
            total_cut,
            commands,
        } => Some(ControllerEventKind::LeafCapped {
            total_cut: *total_cut,
            servers: commands.len(),
        }),
        ControlAction::Uncapped => Some(ControllerEventKind::LeafUncapped),
        ControlAction::Invalid => Some(ControllerEventKind::LeafInvalid {
            failures: outcome.pull_failures,
        }),
        ControlAction::Hold => None,
    };
    if let Some(kind) = kind {
        events.push(ControllerEvent {
            at: now,
            device,
            controller: controller.name_shared(),
            kind,
        });
    }
}

/// Computes per-leaf agent spans for the parallel control plane.
///
/// Returns `Some` only when every leaf's server ids form a contiguous
/// ascending run and the runs tile `0..server_count` in leaf order —
/// the precondition for handing each leaf a disjoint `&mut [Agent]`
/// slice via `split_at_mut`. Grid topologies built by
/// [`powerinfra::TopologyBuilder`] always satisfy this.
fn compute_leaf_spans(
    leaf_server_ids: &[Vec<u32>],
    server_count: usize,
) -> Option<Vec<Range<usize>>> {
    let mut spans = Vec::with_capacity(leaf_server_ids.len());
    let mut next = 0usize;
    for ids in leaf_server_ids {
        let first = *ids.first()? as usize;
        if first != next {
            return None;
        }
        for (k, &sid) in ids.iter().enumerate() {
            if sid as usize != first + k {
                return None;
            }
        }
        next = first + ids.len();
        spans.push(first..next);
    }
    (next == server_count).then_some(spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Fleet;
    use powerinfra::TopologyBuilder;
    use serverpower::{ServerConfig, ServerGeneration};
    use workloads::ServiceKind;

    fn topo() -> Topology {
        TopologyBuilder::new()
            .sbs_per_msb(2)
            .rpps_per_sb(2)
            .racks_per_rpp(1)
            .servers_per_rack(4)
            .build()
    }

    fn service_of(_sid: u32) -> dynamo_controller::ServiceClass {
        crate::service_class_of(ServiceKind::Web)
    }

    fn build_system(topo: &Topology, config: SystemConfig) -> DynamoSystem {
        let mut rng = SimRng::seed_from(1);
        DynamoSystem::build(topo, &service_of, config, &mut rng)
    }

    fn fleet(n: usize) -> Fleet {
        Fleet::new(
            vec![ServerConfig::new(ServerGeneration::Haswell2015); n],
            vec![ServiceKind::Web; n],
            SimRng::seed_from(2),
        )
    }

    #[test]
    fn hierarchy_mirrors_the_topology() {
        let topo = topo();
        let system = build_system(&topo, SystemConfig::default());
        // One leaf per RPP; one upper per SB plus one per MSB.
        assert_eq!(system.leaf_count(), 4);
        assert_eq!(system.upper_count(), 3);
        for rpp in topo.devices_at(DeviceLevel::Rpp) {
            assert!(system.leaf_for(rpp).is_some());
            assert!(system.upper_for(rpp).is_none());
        }
        for sb in topo.devices_at(DeviceLevel::Sb) {
            assert!(system.upper_for(sb).is_some());
        }
        assert!(system.upper_for(topo.root()).is_some());
    }

    #[test]
    fn leaf_controllers_cover_every_server_exactly_once() {
        let topo = topo();
        let system = build_system(&topo, SystemConfig::default());
        let mut covered: Vec<u32> = system
            .leaf_devices()
            .iter()
            .flat_map(|&d| {
                system
                    .leaf_for(d)
                    .unwrap()
                    .servers()
                    .iter()
                    .map(|h| h.server_id)
            })
            .collect();
        covered.sort_unstable();
        let expected: Vec<u32> = (0..topo.server_count() as u32).collect();
        assert_eq!(covered, expected);
    }

    #[test]
    fn tick_respects_the_schedules() {
        let topo = topo();
        let mut system = build_system(&topo, SystemConfig::default());
        let mut fleet = fleet(topo.server_count());
        fleet.step(SimTime::ZERO, dcsim::SimDuration::from_secs(1));
        // t=0: both tiers run. t=1,2: neither. t=3: leaves only.
        system.tick(SimTime::ZERO, &mut fleet);
        let leaf_cycles_t0 = system.leaf_for(system.leaf_devices()[0]).unwrap().cycles();
        assert_eq!(leaf_cycles_t0, 1);
        system.tick(SimTime::from_secs(1), &mut fleet);
        system.tick(SimTime::from_secs(2), &mut fleet);
        assert_eq!(
            system.leaf_for(system.leaf_devices()[0]).unwrap().cycles(),
            1
        );
        system.tick(SimTime::from_secs(3), &mut fleet);
        assert_eq!(
            system.leaf_for(system.leaf_devices()[0]).unwrap().cycles(),
            2
        );
    }

    #[test]
    fn monitoring_only_mode_tracks_aggregates_without_cycles() {
        let topo = topo();
        let config = SystemConfig {
            capping_enabled: false,
            ..SystemConfig::default()
        };
        let mut system = build_system(&topo, config);
        let mut fleet = fleet(topo.server_count());
        for i in 0..fleet.len() as u32 {
            fleet.agent_mut(i).server_mut().set_demand(0.5);
            fleet
                .agent_mut(i)
                .server_mut()
                .step(dcsim::SimDuration::from_secs(1));
        }
        let events = system.tick(SimTime::ZERO, &mut fleet);
        assert!(events.is_empty());
        // Aggregates still update so telemetry and parents see power.
        let rpp = system.leaf_devices()[0];
        let agg = system.leaf_aggregate(rpp).unwrap();
        assert!(agg.as_watts() > 100.0);
        // But no controller cycles ran.
        assert_eq!(system.leaf_for(rpp).unwrap().cycles(), 0);
    }

    #[test]
    fn failover_is_reported_once_and_recovers() {
        let topo = topo();
        let mut system = build_system(&topo, SystemConfig::default());
        let mut fleet = fleet(topo.server_count());
        let rpp = system.leaf_devices()[0];
        system.fail_primary(rpp);
        let events = system.tick(SimTime::ZERO, &mut fleet);
        let failovers = events
            .iter()
            .filter(|e| matches!(e.kind, ControllerEventKind::Failover))
            .count();
        assert_eq!(failovers, 1);
        assert_eq!(system.failovers(), 1);
        // The next cycle runs normally on the backup.
        let events2 = system.tick(SimTime::from_secs(3), &mut fleet);
        assert!(!events2
            .iter()
            .any(|e| matches!(e.kind, ControllerEventKind::Failover)));
        assert_eq!(system.leaf_for(rpp).unwrap().cycles(), 1);
    }

    #[test]
    fn staged_rollout_gates_actuation() {
        let topo = topo();
        let mut system = build_system(&topo, SystemConfig::default());
        // Phase 1: exactly one of the four leaves is live.
        assert_eq!(system.set_rollout_phase(1), 1);
        let dry: Vec<bool> = system
            .leaf_devices()
            .to_vec()
            .iter()
            .map(|&d| system.leaf_for(d).unwrap().config().dry_run)
            .collect();
        assert_eq!(dry.iter().filter(|&&x| !x).count(), 1);
        // Phase 3: half live; phase 4: all live.
        assert_eq!(system.set_rollout_phase(3), 2);
        assert_eq!(system.set_rollout_phase(4), 4);
        let all_live = system
            .leaf_devices()
            .to_vec()
            .iter()
            .all(|&d| !system.leaf_for(d).unwrap().config().dry_run);
        assert!(all_live);
    }

    #[test]
    #[should_panic(expected = "rollout phase must be 1-4")]
    fn invalid_rollout_phase_panics() {
        let topo = topo();
        let mut system = build_system(&topo, SystemConfig::default());
        system.set_rollout_phase(0);
    }

    #[test]
    #[should_panic(expected = "no controller protects")]
    fn failing_an_unprotected_device_panics() {
        let topo = topo();
        let mut system = build_system(&topo, SystemConfig::default());
        let rack = topo.devices_at(DeviceLevel::Rack)[0];
        system.fail_primary(rack);
    }

    #[test]
    fn set_leaf_contract_round_trips() {
        let topo = topo();
        let mut system = build_system(&topo, SystemConfig::default());
        let rpp = system.leaf_devices()[0];
        system.set_leaf_contract(rpp, Some(Power::from_kilowatts(100.0)));
        assert_eq!(
            system.leaf_for(rpp).unwrap().contractual_limit(),
            Some(Power::from_kilowatts(100.0))
        );
        system.set_leaf_contract(rpp, None);
        assert_eq!(system.leaf_for(rpp).unwrap().contractual_limit(), None);
    }
}
