//! Operator-facing run reports.
//!
//! §VI stresses that "monitoring is as important as capping"; this
//! module condenses a run's telemetry into the summary an operator
//! would read: utilization per level, control actions, trips, alerts.

use powerinfra::DeviceLevel;

use crate::datacenter::Datacenter;
use crate::events::ControllerEventKind;
use crate::grid::GridSummary;

/// Aggregated statistics for one hierarchy level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelSummary {
    /// The level.
    pub level: DeviceLevel,
    /// Devices at this level.
    pub devices: usize,
    /// Mean utilization of rated power across devices (now).
    pub mean_utilization: f64,
    /// The most loaded device's utilization (now).
    pub peak_utilization: f64,
}

/// A condensed report over a [`Datacenter`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Simulated time covered.
    pub simulated: dcsim::SimTime,
    /// Fleet size.
    pub servers: usize,
    /// Per-level utilization snapshot.
    pub levels: Vec<LevelSummary>,
    /// Leaf capping events.
    pub leaf_cap_events: usize,
    /// Leaf uncapping events.
    pub leaf_uncap_events: usize,
    /// Upper-tier contract pushes.
    pub upper_cap_events: usize,
    /// Invalid-aggregation incidents.
    pub invalid_aggregations: usize,
    /// Controller failovers.
    pub failovers: u64,
    /// Cycles each leaf controller skipped to a backup takeover, as
    /// `(controller name, skipped cycles)` in leaf build order. Only
    /// leaves that actually skipped a cycle are listed.
    pub leaf_skipped_cycles: Vec<(String, u64)>,
    /// Breaker trips (potential outages).
    pub breaker_trips: usize,
    /// Operator alerts (controller + validation).
    pub alerts: usize,
    /// Servers currently capped.
    pub currently_capped: usize,
    /// Grid-interactive layer statistics, when one was configured.
    pub grid: Option<GridSummary>,
}

impl RunReport {
    /// Builds the report from a datacenter's current state.
    pub fn from_datacenter(dc: &Datacenter) -> Self {
        let mut levels = Vec::new();
        for level in DeviceLevel::all() {
            let devices = dc.topology().devices_at(level);
            if devices.is_empty() {
                continue;
            }
            let mut sum = 0.0;
            let mut peak = 0.0f64;
            for &d in &devices {
                let util = dc.device_power(d).ratio_of(dc.topology().device(d).rating);
                sum += util;
                peak = peak.max(util);
            }
            levels.push(LevelSummary {
                level,
                devices: devices.len(),
                mean_utilization: sum / devices.len() as f64,
                peak_utilization: peak,
            });
        }

        let mut leaf_cap_events = 0;
        let mut leaf_uncap_events = 0;
        let mut upper_cap_events = 0;
        let mut invalid_aggregations = 0;
        for e in dc.telemetry().controller_events() {
            match e.kind {
                ControllerEventKind::LeafCapped { .. } => leaf_cap_events += 1,
                ControllerEventKind::LeafUncapped => leaf_uncap_events += 1,
                ControllerEventKind::UpperCapped { .. } => upper_cap_events += 1,
                ControllerEventKind::LeafInvalid { .. } => invalid_aggregations += 1,
                _ => {}
            }
        }

        RunReport {
            simulated: dc.now(),
            servers: dc.fleet().len(),
            levels,
            leaf_cap_events,
            leaf_uncap_events,
            upper_cap_events,
            invalid_aggregations,
            failovers: dc.system().failovers(),
            leaf_skipped_cycles: dc
                .system()
                .skipped_cycles_per_leaf()
                .into_iter()
                .filter(|&(_, n)| n > 0)
                .collect(),
            breaker_trips: dc.telemetry().breaker_trips().len(),
            alerts: dc.system().alerts().len() + dc.validator().alerts().len(),
            currently_capped: dc.fleet().stats().capped_servers,
            grid: dc.grid().map(|g| g.summary()),
        }
    }

    /// True when the run ended with no outages and no open incidents —
    /// the state Dynamo exists to maintain. With a grid layer deployed
    /// this includes honoring every curtailment (no violation seconds).
    pub fn is_healthy(&self) -> bool {
        self.breaker_trips == 0
            && self.invalid_aggregations == 0
            && self.alerts == 0
            && self.grid.as_ref().is_none_or(|g| g.violation_secs == 0)
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "=== Dynamo run report @ {} ({} servers) ===",
            self.simulated, self.servers
        )?;
        for l in &self.levels {
            writeln!(
                f,
                "{:<5} x{:<4} mean {:>5.1}% of rating, peak {:>5.1}%",
                l.level.label(),
                l.devices,
                l.mean_utilization * 100.0,
                l.peak_utilization * 100.0
            )?;
        }
        writeln!(
            f,
            "capping: {} leaf caps, {} uncaps, {} upper contracts; {} servers capped now",
            self.leaf_cap_events,
            self.leaf_uncap_events,
            self.upper_cap_events,
            self.currently_capped
        )?;
        writeln!(
            f,
            "incidents: {} breaker trips, {} invalid aggregations, {} failovers, {} alerts",
            self.breaker_trips, self.invalid_aggregations, self.failovers, self.alerts
        )?;
        for (name, skipped) in &self.leaf_skipped_cycles {
            writeln!(f, "  failover: {name} skipped {skipped} cycle(s)")?;
        }
        if let Some(g) = &self.grid {
            writeln!(
                f,
                "grid [{}]: {} curtailments ({} contained), {} s violation, \
                 {} limit pushes over {} econ cycles",
                g.scenario,
                g.curtailments,
                g.contained,
                g.violation_secs,
                g.limit_changes,
                g.econ_cycles
            )?;
            writeln!(
                f,
                "grid: utility draw {:.1} kW, contract {}, dcups {:.1}% charged \
                 (low water {:.1}%), {} s discharging{}",
                g.utility_draw.as_watts() / 1000.0,
                match g.site_contract {
                    Some(c) => format!("{:.1} kW", c.as_watts() / 1000.0),
                    None => "none".to_string(),
                },
                g.charge_fraction * 100.0,
                g.charge_low_water * 100.0,
                g.discharge_secs,
                match g.last_containment_secs {
                    Some(s) => format!(", contained in {s} s"),
                    None => String::new(),
                }
            )?;
        }
        writeln!(f, "healthy: {}", self.is_healthy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatacenterBuilder;
    use dcsim::SimDuration;
    use powerinfra::Power;
    use workloads::{ServiceKind, TrafficPattern};

    fn run_dc(rating_kw: f64) -> Datacenter {
        let mut dc = DatacenterBuilder::new()
            .sbs_per_msb(1)
            .rpps_per_sb(1)
            .racks_per_rpp(2)
            .servers_per_rack(10)
            .rpp_rating(Power::from_kilowatts(rating_kw))
            .uniform_service(ServiceKind::Web)
            .traffic(ServiceKind::Web, TrafficPattern::flat(1.6))
            .seed(5)
            .build();
        dc.run_for(SimDuration::from_mins(3));
        dc
    }

    #[test]
    fn healthy_run_reports_healthy() {
        let dc = run_dc(20.0); // ample headroom
        let report = RunReport::from_datacenter(&dc);
        assert!(report.is_healthy(), "{report}");
        assert_eq!(report.servers, 20);
        assert_eq!(report.breaker_trips, 0);
        assert_eq!(report.levels.len(), 4);
        for l in &report.levels {
            assert!(l.peak_utilization >= l.mean_utilization);
            assert!(l.mean_utilization > 0.0);
        }
    }

    #[test]
    fn capping_run_counts_events() {
        let dc = run_dc(5.8); // tight: ~6.3 kW demand against 5.8 kW
        let report = RunReport::from_datacenter(&dc);
        assert!(report.leaf_cap_events > 0, "{report}");
        assert_eq!(report.breaker_trips, 0);
        // Utilization at the RPP should be pinned near (below) 100%.
        let rpp = report
            .levels
            .iter()
            .find(|l| l.level == DeviceLevel::Rpp)
            .unwrap();
        assert!(rpp.peak_utilization <= 1.02 && rpp.peak_utilization > 0.85);
    }

    #[test]
    fn per_leaf_skipped_cycles_attribute_failovers() {
        let mut dc = run_dc(20.0);
        let victim = dc.system().leaf_devices()[0];
        dc.system_mut().fail_primary(victim);
        dc.run_for(SimDuration::from_secs(6)); // at least one leaf cycle
        let report = RunReport::from_datacenter(&dc);
        assert_eq!(report.failovers, 1, "{report}");
        assert_eq!(report.leaf_skipped_cycles.len(), 1);
        assert_eq!(report.leaf_skipped_cycles[0].1, 1);
        assert!(report.to_string().contains("skipped 1 cycle"), "{report}");
    }

    #[test]
    fn display_is_complete() {
        let dc = run_dc(20.0);
        let s = RunReport::from_datacenter(&dc).to_string();
        for needle in [
            "run report",
            "MSB",
            "RPP",
            "capping:",
            "incidents:",
            "healthy:",
        ] {
            assert!(s.contains(needle), "missing {needle} in\n{s}");
        }
    }
}
