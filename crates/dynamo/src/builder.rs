//! Datacenter construction.

use std::collections::HashSet;

use dcsim::{SimDuration, SimRng};
use dynrpc::LinkProfile;
use powerinfra::{DeviceLevel, Power, Topology, TopologyBuilder};
use serverpower::{ServerConfig, ServerGeneration};
use workloads::{ServiceKind, TrafficPattern};

use crate::control_plane::{DynamoSystem, SystemConfig};
use crate::datacenter::{Datacenter, ParallelMode};
use crate::fleet::Fleet;
use crate::grid::{GridConfig, GridLayer};
use crate::telemetry::{Telemetry, TelemetryConfig};
use crate::validator::BreakerValidator;

/// How services are assigned to servers.
#[derive(Debug, Clone)]
pub enum ServicePlan {
    /// Every server runs the same service.
    Uniform(ServiceKind),
    /// Each RPP row is composed of the given `(service, count)` blocks,
    /// assigned to the row's servers in order and cycled if the row has
    /// more servers than the blocks cover. This is how the paper's
    /// Figure 15 row (≈200 web + 200 cache + 40 feed) is expressed.
    RowComposition(Vec<(ServiceKind, usize)>),
    /// Random assignment with the given weights.
    Mix(Vec<(ServiceKind, f64)>),
    /// Explicit per-server assignment (must match the server count).
    Explicit(Vec<ServiceKind>),
}

/// Builder for a complete simulated datacenter with the Dynamo control
/// plane deployed.
///
/// # Example
///
/// ```
/// use dynamo::{DatacenterBuilder, ServicePlan};
/// use workloads::ServiceKind;
///
/// let dc = DatacenterBuilder::new()
///     .sbs_per_msb(2)
///     .rpps_per_sb(2)
///     .racks_per_rpp(2)
///     .servers_per_rack(5)
///     .service_plan(ServicePlan::Mix(vec![
///         (ServiceKind::Web, 0.6),
///         (ServiceKind::Cache, 0.4),
///     ]))
///     .seed(11)
///     .build();
/// assert_eq!(dc.fleet().len(), 2 * 2 * 2 * 5);
/// ```
#[derive(Debug, Clone)]
pub struct DatacenterBuilder {
    topo: TopologyBuilder,
    plan: ServicePlan,
    traffic: Vec<(ServiceKind, TrafficPattern)>,
    turbo_services: HashSet<ServiceKind>,
    static_caps: Vec<(ServiceKind, f64)>,
    generation: ServerGeneration,
    sensorless_fraction: f64,
    estimation_bias: f64,
    crash_rate_per_hour: f64,
    seed: u64,
    tick: SimDuration,
    worker_threads: usize,
    parallel: ParallelMode,
    profile: bool,
    fuse: bool,
    demand_hold: u32,
    system: SystemConfig,
    telemetry: TelemetryConfig,
    grid: Option<GridConfig>,
}

impl Default for DatacenterBuilder {
    fn default() -> Self {
        DatacenterBuilder {
            topo: TopologyBuilder::new(),
            plan: ServicePlan::Uniform(ServiceKind::Web),
            traffic: Vec::new(),
            turbo_services: HashSet::new(),
            static_caps: Vec::new(),
            generation: ServerGeneration::Haswell2015,
            sensorless_fraction: 0.02,
            estimation_bias: 0.0,
            crash_rate_per_hour: 0.0,
            seed: 0,
            tick: SimDuration::from_secs(1),
            worker_threads: 1,
            parallel: ParallelMode::default(),
            profile: false,
            fuse: true,
            demand_hold: 1,
            system: SystemConfig::default(),
            telemetry: TelemetryConfig::default(),
            grid: None,
        }
    }
}

impl DatacenterBuilder {
    /// Starts from the defaults: one MSB, 4 SBs × 4 RPPs × 4 racks × 30
    /// Haswell web servers, Dynamo capping enabled, 1 s tick.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of suites. See [`TopologyBuilder::suites`].
    pub fn suites(mut self, n: usize) -> Self {
        self.topo = self.topo.suites(n);
        self
    }

    /// MSBs per suite.
    pub fn msbs_per_suite(mut self, n: usize) -> Self {
        self.topo = self.topo.msbs_per_suite(n);
        self
    }

    /// SBs per MSB.
    pub fn sbs_per_msb(mut self, n: usize) -> Self {
        self.topo = self.topo.sbs_per_msb(n);
        self
    }

    /// RPPs per SB.
    pub fn rpps_per_sb(mut self, n: usize) -> Self {
        self.topo = self.topo.rpps_per_sb(n);
        self
    }

    /// Racks per RPP.
    pub fn racks_per_rpp(mut self, n: usize) -> Self {
        self.topo = self.topo.racks_per_rpp(n);
        self
    }

    /// Servers per rack.
    pub fn servers_per_rack(mut self, n: usize) -> Self {
        self.topo = self.topo.servers_per_rack(n);
        self
    }

    /// Overrides the RPP (leaf breaker) rating, e.g. the 127.5 kW PDU
    /// breaker of Figure 11.
    pub fn rpp_rating(mut self, rating: Power) -> Self {
        self.topo = self.topo.rpp_rating(rating);
        self
    }

    /// Overrides the SB rating.
    pub fn sb_rating(mut self, rating: Power) -> Self {
        self.topo = self.topo.sb_rating(rating);
        self
    }

    /// Overrides the MSB rating.
    pub fn msb_rating(mut self, rating: Power) -> Self {
        self.topo = self.topo.msb_rating(rating);
        self
    }

    /// Sets the service assignment plan.
    pub fn service_plan(mut self, plan: ServicePlan) -> Self {
        self.plan = plan;
        self
    }

    /// Shorthand: every server runs `kind`.
    pub fn uniform_service(self, kind: ServiceKind) -> Self {
        self.service_plan(ServicePlan::Uniform(kind))
    }

    /// Sets the traffic pattern for one service.
    pub fn traffic(mut self, kind: ServiceKind, pattern: TrafficPattern) -> Self {
        self.traffic.push((kind, pattern));
        self
    }

    /// Enables Turbo Boost on all servers of a service (§IV-B).
    pub fn turbo(mut self, kind: ServiceKind) -> Self {
        self.turbo_services.insert(kind);
        self
    }

    /// Applies the static frequency-limit baseline to a service
    /// (§IV-D's pre-Dynamo search cluster).
    pub fn static_util_cap(mut self, kind: ServiceKind, cap: f64) -> Self {
        self.static_caps.push((kind, cap));
        self
    }

    /// Server hardware generation for the whole fleet.
    pub fn generation(mut self, generation: ServerGeneration) -> Self {
        self.generation = generation;
        self
    }

    /// Fraction of servers without power sensors (they use the
    /// estimation model).
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn sensorless_fraction(mut self, frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&frac),
            "invalid sensorless fraction {frac}"
        );
        self.sensorless_fraction = frac;
        self
    }

    /// Calibration bias applied to sensorless servers' estimation
    /// models (fraction; negative reads low). Exercises the §VI
    /// breaker-validation path.
    pub fn estimation_bias(mut self, bias: f64) -> Self {
        self.estimation_bias = bias;
        self
    }

    /// Agent crash injection rate (per server-hour).
    pub fn agent_crash_rate(mut self, per_hour: f64) -> Self {
        self.crash_rate_per_hour = per_hour;
        self
    }

    /// Root RNG seed — same seed, same run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Simulation tick (default 1 s).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn tick(mut self, tick: SimDuration) -> Self {
        assert!(!tick.is_zero(), "tick must be positive");
        self.tick = tick;
        self
    }

    /// Worker threads for fleet physics and leaf control cycles
    /// (default 1; the simulation is bit-identical at any thread
    /// count).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn worker_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        self.worker_threads = threads;
        self
    }

    /// Parallel dispatch strategy for both hot fan-outs (default
    /// [`ParallelMode::Pooled`]: a persistent worker pool of exactly
    /// [`DatacenterBuilder::worker_threads`] threads). Use
    /// [`ParallelMode::PooledAuto`] to clamp at the host's cores, or
    /// [`ParallelMode::Scoped`] for the legacy per-call threads.
    pub fn parallel_mode(mut self, mode: ParallelMode) -> Self {
        self.parallel = mode;
        self
    }

    /// Enables the per-phase tick profiler (default off): each
    /// [`Datacenter::step`] records its phase wall times into the
    /// `dynamo_tick_phase_seconds_*` histogram family. Wall clocks are
    /// non-deterministic; leave this off when comparing output across
    /// runs. See [`Datacenter::set_profile_ticks`].
    pub fn profile_ticks(mut self, enabled: bool) -> Self {
        self.profile = enabled;
        self
    }

    /// Enables or disables hot-loop fusion (default on): the
    /// tile-at-a-time settle pass, the fused per-leaf control dispatch
    /// and the memoized total-power fold. Both settings compute
    /// bit-identical simulations — this is the `--no-fuse` escape
    /// hatch for bisecting a perf regression to fusion vs. layout, and
    /// like the profiler it is run-control only (excluded from the
    /// checkpoint envelope). See [`Datacenter::set_fuse`].
    pub fn fuse(mut self, on: bool) -> Self {
        self.fuse = on;
        self
    }

    /// Demand redraw period in ticks (default 1 = redraw every tick,
    /// bit-identical to the always-redraw model). Larger periods hold
    /// each leaf's demand between leaf-phased redraws — an opt-in model
    /// coarsening that lets fully settled leaves skip physics outright
    /// (see [`crate::Fleet::set_demand_hold`]), the lever behind the
    /// full-site steady-state throughput rows.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn demand_hold(mut self, ticks: u32) -> Self {
        assert!(ticks >= 1, "demand hold must be >= 1 tick");
        self.demand_hold = ticks;
        self
    }

    /// Disables capping: Dynamo monitors but never acts (the no-Dynamo
    /// baseline).
    pub fn capping_enabled(mut self, enabled: bool) -> Self {
        self.system.capping_enabled = enabled;
        self
    }

    /// Controller↔agent link profile.
    pub fn rpc_profile(mut self, profile: LinkProfile) -> Self {
        self.system.rpc = profile;
        self
    }

    /// Dry-run mode: controllers decide and log but never actuate
    /// (§VI's production end-to-end testing aid).
    pub fn dry_run(mut self, enabled: bool) -> Self {
        self.system.dry_run = enabled;
        self
    }

    /// Constant non-server draw (top-of-rack switches etc.) charged to
    /// every leaf device (§III-C1): monitored and budgeted, not capped.
    pub fn leaf_overhead(mut self, overhead: Power) -> Self {
        self.system.leaf_overhead = overhead;
        self
    }

    /// Staggers controller cycle phases evenly across `spread`:
    /// controller `i` of an `n`-instance tier starts its cycles at
    /// `spread · i / n`. Zero spread (the default) is the lockstep
    /// mode, bit-identical to the legacy global-schedule control
    /// plane; a spread of one leaf interval spaces the leaf cycles
    /// maximally, like the unsynchronized daemons of the deployed
    /// system (§IV). Per-leaf cadence is unaffected — only the phase
    /// moves.
    pub fn phase_spread(mut self, spread: SimDuration) -> Self {
        self.system.phase = if spread.is_zero() {
            crate::PhasePolicy::Lockstep
        } else {
            crate::PhasePolicy::EvenSpread(spread)
        };
        self
    }

    /// Draws each controller's cycle phase uniformly from
    /// `[0, spread)` out of the deterministic system RNG — same seed,
    /// same phases. Zero spread falls back to lockstep and consumes no
    /// randomness.
    pub fn phase_jitter(mut self, spread: SimDuration) -> Self {
        self.system.phase = if spread.is_zero() {
            crate::PhasePolicy::Lockstep
        } else {
            crate::PhasePolicy::Jittered(spread)
        };
        self
    }

    /// Replaces the whole control-plane configuration.
    pub fn system_config(mut self, config: SystemConfig) -> Self {
        self.system = config;
        self
    }

    /// Configures the observability subsystem ([`dynobs`]): metrics
    /// registry, cycle tracing, flight recorder and incident dumps.
    /// Disabled by default; `ObsConfig::on()` enables everything with
    /// default capacities.
    pub fn observability(mut self, config: dynobs::ObsConfig) -> Self {
        self.system.obs = config;
        self
    }

    /// Hierarchy levels to record power traces for.
    pub fn watch_levels(mut self, levels: Vec<DeviceLevel>) -> Self {
        self.telemetry.levels = levels;
        self
    }

    /// Deploys the grid-interactive layer: the utility-signal scenario,
    /// a site economic controller pushing contractual limits onto the
    /// MSB controllers on its own slow cycle, and per-leaf DCUPS banks
    /// riding short curtailments. See [`crate::GridConfig`].
    pub fn grid(mut self, config: GridConfig) -> Self {
        self.grid = Some(config);
        self
    }

    /// Shorthand: deploys the grid layer with a named preset scenario
    /// from [`dyngrid::GridScenario::preset`] and default economics.
    ///
    /// # Panics
    ///
    /// Panics on an unknown preset name.
    pub fn grid_scenario(self, name: &str) -> Self {
        let scenario = dyngrid::GridScenario::preset(name)
            .unwrap_or_else(|| panic!("unknown grid scenario preset {name:?}"));
        self.grid(GridConfig::for_scenario(scenario))
    }

    /// Builds the datacenter.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (explicit plan length
    /// mismatch, empty mix, non-positive weights).
    pub fn build(self) -> Datacenter {
        let topo = self.topo.build();
        let n = topo.server_count();
        let mut rng = SimRng::seed_from(self.seed);

        let services = assign_services(&topo, &self.plan, &mut rng.split("service-plan"));
        assert_eq!(services.len(), n);

        let mut sensor_rng = rng.split("sensors");
        let configs: Vec<ServerConfig> = services
            .iter()
            .map(|kind| {
                let mut c = ServerConfig::new(self.generation);
                if sensor_rng.chance(self.sensorless_fraction) {
                    c = c.without_sensor().with_estimator_bias(self.estimation_bias);
                }
                if self.turbo_services.contains(kind) {
                    c = c.with_turbo();
                }
                c
            })
            .collect();

        let mut fleet = Fleet::new(configs, services.clone(), rng.split("fleet"));
        for (kind, pattern) in self.traffic {
            fleet.set_traffic(kind, pattern);
        }
        for (kind, cap) in self.static_caps {
            fleet.set_static_util_cap(kind, Some(cap));
        }
        fleet.set_crash_rate(self.crash_rate_per_hour);
        fleet.set_demand_hold(self.demand_hold);

        let service_of = move |sid: u32| crate::service_class_of(services[sid as usize]);
        let system = DynamoSystem::build(&topo, &service_of, self.system, &mut rng.split("system"));

        let watched: Vec<_> = self
            .telemetry
            .levels
            .iter()
            .flat_map(|&lvl| topo.devices_at(lvl))
            .collect();
        let telemetry = Telemetry::new(self.telemetry);
        let validator = BreakerValidator::new(topo.device_count(), rng.split("breaker-validation"));

        let grid = self.grid.map(|config| {
            GridLayer::build(config, &topo, system.leaf_devices(), system.upper_devices())
        });

        let mut dc = Datacenter::assemble(
            topo, fleet, system, telemetry, watched, self.tick, validator, grid,
        );
        dc.set_parallel_mode(self.parallel);
        dc.set_worker_threads(self.worker_threads);
        dc.set_profile_ticks(self.profile);
        dc.set_fuse(self.fuse);
        dc
    }
}

/// Resolves a [`ServicePlan`] into one service per server.
fn assign_services(topo: &Topology, plan: &ServicePlan, rng: &mut SimRng) -> Vec<ServiceKind> {
    let n = topo.server_count();
    match plan {
        ServicePlan::Uniform(kind) => vec![*kind; n],
        ServicePlan::Explicit(list) => {
            assert_eq!(
                list.len(),
                n,
                "explicit plan covers {} of {n} servers",
                list.len()
            );
            list.clone()
        }
        ServicePlan::Mix(weights) => {
            assert!(!weights.is_empty(), "mix plan needs at least one service");
            let total: f64 = weights.iter().map(|&(_, w)| w).sum();
            assert!(total > 0.0, "mix weights must sum to a positive value");
            (0..n)
                .map(|_| {
                    let mut x = rng.uniform(0.0, total);
                    for &(kind, w) in weights {
                        if x < w {
                            return kind;
                        }
                        x -= w;
                    }
                    weights.last().expect("non-empty").0
                })
                .collect()
        }
        ServicePlan::RowComposition(blocks) => {
            assert!(
                !blocks.is_empty(),
                "row composition needs at least one block"
            );
            assert!(
                blocks.iter().all(|&(_, c)| c > 0),
                "row composition blocks need positive counts"
            );
            let mut services = vec![ServiceKind::Web; n];
            for rpp in topo.devices_at(DeviceLevel::Rpp) {
                let row = topo.servers_under(rpp);
                let mut block_iter = blocks
                    .iter()
                    .flat_map(|&(kind, count)| std::iter::repeat_n(kind, count))
                    .cycle();
                for sid in row {
                    services[sid as usize] = block_iter.next().expect("cycled iterator never ends");
                }
            }
            services
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DatacenterBuilder {
        DatacenterBuilder::new()
            .sbs_per_msb(1)
            .rpps_per_sb(1)
            .racks_per_rpp(2)
            .servers_per_rack(5)
    }

    #[test]
    fn uniform_plan_assigns_everywhere() {
        let dc = tiny().uniform_service(ServiceKind::Cache).seed(1).build();
        assert!(dc
            .fleet()
            .iter_services()
            .all(|(_, k)| k == ServiceKind::Cache));
    }

    #[test]
    fn row_composition_fills_rows_in_order() {
        let dc = tiny()
            .service_plan(ServicePlan::RowComposition(vec![
                (ServiceKind::Web, 6),
                (ServiceKind::Cache, 4),
            ]))
            .seed(1)
            .build();
        let kinds: Vec<ServiceKind> = dc.fleet().iter_services().map(|(_, k)| k).collect();
        assert_eq!(kinds.iter().filter(|&&k| k == ServiceKind::Web).count(), 6);
        assert_eq!(
            kinds.iter().filter(|&&k| k == ServiceKind::Cache).count(),
            4
        );
        assert!(kinds[..6].iter().all(|&k| k == ServiceKind::Web));
    }

    #[test]
    fn mix_plan_is_roughly_proportional() {
        let dc = DatacenterBuilder::new()
            .sbs_per_msb(2)
            .rpps_per_sb(2)
            .racks_per_rpp(4)
            .servers_per_rack(25)
            .service_plan(ServicePlan::Mix(vec![
                (ServiceKind::Web, 0.75),
                (ServiceKind::Hadoop, 0.25),
            ]))
            .seed(5)
            .build();
        let n = dc.fleet().len() as f64;
        let web = dc
            .fleet()
            .iter_services()
            .filter(|&(_, k)| k == ServiceKind::Web)
            .count() as f64;
        assert!((web / n - 0.75).abs() < 0.08, "web fraction {}", web / n);
    }

    #[test]
    fn explicit_plan_round_trips() {
        let kinds: Vec<ServiceKind> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    ServiceKind::Web
                } else {
                    ServiceKind::Database
                }
            })
            .collect();
        let dc = tiny()
            .service_plan(ServicePlan::Explicit(kinds.clone()))
            .seed(1)
            .build();
        let got: Vec<ServiceKind> = dc.fleet().iter_services().map(|(_, k)| k).collect();
        assert_eq!(got, kinds);
    }

    #[test]
    #[should_panic(expected = "explicit plan covers")]
    fn explicit_plan_length_mismatch_panics() {
        tiny()
            .service_plan(ServicePlan::Explicit(vec![ServiceKind::Web; 3]))
            .build();
    }

    #[test]
    fn same_seed_same_datacenter() {
        let run = |seed| {
            let mut dc = tiny().uniform_service(ServiceKind::Web).seed(seed).build();
            dc.run_for(SimDuration::from_secs(30));
            dc.device_power(dc.topology().root()).as_watts()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn turbo_raises_fleet_power() {
        let base = {
            let mut dc = tiny().uniform_service(ServiceKind::Hadoop).seed(9).build();
            dc.run_for(SimDuration::from_secs(30));
            dc.fleet().stats().total_power
        };
        let turbo = {
            let mut dc = tiny()
                .uniform_service(ServiceKind::Hadoop)
                .turbo(ServiceKind::Hadoop)
                .seed(9)
                .build();
            dc.run_for(SimDuration::from_secs(30));
            dc.fleet().stats().total_power
        };
        assert!(turbo > base * 1.05, "turbo {turbo} vs base {base}");
    }

    #[test]
    fn sensorless_fraction_applies() {
        let dc = DatacenterBuilder::new()
            .sbs_per_msb(1)
            .rpps_per_sb(1)
            .racks_per_rpp(4)
            .servers_per_rack(25)
            .sensorless_fraction(0.5)
            .seed(2)
            .build();
        let sensorless = (0..dc.fleet().len() as u32)
            .filter(|&s| !dc.fleet().agent(s).server().config().has_sensor)
            .count();
        let frac = sensorless as f64 / dc.fleet().len() as f64;
        assert!((frac - 0.5).abs() < 0.15, "sensorless fraction {frac}");
    }
}
