//! The end-to-end datacenter simulation.

use std::ops::Range;
use std::sync::Arc;

use dcsim::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use dcsim::{SimDuration, SimTime};
use dynpool::{WorkerPool, MAX_WORKERS};
use powerinfra::{Breaker, BreakerStatus, DeviceId, DeviceLevel, Power, Topology};
use workloads::ServiceKind;

use crate::control_plane::{DynamoSystem, SystemState};
use crate::fleet::{Fleet, FleetState};
use crate::grid::{GridLayer, GridLayerState};
use crate::obs::TickPhase;
use crate::telemetry::{BreakerEvent, Telemetry, TelemetryState};
use crate::validator::{BreakerValidator, ValidatorState};

/// How the datacenter parallelizes its two hot fan-outs — fleet physics
/// ([`Fleet::step_parallel`]) and same-instant leaf control dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelMode {
    /// Persistent worker pool with exactly the requested thread count
    /// (the default). Workers are created once, parked between
    /// dispatches, and woken through atomic-flag mailboxes.
    #[default]
    Pooled,
    /// Persistent worker pool clamped to the host's available
    /// parallelism: requesting more threads than cores oversubscribes
    /// the host and slows the run down, so the extra workers are simply
    /// not created. The simulation stays bit-identical — only wall
    /// clock changes.
    PooledAuto,
    /// Legacy dispatch: scoped threads spawned per call, no persistent
    /// pool. Kept as the baseline the pool is benchmarked against.
    Scoped,
}

/// A running datacenter: topology + fleet + control plane + telemetry,
/// advanced by a fixed simulation tick.
///
/// Construct one with [`crate::DatacenterBuilder`]. Each [`Datacenter::step`]:
///
/// 1. advances workloads and server physics by one tick,
/// 2. aggregates subtree power and steps every breaker's thermal model
///    (a trip blacks out the subtree until [`Datacenter::reset_breaker`]),
/// 3. runs any controller cycles due (3 s leaves, 9 s uppers),
/// 4. records telemetry samples on the 3 s grid.
pub struct Datacenter {
    topo: Topology,
    fleet: Fleet,
    system: DynamoSystem,
    telemetry: Telemetry,
    now: SimTime,
    tick: SimDuration,
    /// Servers fed by each device, cached by device index.
    subtree: Vec<Vec<u32>>,
    /// Device ids in index order.
    device_ids: Vec<DeviceId>,
    /// Devices with telemetry traces.
    watched: Vec<DeviceId>,
    /// Last observed breaker status per device index.
    breaker_status: Vec<BreakerStatus>,
    /// Cross-validation of controller aggregates against coarse breaker
    /// readings (§VI).
    validator: BreakerValidator,
    /// Requested worker threads for fleet physics and leaf dispatch
    /// (1 = serial).
    worker_threads: usize,
    /// Parallel dispatch strategy.
    parallel_mode: ParallelMode,
    /// Threads actually used after applying the mode's clamping.
    effective_threads: usize,
    /// The shared persistent worker pool (pooled modes, threads > 1).
    pool: Option<Arc<WorkerPool>>,
    /// Contiguous server-id range per device, when its subtree is one —
    /// always true for grid topologies — so subtree power aggregation
    /// is a flat slice scan instead of an id-list walk.
    subtree_range: Vec<Option<Range<usize>>>,
    /// Reused buffer for per-sample watched-device readings.
    watched_scratch: Vec<(DeviceId, Power)>,
    /// Validator alerts already forwarded to observability.
    alerts_seen: usize,
    /// Epoch-keyed cache of per-device subtree draws (see [`DrawCache`]).
    draw_cache: DrawCache,
    /// Grid-interactive layer (utility signals, economic contracts,
    /// DCUPS buffering), when the builder configured one.
    grid: Option<GridLayer>,
    /// Record per-phase tick wall time into the observability
    /// registry's `dynamo_tick_phase_seconds_*` family. Off by
    /// default: wall clocks are non-deterministic, so determinism
    /// tests never enable it.
    profile_ticks: bool,
    /// Telemetry samples recorded since the last forced full refresh
    /// of the fleet's memoized total-power fold. Run-control state
    /// like `profile_ticks` (the refresh recomputes a value the memo
    /// already holds bit-identically, so a reset-on-resume counter
    /// changes nothing observable) — deliberately not snapshotted.
    samples_since_refresh: u32,
}

/// Telemetry samples between forced full recomputations of the
/// memoized total-power fold: keyed to the sampling cadence (one
/// refresh per minute of simulated time at the 3 s grid), so a drift
/// bug could never ride the memo for more than a cadence period.
const TELEMETRY_REFRESH_SAMPLES: u32 = 20;

/// Epoch-keyed cache of per-device subtree power sums.
///
/// The breaker pass folds the subtree draw of *every* device *every*
/// tick — `servers × tree-depth` additions that would dominate the
/// full-site hot loop once active-set physics stops touching the
/// settled majority. The fleet versions each leaf with a monotone
/// epoch that is bumped whenever the leaf's drawn power may have
/// changed bits; a device's cached sum therefore stays exact while the
/// *sum* of the epochs over its covering leaves equals the watermark
/// recorded when the sum was folded. The sum — not the max — is the
/// key because leaf epochs advance independently: a lagging leaf can
/// change without moving the covering max, but every bump raises the
/// sum, so any covering-leaf change is witnessed. (Overflow would need
/// 2⁶⁴ total bumps; unreachable.) The cached value *is* the stored
/// result of the same fold over the same bits, so serving it is
/// bit-identical to re-folding.
///
/// Bypassed entirely while the fleet's power cache is dirty
/// (out-of-band mutation), while the fleet's span generation differs
/// from the one this cache was built against (a mid-run
/// [`Fleet::set_leaf_spans`] resets leaf epochs and invalidates the
/// covering-range geometry wholesale), and for devices whose subtree
/// is not one contiguous id range.
struct DrawCache {
    /// Per-device covering leaf-index range into the fleet's leaf
    /// spans (`None` = this device cannot be cached). Devices below
    /// leaf level (racks) cover a sub-range of one leaf; any change
    /// inside that leaf bumps its epoch, so the watermark still
    /// invalidates conservatively.
    leaf_range: Vec<Option<Range<usize>>>,
    /// Whether the covering leaf range *exactly* tiles the device's
    /// server range (true for every device at leaf level and above on
    /// grid topologies). A refold for such a device sums the fleet's
    /// per-leaf power partials — O(leaves) instead of O(servers). At
    /// leaf level this is the very same ascending fold; above it the
    /// fold associates per leaf instead of flat, which is equally
    /// deterministic (the partials are maintained in a fixed order) but
    /// not bit-identical to the pre-0.6 flat scan (an ulp-level,
    /// documented behavior change — see CHANGELOG 0.6.0). The fallback
    /// fold uses the same per-leaf association for tiled devices, so a
    /// device's draw never flips association within a run; the
    /// leaf-level validator comparison is unaffected either way.
    tiled: Vec<bool>,
    /// Cached subtree draw in watts.
    draw_w: Vec<f64>,
    /// Sum of covering-leaf epochs at fold time (`u64::MAX` = never
    /// folded; epochs start at 0 so no real sum collides with it
    /// before the first fold).
    watermark: Vec<u64>,
    /// [`Fleet::leaf_span_generation`] when this cache's geometry
    /// (`leaf_range`, `tiled`) was derived. A mismatch disables the
    /// cache: re-registered spans reset leaf epochs and re-index
    /// leaves, so both the watermarks and the covering ranges are
    /// meaningless against the new spans.
    generation: u64,
    /// Fixed fold order for the parallel breaker pass: device indices
    /// laid out level-by-level bottom-up (racks, then RPPs, then SBs,
    /// then MSBs), ascending within each level — the level-order SoA
    /// view of the tree. Each device's fold reads only fleet arrays
    /// (never another device's draw), so positions are independent and
    /// [`Datacenter::precompute_draws_parallel`] chunks them across
    /// workers; the order is fixed so chunk boundaries, and therefore
    /// which worker computes what, never affect the result. Empty when
    /// the topology has a device outside the four grid levels, which
    /// disables the parallel pass rather than stepping a breaker
    /// against a stale draw.
    fold_order: Vec<u32>,
    /// Per-fold-position refold cost estimate (covering leaves for
    /// tiled devices, subtree servers otherwise) used to balance the
    /// chunks.
    weight: Vec<u64>,
    /// Per-fold-position worker output: the draw in watts…
    scratch_draw: Vec<f64>,
    /// …and the covering-epoch watermark it is exact for (`u64::MAX`
    /// for uncacheable devices).
    scratch_mark: Vec<u64>,
    /// Cached chunk ends (exclusive, into `fold_order`) so the
    /// steady-state dispatch allocates nothing.
    chunk_ends: Vec<usize>,
    /// Worker count `chunk_ends` was balanced for (0 = never).
    chunks_for: usize,
}

/// Subtree power of device `i` through the epoch cache; falls back to
/// the direct fold (and does not populate the cache) while the fleet's
/// power cache is dirty or the device is uncacheable. A free function
/// over split field borrows so callers can hold `&mut` topology state.
fn cached_subtree_power(
    cache: &mut DrawCache,
    fleet: &Fleet,
    subtree_range: &[Option<Range<usize>>],
    subtree: &[Vec<u32>],
    i: usize,
) -> Power {
    if fleet.leaf_span_generation() != cache.generation {
        // Spans were re-registered after this cache's geometry was
        // derived: covering ranges and watermarks are both stale.
        return match &subtree_range[i] {
            Some(range) => fleet.power_sum_range(range.clone()),
            None => fleet.power_sum(&subtree[i]),
        };
    }
    if !fleet.power_cache_dirty() {
        if let Some(Some(lr)) = cache.leaf_range.get(i) {
            let epochs = fleet.leaf_epochs();
            if lr.end <= epochs.len() {
                // Keyed on the SUM of covering epochs: each epoch is
                // monotone, so any leaf bump raises the sum even when
                // it does not move the covering max (a lagging leaf
                // catching up must still invalidate).
                let mark = epochs[lr.clone()].iter().sum::<u64>();
                if cache.watermark[i] == mark {
                    return Power::from_watts(cache.draw_w[i]);
                }
                let p = fold_subtree(
                    &cache.tiled,
                    &cache.leaf_range,
                    fleet,
                    subtree_range,
                    subtree,
                    i,
                );
                cache.draw_w[i] = p.as_watts();
                cache.watermark[i] = mark;
                return p;
            }
        }
    }
    fold_subtree(
        &cache.tiled,
        &cache.leaf_range,
        fleet,
        subtree_range,
        subtree,
        i,
    )
}

/// The uncached subtree fold for device `i`, with one fixed
/// association per device: tiled devices (leaf level and above) fold
/// per covering leaf and then sum the partials, everything else folds
/// flat. The cached path stores exactly these results, and the fleet's
/// maintained partials are the same per-leaf ascending folds, so a
/// device's draw is bit-stable across cache hits, refolds, and
/// dirty-window fallbacks within a run. Only meaningful while the
/// cache's span generation matches the fleet's. Takes the cache's
/// geometry as plain slices so the parallel precompute can call it
/// from workers while the owner holds `&mut` scratch.
fn fold_subtree(
    tiled: &[bool],
    leaf_range: &[Option<Range<usize>>],
    fleet: &Fleet,
    subtree_range: &[Option<Range<usize>>],
    subtree: &[Vec<u32>],
    i: usize,
) -> Power {
    if tiled[i] {
        let lr = leaf_range[i]
            .clone()
            .expect("tiled devices have covering leaves");
        if let Some(parts) = fleet.leaf_power_partials() {
            return Power::from_watts(parts[lr].iter().sum());
        }
        // Dirty window: the maintained partials are untrustworthy, so
        // refold each covering leaf from live reads — same association.
        let spans = fleet.leaf_spans();
        return Power::from_watts(
            spans[lr]
                .iter()
                .map(|s| fleet.power_sum_range(s.clone()).as_watts())
                .sum(),
        );
    }
    match &subtree_range[i] {
        Some(range) => fleet.power_sum_range(range.clone()),
        None => fleet.power_sum(&subtree[i]),
    }
}

impl Datacenter {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        topo: Topology,
        fleet: Fleet,
        system: DynamoSystem,
        telemetry: Telemetry,
        watched: Vec<DeviceId>,
        tick: SimDuration,
        validator: BreakerValidator,
        grid: Option<GridLayer>,
    ) -> Self {
        let subtree: Vec<Vec<u32>> = topo.iter().map(|d| topo.servers_under(d.id)).collect();
        let subtree_range: Vec<Option<Range<usize>>> =
            subtree.iter().map(|ids| contiguous_range(ids)).collect();
        let device_ids: Vec<DeviceId> = topo.iter().map(|d| d.id).collect();
        let breaker_status = vec![BreakerStatus::Nominal; topo.device_count()];
        let mut fleet = fleet;
        if let Some(spans) = system.leaf_spans() {
            // Let the fleet maintain per-leaf power partials, so leaf
            // aggregate pulls are single lookups.
            fleet.set_leaf_spans(spans);
        }
        let n_dev = topo.device_count();
        let leaf_range = match system.leaf_spans() {
            Some(spans) => subtree_range
                .iter()
                .map(|r: &Option<Range<usize>>| {
                    r.as_ref().map(|r| {
                        let l0 = spans.partition_point(|s| s.end <= r.start);
                        let l1 = spans.partition_point(|s| s.start < r.end);
                        l0..l1
                    })
                })
                .collect(),
            None => vec![None; n_dev],
        };
        let tiled = match system.leaf_spans() {
            Some(spans) => leaf_range
                .iter()
                .zip(&subtree_range)
                .map(|(lr, sr)| match (lr, sr) {
                    (Some(lr), Some(sr)) if lr.start < lr.end => {
                        spans[lr.start].start == sr.start && spans[lr.end - 1].end == sr.end
                    }
                    _ => false,
                })
                .collect(),
            None => vec![false; n_dev],
        };
        // Level-order fold layout for the parallel breaker pass:
        // bottom-up so a chunk boundary can only ever split within a
        // level, never interleave levels.
        let mut fold_order: Vec<u32> = Vec::with_capacity(n_dev);
        for level in [
            DeviceLevel::Rack,
            DeviceLevel::Rpp,
            DeviceLevel::Sb,
            DeviceLevel::Msb,
        ] {
            fold_order.extend(topo.devices_at(level).iter().map(|d| d.index() as u32));
        }
        if fold_order.len() != n_dev {
            // A device outside the four grid levels: no level-order
            // view, so the parallel pass stays disabled.
            fold_order.clear();
        }
        let weight: Vec<u64> = fold_order
            .iter()
            .map(|&idx| {
                let i = idx as usize;
                match (&leaf_range[i], tiled[i]) {
                    (Some(lr), true) => (lr.end - lr.start).max(1) as u64,
                    _ => subtree[i].len().max(1) as u64,
                }
            })
            .collect();
        let n_fold = fold_order.len();
        let draw_cache = DrawCache {
            leaf_range,
            tiled,
            draw_w: vec![0.0; n_dev],
            watermark: vec![u64::MAX; n_dev],
            // Captured after the set_leaf_spans call above: any later
            // re-registration bumps the fleet's generation and disables
            // this cache rather than risking stale-watermark collisions.
            generation: fleet.leaf_span_generation(),
            fold_order,
            weight,
            scratch_draw: vec![0.0; n_fold],
            scratch_mark: vec![u64::MAX; n_fold],
            chunk_ends: Vec::with_capacity(MAX_WORKERS),
            chunks_for: 0,
        };
        Datacenter {
            topo,
            fleet,
            system,
            telemetry,
            now: SimTime::ZERO,
            tick,
            subtree,
            device_ids,
            watched,
            breaker_status,
            validator,
            worker_threads: 1,
            parallel_mode: ParallelMode::default(),
            effective_threads: 1,
            pool: None,
            subtree_range,
            watched_scratch: Vec::new(),
            alerts_seen: 0,
            draw_cache,
            grid,
            profile_ticks: false,
            samples_since_refresh: 0,
        }
    }

    /// Enables or disables the per-phase tick profiler. Observations
    /// land in the `dynamo_tick_phase_seconds_*` histogram family
    /// (registered unconditionally; all-zero until enabled) and in
    /// [`crate::Observability::tick_phase_profile`]. Wall-clock values
    /// are inherently non-deterministic — leave this off (the default)
    /// when comparing reports or Prometheus output across runs.
    pub fn set_profile_ticks(&mut self, enabled: bool) {
        self.profile_ticks = enabled;
    }

    /// Enables or disables hot-loop fusion: the tile-at-a-time settle
    /// pass, the fused per-leaf control dispatch, and the memoized
    /// total-power fold. On by default; the `--no-fuse` escape hatch
    /// exists so a regression can be bisected to fusion vs. layout.
    /// Run-control only — both settings compute bit-identical
    /// simulations, so the flag stays out of the checkpoint envelope.
    pub fn set_fuse(&mut self, on: bool) {
        self.fleet.set_fuse(on);
    }

    /// Sets the number of worker threads used for fleet physics *and*
    /// leaf control cycles. The simulation is bit-identical at any
    /// thread count. Under the pooled modes (the default) this creates
    /// or resizes the persistent worker pool shared by both fan-outs.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn set_worker_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "need at least one worker thread");
        self.worker_threads = threads;
        self.apply_threads();
    }

    /// Sets the parallel dispatch strategy (default
    /// [`ParallelMode::Pooled`]) and re-applies the current thread
    /// count under it.
    pub fn set_parallel_mode(&mut self, mode: ParallelMode) {
        self.parallel_mode = mode;
        self.apply_threads();
    }

    /// The threads actually in use after the mode's clamping —
    /// [`ParallelMode::PooledAuto`] caps at the host's available
    /// parallelism, the pooled modes at the pool's maximum size.
    pub fn effective_worker_threads(&self) -> usize {
        self.effective_threads
    }

    /// Resolves `(worker_threads, parallel_mode)` into a pool and a
    /// dispatch width, tearing down or rebuilding the shared pool only
    /// when the effective size changes.
    fn apply_threads(&mut self) {
        let requested = self.worker_threads;
        let (pool_size, dispatch) = match self.parallel_mode {
            ParallelMode::Scoped => (0, requested),
            ParallelMode::Pooled => {
                let e = requested.min(MAX_WORKERS);
                (e, e)
            }
            ParallelMode::PooledAuto => {
                let cores = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                let e = requested.min(cores).min(MAX_WORKERS);
                (e, e)
            }
        };
        self.effective_threads = dispatch;
        self.system.set_control_threads(dispatch);
        if pool_size > 1 {
            if self.pool.as_ref().map(|p| p.workers()) != Some(pool_size) {
                self.pool = Some(Arc::new(WorkerPool::new(pool_size)));
            }
            let pool = self.pool.as_ref().expect("pool built above");
            self.fleet.attach_pool(Arc::clone(pool));
            self.system.attach_pool(Arc::clone(pool));
        } else {
            self.pool = None;
            self.fleet.detach_pool();
            self.system.detach_pool();
        }
    }

    /// True subtree power of device index `i`: a flat contiguous scan
    /// when the subtree is one server-id run (grid topologies), the
    /// id-list walk otherwise. Both are the same ascending fold, so the
    /// result is bit-identical either way.
    fn subtree_power(&self, i: usize) -> Power {
        match &self.subtree_range[i] {
            Some(range) => self.fleet.power_sum_range(range.clone()),
            None => self.fleet.power_sum(&self.subtree[i]),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The simulation tick.
    pub fn tick_interval(&self) -> SimDuration {
        self.tick
    }

    /// The power topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The server fleet.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Mutable fleet access (changing traffic patterns or failure rates
    /// mid-run).
    pub fn fleet_mut(&mut self) -> &mut Fleet {
        &mut self.fleet
    }

    /// The control plane.
    pub fn system(&self) -> &DynamoSystem {
        &self.system
    }

    /// Mutable control-plane access (failing primaries in experiments).
    pub fn system_mut(&mut self) -> &mut DynamoSystem {
        &mut self.system
    }

    /// The telemetry store.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The grid-interactive layer, when one was configured.
    pub fn grid(&self) -> Option<&GridLayer> {
        self.grid.as_ref()
    }

    /// True power currently flowing through `device` (sum of subtree
    /// servers).
    pub fn device_power(&self, device: DeviceId) -> Power {
        self.subtree_power(device.index())
    }

    /// True when every device's epoch-cached draw matches a fresh fold
    /// bit for bit. Serving a draw through the cache is allowed to
    /// populate it, so this needs `&mut self`; it never changes what
    /// any subsequent read returns.
    ///
    /// When a mid-run re-span has disabled the cache (generation
    /// mismatch), serving falls back to flat folds — the audit then
    /// compares against the same flat association, so the probe stays
    /// meaningful in every cache regime.
    pub fn draw_cache_is_exact(&mut self) -> bool {
        let bypassed = self.fleet.leaf_span_generation() != self.draw_cache.generation;
        for i in 0..self.subtree.len() {
            let served = cached_subtree_power(
                &mut self.draw_cache,
                &self.fleet,
                &self.subtree_range,
                &self.subtree,
                i,
            );
            let fresh = if bypassed {
                match &self.subtree_range[i] {
                    Some(range) => self.fleet.power_sum_range(range.clone()),
                    None => self.fleet.power_sum(&self.subtree[i]),
                }
            } else {
                fold_subtree(
                    &self.draw_cache.tiled,
                    &self.draw_cache.leaf_range,
                    &self.fleet,
                    &self.subtree_range,
                    &self.subtree,
                    i,
                )
            };
            if served.as_watts().to_bits() != fresh.as_watts().to_bits() {
                return false;
            }
        }
        true
    }

    /// Power through `device` attributable to one service (Figure 15's
    /// breakdown view).
    pub fn service_power(&self, device: DeviceId, kind: ServiceKind) -> Power {
        self.fleet
            .power_sum_of_service(&self.subtree[device.index()], kind)
    }

    /// Number of servers currently capped under `device`.
    pub fn capped_under(&self, device: DeviceId) -> usize {
        self.subtree[device.index()]
            .iter()
            .filter(|&&s| self.fleet.agent(s).current_cap().is_some())
            .count()
    }

    /// Mean performance factor of the servers under `device`.
    pub fn performance_under(&self, device: DeviceId) -> f64 {
        self.fleet.mean_performance(&self.subtree[device.index()])
    }

    /// Phase A of the parallel breaker pass: computes every device's
    /// subtree draw into the cache's level-order scratch arrays across
    /// the worker threads, then folds the results back into the cache
    /// serially in fold order. Each position's value is exactly what
    /// the serial pass would have produced for that device *before any
    /// breaker stepped this tick* — same watermark check, same
    /// per-device fold association — so the pass is bit-identical at
    /// any worker count and in either dispatch mode.
    ///
    /// Returns `false` (leaving the cache untouched) when the pass
    /// cannot run: serial width, a dirty fleet power cache, a stale
    /// span generation, or no level-order layout. The caller then
    /// steps breakers against live cached folds exactly as before.
    fn precompute_draws_parallel(&mut self) -> bool {
        let n = self.draw_cache.fold_order.len();
        let njobs = self.effective_threads.min(MAX_WORKERS).min(n);
        if njobs <= 1
            || n != self.device_ids.len()
            || self.fleet.power_cache_dirty()
            || self.fleet.leaf_span_generation() != self.draw_cache.generation
        {
            return false;
        }
        let DrawCache {
            leaf_range,
            tiled,
            draw_w,
            watermark,
            generation: _,
            fold_order,
            weight,
            scratch_draw,
            scratch_mark,
            chunk_ends,
            chunks_for,
        } = &mut self.draw_cache;

        if *chunks_for != njobs {
            // Re-balance the chunk boundaries by refold cost. Only on a
            // thread-count change; the steady state reuses them.
            chunk_ends.clear();
            let total: u64 = weight.iter().sum();
            let mut acc = 0u64;
            for (pos, &w) in weight.iter().enumerate() {
                acc += w;
                if chunk_ends.len() < njobs - 1
                    && acc * njobs as u64 >= (chunk_ends.len() as u64 + 1) * total
                {
                    chunk_ends.push(pos + 1);
                }
            }
            while chunk_ends.len() < njobs - 1 {
                chunk_ends.push(n);
            }
            chunk_ends.push(n);
            *chunks_for = njobs;
        }

        {
            // Shared immutable context for the workers; `&Fleet` is
            // `Sync` (owned data only), and the cache's draw/watermark
            // arrays are read-only here — workers write scratch.
            let fleet = &self.fleet;
            let epochs = fleet.leaf_epochs();
            let subtree_range = &self.subtree_range[..];
            let subtree = &self.subtree[..];
            let leaf_range = &leaf_range[..];
            let tiled = &tiled[..];
            let draw_w = &draw_w[..];
            let watermark = &watermark[..];
            let fold_order = &fold_order[..];

            // What the serial pass would compute for device `i` at this
            // instant: a cache hit when the covering-epoch sum still
            // matches, the fixed-association refold otherwise.
            let compute = |i: usize| -> (f64, u64) {
                if let Some(lr) = &leaf_range[i] {
                    if lr.end <= epochs.len() {
                        let mark = epochs[lr.clone()].iter().sum::<u64>();
                        if watermark[i] == mark {
                            return (draw_w[i], mark);
                        }
                        let p = fold_subtree(tiled, leaf_range, fleet, subtree_range, subtree, i);
                        return (p.as_watts(), mark);
                    }
                }
                let p = fold_subtree(tiled, leaf_range, fleet, subtree_range, subtree, i);
                (p.as_watts(), u64::MAX)
            };

            struct FoldJob<'a> {
                order: &'a [u32],
                draws: &'a mut [f64],
                marks: &'a mut [u64],
            }
            let run_chunk = |job: &mut FoldJob<'_>| {
                for (k, &idx) in job.order.iter().enumerate() {
                    let (d, m) = compute(idx as usize);
                    job.draws[k] = d;
                    job.marks[k] = m;
                }
            };

            // Carve the scratch arrays into per-chunk jobs (stack
            // slots, no allocation).
            let mut jobs: [Option<FoldJob>; MAX_WORKERS] = std::array::from_fn(|_| None);
            let mut order_rest = fold_order;
            let mut draw_rest = &mut scratch_draw[..];
            let mut mark_rest = &mut scratch_mark[..];
            let mut start = 0;
            for (j, &end) in chunk_ends.iter().enumerate() {
                let take = end - start;
                let (order, o_rest) = order_rest.split_at(take);
                let (draws, d_rest) = draw_rest.split_at_mut(take);
                let (marks, m_rest) = mark_rest.split_at_mut(take);
                order_rest = o_rest;
                draw_rest = d_rest;
                mark_rest = m_rest;
                jobs[j] = Some(FoldJob {
                    order,
                    draws,
                    marks,
                });
                start = end;
            }

            match &self.pool {
                Some(pool) => pool.run_on(&mut jobs[..njobs], |_w, slot| {
                    let job = slot.as_mut().expect("fold chunk slot filled above");
                    run_chunk(job);
                }),
                // Scoped mode: per-call scoped threads, same chunks.
                None => std::thread::scope(|scope| {
                    for slot in jobs[..njobs].iter_mut() {
                        let job = slot.as_mut().expect("fold chunk slot filled above");
                        scope.spawn(move || run_chunk(job));
                    }
                }),
            }
        }

        // Serial copy-back in fold order: after this, the cache holds
        // for every device exactly what the serial pass would have
        // stored while stepping it.
        for (pos, &idx) in fold_order.iter().enumerate() {
            let i = idx as usize;
            draw_w[i] = scratch_draw[pos];
            if scratch_mark[pos] != u64::MAX {
                watermark[i] = scratch_mark[pos];
            }
        }
        true
    }

    /// Advances the simulation by one tick.
    pub fn step(&mut self) {
        let now = self.now;
        let mut lap = Lap::new(self.profile_ticks);
        let mut phase_secs = [0.0f64; 7];

        // 1. Workloads and server physics.
        if self.effective_threads > 1 {
            self.fleet
                .step_parallel(now, self.tick, self.effective_threads);
        } else {
            self.fleet.step(now, self.tick);
        }
        // Fused configurations attribute the settle pass to its own
        // phase family so fused and unfused profiles are
        // distinguishable; the `fleet_step` family keeps emitting
        // (zero observations) either way.
        lap.mark(
            &mut phase_secs,
            if self.fleet.fuse() {
                TickPhase::FusedTile
            } else {
                TickPhase::FleetStep
            },
        );

        // 2. Breaker thermal models over true subtree power. Draws go
        // through the epoch cache: with active-set physics on, most
        // leaves' power is bit-unchanged most ticks, so most devices
        // serve their cached fold instead of re-summing the subtree.
        // With workers available, phase A precomputes every draw in
        // parallel; breakers then step serially against the
        // precomputed values, falling back to live folds from the
        // first trip on so later devices observe the blackout exactly
        // as the serial pass always has (the kill bumps the victims'
        // leaf epochs, so a stale precomputed draw is never served).
        let mut live_draws = !self.precompute_draws_parallel();
        for i in 0..self.device_ids.len() {
            let id = self.device_ids[i];
            let draw = if live_draws {
                cached_subtree_power(
                    &mut self.draw_cache,
                    &self.fleet,
                    &self.subtree_range,
                    &self.subtree,
                    i,
                )
            } else {
                Power::from_watts(self.draw_cache.draw_w[i])
            };
            let status = self.topo.device_mut(id).breaker.step(draw, self.tick);
            if status != self.breaker_status[i] {
                self.breaker_status[i] = status;
                self.telemetry.record_breaker_event(BreakerEvent {
                    at: now,
                    device: id,
                    status,
                });
                if status == BreakerStatus::Tripped {
                    self.system.observability_mut().record_breaker_trip(
                        now,
                        i as u32,
                        self.topo.device(id).name.as_str().into(),
                    );
                    // A tripped breaker blacks out everything below
                    // it. Routed through the fleet's alive hook so the
                    // cached power arrays stay exact mid-step.
                    for &s in &self.subtree[i] {
                        self.fleet.set_server_alive(s, false);
                    }
                    live_draws = true;
                }
            }
        }
        lap.mark(&mut phase_secs, TickPhase::BreakerFold);

        // 2b. Grid-interactive layer: read the utility signal, run any
        // economic cycle due (pushing contractual limits onto the MSB
        // controllers the next stage will act on), and ride the DCUPS
        // banks against the utility target. Site draw reuses the epoch
        // cache populated by the breaker pass above, so this is a few
        // cache hits per tick.
        if let Some(grid) = self.grid.as_mut() {
            let mut site_w = 0.0;
            for &(d, _) in grid.msbs() {
                site_w += cached_subtree_power(
                    &mut self.draw_cache,
                    &self.fleet,
                    &self.subtree_range,
                    &self.subtree,
                    d.index(),
                )
                .as_watts();
            }
            grid.step(
                now,
                self.tick,
                Power::from_watts(site_w),
                self.fleet.leaf_power_partials(),
                &mut self.system,
            );
        }
        lap.mark(&mut phase_secs, TickPhase::Grid);

        // 3. Controller cycles.
        let events = self.system.tick(now, &mut self.fleet);
        lap.mark(&mut phase_secs, TickPhase::LeafDispatch);
        self.telemetry.record_controller_events(events);
        lap.mark(&mut phase_secs, TickPhase::TelemetryMerge);

        // 4. Breaker-reading cross-validation (1-minute cadence, §VI):
        // compare each leaf controller's aggregate against the coarse
        // metered power at its breaker.
        if self.validator.due(now) {
            for dev in self.system.leaf_devices() {
                let dev = *dev;
                if let Some(aggregate) = self.system.leaf_aggregate(dev) {
                    let true_power = cached_subtree_power(
                        &mut self.draw_cache,
                        &self.fleet,
                        &self.subtree_range,
                        &self.subtree,
                        dev.index(),
                    );
                    self.validator.observe(now, dev, true_power, aggregate);
                }
            }
            self.validator.advance(now);
            let alerts = self.validator.alerts().len();
            if alerts > self.alerts_seen {
                let delta = (alerts - self.alerts_seen) as u64;
                self.alerts_seen = alerts;
                let obs = self.system.observability_mut();
                if obs.is_enabled() {
                    obs.record_validator_alerts(now, delta, &"breaker-validator".into());
                }
            }
        }
        lap.mark(&mut phase_secs, TickPhase::Validator);

        // 5. Telemetry sampling. The fleet's total power comes from a
        // quiescence-keyed memo when fusion is on; every
        // `TELEMETRY_REFRESH_SAMPLES`-th sample forces a full
        // recomputation (and, in debug builds, cross-checks the memo
        // against the flat fold), so the merged sample stream can
        // never ride a stale memo for more than a cadence period.
        if self.telemetry.sample_due(now) {
            self.samples_since_refresh += 1;
            if self.samples_since_refresh >= TELEMETRY_REFRESH_SAMPLES {
                self.samples_since_refresh = 0;
                self.fleet.refresh_total_power();
            }
            let mut watched = std::mem::take(&mut self.watched_scratch);
            watched.clear();
            for &d in &self.watched {
                let p = cached_subtree_power(
                    &mut self.draw_cache,
                    &self.fleet,
                    &self.subtree_range,
                    &self.subtree,
                    d.index(),
                );
                watched.push((d, p));
            }
            let stats = self.fleet.stats();
            let obs = self.system.observability_mut();
            if obs.is_enabled() {
                obs.set_gauges(now, stats.total_power.as_watts(), stats.capped_servers);
            }
            self.telemetry
                .record_sample(now, &watched, stats.capped_servers, stats.total_power);
            self.watched_scratch = watched;
        }
        lap.mark(&mut phase_secs, TickPhase::TelemetryMerge);

        if lap.enabled() {
            let obs = self.system.observability_mut();
            for (k, &secs) in phase_secs.iter().enumerate() {
                obs.observe_tick_phase(TICK_PHASE_ORDER[k], secs);
            }
        }

        // Best-effort incident-dump shipping: a write failure leaves
        // the dumps pending for the next step's retry.
        let _ = self.system.observability_mut().flush_incidents();

        self.now += self.tick;
    }

    /// Runs the simulation for a duration.
    pub fn run_for(&mut self, duration: SimDuration) {
        let steps = duration.as_millis() / self.tick.as_millis();
        for _ in 0..steps {
            self.step();
        }
    }

    /// Runs until the clock reaches `deadline` (no-op if already past).
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.now < deadline {
            self.step();
        }
    }

    /// The breaker-reading validator (§VI): correction factors and
    /// aggregation-mismatch alerts.
    pub fn validator(&self) -> &BreakerValidator {
        &self.validator
    }

    /// Captures the full dynamic state of the simulation as a
    /// versioned snapshot value. Call between steps (a tick boundary):
    /// the fleet's batch arrays must be authoritative and any pending
    /// incident dumps are flushed to disk first so a resumed run cannot
    /// drop or duplicate an incident file.
    ///
    /// Everything reconstructible from the builder configuration —
    /// topology geometry, power LUTs, worker pools, subtree caches —
    /// is *not* captured; [`Datacenter::restore`] expects a datacenter
    /// freshly built with the identical configuration.
    ///
    /// # Panics
    ///
    /// Panics if pending incident dumps cannot be written to disk.
    pub fn state(&mut self) -> DatacenterState {
        self.system
            .observability_mut()
            .flush_incidents()
            .expect("flush pending incident dumps before snapshotting");
        DatacenterState {
            now_ms: self.now.as_millis(),
            fleet: self.fleet.state(),
            system: self.system.state(),
            telemetry: self.telemetry.state(),
            breakers: self
                .device_ids
                .iter()
                .map(|&id| self.topo.device(id).breaker.clone())
                .collect(),
            breaker_status: self.breaker_status.clone(),
            validator: self.validator.state(),
            alerts_seen: self.alerts_seen as u64,
            grid: self.grid.as_ref().map(|g| g.state()),
        }
    }

    /// Restores the simulation from a snapshot taken by
    /// [`Datacenter::state`] against an identically-configured
    /// datacenter. After a successful restore the run continues
    /// bit-identically to the run that took the snapshot, at any worker
    /// thread count and in any [`ParallelMode`].
    ///
    /// # Errors
    ///
    /// Fails without touching wall-clock state if the snapshot
    /// disagrees with this datacenter's shape (different topology,
    /// server mix, controller count, or ring capacities).
    pub fn restore(&mut self, state: &DatacenterState) -> Result<(), SnapError> {
        if state.breakers.len() != self.device_ids.len()
            || state.breaker_status.len() != self.device_ids.len()
        {
            return Err(SnapError::Corrupt(format!(
                "snapshot covers {} devices, rebuilt topology has {}",
                state.breakers.len(),
                self.device_ids.len()
            )));
        }
        match (&mut self.grid, &state.grid) {
            (Some(_), None) | (None, Some(_)) => {
                return Err(SnapError::Corrupt(
                    "snapshot and rebuilt datacenter disagree on grid layer presence".into(),
                ))
            }
            _ => {}
        }
        self.fleet.restore(&state.fleet)?;
        self.system.restore(&state.system)?;
        self.telemetry.restore(&state.telemetry)?;
        for (i, &id) in self.device_ids.iter().enumerate() {
            self.topo.device_mut(id).breaker = state.breakers[i].clone();
        }
        self.breaker_status.clone_from(&state.breaker_status);
        self.validator.restore(&state.validator)?;
        if let (Some(grid), Some(gs)) = (&mut self.grid, &state.grid) {
            grid.restore(gs)?;
        }
        self.alerts_seen = state.alerts_seen as usize;
        self.now = SimTime::from_millis(state.now_ms);
        // The draw cache keys on leaf epochs that just changed under
        // it: force a refold of every device at the next read.
        for w in &mut self.draw_cache.watermark {
            *w = u64::MAX;
        }
        self.draw_cache.generation = self.fleet.leaf_span_generation();
        Ok(())
    }

    /// Operator action after an outage: resets `device`'s breaker and
    /// powers its subtree back on.
    ///
    /// # Panics
    ///
    /// Panics if `device` is not part of this topology.
    pub fn reset_breaker(&mut self, device: DeviceId) {
        self.topo.device_mut(device).breaker.reset();
        self.breaker_status[device.index()] = BreakerStatus::Nominal;
        for &s in &self.subtree[device.index()] {
            self.fleet.set_server_alive(s, true);
        }
    }
}

/// The full dynamic state of a [`Datacenter`], produced by
/// [`Datacenter::state`] and consumed by [`Datacenter::restore`].
///
/// The layers nest the way the simulation does: fleet physics, the
/// control plane (both tiers, schedules, failover, observability),
/// telemetry, per-device breaker thermal state, and the breaker
/// validator. Serialize with [`Snapshot::to_snap_bytes`].
pub struct DatacenterState {
    /// Simulated time at the tick boundary the snapshot was taken.
    pub now_ms: u64,
    pub(crate) fleet: FleetState,
    pub(crate) system: SystemState,
    pub(crate) telemetry: TelemetryState,
    pub(crate) breakers: Vec<Breaker>,
    pub(crate) breaker_status: Vec<BreakerStatus>,
    pub(crate) validator: ValidatorState,
    pub(crate) alerts_seen: u64,
    pub(crate) grid: Option<GridLayerState>,
}

impl Snapshot for DatacenterState {
    const KIND: &'static str = "dynamo.DatacenterState";
    // v2: appends the optional grid-interactive layer state.
    const VERSION: u32 = 2;

    fn encode_body(&self, w: &mut SnapWriter) {
        w.put_u64(self.now_ms);
        self.fleet.encode_body(w);
        self.system.encode_body(w);
        self.telemetry.encode_body(w);
        w.put_u64(self.breakers.len() as u64);
        for b in &self.breakers {
            b.encode_body(w);
        }
        w.put_u64(self.breaker_status.len() as u64);
        for &s in &self.breaker_status {
            w.put_u8(s.snap_code());
        }
        self.validator.encode_body(w);
        w.put_u64(self.alerts_seen);
        match &self.grid {
            Some(g) => {
                w.put_u8(1);
                g.encode_body(w);
            }
            None => w.put_u8(0),
        }
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let now_ms = r.get_u64()?;
        let fleet = FleetState::decode_body(r)?;
        let system = SystemState::decode_body(r)?;
        let telemetry = TelemetryState::decode_body(r)?;
        let nb = r.get_u64()? as usize;
        let mut breakers = Vec::with_capacity(nb.min(1 << 20));
        for _ in 0..nb {
            breakers.push(Breaker::decode_body(r)?);
        }
        let ns = r.get_u64()? as usize;
        let mut breaker_status = Vec::with_capacity(ns.min(1 << 20));
        for _ in 0..ns {
            breaker_status.push(BreakerStatus::from_snap_code(r.get_u8()?)?);
        }
        let validator = ValidatorState::decode_body(r)?;
        let alerts_seen = r.get_u64()?;
        let grid = match r.get_u8()? {
            0 => None,
            1 => Some(GridLayerState::decode_body(r)?),
            other => return Err(SnapError::Corrupt(format!("bad grid-layer tag {other}"))),
        };
        Ok(DatacenterState {
            now_ms,
            fleet,
            system,
            telemetry,
            breakers,
            breaker_status,
            validator,
            alerts_seen,
            grid,
        })
    }
}

/// All tick phases in accumulator-array order (`TickPhase as usize`),
/// used to flush the per-tick sums into the registry.
const TICK_PHASE_ORDER: [TickPhase; 7] = [
    TickPhase::FleetStep,
    TickPhase::BreakerFold,
    TickPhase::Grid,
    TickPhase::LeafDispatch,
    TickPhase::Validator,
    TickPhase::TelemetryMerge,
    TickPhase::FusedTile,
];

/// Phase stopwatch for the tick profiler: an inert no-op when
/// profiling is off, so the hot loop pays one branch per phase
/// boundary. `mark` accumulates rather than assigns, which lets the
/// split telemetry work (event merge after dispatch, sampling at the
/// end of the tick) land in one phase bucket with one observation per
/// tick.
struct Lap {
    at: Option<std::time::Instant>,
}

impl Lap {
    fn new(enabled: bool) -> Self {
        Lap {
            at: enabled.then(std::time::Instant::now),
        }
    }

    fn enabled(&self) -> bool {
        self.at.is_some()
    }

    fn mark(&mut self, acc: &mut [f64; 7], phase: TickPhase) {
        if let Some(prev) = self.at {
            let now = std::time::Instant::now();
            acc[phase as usize] += (now - prev).as_secs_f64();
            self.at = Some(now);
        }
    }
}

/// `Some(start..end)` when `ids` is the contiguous ascending run
/// `start..end`, else `None`.
fn contiguous_range(ids: &[u32]) -> Option<Range<usize>> {
    let first = *ids.first()? as usize;
    ids.iter()
        .enumerate()
        .all(|(k, &sid)| sid as usize == first + k)
        .then(|| first..first + ids.len())
}

impl std::fmt::Debug for Datacenter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Datacenter")
            .field("now", &self.now)
            .field("servers", &self.fleet.len())
            .field("devices", &self.topo.device_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatacenterBuilder, ServicePlan};
    use workloads::ServiceKind;

    /// 1 MSB / 2 SBs / 4 RPP leaves / 8 racks / 32 servers: every
    /// device class the cache distinguishes (multi-leaf tiled, exactly
    /// one leaf, sub-leaf rack).
    fn small_dc(seed: u64) -> Datacenter {
        DatacenterBuilder::new()
            .sbs_per_msb(2)
            .rpps_per_sb(2)
            .racks_per_rpp(2)
            .servers_per_rack(4)
            .service_plan(ServicePlan::Mix(vec![
                (ServiceKind::Web, 0.6),
                (ServiceKind::Cache, 0.4),
            ]))
            .seed(seed)
            .build()
    }

    /// Every device's served draw must equal a fresh fold of the same
    /// association, bitwise, regardless of which leaves changed since
    /// its watermark was recorded.
    fn assert_cache_exact(dc: &mut Datacenter) {
        for i in 0..dc.device_ids.len() {
            let fresh = fold_subtree(
                &dc.draw_cache.tiled,
                &dc.draw_cache.leaf_range,
                &dc.fleet,
                &dc.subtree_range,
                &dc.subtree,
                i,
            );
            let served = cached_subtree_power(
                &mut dc.draw_cache,
                &dc.fleet,
                &dc.subtree_range,
                &dc.subtree,
                i,
            );
            assert_eq!(
                served.as_watts().to_bits(),
                fresh.as_watts().to_bits(),
                "device {i} served a stale cached draw"
            );
        }
    }

    #[test]
    fn draw_cache_never_serves_stale_sums_across_mutations() {
        let mut dc = small_dc(17);
        for _ in 0..5 {
            dc.step();
        }
        assert_cache_exact(&mut dc);

        let spans: Vec<Range<usize>> = dc
            .system
            .leaf_spans()
            .expect("grid topologies register leaf spans")
            .to_vec();
        let lag = spans[0].start as u32;
        let lead = spans[1].start as u32;

        // Run leaf 1's epoch ahead of leaf 0's (kill + revive restores
        // the exact retained output, so only the epochs move), then
        // fold everything so watermarks record asymmetric epochs.
        for _ in 0..4 {
            dc.fleet.set_server_alive(lead, false);
            dc.fleet.set_server_alive(lead, true);
        }
        assert_cache_exact(&mut dc);

        // The regression: a change in the *lagging* leaf bumps its
        // epoch without moving the covering max, so a max-keyed
        // watermark would keep serving the pre-kill sums for the SB,
        // MSB and root above leaf 0. The sum key must refold.
        assert!(
            dc.fleet.power_of(lag).as_watts() > 0.0,
            "kill must change the subtree draw for the test to bite"
        );
        dc.fleet.set_server_alive(lag, false);
        assert_cache_exact(&mut dc);
        dc.fleet.set_server_alive(lag, true);
        assert_cache_exact(&mut dc);

        // Out-of-band mutation (a RAPL cap programmed directly) dirties
        // the fleet's power cache: draws must fall back to live folds
        // until a step resynchronizes, and stay exact after it.
        dc.fleet
            .agent_mut(lag)
            .server_mut()
            .rapl_mut()
            .set_limit(Power::from_watts(80.0));
        assert!(dc.fleet.power_cache_dirty());
        assert_cache_exact(&mut dc);
        dc.step();
        assert_cache_exact(&mut dc);

        // Breaker-style churn: kills and restarts in rotating leaves,
        // interleaved with full steps.
        for k in 0..6 {
            let sid = spans[k % spans.len()].start as u32;
            dc.fleet.set_server_alive(sid, k % 2 == 1);
            dc.step();
            assert_cache_exact(&mut dc);
        }
    }

    #[test]
    fn respanning_mid_run_disables_the_draw_cache() {
        let mut dc = small_dc(23);
        for _ in 0..3 {
            dc.step();
        }
        assert_cache_exact(&mut dc);

        // Re-register the same spans out of band: leaf epochs restart
        // at zero and could climb back into coincidence with a stale
        // watermark. The generation mismatch must bypass the cache so
        // every draw is a direct fold.
        let spans: Vec<Range<usize>> = dc.system.leaf_spans().unwrap().to_vec();
        dc.fleet.set_leaf_spans(&spans);
        for _ in 0..10 {
            dc.fleet.set_server_alive(0, false);
            dc.fleet.set_server_alive(0, true);
            for i in 0..dc.device_ids.len() {
                let served = cached_subtree_power(
                    &mut dc.draw_cache,
                    &dc.fleet,
                    &dc.subtree_range,
                    &dc.subtree,
                    i,
                );
                let direct = match &dc.subtree_range[i] {
                    Some(r) => dc.fleet.power_sum_range(r.clone()),
                    None => dc.fleet.power_sum(&dc.subtree[i]),
                };
                assert_eq!(
                    served.as_watts().to_bits(),
                    direct.as_watts().to_bits(),
                    "device {i} served a stale draw after a mid-run re-span"
                );
            }
            dc.step();
        }
    }
}
