//! Control-plane observability: the [`dynobs`] registry, trace ring and
//! flight recorder wired through the controller hierarchy.
//!
//! One [`dynobs::Shard`] per leaf controller travels with the leaf
//! through both the serial and the scoped-thread parallel execution
//! paths, so hot-path recording is lock-free and allocation-free; after
//! every leaf dispatch [`Observability::merge_leaves`] folds the due
//! shards back in ascending leaf-index order — the same fixed order the
//! serial path records in — which keeps the merged registry (float
//! histogram sums included) bit-identical at any worker-thread count.
//! Upper controllers and datacenter-level sources (breakers, the
//! validator) always run serially and record into the registry
//! directly.

use std::path::PathBuf;
use std::sync::Arc;

use dcsim::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use dcsim::{SimDuration, SimTime};
use dynamo_controller::{ControlAction, CycleOutcome, LeafController};
use dynobs::{
    Band, Buckets, CounterId, FlightKind, FlightRecord, FlightRecorder, GaugeId, HistogramId,
    ObsConfig, Registry, RegistryBuilder, RegistryState, Shard, SpanKind, SpanRecord, TraceRing,
};

/// Tick phases instrumented by the `--profile-ticks` profiler, in the
/// order `Datacenter::step` runs them. Index positions are frozen:
/// [`Observability::observe_tick_phase`] takes the index, and the
/// exported metric family is `dynamo_tick_phase_seconds_<name>`.
pub const TICK_PHASES: [&str; 7] = [
    "fleet_step",
    "breaker_fold",
    "grid",
    "leaf_dispatch",
    "validator",
    "telemetry_merge",
    "fused_tile",
];

/// Index of each tick phase in [`TICK_PHASES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
#[allow(missing_docs)]
pub enum TickPhase {
    FleetStep = 0,
    BreakerFold = 1,
    Grid = 2,
    LeafDispatch = 3,
    Validator = 4,
    TelemetryMerge = 5,
    /// The fused tile-at-a-time settle pass. When fusion is on, phase
    /// 1 wall time lands here instead of `fleet_step`, so the two
    /// regimes are distinguishable in the exported histograms; the
    /// other six families keep emitting (zero-observation `fleet_step`
    /// included) for unfused configurations and promlint.
    FusedTile = 6,
}

/// Frozen metric handles for every instrumentation point.
#[allow(missing_docs)]
pub(crate) struct ObsIds {
    // RPC layer (recorded per leaf shard).
    pub(crate) rpc_calls: CounterId,
    pub(crate) rpc_drops: CounterId,
    pub(crate) rpc_timeouts: CounterId,
    pub(crate) rpc_agent_down: CounterId,
    pub(crate) rpc_rtt: HistogramId,
    // Leaf controllers.
    pub(crate) leaf_cycles: CounterId,
    pub(crate) leaf_cycles_elided: CounterId,
    pub(crate) band_hold: CounterId,
    pub(crate) band_cap: CounterId,
    pub(crate) band_uncap: CounterId,
    pub(crate) band_invalid: CounterId,
    pub(crate) pull_failures: CounterId,
    pub(crate) estimated_readings: CounterId,
    pub(crate) cut_watts: HistogramId,
    pub(crate) capped_servers: HistogramId,
    // Cut distribution.
    pub(crate) dist_buckets: HistogramId,
    pub(crate) dist_groups: CounterId,
    pub(crate) dist_shortfalls: CounterId,
    // Upper controllers (registry-direct, serial only).
    pub(crate) upper_cycles: CounterId,
    pub(crate) upper_capped: CounterId,
    pub(crate) upper_uncapped: CounterId,
    pub(crate) upper_contracts: CounterId,
    // Incidents and datacenter-level sources.
    pub(crate) failovers: CounterId,
    pub(crate) breaker_trips: CounterId,
    pub(crate) validator_alerts: CounterId,
    pub(crate) incidents: CounterId,
    // Gauges (owner-side only).
    pub(crate) fleet_power: GaugeId,
    pub(crate) capped_now: GaugeId,
    pub(crate) sim_time: GaugeId,
    // Grid layer and DCUPS banks (registry-direct, serial only).
    pub(crate) grid_econ_cycles: CounterId,
    pub(crate) grid_limit_changes: CounterId,
    pub(crate) grid_curtailments: CounterId,
    pub(crate) grid_curtailments_contained: CounterId,
    pub(crate) grid_violation_seconds: CounterId,
    pub(crate) dcups_discharge_seconds: CounterId,
    pub(crate) grid_price: GaugeId,
    pub(crate) grid_frequency: GaugeId,
    pub(crate) grid_curtail_limit: GaugeId,
    pub(crate) grid_utility_draw: GaugeId,
    pub(crate) grid_site_contract: GaugeId,
    pub(crate) dcups_charge: GaugeId,
    // Tick-phase profiler (owner-side, recorded only under
    // `--profile-ticks`; registered unconditionally so the exposition
    // and snapshot layouts never depend on the flag).
    pub(crate) tick_phase: [HistogramId; 7],
}

fn register(b: &mut RegistryBuilder) -> ObsIds {
    // 1 µs to ~65 ms in doublings: spans a sub-microsecond no-op phase
    // up to a full-site worst-case tick.
    let tick_phase = TICK_PHASES.map(|phase| {
        b.histogram(
            &format!("dynamo_tick_phase_seconds_{phase}"),
            match phase {
                "fleet_step" => "Wall seconds per tick settling servers, workloads and agents",
                "breaker_fold" => {
                    "Wall seconds per tick aggregating subtree draws and stepping breakers"
                }
                "grid" => "Wall seconds per tick in the grid-interactive layer",
                "leaf_dispatch" => {
                    "Wall seconds per tick dispatching due controller cycles (both tiers)"
                }
                "validator" => "Wall seconds per tick in the breaker validator scan",
                "fused_tile" => {
                    "Wall seconds per tick in the fused tile-at-a-time settle pass"
                }
                _ => "Wall seconds per tick merging telemetry events and samples",
            },
            Buckets::log_linear(1e-6, 1, 16),
        )
    });
    ObsIds {
        tick_phase,
        rpc_calls: b.counter(
            "dynamo_rpc_calls_total",
            "RPC call attempts from leaf controllers to agents",
        ),
        rpc_drops: b.counter("dynamo_rpc_drops_total", "RPC calls lost in transit"),
        rpc_timeouts: b.counter("dynamo_rpc_timeouts_total", "RPC calls that timed out"),
        rpc_agent_down: b.counter(
            "dynamo_rpc_agent_down_total",
            "RPC calls to agents whose process was down",
        ),
        rpc_rtt: b.histogram(
            "dynamo_rpc_rtt_seconds",
            "Round-trip time of successful agent RPCs",
            Buckets::log_linear(0.001, 2, 8),
        ),
        leaf_cycles: b.counter("dynamo_leaf_cycles_total", "Completed leaf control cycles"),
        leaf_cycles_elided: b.counter(
            "dynamo_leaf_cycles_elided_total",
            "Leaf control cycles elided as provably quiescent",
        ),
        band_hold: b.counter(
            "dynamo_leaf_band_hold_total",
            "Leaf cycles that landed in the hold band",
        ),
        band_cap: b.counter(
            "dynamo_leaf_band_cap_total",
            "Leaf cycles that landed in the capping band",
        ),
        band_uncap: b.counter(
            "dynamo_leaf_band_uncap_total",
            "Leaf cycles that landed in the uncapping band",
        ),
        band_invalid: b.counter(
            "dynamo_leaf_band_invalid_total",
            "Leaf cycles with an invalid aggregation",
        ),
        pull_failures: b.counter(
            "dynamo_leaf_pull_failures_total",
            "Failed power pulls across leaf cycles",
        ),
        estimated_readings: b.counter(
            "dynamo_leaf_estimated_readings_total",
            "Readings filled in from service peers after a failed pull",
        ),
        cut_watts: b.histogram(
            "dynamo_leaf_cut_watts",
            "Magnitude of leaf power cuts",
            Buckets::log_linear(25.0, 2, 10),
        ),
        capped_servers: b.histogram(
            "dynamo_leaf_capped_servers",
            "Servers capped per leaf capping cycle",
            Buckets::log_linear(1.0, 1, 10),
        ),
        dist_buckets: b.histogram(
            "dynamo_distribution_buckets_expanded",
            "Power buckets included per cut before the cut fit",
            Buckets::log_linear(1.0, 1, 8),
        ),
        dist_groups: b.counter(
            "dynamo_distribution_groups_touched_total",
            "Priority groups that absorbed part of a cut",
        ),
        dist_shortfalls: b.counter(
            "dynamo_distribution_shortfalls_total",
            "Cut distributions that hit every SLA floor with watts left over",
        ),
        upper_cycles: b.counter(
            "dynamo_upper_cycles_total",
            "Completed upper control cycles",
        ),
        upper_capped: b.counter(
            "dynamo_upper_capped_total",
            "Upper cycles that pushed contracts down",
        ),
        upper_uncapped: b.counter(
            "dynamo_upper_uncapped_total",
            "Upper cycles that released contracts",
        ),
        upper_contracts: b.counter(
            "dynamo_upper_contracts_total",
            "Contractual limits pushed to children",
        ),
        failovers: b.counter(
            "dynamo_failovers_total",
            "Primary controller failures absorbed by backups",
        ),
        breaker_trips: b.counter("dynamo_breaker_trips_total", "Breakers that tripped"),
        validator_alerts: b.counter(
            "dynamo_validator_alerts_total",
            "Breaker-validator aggregation-mismatch alerts",
        ),
        incidents: b.counter(
            "dynamo_incidents_total",
            "Flight-recorder incident triggers (failover, capping episode, alert, trip)",
        ),
        fleet_power: b.gauge("dynamo_fleet_power_watts", "Total fleet power draw"),
        capped_now: b.gauge("dynamo_capped_servers", "Servers currently capped"),
        sim_time: b.gauge("dynamo_sim_time_seconds", "Simulated time"),
        grid_econ_cycles: b.counter(
            "dynamo_grid_econ_cycles_total",
            "Site economic-controller cycles run",
        ),
        grid_limit_changes: b.counter(
            "dynamo_grid_limit_changes_total",
            "Site contractual-limit changes pushed by the economic controller",
        ),
        grid_curtailments: b.counter(
            "dynamo_grid_curtailments_total",
            "Utility curtailment windows entered",
        ),
        grid_curtailments_contained: b.counter(
            "dynamo_grid_curtailments_contained_total",
            "Curtailment windows contained within the economic budget",
        ),
        grid_violation_seconds: b.counter(
            "dynamo_grid_curtailment_violation_seconds_total",
            "Seconds of utility draw above an active curtailment limit past the containment budget",
        ),
        dcups_discharge_seconds: b.counter(
            "dynamo_dcups_discharge_seconds_total",
            "Seconds with at least one DCUPS bank intentionally discharging",
        ),
        grid_price: b.gauge(
            "dynamo_grid_price_per_mwh",
            "Utility wholesale price signal",
        ),
        grid_frequency: b.gauge("dynamo_grid_frequency_hz", "Grid frequency signal"),
        grid_curtail_limit: b.gauge(
            "dynamo_grid_curtail_limit_watts",
            "Active utility curtailment limit (0 when no window is active)",
        ),
        grid_utility_draw: b.gauge(
            "dynamo_grid_utility_draw_watts",
            "Power drawn from the utility: servers minus DCUPS discharge plus recharge",
        ),
        grid_site_contract: b.gauge(
            "dynamo_grid_site_contract_watts",
            "Site-wide contractual limit pushed by the economic controller (0 when cleared)",
        ),
        dcups_charge: b.gauge(
            "dynamo_dcups_charge_fraction",
            "Aggregate DCUPS bank charge as a fraction of capacity",
        ),
    }
}

/// The control plane's observability state: metrics registry, per-leaf
/// shards, span ring, flight recorder, and pending incident dumps.
///
/// Obtain a shared reference through
/// [`crate::DynamoSystem::observability`]. With observability disabled
/// (the default) every recording call is an early-returning no-op and
/// the exporters render an all-zero registry.
pub struct Observability {
    registry: Registry,
    ids: ObsIds,
    shards: Vec<Shard>,
    trace: TraceRing,
    flight: FlightRecorder,
    incident_dir: Option<PathBuf>,
    incident_seq: u64,
    /// Incident dumps not yet written to disk. Only ever non-empty when
    /// an incident directory is configured.
    pending: Vec<(PathBuf, String)>,
}

impl Observability {
    /// Builds the registry and one shard per leaf controller.
    pub(crate) fn new(config: &ObsConfig, leaf_count: usize) -> Self {
        let mut b = RegistryBuilder::new();
        let ids = register(&mut b);
        let registry = b.build(config.enabled);
        let shards = (0..leaf_count).map(|_| registry.shard()).collect();
        Observability {
            registry,
            ids,
            shards,
            trace: TraceRing::new(config.trace_capacity),
            flight: FlightRecorder::new(config.flight_capacity),
            incident_dir: config
                .enabled
                .then(|| config.incident_dir.clone())
                .flatten(),
            incident_seq: 0,
            pending: Vec::new(),
        }
    }

    /// Whether recording is live.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    /// The merged metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span ring (cycle tracing).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// The flight recorder ring.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        dynobs::render_prometheus(&self.registry)
    }

    /// Renders the registry as a JSON snapshot.
    pub fn json_snapshot(&self) -> String {
        dynobs::render_json(&self.registry)
    }

    /// Renders the span ring as chrome-tracing JSON.
    pub fn chrome_trace(&self) -> String {
        self.trace.to_chrome_json()
    }

    /// Incident triggers fired so far.
    pub fn incidents(&self) -> u64 {
        self.registry.counter_value(self.ids.incidents)
    }

    /// Writes any pending incident dumps into the configured incident
    /// directory, returning the number written. No-op (and `Ok(0)`)
    /// when nothing is pending.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-write failures; the
    /// pending dumps that were not written are kept for a retry.
    pub fn flush_incidents(&mut self) -> std::io::Result<usize> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        if let Some(dir) = &self.incident_dir {
            std::fs::create_dir_all(dir)?;
        }
        let mut written = 0;
        while let Some((path, json)) = self.pending.first() {
            std::fs::write(path, json)?;
            written += 1;
            self.pending.remove(0);
        }
        Ok(written)
    }

    /// The per-leaf shards and the metric ids, borrowed together for a
    /// leaf dispatch (serial or carved across workers).
    pub(crate) fn shard_ctx(&mut self) -> (&mut [Shard], &ObsIds) {
        (&mut self.shards, &self.ids)
    }

    /// Folds the due leaves' shards into the registry and drains their
    /// span/flight buffers, in ascending leaf-index order (`due` is
    /// sorted). Incident triggers found among the flight records
    /// (failovers, capping-episode starts) fire here, after the record
    /// is in the ring, so the dump contains its own trigger.
    pub(crate) fn merge_leaves(&mut self, due: &[usize]) {
        if !self.registry.is_enabled() {
            return;
        }
        // Incident triggers are deferred until every due shard is in
        // the ring, so a dump carries the full tick's context. The
        // buffer only allocates in ticks that actually trigger.
        let mut triggers: Vec<(&'static str, u64)> = Vec::new();
        for &i in due {
            self.registry.merge_shard(&mut self.shards[i]);
            for span in self.shards[i].take_spans() {
                self.trace.push(span);
            }
            for record in self.shards[i].take_flights() {
                let at_ms = record.at_ms;
                let trigger = match &record.kind {
                    FlightKind::Failover => Some("failover"),
                    FlightKind::LeafCapped {
                        episode_start: true,
                        ..
                    } => Some("capping-episode"),
                    _ => None,
                };
                self.flight.push(record);
                if let Some(trigger) = trigger {
                    triggers.push((trigger, at_ms));
                }
            }
        }
        for (trigger, at_ms) in triggers {
            self.incident(trigger, at_ms);
        }
    }

    /// Records one upper-controller cycle (serial context).
    pub(crate) fn record_upper_cycle(
        &mut self,
        now: SimTime,
        track: u32,
        name: &Arc<str>,
        capped: bool,
        uncapped: bool,
        contracts: u32,
    ) {
        if !self.registry.is_enabled() {
            return;
        }
        self.registry.inc(self.ids.upper_cycles);
        self.trace.push(SpanRecord {
            kind: SpanKind::UpperCycle,
            track,
            start_us: now.as_millis() * 1000,
            dur_us: 0,
            name: Arc::clone(name),
        });
        if capped {
            self.registry.inc(self.ids.upper_capped);
            self.registry
                .add(self.ids.upper_contracts, contracts as u64);
            self.flight.push(FlightRecord {
                at_ms: now.as_millis(),
                track,
                controller: Arc::clone(name),
                kind: FlightKind::UpperCapped { contracts },
            });
        } else if uncapped {
            self.registry.inc(self.ids.upper_uncapped);
            self.flight.push(FlightRecord {
                at_ms: now.as_millis(),
                track,
                controller: Arc::clone(name),
                kind: FlightKind::UpperUncapped,
            });
        }
    }

    /// Records an upper-controller failover (serial context).
    pub(crate) fn record_upper_failover(&mut self, now: SimTime, track: u32, name: &Arc<str>) {
        if !self.registry.is_enabled() {
            return;
        }
        self.registry.inc(self.ids.failovers);
        self.trace.push(SpanRecord {
            kind: SpanKind::Failover,
            track,
            start_us: now.as_millis() * 1000,
            dur_us: 0,
            name: Arc::clone(name),
        });
        self.flight.push(FlightRecord {
            at_ms: now.as_millis(),
            track,
            controller: Arc::clone(name),
            kind: FlightKind::Failover,
        });
        self.incident("failover", now.as_millis());
    }

    /// Records a breaker trip (datacenter context).
    pub(crate) fn record_breaker_trip(&mut self, now: SimTime, track: u32, name: Arc<str>) {
        if !self.registry.is_enabled() {
            return;
        }
        self.registry.inc(self.ids.breaker_trips);
        self.flight.push(FlightRecord {
            at_ms: now.as_millis(),
            track,
            controller: name,
            kind: FlightKind::BreakerTrip,
        });
        self.incident("breaker-trip", now.as_millis());
    }

    /// Records `n` new breaker-validator alerts (datacenter context).
    pub(crate) fn record_validator_alerts(&mut self, now: SimTime, n: u64, name: &Arc<str>) {
        if !self.registry.is_enabled() || n == 0 {
            return;
        }
        self.registry.add(self.ids.validator_alerts, n);
        for _ in 0..n {
            self.flight.push(FlightRecord {
                at_ms: now.as_millis(),
                track: 0,
                controller: Arc::clone(name),
                kind: FlightKind::ValidatorAlert,
            });
        }
        self.incident("validator-alert", now.as_millis());
    }

    /// Updates the grid-layer gauges (datacenter context, every tick a
    /// grid layer is active). Inactive limits are exported as 0 so the
    /// exposition keeps a fixed shape.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn set_grid_gauges(
        &mut self,
        price_per_mwh: f64,
        frequency_hz: f64,
        curtail_limit_watts: f64,
        utility_draw_watts: f64,
        site_contract_watts: f64,
        dcups_charge_fraction: f64,
    ) {
        if !self.registry.is_enabled() {
            return;
        }
        self.registry.set_gauge(self.ids.grid_price, price_per_mwh);
        self.registry
            .set_gauge(self.ids.grid_frequency, frequency_hz);
        self.registry
            .set_gauge(self.ids.grid_curtail_limit, curtail_limit_watts);
        self.registry
            .set_gauge(self.ids.grid_utility_draw, utility_draw_watts);
        self.registry
            .set_gauge(self.ids.grid_site_contract, site_contract_watts);
        self.registry
            .set_gauge(self.ids.dcups_charge, dcups_charge_fraction);
    }

    /// Records one economic-controller cycle (serial context).
    pub(crate) fn record_grid_econ_cycle(&mut self, changed: bool) {
        if !self.registry.is_enabled() {
            return;
        }
        self.registry.inc(self.ids.grid_econ_cycles);
        if changed {
            self.registry.inc(self.ids.grid_limit_changes);
        }
    }

    /// Records a curtailment window opening.
    pub(crate) fn record_grid_curtailment_start(&mut self) {
        if self.registry.is_enabled() {
            self.registry.inc(self.ids.grid_curtailments);
        }
    }

    /// Records a curtailment window closing, contained or not.
    pub(crate) fn record_grid_curtailment_end(&mut self, contained: bool) {
        if self.registry.is_enabled() && contained {
            self.registry.inc(self.ids.grid_curtailments_contained);
        }
    }

    /// Accumulates a tick of intentional DCUPS discharge.
    pub(crate) fn record_dcups_discharge(&mut self, secs: u64) {
        if self.registry.is_enabled() {
            self.registry.add(self.ids.dcups_discharge_seconds, secs);
        }
    }

    /// Accumulates a tick of utility draw above an active curtailment
    /// limit past the containment budget.
    pub(crate) fn record_grid_violation_tick(&mut self, secs: u64) {
        if self.registry.is_enabled() {
            self.registry.add(self.ids.grid_violation_seconds, secs);
        }
    }

    /// Records the first budget-exceeding breach of a curtailment
    /// window: a flight record plus the `curtailment-violation`
    /// incident trigger (once per window, at the caller's discretion).
    pub(crate) fn record_curtailment_violation(
        &mut self,
        now: SimTime,
        name: &Arc<str>,
        limit_watts: f64,
        draw_watts: f64,
    ) {
        if !self.registry.is_enabled() {
            return;
        }
        self.flight.push(FlightRecord {
            at_ms: now.as_millis(),
            track: 0,
            controller: Arc::clone(name),
            kind: FlightKind::CurtailmentViolation {
                limit_watts,
                draw_watts,
            },
        });
        self.incident("curtailment-violation", now.as_millis());
    }

    /// Records one tick phase's wall-clock duration (datacenter
    /// context, only under `--profile-ticks`). Wall clocks are
    /// inherently non-deterministic, which is why the profiler is
    /// opt-in and stays off in every determinism test.
    pub(crate) fn observe_tick_phase(&mut self, phase: TickPhase, secs: f64) {
        if !self.registry.is_enabled() {
            return;
        }
        self.registry.observe(self.ids.tick_phase[phase as usize], secs);
    }

    /// The profiler's accumulated `(phase, ticks observed, total
    /// seconds)` rows, in [`TICK_PHASES`] order. All-zero unless the
    /// run recorded phases.
    pub fn tick_phase_profile(&self) -> [(&'static str, u64, f64); 7] {
        let mut rows = [("", 0u64, 0.0f64); 7];
        for (i, (&phase, &id)) in TICK_PHASES.iter().zip(&self.ids.tick_phase).enumerate() {
            let h = self.registry.histogram(id);
            rows[i] = (phase, h.count, h.sum);
        }
        rows
    }

    /// Updates the fleet gauges (datacenter context, sampling cadence).
    pub(crate) fn set_gauges(&mut self, now: SimTime, fleet_power_watts: f64, capped: usize) {
        self.registry
            .set_gauge(self.ids.fleet_power, fleet_power_watts);
        self.registry.set_gauge(self.ids.capped_now, capped as f64);
        self.registry
            .set_gauge(self.ids.sim_time, now.as_secs_f64());
    }

    /// Captures the observability state for a snapshot: registry
    /// values, per-shard band words, both rings, and the incident
    /// sequence counter. Shard metric deltas are zero at tick
    /// boundaries (every dispatch merges them), so only the band word
    /// survives per shard.
    ///
    /// # Panics
    ///
    /// Panics if incident dumps are pending — callers flush to disk
    /// before snapshotting so a resume cannot silently drop or
    /// duplicate an incident file.
    pub(crate) fn state(&self) -> ObservabilityState {
        assert!(
            self.pending.is_empty(),
            "flush_incidents() before snapshotting observability"
        );
        ObservabilityState {
            registry: self.registry.state(),
            shard_bands: self.shards.iter().map(|s| s.state).collect(),
            trace: self.trace.clone(),
            flight: self.flight.clone(),
            incident_seq: self.incident_seq,
        }
    }

    /// Restores the observability state from a decoded snapshot taken
    /// against an identically-configured control plane.
    pub(crate) fn restore(&mut self, state: &ObservabilityState) -> Result<(), SnapError> {
        if state.shard_bands.len() != self.shards.len() {
            return Err(SnapError::Corrupt(format!(
                "observability snapshot has {} leaf shards, rebuilt control plane has {}",
                state.shard_bands.len(),
                self.shards.len()
            )));
        }
        if state.trace.capacity() != self.trace.capacity()
            || state.flight.capacity() != self.flight.capacity()
        {
            return Err(SnapError::Corrupt(format!(
                "observability snapshot ring capacities (trace {}, flight {}) disagree with \
                 the rebuilt configuration (trace {}, flight {})",
                state.trace.capacity(),
                state.flight.capacity(),
                self.trace.capacity(),
                self.flight.capacity()
            )));
        }
        self.registry.restore(&state.registry)?;
        for (shard, &band) in self.shards.iter_mut().zip(&state.shard_bands) {
            shard.state = band;
        }
        self.trace = state.trace.clone();
        self.flight = state.flight.clone();
        self.incident_seq = state.incident_seq;
        Ok(())
    }

    /// Fires one incident trigger: counts it and, when an incident
    /// directory is configured, queues a dump of the flight ring. With
    /// no directory this is a counter bump — no allocation.
    fn incident(&mut self, trigger: &str, at_ms: u64) {
        self.registry.inc(self.ids.incidents);
        if let Some(dir) = &self.incident_dir {
            self.incident_seq += 1;
            let json = self.flight.incident_json(trigger, at_ms, self.incident_seq);
            let file = dir.join(format!("incident-{:04}-{trigger}.json", self.incident_seq));
            self.pending.push((file, json));
        }
    }
}

/// The observability subsystem's dynamic state.
pub(crate) struct ObservabilityState {
    pub(crate) registry: RegistryState,
    /// Per-shard decision-band words (the only shard state that
    /// survives a merge).
    pub(crate) shard_bands: Vec<u32>,
    pub(crate) trace: TraceRing,
    pub(crate) flight: FlightRecorder,
    pub(crate) incident_seq: u64,
}

impl Snapshot for ObservabilityState {
    const KIND: &'static str = "dynamo.ObservabilityState";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        self.registry.encode_body(w);
        w.put_u64(self.shard_bands.len() as u64);
        for &band in &self.shard_bands {
            w.put_u32(band);
        }
        self.trace.encode_body(w);
        self.flight.encode_body(w);
        w.put_u64(self.incident_seq);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let registry = RegistryState::decode_body(r)?;
        let n = r.get_u64()? as usize;
        let mut shard_bands = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            shard_bands.push(r.get_u32()?);
        }
        Ok(ObservabilityState {
            registry,
            shard_bands,
            trace: TraceRing::decode_body(r)?,
            flight: FlightRecorder::decode_body(r)?,
            incident_seq: r.get_u64()?,
        })
    }
}

/// Records a leaf failover into the leaf's shard — shared by the serial
/// loop and the parallel workers so both paths buffer the identical
/// records.
pub(crate) fn record_leaf_failover(
    shard: &mut Shard,
    ids: &ObsIds,
    now: SimTime,
    track: u32,
    name: Arc<str>,
) {
    shard.inc(ids.failovers);
    if shard.is_enabled() {
        shard.span(SpanRecord {
            kind: SpanKind::Failover,
            track,
            start_us: now.as_millis() * 1000,
            dur_us: 0,
            name: Arc::clone(&name),
        });
        shard.flight(FlightRecord {
            at_ms: now.as_millis(),
            track,
            controller: name,
            kind: FlightKind::Failover,
        });
    }
}

/// Maps a leaf control action to its decision band.
pub(crate) fn band_of(action: &ControlAction) -> Band {
    match action {
        ControlAction::Capped { .. } => Band::Cap,
        ControlAction::Uncapped => Band::Uncap,
        ControlAction::Invalid => Band::Invalid,
        ControlAction::Hold => Band::Hold,
    }
}

/// Records the detailed (enabled-only) telemetry of one leaf cycle into
/// the leaf's shard: band transitions, capping flights, distribution
/// stats and the cycle/pull/distribution/actuation spans. The cheap
/// always-on counters are recorded at the call site; callers gate this
/// behind [`Shard::is_enabled`] so the disabled path never clones a
/// name.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_leaf_cycle(
    shard: &mut Shard,
    ids: &ObsIds,
    now: SimTime,
    track: u32,
    controller: &LeafController,
    outcome: &CycleOutcome,
    caps_before: usize,
    dry_run: bool,
    pull_rtt: SimDuration,
    act_rtt: SimDuration,
) {
    let name = controller.name_shared();
    let at_ms = now.as_millis();
    let start_us = at_ms * 1000;
    let band = band_of(&outcome.action);
    let prev = Band::from_code(shard.state);
    if prev != band {
        shard.flight(FlightRecord {
            at_ms,
            track,
            controller: Arc::clone(&name),
            kind: FlightKind::BandTransition {
                from: prev,
                to: band,
            },
        });
        shard.state = band.code();
    }
    match &outcome.action {
        ControlAction::Capped {
            total_cut,
            commands,
        } => {
            let dist = controller.last_distribution();
            shard.observe(ids.cut_watts, total_cut.as_watts());
            shard.observe(ids.capped_servers, commands.len() as f64);
            shard.observe(ids.dist_buckets, f64::from(dist.buckets_expanded));
            shard.add(ids.dist_groups, u64::from(dist.groups_touched));
            if dist.leftover_watts > 0.0 {
                shard.inc(ids.dist_shortfalls);
            }
            shard.flight(FlightRecord {
                at_ms,
                track,
                controller: Arc::clone(&name),
                kind: FlightKind::LeafCapped {
                    cut_watts: total_cut.as_watts(),
                    servers: commands.len() as u32,
                    episode_start: caps_before == 0 && !dry_run,
                },
            });
        }
        ControlAction::Uncapped => shard.flight(FlightRecord {
            at_ms,
            track,
            controller: Arc::clone(&name),
            kind: FlightKind::LeafUncapped,
        }),
        ControlAction::Invalid => shard.flight(FlightRecord {
            at_ms,
            track,
            controller: Arc::clone(&name),
            kind: FlightKind::LeafInvalid {
                failures: outcome.pull_failures as u32,
            },
        }),
        ControlAction::Hold => {}
    }
    let pull_us = pull_rtt.as_millis() * 1000;
    let act_us = act_rtt.as_millis() * 1000;
    shard.span(SpanRecord {
        kind: SpanKind::RpcPull,
        track,
        start_us,
        dur_us: pull_us,
        name: Arc::clone(&name),
    });
    if outcome.action.is_capped() {
        shard.span(SpanRecord {
            kind: SpanKind::Distribution,
            track,
            start_us: start_us + pull_us,
            dur_us: 0,
            name: Arc::clone(&name),
        });
    }
    if act_us > 0 {
        shard.span(SpanRecord {
            kind: SpanKind::Actuation,
            track,
            start_us: start_us + pull_us,
            dur_us: act_us,
            name: Arc::clone(&name),
        });
    }
    shard.span(SpanRecord {
        kind: SpanKind::LeafCycle,
        track,
        start_us,
        dur_us: pull_us + act_us,
        name,
    });
}
