//! Breaker-reading cross-validation (§III-C1 and §VI).
//!
//! "Dynamo uses the power breaker readings only for validating that the
//! aggregated power from servers is correct", and §VI adds: "use the
//! (coarse-grained) power readings from the power breaker to validate
//! and dynamically tune the server power estimation and aggregation."
//!
//! Breakers at Facebook report power only at minute granularity, so the
//! validator consumes a 1-minute breaker sample per leaf device,
//! compares it against the controller's own server-sum aggregate,
//! maintains an exponentially-weighted correction factor, and raises an
//! alert when the two disagree persistently (broken sensors, stale
//! metadata, mis-wired rows).

use dcsim::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use dcsim::{CycleSchedule, SimDuration, SimRng, SimTime};
use powerinfra::{DeviceId, Power};

/// Per-device validation state.
#[derive(Debug, Clone)]
struct DeviceState {
    /// EWMA of breaker/aggregate ratio — the tuning factor §VI talks
    /// about. 1.0 means the aggregation is spot on.
    correction: f64,
    /// Consecutive samples with relative error above the alert band.
    bad_streak: u32,
    /// Total samples seen.
    samples: u64,
}

/// A persistent mismatch between a breaker reading and the controller's
/// aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationAlert {
    /// When the alert fired.
    pub at: SimTime,
    /// The leaf device whose aggregation looks wrong.
    pub device: DeviceId,
    /// The breaker's reading at that point.
    pub breaker: Power,
    /// The controller's aggregate at that point.
    pub aggregate: Power,
}

/// Validates leaf-controller aggregates against coarse breaker readings
/// and maintains per-device correction factors.
///
/// Feed it one `(device, breaker_reading, controller_aggregate)` triple
/// per device per validation interval via [`BreakerValidator::observe`].
#[derive(Debug)]
pub struct BreakerValidator {
    /// Relative error tolerated before a sample counts as "bad".
    tolerance: f64,
    /// Bad samples in a row before alerting.
    alert_streak: u32,
    /// Relative noise of the breaker's own metering.
    meter_noise: f64,
    states: Vec<Option<DeviceState>>,
    alerts: Vec<ValidationAlert>,
    schedule: CycleSchedule,
    rng: SimRng,
}

impl BreakerValidator {
    /// Creates a validator sampling at the breaker's native 1-minute
    /// granularity, tolerating 5% disagreement, alerting after 3
    /// consecutive bad minutes.
    pub fn new(device_count: usize, rng: SimRng) -> Self {
        let interval = SimDuration::from_secs(60);
        BreakerValidator {
            tolerance: 0.05,
            alert_streak: 3,
            meter_noise: 0.005,
            states: vec![None; device_count],
            alerts: Vec::new(),
            schedule: CycleSchedule::new(interval),
            rng,
        }
    }

    /// Overrides the disagreement tolerance (fraction).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tolerance < 1`.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        assert!(
            tolerance > 0.0 && tolerance < 1.0,
            "invalid tolerance {tolerance}"
        );
        self.tolerance = tolerance;
        self
    }

    /// True when a validation pass is due at `now`.
    pub fn due(&self, now: SimTime) -> bool {
        self.schedule.due(now)
    }

    /// Marks the validation pass at `now` as done and schedules the
    /// next one.
    pub fn advance(&mut self, now: SimTime) {
        self.schedule.fire(now);
    }

    /// Observes one device: the true power at the breaker (metered with
    /// small noise) against the controller's server-sum aggregate.
    pub fn observe(&mut self, now: SimTime, device: DeviceId, true_power: Power, aggregate: Power) {
        let metered = true_power * (1.0 + self.rng.normal(0.0, self.meter_noise));
        let idx = device.index();
        let state = self.states[idx].get_or_insert(DeviceState {
            correction: 1.0,
            bad_streak: 0,
            samples: 0,
        });
        state.samples += 1;
        if aggregate.as_watts() <= 1.0 {
            // Nothing aggregated (blackout or empty device): skip.
            return;
        }
        let ratio = metered.as_watts() / aggregate.as_watts();
        // EWMA tune: slow enough to ignore transient skew, fast enough
        // to converge on a real calibration bias within ~10 minutes.
        state.correction = 0.9 * state.correction + 0.1 * ratio;
        let rel_err = (ratio - 1.0).abs();
        if rel_err > self.tolerance {
            state.bad_streak += 1;
            if state.bad_streak == self.alert_streak {
                self.alerts.push(ValidationAlert {
                    at: now,
                    device,
                    breaker: metered,
                    aggregate,
                });
            }
        } else {
            state.bad_streak = 0;
        }
    }

    /// The current correction factor for a device: multiply controller
    /// aggregates by this to match the breaker. `None` until the device
    /// has been observed.
    pub fn correction(&self, device: DeviceId) -> Option<f64> {
        self.states
            .get(device.index())?
            .as_ref()
            .map(|s| s.correction)
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[ValidationAlert] {
        &self.alerts
    }

    /// Captures the validator's dynamic state for a snapshot. The
    /// tolerance knobs are run configuration and not saved; the RNG
    /// stream must round-trip because every observation draws meter
    /// noise before any skip check.
    pub fn state(&self) -> ValidatorState {
        ValidatorState {
            states: self.states.clone(),
            alerts: self.alerts.clone(),
            schedule: self.schedule,
            rng: self.rng.clone(),
        }
    }

    /// Restores the validator from a decoded snapshot taken against the
    /// same topology.
    pub fn restore(&mut self, state: &ValidatorState) -> Result<(), SnapError> {
        if state.states.len() != self.states.len() {
            return Err(SnapError::Corrupt(format!(
                "validator snapshot covers {} devices, rebuilt validator has {}",
                state.states.len(),
                self.states.len()
            )));
        }
        self.states.clone_from(&state.states);
        self.alerts.clone_from(&state.alerts);
        self.schedule = state.schedule;
        self.rng = state.rng.clone();
        Ok(())
    }
}

/// The breaker validator's dynamic state.
pub struct ValidatorState {
    states: Vec<Option<DeviceState>>,
    alerts: Vec<ValidationAlert>,
    schedule: CycleSchedule,
    rng: SimRng,
}

impl Snapshot for ValidatorState {
    const KIND: &'static str = "dynamo.ValidatorState";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        w.put_u64(self.states.len() as u64);
        for state in &self.states {
            match state {
                None => w.put_u8(0),
                Some(s) => {
                    w.put_u8(1);
                    w.put_f64(s.correction);
                    w.put_u32(s.bad_streak);
                    w.put_u64(s.samples);
                }
            }
        }
        w.put_u64(self.alerts.len() as u64);
        for a in &self.alerts {
            w.put_u64(a.at.as_millis());
            w.put_u32(a.device.index() as u32);
            w.put_f64(a.breaker.as_watts());
            w.put_f64(a.aggregate.as_watts());
        }
        self.schedule.encode_body(w);
        self.rng.encode_body(w);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_u64()? as usize;
        let mut states = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            states.push(match r.get_u8()? {
                0 => None,
                1 => Some(DeviceState {
                    correction: r.get_f64()?,
                    bad_streak: r.get_u32()?,
                    samples: r.get_u64()?,
                }),
                other => {
                    return Err(SnapError::Corrupt(format!(
                        "bad validator device-state tag {other}"
                    )))
                }
            });
        }
        let na = r.get_u64()? as usize;
        let mut alerts = Vec::with_capacity(na.min(1 << 20));
        for _ in 0..na {
            alerts.push(ValidationAlert {
                at: SimTime::from_millis(r.get_u64()?),
                device: DeviceId::from_index(r.get_u32()? as usize),
                breaker: Power::from_watts(r.get_f64()?),
                aggregate: Power::from_watts(r.get_f64()?),
            });
        }
        Ok(ValidatorState {
            states,
            alerts,
            schedule: CycleSchedule::decode_body(r)?,
            rng: SimRng::decode_body(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerinfra::{DeviceLevel, TopologyBuilder};

    fn device() -> DeviceId {
        let topo = TopologyBuilder::new()
            .sbs_per_msb(1)
            .rpps_per_sb(1)
            .racks_per_rpp(1)
            .servers_per_rack(1)
            .build();
        topo.devices_at(DeviceLevel::Rpp)[0]
    }

    fn validator() -> BreakerValidator {
        BreakerValidator::new(8, SimRng::seed_from(9))
    }

    #[test]
    fn agreeing_readings_raise_no_alert() {
        let dev = device();
        let mut v = validator();
        for m in 0..30 {
            let p = Power::from_kilowatts(100.0);
            v.observe(SimTime::from_mins(m), dev, p, p);
        }
        assert!(v.alerts().is_empty());
        let corr = v.correction(dev).unwrap();
        assert!((corr - 1.0).abs() < 0.01, "correction drifted: {corr}");
    }

    #[test]
    fn persistent_mismatch_alerts_once_per_streak() {
        let dev = device();
        let mut v = validator();
        for m in 0..10 {
            v.observe(
                SimTime::from_mins(m),
                dev,
                Power::from_kilowatts(100.0),
                Power::from_kilowatts(80.0), // aggregate reads 20% low
            );
        }
        assert_eq!(v.alerts().len(), 1, "one alert per sustained streak");
        assert_eq!(v.alerts()[0].device, dev);
    }

    #[test]
    fn transient_mismatch_does_not_alert() {
        let dev = device();
        let mut v = validator();
        for m in 0..20 {
            let aggregate = if m % 3 == 0 {
                Power::from_kilowatts(85.0) // occasional bad minute
            } else {
                Power::from_kilowatts(100.0)
            };
            v.observe(
                SimTime::from_mins(m),
                dev,
                Power::from_kilowatts(100.0),
                aggregate,
            );
        }
        assert!(v.alerts().is_empty(), "isolated bad minutes must not alert");
    }

    #[test]
    fn correction_converges_to_the_true_bias() {
        let dev = device();
        let mut v = validator();
        // Aggregation reads 10% low -> true/aggregate ratio is ~1.111.
        for m in 0..60 {
            v.observe(
                SimTime::from_mins(m),
                dev,
                Power::from_kilowatts(100.0),
                Power::from_kilowatts(90.0),
            );
        }
        let corr = v.correction(dev).unwrap();
        assert!((corr - 100.0 / 90.0).abs() < 0.02, "correction {corr}");
    }

    #[test]
    fn blackout_samples_are_skipped() {
        let dev = device();
        let mut v = validator();
        for m in 0..10 {
            v.observe(SimTime::from_mins(m), dev, Power::ZERO, Power::ZERO);
        }
        assert!(v.alerts().is_empty());
        // Correction untouched at its prior.
        assert_eq!(v.correction(dev), Some(1.0));
    }

    #[test]
    fn schedule_runs_on_the_minute() {
        let mut v = validator();
        assert!(v.due(SimTime::ZERO));
        v.advance(SimTime::ZERO);
        assert!(!v.due(SimTime::from_secs(59)));
        assert!(v.due(SimTime::from_secs(60)));
    }

    #[test]
    #[should_panic(expected = "invalid tolerance")]
    fn bad_tolerance_panics() {
        let _ = validator().with_tolerance(0.0);
    }
}
