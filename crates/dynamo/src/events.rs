//! Control-plane event types and the per-controller cycle dispatcher.
//!
//! Deployed Dynamo has no global tick: every leaf controller runs its
//! own 3 s pulling cycle and every upper controller a slower multiple of
//! it (§III-C, §IV), with nothing forcing the ~100 instances of a
//! datacenter to fire at the same instant. The [`CycleDispatcher`] here
//! is that architecture in miniature — one [`CycleSchedule`] per
//! controller instance, keyed on a deterministic [`EventQueue`] — while
//! [`PhasePolicy::Lockstep`] (all offsets zero) keeps the default
//! configuration bit-identical to the legacy global-schedule control
//! plane.

use std::sync::Arc;

use dcsim::{CycleSchedule, EventQueue, SimDuration, SimRng, SimTime};
use powerinfra::{DeviceId, Power};

/// A notable controller action, for telemetry and assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerEvent {
    /// When it happened.
    pub at: SimTime,
    /// The protected device.
    pub device: DeviceId,
    /// The controller's name (interned — cloning events is cheap).
    pub controller: Arc<str>,
    /// What happened.
    pub kind: ControllerEventKind,
}

/// The kinds of controller events.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerEventKind {
    /// A leaf controller issued caps.
    LeafCapped {
        /// Aggregate power removed.
        total_cut: Power,
        /// Servers that received caps.
        servers: usize,
    },
    /// A leaf controller released its caps.
    LeafUncapped,
    /// A leaf controller declared its aggregation invalid.
    LeafInvalid {
        /// Pull failures that triggered it.
        failures: usize,
    },
    /// An upper controller pushed contractual limits.
    UpperCapped {
        /// Children that received contracts this cycle.
        contracts: usize,
    },
    /// An upper controller cleared its contracts.
    UpperUncapped,
    /// The backup controller took over after a primary failure (§III-E).
    Failover,
}

/// How per-controller cycle phases are assigned within a tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhasePolicy {
    /// Every controller fires at `0, period, 2·period, …` — the
    /// legacy global-schedule behaviour. Bit-identical output to the
    /// pre-event-driven control plane; the default.
    Lockstep,
    /// Controller `i` of an `n`-instance tier gets offset
    /// `spread · i / n`, staggering cycles evenly across the window.
    /// A spread of one leaf period spaces leaves maximally.
    EvenSpread(SimDuration),
    /// Each controller draws a deterministic offset uniformly from
    /// `[0, spread)` out of the system RNG — the "nothing synchronizes
    /// ~100 independent daemons" deployment shape.
    Jittered(SimDuration),
}

impl PhasePolicy {
    /// The phase offsets for an `n`-instance tier under this policy.
    ///
    /// Only [`PhasePolicy::Jittered`] consumes randomness: a lockstep or
    /// even-spread build leaves `rng` untouched, which is what keeps the
    /// phase-zero configuration bit-identical to the legacy path.
    pub(crate) fn offsets(self, n: usize, label: &str, rng: &mut SimRng) -> Vec<SimDuration> {
        match self {
            PhasePolicy::Lockstep => vec![SimDuration::ZERO; n],
            PhasePolicy::EvenSpread(spread) => (0..n)
                .map(|i| SimDuration::from_millis(spread.as_millis() * i as u64 / n.max(1) as u64))
                .collect(),
            PhasePolicy::Jittered(spread) => {
                let mut phase_rng = rng.split(label);
                (0..n)
                    .map(|_| {
                        if spread.is_zero() {
                            SimDuration::ZERO
                        } else {
                            SimDuration::from_millis(phase_rng.next_u64() % spread.as_millis())
                        }
                    })
                    .collect()
            }
        }
    }
}

/// Identifies one controller instance on the dispatcher's event queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CycleId {
    /// Leaf controller by tier index.
    Leaf(usize),
    /// Upper controller by tier index.
    Upper(usize),
}

/// The event-driven heart of the control plane: one pending queue entry
/// per controller instance, popped and re-armed each simulation tick.
///
/// [`CycleDispatcher::collect_due`] pops everything due at `now`,
/// coalesces boundaries a coarse outer tick may have skipped (each
/// controller still runs at most once per tick, like a real poller that
/// overslept), re-arms each schedule, and leaves the due indices —
/// sorted ascending — in reusable scratch buffers. Sorting restores the
/// serial build order for controllers due at the same instant, so a
/// phase-zero dispatch is indistinguishable from the old lockstep loop
/// and the batch hand-off to the scoped-thread leaf path stays
/// deterministic.
#[derive(Debug)]
pub(crate) struct CycleDispatcher {
    queue: EventQueue<CycleId>,
    leaf_cycles: Vec<CycleSchedule>,
    upper_cycles: Vec<CycleSchedule>,
    /// Scratch: leaf indices due this tick, ascending. Reused.
    leaf_due: Vec<usize>,
    /// Scratch: upper indices due this tick, ascending. Reused.
    upper_due: Vec<usize>,
}

impl CycleDispatcher {
    /// Arms one queue entry per controller at its first firing time.
    pub(crate) fn new(leaf_cycles: Vec<CycleSchedule>, upper_cycles: Vec<CycleSchedule>) -> Self {
        let mut queue = EventQueue::new();
        for (i, s) in leaf_cycles.iter().enumerate() {
            queue.schedule(s.next_at(), CycleId::Leaf(i));
        }
        for (i, s) in upper_cycles.iter().enumerate() {
            queue.schedule(s.next_at(), CycleId::Upper(i));
        }
        CycleDispatcher {
            queue,
            leaf_cycles,
            upper_cycles,
            leaf_due: Vec::new(),
            upper_due: Vec::new(),
        }
    }

    /// Pops every cycle due at `now` into the due buffers and re-arms
    /// its schedule. Call once per simulation tick, then read
    /// [`CycleDispatcher::leaf_due`] / [`CycleDispatcher::upper_due`].
    pub(crate) fn collect_due(&mut self, now: SimTime) {
        self.leaf_due.clear();
        self.upper_due.clear();
        while let Some((_, id)) = self.queue.pop_before(now) {
            match id {
                CycleId::Leaf(i) => {
                    self.leaf_cycles[i].fire(now);
                    self.queue.schedule(self.leaf_cycles[i].next_at(), id);
                    self.leaf_due.push(i);
                }
                CycleId::Upper(i) => {
                    self.upper_cycles[i].fire(now);
                    self.queue.schedule(self.upper_cycles[i].next_at(), id);
                    self.upper_due.push(i);
                }
            }
        }
        self.leaf_due.sort_unstable();
        self.upper_due.sort_unstable();
    }

    /// Leaf indices due at the last [`CycleDispatcher::collect_due`],
    /// ascending.
    pub(crate) fn leaf_due(&self) -> &[usize] {
        &self.leaf_due
    }

    /// Upper indices due at the last [`CycleDispatcher::collect_due`],
    /// ascending — SBs sort before MSBs, preserving the
    /// children-before-parents evaluation order.
    pub(crate) fn upper_due(&self) -> &[usize] {
        &self.upper_due
    }

    /// The cycle schedule of leaf `i` (phase introspection).
    pub(crate) fn leaf_cycle(&self, i: usize) -> &CycleSchedule {
        &self.leaf_cycles[i]
    }

    /// The per-tier cycle schedules, for snapshotting. The event queue
    /// itself is derived state: one armed entry per schedule at its
    /// `next_at`, so the schedules alone reconstruct it.
    pub(crate) fn schedules(&self) -> (&[CycleSchedule], &[CycleSchedule]) {
        (&self.leaf_cycles, &self.upper_cycles)
    }

    /// Restores the per-tier schedules from a snapshot and re-arms the
    /// event queue from them. Fresh queue sequence numbers are
    /// behaviourally identical: [`CycleDispatcher::collect_due`] sorts
    /// each tier's due list ascending, erasing pop order.
    pub(crate) fn restore_schedules(
        &mut self,
        leaf: Vec<CycleSchedule>,
        upper: Vec<CycleSchedule>,
    ) -> Result<(), dcsim::SnapError> {
        if leaf.len() != self.leaf_cycles.len() || upper.len() != self.upper_cycles.len() {
            return Err(dcsim::SnapError::Corrupt(format!(
                "dispatcher snapshot tier sizes ({}, {}) disagree with the rebuilt control \
                 plane ({}, {})",
                leaf.len(),
                upper.len(),
                self.leaf_cycles.len(),
                self.upper_cycles.len()
            )));
        }
        self.leaf_cycles = leaf;
        self.upper_cycles = upper;
        let mut queue = EventQueue::new();
        for (i, s) in self.leaf_cycles.iter().enumerate() {
            queue.schedule(s.next_at(), CycleId::Leaf(i));
        }
        for (i, s) in self.upper_cycles.iter().enumerate() {
            queue.schedule(s.next_at(), CycleId::Upper(i));
        }
        self.queue = queue;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dispatcher(leaf_phases_ms: &[u64], upper_phases_ms: &[u64]) -> CycleDispatcher {
        let leaf = leaf_phases_ms
            .iter()
            .map(|&ms| {
                CycleSchedule::with_phase(SimDuration::from_secs(3), SimDuration::from_millis(ms))
            })
            .collect();
        let upper = upper_phases_ms
            .iter()
            .map(|&ms| {
                CycleSchedule::with_phase(SimDuration::from_secs(9), SimDuration::from_millis(ms))
            })
            .collect();
        CycleDispatcher::new(leaf, upper)
    }

    #[test]
    fn phase_zero_fires_every_tier_on_its_grid() {
        let mut d = dispatcher(&[0, 0, 0], &[0]);
        d.collect_due(SimTime::ZERO);
        assert_eq!(d.leaf_due(), &[0, 1, 2]);
        assert_eq!(d.upper_due(), &[0]);
        d.collect_due(SimTime::from_secs(1));
        assert!(d.leaf_due().is_empty() && d.upper_due().is_empty());
        d.collect_due(SimTime::from_secs(3));
        assert_eq!(d.leaf_due(), &[0, 1, 2]);
        assert!(d.upper_due().is_empty());
        d.collect_due(SimTime::from_secs(9));
        assert_eq!(d.upper_due(), &[0]);
    }

    #[test]
    fn spread_phases_fire_at_distinct_instants() {
        let mut d = dispatcher(&[0, 1000, 2000], &[0]);
        let mut fired_at: Vec<Vec<u64>> = vec![Vec::new(); 3];
        for t in 0..12 {
            d.collect_due(SimTime::from_secs(t));
            for &i in d.leaf_due() {
                fired_at[i].push(t);
            }
        }
        assert_eq!(fired_at[0], vec![0, 3, 6, 9]);
        assert_eq!(fired_at[1], vec![1, 4, 7, 10]);
        assert_eq!(fired_at[2], vec![2, 5, 8, 11]);
    }

    #[test]
    fn coarse_ticks_coalesce_to_one_firing_per_controller() {
        let mut d = dispatcher(&[0, 750], &[]);
        d.collect_due(SimTime::ZERO);
        assert_eq!(d.leaf_due(), &[0]);
        // Jump 10 s: each leaf missed multiple boundaries, runs once.
        d.collect_due(SimTime::from_secs(10));
        assert_eq!(d.leaf_due(), &[0, 1]);
        // Grids recovered: 12 s for leaf 0, 12.75 s for leaf 1.
        assert_eq!(d.leaf_cycle(0).next_at(), SimTime::from_secs(12));
        assert_eq!(d.leaf_cycle(1).next_at(), SimTime::from_millis(12_750));
    }

    #[test]
    fn even_spread_offsets_partition_the_window() {
        let mut rng = SimRng::seed_from(1);
        let offsets =
            PhasePolicy::EvenSpread(SimDuration::from_secs(3)).offsets(4, "leaf", &mut rng);
        let ms: Vec<u64> = offsets.iter().map(|o| o.as_millis()).collect();
        assert_eq!(ms, vec![0, 750, 1500, 2250]);
        // Lockstep and even-spread must not consume randomness.
        let pristine = SimRng::seed_from(1);
        let mut untouched = SimRng::seed_from(1);
        PhasePolicy::Lockstep.offsets(4, "leaf", &mut untouched);
        PhasePolicy::EvenSpread(SimDuration::from_secs(3)).offsets(4, "leaf", &mut untouched);
        assert_eq!(untouched, pristine);
    }

    #[test]
    fn jittered_offsets_are_deterministic_per_seed() {
        let draw = || {
            let mut rng = SimRng::seed_from(9);
            PhasePolicy::Jittered(SimDuration::from_secs(3)).offsets(8, "leaf", &mut rng)
        };
        assert_eq!(draw(), draw());
        assert!(draw().iter().all(|o| *o < SimDuration::from_secs(3)));
    }
}
