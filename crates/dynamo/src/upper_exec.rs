//! The upper controller tier: one [`UpperController`] per SB and MSB,
//! evaluated children-before-parents so parents see fresh child totals.

use std::collections::HashMap;

use dcsim::snap::{get_f64_vec, put_f64_slice, SnapError, SnapReader, SnapWriter, Snapshot};
use dcsim::SimTime;
use dynamo_controller::{
    ChildDirective, ChildReport, UpperConfig, UpperController, UpperControllerState,
};
use powerinfra::{DeviceId, DeviceLevel, Power, Topology};

use crate::control_plane::SystemConfig;
use crate::events::{ControllerEvent, ControllerEventKind};
use crate::failover::FailoverState;
use crate::leaf_exec::LeafTier;
use crate::obs::Observability;

/// Which tier an upper controller's child belongs to.
#[derive(Debug, Clone, Copy)]
enum ChildRef {
    Leaf(usize),
    Upper(usize),
}

/// The upper tier as parallel arrays, ordered SBs first then MSBs
/// (children before parents).
pub(crate) struct UpperTier {
    pub(crate) devices: Vec<DeviceId>,
    pub(crate) controllers: Vec<UpperController>,
    children: Vec<Vec<ChildRef>>,
    last_total: Vec<Power>,
    /// Planned-peak quotas from topology metadata, by upper index.
    quotas: Vec<Power>,
    pub(crate) index_of: HashMap<DeviceId, usize>,
    /// Child-report scratch reused across cycles.
    report_scratch: Vec<ChildReport>,
}

impl UpperTier {
    /// Builds SB uppers over leaf children, then MSB uppers over SB
    /// uppers, using `leaves` to resolve leaf children by device id.
    pub(crate) fn build(topo: &Topology, config: &SystemConfig, leaves: &LeafTier) -> Self {
        let mut devices = Vec::new();
        let mut controllers = Vec::new();
        let mut children: Vec<Vec<ChildRef>> = Vec::new();
        let mut index_of = HashMap::new();
        for sb in topo.devices_at(DeviceLevel::Sb) {
            let dev = topo.device(sb);
            let kids: Vec<ChildRef> = dev
                .children
                .iter()
                .map(|c| ChildRef::Leaf(leaves.index_of[c]))
                .collect();
            if kids.is_empty() {
                continue;
            }
            index_of.insert(sb, controllers.len());
            controllers.push(UpperController::new(
                dev.name.clone(),
                upper_config(config, dev.rating),
                kids.len(),
            ));
            children.push(kids);
            devices.push(sb);
        }
        for msb in topo.devices_at(DeviceLevel::Msb) {
            let dev = topo.device(msb);
            let kids: Vec<ChildRef> = dev
                .children
                .iter()
                .filter_map(|c| index_of.get(c).map(|&i| ChildRef::Upper(i)))
                .collect();
            if kids.is_empty() {
                continue;
            }
            index_of.insert(msb, controllers.len());
            controllers.push(UpperController::new(
                dev.name.clone(),
                upper_config(config, dev.rating),
                kids.len(),
            ));
            children.push(kids);
            devices.push(msb);
        }

        let n = devices.len();
        let quotas: Vec<Power> = devices.iter().map(|&d| topo.device(d).quota).collect();
        UpperTier {
            devices,
            controllers,
            children,
            last_total: vec![Power::ZERO; n],
            quotas,
            index_of,
            report_scratch: Vec::new(),
        }
    }

    /// Number of upper controllers.
    pub(crate) fn len(&self) -> usize {
        self.controllers.len()
    }

    /// Captures the tier's dynamic state for a snapshot: controller
    /// decision state plus the last child totals parents read. Devices,
    /// children and quotas are topology-derived and rebuilt from
    /// config; `report_scratch` is per-cycle scratch.
    pub(crate) fn state(&self) -> UpperTierState {
        UpperTierState {
            controllers: self.controllers.iter().map(|c| c.state()).collect(),
            last_total_w: self.last_total.iter().map(|p| p.as_watts()).collect(),
        }
    }

    /// Restores the tier's dynamic state from a decoded snapshot taken
    /// against an identically-configured control plane.
    pub(crate) fn restore(&mut self, state: &UpperTierState) -> Result<(), SnapError> {
        if state.controllers.len() != self.len() {
            return Err(SnapError::Corrupt(format!(
                "upper tier snapshot has {} controllers, rebuilt control plane has {}",
                state.controllers.len(),
                self.len()
            )));
        }
        for (c, s) in self.controllers.iter_mut().zip(&state.controllers) {
            c.restore(s)?;
        }
        for (p, &w) in self.last_total.iter_mut().zip(&state.last_total_w) {
            *p = Power::from_watts(w);
        }
        Ok(())
    }

    /// Runs the due uppers in index order. The due list is ascending and
    /// SBs were pushed before MSBs, so children run before parents and
    /// parents see fresh child totals.
    pub(crate) fn run_due(
        &mut self,
        now: SimTime,
        due: &[usize],
        leaves: &mut LeafTier,
        failover: &mut FailoverState,
        events: &mut Vec<ControllerEvent>,
        obs: &mut Observability,
    ) {
        // Upper trace tracks sit above the leaf tracks.
        let track_base = leaves.len() as u32;
        for &i in due {
            if failover.take_upper(i) {
                let name = self.controllers[i].name_shared();
                obs.record_upper_failover(now, track_base + i as u32, &name);
                events.push(ControllerEvent {
                    at: now,
                    device: self.devices[i],
                    controller: name,
                    kind: ControllerEventKind::Failover,
                });
                continue;
            }
            self.report_scratch.clear();
            for &child in &self.children[i] {
                self.report_scratch.push(match child {
                    ChildRef::Leaf(j) => ChildReport {
                        power: leaves.last_aggregate[j],
                        quota: leaves.quotas[j],
                        physical_limit: leaves.controllers[j].config().physical_limit,
                    },
                    ChildRef::Upper(j) => ChildReport {
                        power: self.last_total[j],
                        quota: self.quotas[j],
                        physical_limit: self.controllers[j].config().physical_limit,
                    },
                });
            }
            let outcome = self.controllers[i].cycle(now, &self.report_scratch);
            self.last_total[i] = outcome.total;

            // Apply directives to children (contract propagation).
            // Indexed access instead of iterating `children[i]` keeps
            // the child list borrow disjoint from the controller
            // mutations below — no per-cycle clone of the child list.
            let mut contracts = 0;
            for (k, &directive) in outcome.directives.iter().enumerate() {
                let limit = match directive {
                    ChildDirective::SetContract(l) => {
                        contracts += 1;
                        Some(l)
                    }
                    ChildDirective::ClearContract => None,
                    ChildDirective::Unchanged => continue,
                };
                match self.children[i][k] {
                    ChildRef::Leaf(j) => {
                        // The leaf's effective limit moved from outside
                        // the fleet: its next cycle must run for real.
                        leaves.quiet[j] = false;
                        leaves.controllers[j].set_contractual_limit(limit);
                    }
                    ChildRef::Upper(j) => self.controllers[j].set_contractual_limit(limit),
                }
            }
            if obs.is_enabled() {
                obs.record_upper_cycle(
                    now,
                    track_base + i as u32,
                    &self.controllers[i].name_shared(),
                    outcome.capped,
                    outcome.uncapped,
                    contracts as u32,
                );
            }
            if outcome.capped {
                events.push(ControllerEvent {
                    at: now,
                    device: self.devices[i],
                    controller: self.controllers[i].name_shared(),
                    kind: ControllerEventKind::UpperCapped { contracts },
                });
            } else if outcome.uncapped {
                events.push(ControllerEvent {
                    at: now,
                    device: self.devices[i],
                    controller: self.controllers[i].name_shared(),
                    kind: ControllerEventKind::UpperUncapped,
                });
            }
        }
    }
}

/// The upper tier's dynamic state.
pub(crate) struct UpperTierState {
    pub(crate) controllers: Vec<UpperControllerState>,
    pub(crate) last_total_w: Vec<f64>,
}

impl Snapshot for UpperTierState {
    const KIND: &'static str = "dynamo.UpperTierState";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        w.put_u64(self.controllers.len() as u64);
        for c in &self.controllers {
            c.encode_body(w);
        }
        put_f64_slice(w, &self.last_total_w);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let nc = r.get_u64()? as usize;
        let mut controllers = Vec::with_capacity(nc.min(1 << 20));
        for _ in 0..nc {
            controllers.push(UpperControllerState::decode_body(r)?);
        }
        let last_total_w = get_f64_vec(r)?;
        if last_total_w.len() != controllers.len() {
            return Err(SnapError::Corrupt(
                "upper tier snapshot arrays disagree on controller count".into(),
            ));
        }
        Ok(UpperTierState {
            controllers,
            last_total_w,
        })
    }
}

/// The shared upper-controller configuration for a device rating.
fn upper_config(config: &SystemConfig, rating: Power) -> UpperConfig {
    UpperConfig {
        physical_limit: rating,
        bands: config.upper_bands,
        poll_interval: config.upper_interval,
        bucket_width: rating * 0.01,
        policy: dynamo_controller::CoordinationPolicy::PunishOffenderFirst,
    }
}
