//! The grid-interactive layer: utility signals in, §III-D contractual
//! limits and DCUPS buffering out.
//!
//! Sits between the utility meter and Dynamo's capping hierarchy, and
//! runs on two timescales:
//!
//! * **slow (60 s default)** — the [`dyngrid::EconController`] reduces
//!   the current [`dyngrid::GridSignal`] to one site-wide contractual
//!   limit and apportions it across the MSB upper controllers by
//!   rating share, through [`crate::DynamoSystem::set_upper_contract`].
//!   The existing 9 s upper / 3 s leaf machinery does the rest; ramp
//!   limiting and the deadband in the economic controller keep those
//!   loops from ever seeing an oscillating setpoint.
//! * **fast (every tick)** — per-leaf [`powerinfra::Dcups`] banks shave
//!   utility draw above the economic target: while a curtailment is
//!   being ramped into (or ridden through entirely), batteries supply
//!   `servers − target`, each bank respecting the charge-reserve floor
//!   that preserves its 90 s outage rating at the leaf's current load.
//!   When the signal clears, banks recharge at their configured rate —
//!   and that recharge power counts *into* utility draw.
//!
//! Utility draw is therefore `servers − discharge + recharge`; breaker
//! thermal models keep seeing true server draw, so the epoch-keyed
//! draw cache and every determinism invariant are untouched.

use std::sync::Arc;

use dcsim::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use dcsim::{SimDuration, SimTime};
use dyngrid::{EconConfig, EconController, EconControllerState, GridScenario};
use powerinfra::{Dcups, DeviceId, DeviceLevel, Power, Topology};

use crate::control_plane::DynamoSystem;

/// Configuration of the per-leaf DCUPS banks the grid layer may ride.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcupsBankConfig {
    /// Whether banks participate at all. Disabled, the economic
    /// controller still pushes contracts; there is just no buffer.
    pub enabled: bool,
    /// Recharge rate as a fraction of design load (see
    /// [`Dcups::with_recharge_frac`]).
    pub recharge_frac: f64,
    /// Extra charge kept above the ride-through reserve floor, as a
    /// fraction of capacity — margin against load rising between the
    /// reserve computation and a real outage.
    pub reserve_margin_frac: f64,
}

impl Default for DcupsBankConfig {
    fn default() -> Self {
        DcupsBankConfig {
            enabled: true,
            recharge_frac: 0.1,
            reserve_margin_frac: 0.05,
        }
    }
}

/// Configuration of the whole grid layer, passed to
/// [`crate::DatacenterBuilder::grid`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridConfig {
    /// The utility signal schedule.
    pub scenario: GridScenario,
    /// Economic-controller tunables.
    pub econ: EconConfig,
    /// DCUPS bank policy.
    pub dcups: DcupsBankConfig,
}

impl GridConfig {
    /// A grid layer running `scenario` with default economics and
    /// battery policy.
    pub fn for_scenario(scenario: GridScenario) -> Self {
        GridConfig {
            scenario,
            econ: EconConfig::default(),
            dcups: DcupsBankConfig::default(),
        }
    }
}

/// An active curtailment window's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Episode {
    started: SimTime,
    /// First settlement boundary whose interval-mean utility draw was
    /// at or under the limit.
    contained_at: Option<SimTime>,
    /// Whether an interval mean breached the limit past the
    /// containment budget.
    violated: bool,
}

/// Condensed grid-layer statistics for reports and experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSummary {
    /// Scenario name.
    pub scenario: String,
    /// Curtailment windows entered.
    pub curtailments: u64,
    /// Windows contained within the budget (and never breached after).
    pub contained: u64,
    /// Seconds of over-limit utility draw past the containment budget.
    pub violation_secs: u64,
    /// Seconds with at least one bank intentionally discharging.
    pub discharge_secs: u64,
    /// Economic cycles run.
    pub econ_cycles: u64,
    /// Contract changes pushed (the churn the deadband bounds).
    pub limit_changes: u64,
    /// Utility draw right now.
    pub utility_draw: Power,
    /// The site contract in force, if any.
    pub site_contract: Option<Power>,
    /// Aggregate bank charge fraction right now.
    pub charge_fraction: f64,
    /// Lowest aggregate charge fraction seen.
    pub charge_low_water: f64,
    /// Settle time of the most recent contained window: first
    /// in-budget settlement boundary minus window start, in seconds.
    pub last_containment_secs: Option<u64>,
}

/// The grid-interactive layer. Owned by [`crate::Datacenter`] when the
/// builder configures one; stepped once per simulation tick between
/// the breaker pass and the controller cycles.
pub struct GridLayer {
    scenario: GridScenario,
    econ: EconController,
    dcups_cfg: DcupsBankConfig,
    /// MSB devices carrying upper controllers, with their rating share
    /// of site capacity, in build order.
    msbs: Vec<(DeviceId, f64)>,
    /// One aggregate DCUPS bank per leaf, in leaf build order.
    banks: Vec<Dcups>,
    /// Interned name for flight records.
    name: Arc<str>,
    /// Per-bank available-discharge scratch (watts), sized once.
    avail_scratch: Vec<f64>,
    /// Whether any bank is below full charge (recharge fast-path skip).
    any_below_full: bool,
    /// Cached aggregate charge fraction; exact while no bank stepped.
    charge_frac: f64,
    /// Utility draw last tick (watts).
    utility_draw_w: f64,
    episode: Option<Episode>,
    curtailments: u64,
    contained: u64,
    violation_ms: u64,
    discharge_ms: u64,
    charge_low_water: f64,
    /// Utility energy accumulated in the open settlement interval (J).
    period_energy_j: f64,
    /// Length of the open settlement interval so far (ms).
    period_ms: u64,
    /// Settle time of the most recent contained interval: first
    /// in-budget settlement boundary minus window start, in ms.
    last_containment_ms: Option<u64>,
}

/// Half the 1 W sensor quantum: an interval mean within this of the
/// limit counts as contained, mirroring the settle kernels' snap band.
const CONTAIN_EPS_W: f64 = 0.5;

impl GridLayer {
    /// Builds the layer over the topology's MSB controllers and one
    /// bank per leaf device.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or a topology without MSB
    /// controllers.
    pub(crate) fn build(
        config: GridConfig,
        topo: &Topology,
        leaf_devices: &[DeviceId],
        upper_devices: &[DeviceId],
    ) -> Self {
        config
            .econ
            .validate()
            .expect("invalid grid economic config");
        assert!(
            config.dcups.recharge_frac > 0.0 && config.dcups.recharge_frac <= 1.0,
            "DCUPS recharge fraction {} outside (0, 1]",
            config.dcups.recharge_frac
        );
        assert!(
            (0.0..1.0).contains(&config.dcups.reserve_margin_frac),
            "DCUPS reserve margin {} outside [0, 1)",
            config.dcups.reserve_margin_frac
        );
        let msb_devices: Vec<DeviceId> = upper_devices
            .iter()
            .copied()
            .filter(|&d| topo.device(d).level == DeviceLevel::Msb)
            .collect();
        assert!(
            !msb_devices.is_empty(),
            "grid layer needs at least one MSB upper controller"
        );
        let capacity: Power = msb_devices
            .iter()
            .map(|&d| topo.device(d).rating)
            .fold(Power::ZERO, |a, b| a + b);
        let msbs: Vec<(DeviceId, f64)> = msb_devices
            .iter()
            .map(|&d| (d, topo.device(d).rating.as_watts() / capacity.as_watts()))
            .collect();
        let banks: Vec<Dcups> = if config.dcups.enabled {
            leaf_devices
                .iter()
                .map(|&d| {
                    Dcups::with_recharge_frac(topo.device(d).rating, config.dcups.recharge_frac)
                })
                .collect()
        } else {
            Vec::new()
        };
        let n_banks = banks.len();
        GridLayer {
            scenario: config.scenario,
            econ: EconController::new(config.econ, capacity),
            dcups_cfg: config.dcups,
            msbs,
            banks,
            name: "grid-econ".into(),
            avail_scratch: vec![0.0; n_banks],
            any_below_full: false,
            charge_frac: 1.0,
            utility_draw_w: 0.0,
            episode: None,
            curtailments: 0,
            contained: 0,
            violation_ms: 0,
            discharge_ms: 0,
            charge_low_water: 1.0,
            period_energy_j: 0.0,
            period_ms: 0,
            last_containment_ms: None,
        }
    }

    /// The MSB devices carrying the apportioned site contract, with
    /// their rating share, in build order.
    pub(crate) fn msbs(&self) -> &[(DeviceId, f64)] {
        &self.msbs
    }

    /// The utility-signal schedule.
    pub fn scenario(&self) -> &GridScenario {
        &self.scenario
    }

    /// The site economic controller.
    pub fn econ(&self) -> &EconController {
        &self.econ
    }

    /// The per-leaf DCUPS banks (leaf build order; empty when banks are
    /// disabled).
    pub fn banks(&self) -> &[Dcups] {
        &self.banks
    }

    /// Utility draw last tick: servers minus discharge plus recharge.
    pub fn utility_draw(&self) -> Power {
        Power::from_watts(self.utility_draw_w)
    }

    /// Whether a curtailment window is active right now.
    pub fn curtailment_active(&self) -> bool {
        self.episode.is_some()
    }

    /// Condensed statistics for reports.
    pub fn summary(&self) -> GridSummary {
        GridSummary {
            scenario: self.scenario.name().to_string(),
            curtailments: self.curtailments,
            contained: self.contained,
            violation_secs: self.violation_ms / 1000,
            discharge_secs: self.discharge_ms / 1000,
            econ_cycles: self.econ.cycles(),
            limit_changes: self.econ.limit_changes(),
            utility_draw: self.utility_draw(),
            site_contract: self.econ.pushed(),
            charge_fraction: self.charge_frac,
            charge_low_water: self.charge_low_water,
            last_containment_secs: self.last_containment_ms.map(|ms| ms / 1000),
        }
    }

    /// The load a bank's reserve floor is computed against: the leaf's
    /// maintained power partial, or the bank's design load when the
    /// partials are unavailable (conservative: no discharge headroom).
    fn bank_load(&self, leaf_loads: Option<&[f64]>, i: usize) -> Power {
        match leaf_loads.and_then(|l| l.get(i)) {
            Some(&w) => Power::from_watts(w),
            None => self.banks[i].design_load(),
        }
    }

    /// Energy a bank may discharge on purpose: above both the
    /// ride-through floor at `load` and the configured margin.
    fn bank_available_j(&self, i: usize, load: Power) -> f64 {
        let bank = &self.banks[i];
        let margin_j = self.dcups_cfg.reserve_margin_frac * bank.capacity_joules();
        (bank.available_discharge_joules(load) - margin_j).max(0.0)
    }

    /// Battery power the site can plan a contract around: half of what
    /// the banks could sustain for one economic period above every
    /// reserve floor. Planning on the full sustain would budget the
    /// banks down to the reserve floor within a single period, leaving
    /// nothing to bridge the capping hierarchy's settle transient after
    /// the next contract push — the half not planned is that bridge.
    /// The spend therefore decays geometrically toward the floor
    /// instead of slamming into it.
    fn ride_headroom(&self, leaf_loads: Option<&[f64]>) -> Power {
        if !self.dcups_cfg.enabled || self.banks.is_empty() {
            return Power::ZERO;
        }
        let plan_s = 2.0 * self.econ.config().period.as_millis() as f64 / 1000.0;
        let mut total = 0.0;
        for i in 0..self.banks.len() {
            let load = self.bank_load(leaf_loads, i);
            let avail_w = (self.bank_available_j(i, load) / plan_s)
                .min(self.banks[i].design_load().as_watts());
            total += avail_w;
        }
        Power::from_watts(total)
    }

    /// Closes the settlement interval ending at `now`: judges the open
    /// curtailment window (if any) on the interval's *mean* utility
    /// draw, then resets the accumulators. Intervals ending within two
    /// economic periods of the window start are the containment budget:
    /// they may prove containment but never count as violations, giving
    /// the contract push and the capping loops below time to settle
    /// without the brief over-limit noise of an uncontrolled site
    /// being booked as a breach.
    fn settle_period(&mut self, now: SimTime, limit_w: Option<f64>, system: &mut DynamoSystem) {
        if self.period_ms == 0 {
            return;
        }
        let period_ms = self.period_ms;
        let mean_w = self.period_energy_j / (period_ms as f64 / 1000.0);
        self.period_energy_j = 0.0;
        self.period_ms = 0;
        let (Some(mut ep), Some(limit_w)) = (self.episode, limit_w) else {
            return;
        };
        if mean_w <= limit_w + CONTAIN_EPS_W {
            if ep.contained_at.is_none() {
                ep.contained_at = Some(now);
                self.last_containment_ms = Some(now.as_millis() - ep.started.as_millis());
                self.episode = Some(ep);
            }
            return;
        }
        let budget = SimDuration::from_millis(2 * self.econ.config().period.as_millis());
        if now > ep.started + budget {
            self.violation_ms += period_ms;
            let first = !ep.violated;
            ep.violated = true;
            self.episode = Some(ep);
            let obs = system.observability_mut();
            obs.record_grid_violation_tick(period_ms / 1000);
            if first {
                obs.record_curtailment_violation(now, &self.name, limit_w, mean_w);
            }
        }
    }

    /// Recomputes the cached aggregate charge fraction (only called in
    /// ticks where a bank actually stepped).
    fn refresh_charge_frac(&mut self) {
        let mut charge = 0.0;
        let mut cap = 0.0;
        for b in &self.banks {
            charge += b.charge_joules();
            cap += b.capacity_joules();
        }
        self.charge_frac = if cap > 0.0 { charge / cap } else { 1.0 };
        self.charge_low_water = self.charge_low_water.min(self.charge_frac);
    }

    /// Advances the layer by one tick. `site_draw` is the true server
    /// draw at MSB level; `leaf_loads` the fleet's per-leaf power
    /// partials when clean. Pushes contracts and records metrics
    /// through `system`.
    pub(crate) fn step(
        &mut self,
        now: SimTime,
        dt: SimDuration,
        site_draw: Power,
        leaf_loads: Option<&[f64]>,
        system: &mut DynamoSystem,
    ) {
        let signal = *self.scenario.signal_at(now);
        let capacity_w = self.econ.capacity().as_watts();
        let curtail_w = signal.curtail_frac.map(|f| f * capacity_w);

        // Curtailment window transitions.
        match (self.episode.is_some(), curtail_w.is_some()) {
            (false, true) => {
                self.episode = Some(Episode {
                    started: now,
                    contained_at: None,
                    violated: false,
                });
                self.curtailments += 1;
                system.observability_mut().record_grid_curtailment_start();
            }
            (true, false) => {
                let ep = self.episode.take().expect("episode checked above");
                let contained = ep.contained_at.is_some() && !ep.violated;
                if contained {
                    self.contained += 1;
                }
                system
                    .observability_mut()
                    .record_grid_curtailment_end(contained);
            }
            _ => {}
        }

        // Slow loop: close the settlement interval, then run the
        // economic cycle.
        if self.econ.due(now) {
            self.settle_period(now, curtail_w, system);
            let headroom = self.ride_headroom(leaf_loads);
            let decision = self.econ.cycle(now, &signal, headroom);
            if decision.changed {
                for &(dev, share) in &self.msbs {
                    system.set_upper_contract(dev, decision.contract.map(|c| c * share));
                }
            }
            system
                .observability_mut()
                .record_grid_econ_cycle(decision.changed);
        }

        // Fast loop: DCUPS buffering against the current utility target.
        let dt_s = dt.as_millis() as f64 / 1000.0;
        let mut discharge_w = 0.0;
        let mut recharge_w = 0.0;
        if self.dcups_cfg.enabled && !self.banks.is_empty() {
            let target_w = self.econ.utility_target().map(|p| p.as_watts());
            let need_w = target_w
                .map(|t| (site_draw.as_watts() - t).max(0.0))
                .unwrap_or(0.0);
            if need_w > 0.0 {
                // Proportional take: every bank contributes its share of
                // available power, so no leaf's reserve drains first.
                let mut total_avail = 0.0;
                for i in 0..self.banks.len() {
                    let load = self.bank_load(leaf_loads, i);
                    let avail_w = (self.bank_available_j(i, load) / dt_s)
                        .min(self.banks[i].design_load().as_watts());
                    self.avail_scratch[i] = avail_w;
                    total_avail += avail_w;
                }
                if total_avail > 0.0 {
                    let scale = (need_w / total_avail).min(1.0);
                    for i in 0..self.banks.len() {
                        let take = self.avail_scratch[i] * scale;
                        if take > 0.0 {
                            self.banks[i].step(false, Power::from_watts(take), dt);
                            discharge_w += take;
                        }
                    }
                }
                if discharge_w > 0.0 {
                    self.any_below_full = true;
                    self.discharge_ms += dt.as_millis();
                    system
                        .observability_mut()
                        .record_dcups_discharge(dt.as_millis() / 1000);
                    self.refresh_charge_frac();
                }
            } else if self.any_below_full && target_w.is_none() {
                // Quiet grid: recharge. The recharge power is real load
                // and counts into utility draw.
                let mut all_full = true;
                for bank in &mut self.banks {
                    if bank.charge_joules() < bank.capacity_joules() {
                        let before = bank.charge_joules();
                        bank.step(true, Power::ZERO, dt);
                        recharge_w += (bank.charge_joules() - before) / dt_s;
                        if bank.charge_joules() < bank.capacity_joules() {
                            all_full = false;
                        }
                    }
                }
                self.any_below_full = !all_full;
                self.refresh_charge_frac();
            }
        }

        let utility_w = site_draw.as_watts() - discharge_w + recharge_w;
        self.utility_draw_w = utility_w;

        // Settlement metering: utility energy accrues into the open
        // interval; judgment happens at the next economic boundary,
        // above, on the interval mean — the quantity a utility meters.
        self.period_energy_j += utility_w * dt_s;
        self.period_ms += dt.as_millis();

        let obs = system.observability_mut();
        if obs.is_enabled() {
            obs.set_grid_gauges(
                signal.price_per_mwh,
                signal.frequency_hz,
                curtail_w.unwrap_or(0.0),
                utility_w,
                self.econ.pushed().map_or(0.0, |p| p.as_watts()),
                self.charge_frac,
            );
        }
    }

    /// Captures the layer's dynamic state.
    pub(crate) fn state(&self) -> GridLayerState {
        GridLayerState {
            econ: self.econ.state(),
            banks: self.banks.clone(),
            episode: self.episode.map(|e| EpisodeState {
                started_ms: e.started.as_millis(),
                contained_at_ms: e.contained_at.map(|t| t.as_millis()),
                violated: e.violated,
            }),
            curtailments: self.curtailments,
            contained: self.contained,
            violation_ms: self.violation_ms,
            discharge_ms: self.discharge_ms,
            charge_low_water: self.charge_low_water,
            utility_draw_w: self.utility_draw_w,
            any_below_full: self.any_below_full,
            period_energy_j: self.period_energy_j,
            period_ms: self.period_ms,
            last_containment_ms: self.last_containment_ms,
        }
    }

    /// Restores dynamic state captured by [`GridLayer::state`].
    pub(crate) fn restore(&mut self, state: &GridLayerState) -> Result<(), SnapError> {
        if state.banks.len() != self.banks.len() {
            return Err(SnapError::Corrupt(format!(
                "grid snapshot has {} DCUPS banks, rebuilt layer has {}",
                state.banks.len(),
                self.banks.len()
            )));
        }
        self.econ.restore(&state.econ)?;
        self.banks.clone_from(&state.banks);
        self.episode = state.episode.as_ref().map(|e| Episode {
            started: SimTime::from_millis(e.started_ms),
            contained_at: e.contained_at_ms.map(SimTime::from_millis),
            violated: e.violated,
        });
        self.curtailments = state.curtailments;
        self.contained = state.contained;
        self.violation_ms = state.violation_ms;
        self.discharge_ms = state.discharge_ms;
        self.charge_low_water = state.charge_low_water;
        self.utility_draw_w = state.utility_draw_w;
        self.any_below_full = state.any_below_full;
        self.period_energy_j = state.period_energy_j;
        self.period_ms = state.period_ms;
        self.last_containment_ms = state.last_containment_ms;
        // Cached aggregate, recomputed from the restored banks.
        let mut charge = 0.0;
        let mut cap = 0.0;
        for b in &self.banks {
            charge += b.charge_joules();
            cap += b.capacity_joules();
        }
        self.charge_frac = if cap > 0.0 { charge / cap } else { 1.0 };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Datacenter, DatacenterBuilder, ServicePlan};
    use dcsim::SimDuration;
    use dyngrid::GridScenario;
    use workloads::ServiceKind;

    /// A small datacenter whose MSB rating is pinned to ~1.15× its
    /// steady draw, so the default presets' 0.80 curtailment actually
    /// binds (0.92× draw) while the physical three-band stays in Hold.
    fn grid_dc(seed: u64, config: GridConfig) -> Datacenter {
        let baseline = {
            let mut dc = base(seed).build();
            dc.run_for(SimDuration::from_secs(60));
            dc.fleet().stats().total_power
        };
        base(seed).msb_rating(baseline * 1.15).grid(config).build()
    }

    fn base(seed: u64) -> DatacenterBuilder {
        DatacenterBuilder::new()
            .sbs_per_msb(2)
            .rpps_per_sb(2)
            .racks_per_rpp(2)
            .servers_per_rack(4)
            .service_plan(ServicePlan::Mix(vec![
                (ServiceKind::Web, 0.6),
                (ServiceKind::Cache, 0.4),
            ]))
            .seed(seed)
    }

    fn no_batteries(scenario: GridScenario) -> GridConfig {
        GridConfig {
            scenario,
            econ: EconConfig::default(),
            dcups: DcupsBankConfig {
                enabled: false,
                ..DcupsBankConfig::default()
            },
        }
    }

    #[test]
    fn curtailment_contained_by_contract_pushes_alone() {
        let scenario = GridScenario::preset("curtailment-window").unwrap();
        let mut dc = grid_dc(31, no_batteries(scenario));
        // Window is 300..900 s; the containment budget is two 60 s
        // economic periods. Run well past the clear.
        dc.run_for(SimDuration::from_secs(1000));
        let summary = dc.grid().expect("grid configured").summary();
        assert_eq!(summary.curtailments, 1, "{summary:?}");
        assert_eq!(summary.contained, 1, "window not contained: {summary:?}");
        assert_eq!(summary.violation_secs, 0, "{summary:?}");
        assert_eq!(summary.discharge_secs, 0, "batteries are disabled");
        // Contained within the two-period budget.
        assert!(summary.last_containment_secs.unwrap() <= 120, "{summary:?}");
        // Churn bound: one push down (ramp covers 20% in one 50% step),
        // one clear staircase back up — far fewer than the cycle count.
        assert!(
            summary.limit_changes <= 6,
            "limit churn {} too high",
            summary.limit_changes
        );
        assert!(summary.econ_cycles >= 16, "{summary:?}");
        // After the clear the staircase must fully release the site.
        assert_eq!(summary.site_contract, None, "{summary:?}");
    }

    #[test]
    fn batteries_ride_through_and_recharge() {
        let scenario = GridScenario::preset("curtailment-window").unwrap();
        let mut dc = grid_dc(33, GridConfig::for_scenario(scenario));
        dc.run_until(dcsim::SimTime::from_millis(600_000));
        let grid = dc.grid().unwrap();
        assert!(grid.curtailment_active());
        let mid = grid.summary();
        // The banks dwarf this tiny site's draw, so the window rides on
        // discharge: utility draw is held at the curtailed target while
        // true server draw may sit above it.
        assert!(mid.discharge_secs > 0, "{mid:?}");
        assert_eq!(mid.violation_secs, 0, "{mid:?}");
        assert!(mid.charge_fraction < 1.0, "{mid:?}");
        dc.run_for(SimDuration::from_secs(1500));
        let end = dc.grid().unwrap().summary();
        assert_eq!(end.curtailments, 1, "{end:?}");
        assert_eq!(end.contained, 1, "{end:?}");
        // Quiet grid after the clear: banks recharge back to full.
        assert!(
            end.charge_fraction > 0.999,
            "banks did not recharge: {end:?}"
        );
        assert!(end.charge_low_water < 1.0, "{end:?}");
    }

    #[test]
    fn quiet_scenario_never_touches_contracts() {
        let mut dc = grid_dc(35, GridConfig::for_scenario(GridScenario::nominal()));
        dc.run_for(SimDuration::from_secs(600));
        let summary = dc.grid().unwrap().summary();
        assert_eq!(summary.limit_changes, 0, "{summary:?}");
        assert_eq!(summary.curtailments, 0, "{summary:?}");
        assert_eq!(summary.discharge_secs, 0, "{summary:?}");
        assert_eq!(summary.site_contract, None, "{summary:?}");
        assert!(summary.econ_cycles >= 9, "{summary:?}");
        // No discharge, no recharge: utility draw is exactly server
        // draw, to the bit.
        let root = dc.topology().root();
        assert_eq!(
            summary.utility_draw.as_watts().to_bits(),
            dc.device_power(root).as_watts().to_bits()
        );
    }

    #[test]
    fn grid_runs_bit_identically_across_thread_counts() {
        let scenario = || GridScenario::preset("brownout").unwrap();
        let run = |threads: usize| {
            let mut dc = grid_dc(37, GridConfig::for_scenario(scenario()));
            dc.set_worker_threads(threads);
            dc.run_for(SimDuration::from_secs(400));
            let root = dc.topology().root();
            (
                dc.device_power(root).as_watts().to_bits(),
                dc.grid().unwrap().summary(),
            )
        };
        let (p1, s1) = run(1);
        let (p2, s2) = run(2);
        assert_eq!(p1, p2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn grid_layer_state_round_trips_mid_curtailment() {
        let scenario = GridScenario::preset("curtailment-window").unwrap();
        let mut dc = grid_dc(39, GridConfig::for_scenario(scenario));
        dc.run_for(SimDuration::from_secs(400));
        assert!(dc.grid().unwrap().curtailment_active());
        let state = dc.grid().unwrap().state();
        let bytes = state.to_snap_bytes();
        let back = GridLayerState::from_snap_bytes(&bytes).expect("decode");
        assert_eq!(state, back);
        assert!(back.episode.is_some());
        assert!(!back.banks.is_empty());
    }
}

/// An in-flight curtailment window, snapshot form.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EpisodeState {
    pub(crate) started_ms: u64,
    pub(crate) contained_at_ms: Option<u64>,
    pub(crate) violated: bool,
}

/// The grid layer's dynamic state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct GridLayerState {
    pub(crate) econ: EconControllerState,
    pub(crate) banks: Vec<Dcups>,
    pub(crate) episode: Option<EpisodeState>,
    pub(crate) curtailments: u64,
    pub(crate) contained: u64,
    pub(crate) violation_ms: u64,
    pub(crate) discharge_ms: u64,
    pub(crate) charge_low_water: f64,
    pub(crate) utility_draw_w: f64,
    pub(crate) any_below_full: bool,
    pub(crate) period_energy_j: f64,
    pub(crate) period_ms: u64,
    pub(crate) last_containment_ms: Option<u64>,
}

impl Snapshot for GridLayerState {
    const KIND: &'static str = "dynamo.GridLayerState";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        self.econ.encode_body(w);
        w.put_u64(self.banks.len() as u64);
        for b in &self.banks {
            b.encode_body(w);
        }
        match &self.episode {
            Some(e) => {
                w.put_u8(1);
                w.put_u64(e.started_ms);
                match e.contained_at_ms {
                    Some(ms) => {
                        w.put_u8(1);
                        w.put_u64(ms);
                    }
                    None => w.put_u8(0),
                }
                w.put_bool(e.violated);
            }
            None => w.put_u8(0),
        }
        w.put_u64(self.curtailments);
        w.put_u64(self.contained);
        w.put_u64(self.violation_ms);
        w.put_u64(self.discharge_ms);
        w.put_f64(self.charge_low_water);
        w.put_f64(self.utility_draw_w);
        w.put_bool(self.any_below_full);
        w.put_f64(self.period_energy_j);
        w.put_u64(self.period_ms);
        match self.last_containment_ms {
            Some(ms) => {
                w.put_u8(1);
                w.put_u64(ms);
            }
            None => w.put_u8(0),
        }
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let econ = EconControllerState::decode_body(r)?;
        let n = r.get_u64()? as usize;
        let mut banks = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            banks.push(Dcups::decode_body(r)?);
        }
        let episode = match r.get_u8()? {
            0 => None,
            1 => {
                let started_ms = r.get_u64()?;
                let contained_at_ms = match r.get_u8()? {
                    0 => None,
                    1 => Some(r.get_u64()?),
                    other => {
                        return Err(SnapError::Corrupt(format!("bad containment tag {other}")))
                    }
                };
                Some(EpisodeState {
                    started_ms,
                    contained_at_ms,
                    violated: r.get_bool()?,
                })
            }
            other => return Err(SnapError::Corrupt(format!("bad episode tag {other}"))),
        };
        Ok(GridLayerState {
            econ,
            banks,
            episode,
            curtailments: r.get_u64()?,
            contained: r.get_u64()?,
            violation_ms: r.get_u64()?,
            discharge_ms: r.get_u64()?,
            charge_low_water: r.get_f64()?,
            utility_draw_w: r.get_f64()?,
            any_below_full: r.get_bool()?,
            period_energy_j: r.get_f64()?,
            period_ms: r.get_u64()?,
            last_containment_ms: match r.get_u8()? {
                0 => None,
                1 => Some(r.get_u64()?),
                other => {
                    return Err(SnapError::Corrupt(format!(
                        "bad containment-time tag {other}"
                    )))
                }
            },
        })
    }
}
