//! Primary/backup failover bookkeeping (§III-E).
//!
//! Production Dynamo runs every controller as a primary/backup pair;
//! when a primary dies, the backup — which polls the same devices and
//! keeps its own copy of the decision state — takes over at the next
//! cycle. The simulator models that as one skipped cycle per induced
//! failure: [`FailoverState`] holds the pending-failure flag per
//! controller, the running takeover count, and per-controller
//! skipped-cycle tallies for reporting.

use dcsim::snap::{
    get_bool_vec, get_u64_vec, put_bool_slice, put_u64_slice, SnapError, SnapReader, SnapWriter,
    Snapshot,
};

/// Pending primary failures and the cumulative failover count for both
/// controller tiers.
#[derive(Debug, Clone)]
pub(crate) struct FailoverState {
    leaf_failed: Vec<bool>,
    upper_failed: Vec<bool>,
    leaf_skipped: Vec<u64>,
    upper_skipped: Vec<u64>,
    count: u64,
}

impl FailoverState {
    /// No failures pending, zero failovers recorded.
    pub(crate) fn new(leaf_count: usize, upper_count: usize) -> Self {
        FailoverState {
            leaf_failed: vec![false; leaf_count],
            upper_failed: vec![false; upper_count],
            leaf_skipped: vec![0; leaf_count],
            upper_skipped: vec![0; upper_count],
            count: 0,
        }
    }

    /// Marks leaf `i`'s primary as crashed.
    pub(crate) fn fail_leaf(&mut self, i: usize) {
        self.leaf_failed[i] = true;
    }

    /// Marks upper `i`'s primary as crashed.
    pub(crate) fn fail_upper(&mut self, i: usize) {
        self.upper_failed[i] = true;
    }

    /// Whether leaf `i` has a pending, unconsumed primary failure.
    pub(crate) fn leaf_pending(&self, i: usize) -> bool {
        self.leaf_failed[i]
    }

    /// If leaf `i` has a pending failure, consumes it (the backup takes
    /// over), records the failover, and returns `true`: the caller
    /// skips this cycle.
    pub(crate) fn take_leaf(&mut self, i: usize) -> bool {
        if self.leaf_failed[i] {
            self.leaf_failed[i] = false;
            self.record_leaf(i);
            true
        } else {
            false
        }
    }

    /// Upper-tier counterpart of [`FailoverState::take_leaf`].
    pub(crate) fn take_upper(&mut self, i: usize) -> bool {
        if self.upper_failed[i] {
            self.upper_failed[i] = false;
            self.upper_skipped[i] += 1;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// The leaf pending-failure flags, for the parallel leaf path:
    /// workers clear their own flags and the merge records each
    /// takeover afterwards via [`FailoverState::record_leaf`], because
    /// workers cannot touch the shared counters.
    pub(crate) fn leaf_flags_mut(&mut self) -> &mut [bool] {
        &mut self.leaf_failed
    }

    /// Records a leaf takeover observed outside [`FailoverState::take_leaf`]
    /// (the parallel merge consumes flags in the workers).
    pub(crate) fn record_leaf(&mut self, i: usize) {
        self.leaf_skipped[i] += 1;
        self.count += 1;
    }

    /// Cycles each leaf controller skipped to a backup takeover.
    pub(crate) fn leaf_skipped(&self) -> &[u64] {
        &self.leaf_skipped
    }

    /// Total failovers so far.
    pub(crate) fn count(&self) -> u64 {
        self.count
    }

    /// Overwrites this state from a decoded snapshot, validating that
    /// the tier sizes match the rebuilt control plane.
    pub(crate) fn restore(&mut self, other: &FailoverState) -> Result<(), SnapError> {
        if other.leaf_failed.len() != self.leaf_failed.len()
            || other.upper_failed.len() != self.upper_failed.len()
        {
            return Err(SnapError::Corrupt(format!(
                "failover snapshot tier sizes ({} leaves, {} uppers) disagree with the \
                 rebuilt control plane ({} leaves, {} uppers)",
                other.leaf_failed.len(),
                other.upper_failed.len(),
                self.leaf_failed.len(),
                self.upper_failed.len()
            )));
        }
        self.leaf_failed.clone_from(&other.leaf_failed);
        self.upper_failed.clone_from(&other.upper_failed);
        self.leaf_skipped.clone_from(&other.leaf_skipped);
        self.upper_skipped.clone_from(&other.upper_skipped);
        self.count = other.count;
        Ok(())
    }
}

impl Snapshot for FailoverState {
    const KIND: &'static str = "dynamo.FailoverState";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        put_bool_slice(w, &self.leaf_failed);
        put_bool_slice(w, &self.upper_failed);
        put_u64_slice(w, &self.leaf_skipped);
        put_u64_slice(w, &self.upper_skipped);
        w.put_u64(self.count);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let leaf_failed = get_bool_vec(r)?;
        let upper_failed = get_bool_vec(r)?;
        let leaf_skipped = get_u64_vec(r)?;
        let upper_skipped = get_u64_vec(r)?;
        if leaf_skipped.len() != leaf_failed.len() || upper_skipped.len() != upper_failed.len() {
            return Err(SnapError::Corrupt(
                "failover skipped tallies disagree with flag arrays".into(),
            ));
        }
        Ok(FailoverState {
            leaf_failed,
            upper_failed,
            leaf_skipped,
            upper_skipped,
            count: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_consumes_the_flag_and_counts_once() {
        let mut f = FailoverState::new(2, 1);
        f.fail_leaf(1);
        assert!(!f.take_leaf(0));
        assert!(f.take_leaf(1));
        assert!(!f.take_leaf(1), "flag is consumed by the takeover");
        f.fail_upper(0);
        assert!(f.take_upper(0));
        assert_eq!(f.count(), 2);
        assert_eq!(f.leaf_skipped(), &[0, 1]);
    }

    #[test]
    fn parallel_merge_records_per_leaf() {
        let mut f = FailoverState::new(3, 0);
        f.fail_leaf(0);
        f.fail_leaf(2);
        for flag in f.leaf_flags_mut() {
            *flag = false; // workers consume their own flags
        }
        f.record_leaf(0);
        f.record_leaf(2);
        assert_eq!(f.count(), 2);
        assert_eq!(f.leaf_skipped(), &[1, 0, 1]);
        assert!(!f.take_leaf(0) && !f.take_leaf(2));
    }
}
