//! The leaf controller tier: one [`LeafController`] per RPP, with
//! serial, pooled-parallel and scoped-parallel execution paths.
//!
//! All paths run only the leaves the [`crate::events::CycleDispatcher`]
//! marked due this tick. The parallel paths mirror the paper's
//! consolidated binary running ~100 controller threads (§IV): each
//! worker owns a private disjoint `&mut [Agent]` slice of the fleet and
//! every leaf's RPC RNG stream is its own, so each cycle computes
//! exactly what the serial path would; the post-join merge restores
//! leaf-index order, making the whole run bit-identical.
//!
//! The pooled path ([`LeafTier::run_due_pooled`]) dispatches onto the
//! datacenter's persistent [`WorkerPool`]: per-worker jobs are stack
//! slots holding disjoint slices of the tier's parallel arrays, so a
//! warm steady-state dispatch allocates nothing. The scoped path
//! ([`LeafTier::run_due_scoped`]) spawns threads per call and is kept
//! as the no-pool fallback and the benchmark baseline.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use dcsim::snap::{
    get_bool_vec, get_f64_vec, get_u64_vec, put_bool_slice, put_f64_slice, put_u64_slice,
    SnapError, SnapReader, SnapWriter, Snapshot,
};
use dcsim::{SimDuration, SimRng, SimTime};
use dynamo_agent::Agent;
use dynamo_controller::{
    ControlAction, LeafConfig, LeafController, LeafControllerState, ServerHandle, ServiceClass,
};
use dynobs::{Band, Shard};
use dynpool::{WorkerPool, MAX_WORKERS};
use dynrpc::codec::{self, TelemetryEvent, TelemetryEventKind};
use dynrpc::{Network, NetworkState, Request, RpcError};
use powerinfra::{DeviceId, DeviceLevel, Power, Topology};

use crate::control_plane::SystemConfig;
use crate::events::{ControllerEvent, ControllerEventKind};
use crate::failover::FailoverState;
use crate::fleet::{fuse_absorb_leaf, fuse_sync_leaf, split_agent_spans, Fleet};
use crate::obs::{band_of, record_leaf_cycle, record_leaf_failover, ObsIds, Observability};

/// The leaf tier as parallel arrays, so cycles can split borrows.
pub(crate) struct LeafTier {
    pub(crate) devices: Vec<DeviceId>,
    pub(crate) controllers: Vec<LeafController>,
    networks: Vec<Network>,
    pub(crate) last_aggregate: Vec<Power>,
    /// Server ids under each leaf, prebuilt at construction so the
    /// monitoring-only path never rebuilds them per cycle.
    pub(crate) server_ids: Vec<Vec<u32>>,
    /// When every leaf owns a contiguous ascending server-id range and
    /// the ranges tile `0..server_count` in leaf order, the ranges —
    /// the parallel control plane hands each leaf a private disjoint
    /// `&mut [Agent]` slice. `None` forces the serial path.
    pub(crate) spans: Option<Vec<Range<usize>>>,
    /// Per-leaf event buffers, reused across parallel cycles (cleared,
    /// capacity kept) and merged in leaf index order after the join.
    event_bufs: Vec<Vec<ControllerEvent>>,
    /// Per-leaf telemetry wire buffers: parallel workers encode their
    /// leaf's cycle events as a [`dynrpc::codec`] telemetry batch and
    /// decode them back inside the shard, so the codec work the
    /// deployed system pays to ship telemetry rides the worker threads
    /// instead of the owner. Reused (cleared, capacity kept).
    wire_bufs: Vec<Vec<u8>>,
    /// Per-leaf decode scratch for the wire round-trip.
    wire_events: Vec<Vec<TelemetryEvent>>,
    /// Planned-peak quotas from topology metadata, by leaf index.
    pub(crate) quotas: Vec<Power>,
    pub(crate) index_of: HashMap<DeviceId, usize>,
    /// Per-leaf quiescence flag: the leaf's last real cycle was a clean
    /// Hold — no pull failures, no active caps, no failover takeover —
    /// so, as long as the fleet-side markers below are unchanged and
    /// the link is lossless, re-running the cycle would observe the
    /// same fleet state and decide Hold again. Cleared by anything that
    /// could change the next decision from outside the fleet: an upper
    /// directive, an operator contract override, a rollout-phase flip,
    /// a primary failover.
    pub(crate) quiet: Vec<bool>,
    /// Fleet markers captured after each leaf's last real cycle
    /// (`u64::MAX` = never ran): power epoch, demand-redraw tick and
    /// agent epoch. See [`LeafTier::filter_quiescent`].
    seen_power_epoch: Vec<u64>,
    seen_draw_tick: Vec<u64>,
    seen_agent_epoch: Vec<u64>,
    /// Per-leaf outputs of the fused dispatch's absorb step — whether
    /// any limit bit changed, and the signed capped-count delta —
    /// recorded by the workers and applied serially after the join by
    /// [`Fleet::finish_fused_control`]. Meaningful only for the leaves
    /// of the last fused dispatch's due set.
    pub(crate) absorb_changed: Vec<bool>,
    pub(crate) absorb_delta: Vec<i64>,
}

/// Everything one parallel worker needs to run one leaf's cycle.
struct LeafTask<'a> {
    device: DeviceId,
    controller: &'a mut LeafController,
    network: &'a mut Network,
    aggregate: &'a mut Power,
    failed: &'a mut bool,
    buf: &'a mut Vec<ControllerEvent>,
    wire: &'a mut Vec<u8>,
    wire_ev: &'a mut Vec<TelemetryEvent>,
    quiet: &'a mut bool,
    agents: &'a mut [Agent],
    span_start: usize,
    shard: &'a mut Shard,
    track: u32,
    /// RAPL limit slice covering the same span as `agents`, written by
    /// the fused absorb. Unused when unfused.
    limit: &'a mut [f64],
    /// Fused absorb outputs for this leaf.
    absorb_changed: &'a mut bool,
    absorb_delta: &'a mut i64,
}

impl LeafTier {
    /// Builds one leaf controller per RPP in `topo`, in device order.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no RPP devices.
    pub(crate) fn build(
        topo: &Topology,
        service_of: &dyn Fn(u32) -> ServiceClass,
        config: &SystemConfig,
        rng: &mut SimRng,
    ) -> Self {
        let rpps = topo.devices_at(DeviceLevel::Rpp);
        assert!(!rpps.is_empty(), "topology has no RPPs to protect");

        let mut devices = Vec::new();
        let mut controllers = Vec::new();
        let mut networks = Vec::new();
        let mut index_of = HashMap::new();
        for rpp in rpps {
            let dev = topo.device(rpp);
            let servers: Vec<ServerHandle> = topo
                .servers_under(rpp)
                .into_iter()
                .map(|sid| ServerHandle {
                    server_id: sid,
                    service: service_of(sid),
                })
                .collect();
            let leaf_config = LeafConfig {
                physical_limit: dev.rating,
                bands: config.leaf_bands,
                poll_interval: config.leaf_interval,
                bucket_width: Power::from_watts(20.0),
                max_failure_frac: 0.20,
                non_server_overhead: config.leaf_overhead,
                dry_run: config.dry_run,
            };
            index_of.insert(rpp, controllers.len());
            controllers.push(LeafController::new(dev.name.clone(), leaf_config, servers));
            networks.push(Network::new(config.rpc, rng.split(&dev.name)));
            devices.push(rpp);
        }

        let n = devices.len();
        let quotas: Vec<Power> = devices.iter().map(|&d| topo.device(d).quota).collect();
        let server_ids: Vec<Vec<u32>> = controllers
            .iter()
            .map(|c| c.servers().iter().map(|h| h.server_id).collect())
            .collect();
        let spans = compute_leaf_spans(&server_ids, topo.server_count());
        LeafTier {
            devices,
            controllers,
            networks,
            last_aggregate: vec![Power::ZERO; n],
            server_ids,
            spans,
            event_bufs: vec![Vec::new(); n],
            wire_bufs: vec![Vec::new(); n],
            wire_events: vec![Vec::new(); n],
            quotas,
            index_of,
            quiet: vec![false; n],
            seen_power_epoch: vec![u64::MAX; n],
            seen_draw_tick: vec![u64::MAX; n],
            seen_agent_epoch: vec![u64::MAX; n],
            absorb_changed: vec![false; n],
            absorb_delta: vec![0; n],
        }
    }

    /// Splits `due` into the leaves that must run and the cycles that
    /// can be elided, pushing the former into `out` (cleared first) in
    /// the same ascending order and counting the latter into each
    /// leaf's shard (merged later with the full due list, so the
    /// registry stays bit-identical at any thread count).
    ///
    /// A leaf's cycle is elided only when it is *provably* a no-op
    /// recomputation: the leaf decided a clean Hold last time
    /// ([`LeafTier::quiet`]), its link cannot drop or time out, no
    /// failover is pending, and every fleet-side marker — power epoch,
    /// demand-redraw tick, agent epoch — still reads what the last real
    /// cycle captured. The elided cycle's RPC and sensor-noise RNG
    /// draws are *not* consumed, so elision (like the demand hold that
    /// enables it — with `demand_hold == 1` the redraw tick changes
    /// every tick and nothing ever elides) changes the trajectory
    /// relative to a run without it, while remaining deterministic and
    /// thread-count independent.
    pub(crate) fn filter_quiescent(
        &self,
        due: &[usize],
        fleet: &Fleet,
        failover: &FailoverState,
        obs: &mut Observability,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        let power_epochs = fleet.leaf_epochs();
        let draw_ticks = fleet.last_draw_ticks();
        let agent_epochs = fleet.agent_epochs();
        let markers_known = power_epochs.len() == self.len() && !fleet.power_cache_dirty();
        let (shards, ids) = obs.shard_ctx();
        for &i in due {
            let elidable = markers_known
                && self.quiet[i]
                && !failover.leaf_pending(i)
                && self.networks[i].profile().is_lossless()
                && self.seen_power_epoch[i] == power_epochs[i]
                && self.seen_draw_tick[i] == draw_ticks[i]
                && self.seen_agent_epoch[i] == agent_epochs[i];
            if elidable {
                shards[i].inc(ids.leaf_cycles_elided);
            } else {
                out.push(i);
            }
        }
    }

    /// Captures the fleet markers for the leaves that just ran a real
    /// cycle. Call after the dispatch (the control tick does not step
    /// the fleet, so post-dispatch markers equal what the cycles saw).
    pub(crate) fn note_markers(&mut self, ran: &[usize], fleet: &Fleet) {
        let power_epochs = fleet.leaf_epochs();
        let draw_ticks = fleet.last_draw_ticks();
        let agent_epochs = fleet.agent_epochs();
        if power_epochs.len() != self.len() || fleet.power_cache_dirty() {
            return; // Markers unknown: `seen` stays stale, nothing elides.
        }
        for &i in ran {
            self.seen_power_epoch[i] = power_epochs[i];
            self.seen_draw_tick[i] = draw_ticks[i];
            self.seen_agent_epoch[i] = agent_epochs[i];
        }
    }

    /// Number of leaf controllers.
    pub(crate) fn len(&self) -> usize {
        self.controllers.len()
    }

    /// Runs the due leaves in index order on the calling thread. This is
    /// the allocation-free steady-state path (`control_threads == 1`).
    ///
    /// With `fused` set (capping must be enabled, spans known, cache
    /// clean — [`Fleet::control_fuse_ready`]) each leaf runs
    /// sync → cycle → absorb back to back while its agents are hot,
    /// instead of riding three fleet-wide passes. Legal because a
    /// leaf's flush reads only fleet arrays no cycle writes, and its
    /// absorb touches only its own span — so per-leaf interleaving
    /// computes bit-identical state to the phase-at-a-time order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_due_serial(
        &mut self,
        now: SimTime,
        due: &[usize],
        capping_enabled: bool,
        fused: bool,
        failover: &mut FailoverState,
        fleet: &mut Fleet,
        events: &mut Vec<ControllerEvent>,
        obs: &mut Observability,
    ) {
        let (shards, ids) = obs.shard_ctx();
        if fused {
            debug_assert!(capping_enabled, "fused dispatch implies capping");
            let (agents, limit_w, sh) = fleet.fused_control_parts();
            for &i in due {
                fuse_sync_leaf(&sh, i, agents, 0);
                if failover.take_leaf(i) {
                    self.quiet[i] = false;
                    let name = self.controllers[i].name_shared();
                    record_leaf_failover(&mut shards[i], ids, now, i as u32, Arc::clone(&name));
                    events.push(ControllerEvent {
                        at: now,
                        device: self.devices[i],
                        controller: name,
                        kind: ControllerEventKind::Failover,
                    });
                } else {
                    self.quiet[i] = run_one_leaf_cycle(
                        now,
                        self.devices[i],
                        &mut self.controllers[i],
                        &mut self.networks[i],
                        agents,
                        0,
                        &mut self.last_aggregate[i],
                        events,
                        &mut shards[i],
                        ids,
                        i as u32,
                    );
                }
                let (ch, d) = fuse_absorb_leaf(&sh, i, agents, 0, limit_w, 0);
                self.absorb_changed[i] = ch;
                self.absorb_delta[i] = d;
            }
            return;
        }
        for &i in due {
            if failover.take_leaf(i) {
                // Backup takes over: one cycle of downtime, then the
                // redundant instance (sharing the same decision state
                // via its own polling) continues.
                self.quiet[i] = false;
                let name = self.controllers[i].name_shared();
                record_leaf_failover(&mut shards[i], ids, now, i as u32, Arc::clone(&name));
                events.push(ControllerEvent {
                    at: now,
                    device: self.devices[i],
                    controller: name,
                    kind: ControllerEventKind::Failover,
                });
                continue;
            }
            if !capping_enabled {
                // Monitoring-only baseline: track the true aggregate so
                // upper tiers and telemetry still see power. The fleet's
                // per-leaf partial (maintained by its step as the same
                // ascending fold) makes this a single lookup.
                self.last_aggregate[i] = fleet
                    .leaf_power(i)
                    .unwrap_or_else(|| fleet.power_sum(&self.server_ids[i]));
                continue;
            }
            let quiescent = run_one_leaf_cycle(
                now,
                self.devices[i],
                &mut self.controllers[i],
                &mut self.networks[i],
                fleet.agents_mut(),
                0,
                &mut self.last_aggregate[i],
                events,
                &mut shards[i],
                ids,
                i as u32,
            );
            self.quiet[i] = quiescent;
        }
    }

    /// Runs the due leaves on the persistent worker pool. Each worker
    /// wakes with one stack-slot job holding a contiguous chunk of the
    /// due set plus disjoint `&mut` slices of the tier's parallel
    /// arrays (split once at chunk boundaries), so a warm dispatch
    /// allocates nothing. Workers buffer events per leaf; the merge
    /// after the barrier restores leaf index order, so the result is
    /// bit-identical to [`LeafTier::run_due_serial`] at any worker
    /// count.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_due_pooled(
        &mut self,
        now: SimTime,
        due: &[usize],
        threads: usize,
        fused: bool,
        pool: &WorkerPool,
        failover: &mut FailoverState,
        fleet: &mut Fleet,
        events: &mut Vec<ControllerEvent>,
        obs: &mut Observability,
    ) {
        let spans = self
            .spans
            .as_deref()
            .expect("parallel path requires leaf spans");
        let workers = threads.min(pool.workers()).min(due.len()).max(1);
        let per_chunk = due.len().div_ceil(workers);

        /// One worker's disjoint view of the leaf tier: the arrays are
        /// split at due-chunk boundaries, so slices may include
        /// non-due leaves — the worker walks only its `due` sublist,
        /// indexing relative to `base`.
        struct LeafJob<'a> {
            due: &'a [usize],
            /// Leaf index of element 0 of the sliced arrays.
            base: usize,
            controllers: &'a mut [LeafController],
            networks: &'a mut [Network],
            aggregates: &'a mut [Power],
            failed: &'a mut [bool],
            bufs: &'a mut [Vec<ControllerEvent>],
            wire: &'a mut [Vec<u8>],
            wire_ev: &'a mut [Vec<TelemetryEvent>],
            shards: &'a mut [Shard],
            quiet: &'a mut [bool],
            agents: &'a mut [Agent],
            /// Server id of `agents[0]` (and, the spans being
            /// leaf-aligned, the position of `limit_w[0]`).
            agents_base: usize,
            /// RAPL limit slice covering the same span as `agents`,
            /// written by the fused absorb. Unused when unfused.
            limit_w: &'a mut [f64],
            /// Fused absorb outputs, sliced like `quiet`.
            absorb_changed: &'a mut [bool],
            absorb_delta: &'a mut [i64],
        }

        {
            let devices = &self.devices;
            let (all_shards, ids) = obs.shard_ctx();
            let mut jobs: [Option<LeafJob>; MAX_WORKERS] = std::array::from_fn(|_| None);

            let mut controllers = &mut self.controllers[..];
            let mut networks = &mut self.networks[..];
            let mut aggregates = &mut self.last_aggregate[..];
            let mut failed = &mut failover.leaf_flags_mut()[..];
            let mut bufs = &mut self.event_bufs[..];
            let mut wire = &mut self.wire_bufs[..];
            let mut wire_ev = &mut self.wire_events[..];
            let mut shards = all_shards;
            let mut quiet = &mut self.quiet[..];
            let mut absorb_changed = &mut self.absorb_changed[..];
            let mut absorb_delta = &mut self.absorb_delta[..];
            let (mut agents, mut limits, fsh) = fleet.fused_control_parts();
            let mut leaves_consumed = 0usize;
            let mut agents_consumed = 0usize;
            let mut njobs = 0usize;
            for (job, chunk) in jobs.iter_mut().zip(due.chunks(per_chunk)) {
                let lo = chunk[0];
                let hi = chunk[chunk.len() - 1] + 1;
                let skip = lo - leaves_consumed;
                let take = hi - lo;
                let (c, rest) = controllers.split_at_mut(skip).1.split_at_mut(take);
                controllers = rest;
                let (n, rest) = networks.split_at_mut(skip).1.split_at_mut(take);
                networks = rest;
                let (ag, rest) = aggregates.split_at_mut(skip).1.split_at_mut(take);
                aggregates = rest;
                let (fl, rest) = failed.split_at_mut(skip).1.split_at_mut(take);
                failed = rest;
                let (b, rest) = bufs.split_at_mut(skip).1.split_at_mut(take);
                bufs = rest;
                let (wi, rest) = wire.split_at_mut(skip).1.split_at_mut(take);
                wire = rest;
                let (we, rest) = wire_ev.split_at_mut(skip).1.split_at_mut(take);
                wire_ev = rest;
                let (sh, rest) = shards.split_at_mut(skip).1.split_at_mut(take);
                shards = rest;
                let (q, rest) = quiet.split_at_mut(skip).1.split_at_mut(take);
                quiet = rest;
                let (ac, rest) = absorb_changed.split_at_mut(skip).1.split_at_mut(take);
                absorb_changed = rest;
                let (ad, rest) = absorb_delta.split_at_mut(skip).1.split_at_mut(take);
                absorb_delta = rest;
                leaves_consumed = hi;

                let astart = spans[lo].start;
                let aend = spans[hi - 1].end;
                let (a, rest) = agents
                    .split_at_mut(astart - agents_consumed)
                    .1
                    .split_at_mut(aend - astart);
                agents = rest;
                let (lw, rest) = limits
                    .split_at_mut(astart - agents_consumed)
                    .1
                    .split_at_mut(aend - astart);
                limits = rest;
                agents_consumed = aend;

                *job = Some(LeafJob {
                    due: chunk,
                    base: lo,
                    controllers: c,
                    networks: n,
                    aggregates: ag,
                    failed: fl,
                    bufs: b,
                    wire: wi,
                    wire_ev: we,
                    shards: sh,
                    quiet: q,
                    agents: a,
                    agents_base: astart,
                    limit_w: lw,
                    absorb_changed: ac,
                    absorb_delta: ad,
                });
                njobs += 1;
            }

            pool.run_on(&mut jobs[..njobs], |_w, slot| {
                let job = slot.as_mut().expect("due chunk slot filled above");
                for &i in job.due {
                    let r = i - job.base;
                    job.bufs[r].clear();
                    if fused {
                        fuse_sync_leaf(&fsh, i, job.agents, job.agents_base);
                    }
                    if job.failed[r] {
                        job.failed[r] = false;
                        job.quiet[r] = false;
                        let name = job.controllers[r].name_shared();
                        record_leaf_failover(
                            &mut job.shards[r],
                            ids,
                            now,
                            i as u32,
                            Arc::clone(&name),
                        );
                        job.bufs[r].push(ControllerEvent {
                            at: now,
                            device: devices[i],
                            controller: name,
                            kind: ControllerEventKind::Failover,
                        });
                        wire_roundtrip_events(
                            &job.controllers[r],
                            &mut job.bufs[r],
                            &mut job.wire[r],
                            &mut job.wire_ev[r],
                        );
                    } else {
                        let (aggregate, buf) = (&mut job.aggregates[r], &mut job.bufs[r]);
                        job.quiet[r] = run_one_leaf_cycle(
                            now,
                            devices[i],
                            &mut job.controllers[r],
                            &mut job.networks[r],
                            job.agents,
                            job.agents_base,
                            aggregate,
                            buf,
                            &mut job.shards[r],
                            ids,
                            i as u32,
                        );
                        wire_roundtrip_events(
                            &job.controllers[r],
                            &mut job.bufs[r],
                            &mut job.wire[r],
                            &mut job.wire_ev[r],
                        );
                    }
                    if fused {
                        let (ch, d) = fuse_absorb_leaf(
                            &fsh,
                            i,
                            job.agents,
                            job.agents_base,
                            job.limit_w,
                            job.agents_base,
                        );
                        job.absorb_changed[r] = ch;
                        job.absorb_delta[r] = d;
                    }
                }
            });
        }
        self.merge_parallel_events(due, failover, events);
    }

    /// Runs the due leaves on `threads` scoped worker threads spawned
    /// per call. Each worker owns a contiguous chunk of the due set
    /// and, through the precomputed spans, private disjoint
    /// `&mut [Agent]` slices. Workers buffer events per leaf; the merge
    /// after the join restores serial (leaf index) order, so the result
    /// is bit-identical to [`LeafTier::run_due_serial`]. Kept as the
    /// no-pool fallback and the baseline the pool is benchmarked
    /// against.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_due_scoped(
        &mut self,
        now: SimTime,
        due: &[usize],
        threads: usize,
        fused: bool,
        failover: &mut FailoverState,
        fleet: &mut Fleet,
        events: &mut Vec<ControllerEvent>,
        obs: &mut Observability,
    ) {
        let spans = self
            .spans
            .as_deref()
            .expect("parallel path requires leaf spans");
        {
            let devices = &self.devices;
            let (all_shards, ids) = obs.shard_ctx();
            let controllers = carve(&mut self.controllers, due);
            let networks = carve(&mut self.networks, due);
            let aggregates = carve(&mut self.last_aggregate, due);
            let failed = carve(failover.leaf_flags_mut(), due);
            let bufs = carve(&mut self.event_bufs, due);
            let wires = carve(&mut self.wire_bufs, due);
            let wire_evs = carve(&mut self.wire_events, due);
            let shards = carve(all_shards, due);
            let quiets = carve(&mut self.quiet, due);
            let absorb_chs = carve(&mut self.absorb_changed, due);
            let absorb_ds = carve(&mut self.absorb_delta, due);
            let (agents_all, limits_all, fsh) = fleet.fused_control_parts();
            let agent_slices = split_agent_spans(agents_all, due.iter().map(|&i| spans[i].clone()));
            let limit_slices =
                dynpool::split_spans(limits_all, due.iter().map(|&i| spans[i].clone()));

            let mut tasks: Vec<LeafTask> = Vec::with_capacity(due.len());
            for (
                (
                    (
                        (
                            (((((((((&i, controller), network), aggregate), failed), buf), wire), wire_ev), shard), quiet),
                            agents,
                        ),
                        limit,
                    ),
                    absorb_changed,
                ),
                absorb_delta,
            ) in due
                .iter()
                .zip(controllers)
                .zip(networks)
                .zip(aggregates)
                .zip(failed)
                .zip(bufs)
                .zip(wires)
                .zip(wire_evs)
                .zip(shards)
                .zip(quiets)
                .zip(agent_slices)
                .zip(limit_slices)
                .zip(absorb_chs)
                .zip(absorb_ds)
            {
                tasks.push(LeafTask {
                    device: devices[i],
                    controller,
                    network,
                    aggregate,
                    failed,
                    buf,
                    wire,
                    wire_ev,
                    quiet,
                    agents,
                    span_start: spans[i].start,
                    shard,
                    track: i as u32,
                    limit,
                    absorb_changed,
                    absorb_delta,
                });
            }

            let per_chunk = tasks.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for chunk in tasks.chunks_mut(per_chunk) {
                    scope.spawn(move || {
                        for task in chunk {
                            task.buf.clear();
                            if fused {
                                fuse_sync_leaf(
                                    &fsh,
                                    task.track as usize,
                                    task.agents,
                                    task.span_start,
                                );
                            }
                            if *task.failed {
                                *task.failed = false;
                                *task.quiet = false;
                                let name = task.controller.name_shared();
                                record_leaf_failover(
                                    task.shard,
                                    ids,
                                    now,
                                    task.track,
                                    Arc::clone(&name),
                                );
                                task.buf.push(ControllerEvent {
                                    at: now,
                                    device: task.device,
                                    controller: name,
                                    kind: ControllerEventKind::Failover,
                                });
                                wire_roundtrip_events(
                                    task.controller,
                                    task.buf,
                                    task.wire,
                                    task.wire_ev,
                                );
                            } else {
                                *task.quiet = run_one_leaf_cycle(
                                    now,
                                    task.device,
                                    task.controller,
                                    task.network,
                                    task.agents,
                                    task.span_start,
                                    task.aggregate,
                                    task.buf,
                                    task.shard,
                                    ids,
                                    task.track,
                                );
                                wire_roundtrip_events(
                                    task.controller,
                                    task.buf,
                                    task.wire,
                                    task.wire_ev,
                                );
                            }
                            if fused {
                                let (ch, d) = fuse_absorb_leaf(
                                    &fsh,
                                    task.track as usize,
                                    task.agents,
                                    task.span_start,
                                    task.limit,
                                    task.span_start,
                                );
                                *task.absorb_changed = ch;
                                *task.absorb_delta = d;
                            }
                        }
                    });
                }
            });
        }

        self.merge_parallel_events(due, failover, events);
    }

    /// Captures the tier's dynamic state for a snapshot. Everything
    /// else — devices, quotas, spans, server ids — is topology-derived
    /// and rebuilt from config on restore. Event buffers are drained by
    /// every dispatch, so at a tick boundary they are empty and not
    /// saved.
    pub(crate) fn state(&self) -> LeafTierState {
        LeafTierState {
            controllers: self.controllers.iter().map(|c| c.state()).collect(),
            networks: self.networks.iter().map(|n| n.state()).collect(),
            last_aggregate_w: self.last_aggregate.iter().map(|p| p.as_watts()).collect(),
            quiet: self.quiet.clone(),
            seen_power_epoch: self.seen_power_epoch.clone(),
            seen_draw_tick: self.seen_draw_tick.clone(),
            seen_agent_epoch: self.seen_agent_epoch.clone(),
        }
    }

    /// Restores the tier's dynamic state from a decoded snapshot taken
    /// against an identically-configured control plane.
    pub(crate) fn restore(&mut self, state: &LeafTierState) -> Result<(), SnapError> {
        let n = self.len();
        if state.controllers.len() != n {
            return Err(SnapError::Corrupt(format!(
                "leaf tier snapshot has {} controllers, rebuilt control plane has {}",
                state.controllers.len(),
                n
            )));
        }
        for (c, s) in self.controllers.iter_mut().zip(&state.controllers) {
            c.restore(s)?;
        }
        for (net, s) in self.networks.iter_mut().zip(&state.networks) {
            net.restore(s);
        }
        for (p, &w) in self.last_aggregate.iter_mut().zip(&state.last_aggregate_w) {
            *p = Power::from_watts(w);
        }
        self.quiet.clone_from(&state.quiet);
        self.seen_power_epoch.clone_from(&state.seen_power_epoch);
        self.seen_draw_tick.clone_from(&state.seen_draw_tick);
        self.seen_agent_epoch.clone_from(&state.seen_agent_epoch);
        Ok(())
    }

    /// Deterministic merge after a parallel dispatch: drains per-leaf
    /// event buffers in leaf index order, exactly as the serial loop
    /// would have emitted. Failovers are recorded here because workers
    /// cannot touch the shared counters.
    fn merge_parallel_events(
        &mut self,
        due: &[usize],
        failover: &mut FailoverState,
        events: &mut Vec<ControllerEvent>,
    ) {
        for &i in due {
            for event in self.event_bufs[i].drain(..) {
                if matches!(event.kind, ControllerEventKind::Failover) {
                    failover.record_leaf(i);
                }
                events.push(event);
            }
        }
    }
}

/// The leaf tier's dynamic state: controller decision state, RPC RNG
/// streams, last aggregates, and the quiescence markers that drive
/// cycle elision. The markers must round-trip exactly or a resumed run
/// would elide (or re-run) cycles the unbroken run did not.
pub(crate) struct LeafTierState {
    pub(crate) controllers: Vec<LeafControllerState>,
    pub(crate) networks: Vec<NetworkState>,
    pub(crate) last_aggregate_w: Vec<f64>,
    pub(crate) quiet: Vec<bool>,
    pub(crate) seen_power_epoch: Vec<u64>,
    pub(crate) seen_draw_tick: Vec<u64>,
    pub(crate) seen_agent_epoch: Vec<u64>,
}

impl Snapshot for LeafTierState {
    const KIND: &'static str = "dynamo.LeafTierState";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        w.put_u64(self.controllers.len() as u64);
        for c in &self.controllers {
            c.encode_body(w);
        }
        w.put_u64(self.networks.len() as u64);
        for n in &self.networks {
            n.encode_body(w);
        }
        put_f64_slice(w, &self.last_aggregate_w);
        put_bool_slice(w, &self.quiet);
        put_u64_slice(w, &self.seen_power_epoch);
        put_u64_slice(w, &self.seen_draw_tick);
        put_u64_slice(w, &self.seen_agent_epoch);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let nc = r.get_u64()? as usize;
        let mut controllers = Vec::with_capacity(nc.min(1 << 20));
        for _ in 0..nc {
            controllers.push(LeafControllerState::decode_body(r)?);
        }
        let nn = r.get_u64()? as usize;
        let mut networks = Vec::with_capacity(nn.min(1 << 20));
        for _ in 0..nn {
            networks.push(NetworkState::decode_body(r)?);
        }
        let state = LeafTierState {
            controllers,
            networks,
            last_aggregate_w: get_f64_vec(r)?,
            quiet: get_bool_vec(r)?,
            seen_power_epoch: get_u64_vec(r)?,
            seen_draw_tick: get_u64_vec(r)?,
            seen_agent_epoch: get_u64_vec(r)?,
        };
        let n = state.controllers.len();
        if state.networks.len() != n
            || state.last_aggregate_w.len() != n
            || state.quiet.len() != n
            || state.seen_power_epoch.len() != n
            || state.seen_draw_tick.len() != n
            || state.seen_agent_epoch.len() != n
        {
            return Err(SnapError::Corrupt(
                "leaf tier snapshot arrays disagree on leaf count".into(),
            ));
        }
        Ok(state)
    }
}

/// Picks the elements of `slice` at the ascending indices `idxs` as
/// simultaneous `&mut` borrows, via progressive `split_at_mut`.
fn carve<'a, T>(mut slice: &'a mut [T], idxs: &[usize]) -> Vec<&'a mut T> {
    let mut out = Vec::with_capacity(idxs.len());
    let mut consumed = 0;
    for &i in idxs {
        let (_, rest) = slice.split_at_mut(i - consumed);
        let (item, rest) = rest.split_first_mut().expect("index out of range");
        out.push(item);
        consumed = i + 1;
        slice = rest;
    }
    out
}

/// One leaf controller cycle against its private agent span.
///
/// `agents` is the slice of agents this leaf may touch and `span_start`
/// the server id of `agents[0]` — the serial path passes the whole
/// fleet with `span_start == 0`, the parallel path a disjoint per-leaf
/// slice. Shared by both so they cannot drift apart.
///
/// Returns whether the cycle was *quiescent* — a clean Hold with no
/// pull failures and no caps left active — which is the controller-side
/// half of the elision precondition (see
/// [`LeafTier::filter_quiescent`]).
#[allow(clippy::too_many_arguments)]
fn run_one_leaf_cycle(
    now: SimTime,
    device: DeviceId,
    controller: &mut LeafController,
    network: &mut Network,
    agents: &mut [Agent],
    span_start: usize,
    last_aggregate: &mut Power,
    events: &mut Vec<ControllerEvent>,
    shard: &mut Shard,
    ids: &ObsIds,
    track: u32,
) -> bool {
    let caps_before = controller.active_cap_count();
    let dry_run = controller.config().dry_run;
    let mut pull_rtt = SimDuration::ZERO;
    let mut act_rtt = SimDuration::ZERO;
    // Per-RPC recording runs a couple of thousand times per cycle, so
    // the counters accumulate in locals (one shard add at the end —
    // same totals) and RTTs go through a HistScope, which hoists the
    // shard's per-observation indirections out of the loop. Same
    // slots, same sums, same order: the merged registry stays
    // bit-identical to per-call shard recording.
    let mut rpc_calls = 0u64;
    let mut rpc_agent_down = 0u64;
    let mut rpc_drops = 0u64;
    let mut rpc_timeouts = 0u64;
    let mut rtt_hist = shard.hist_scope(ids.rpc_rtt);
    let outcome = controller.cycle(now, |sid, req| {
        let agent = &mut agents[sid as usize - span_start];
        rpc_calls += 1;
        if !agent.is_running() {
            rpc_agent_down += 1;
            return Err(RpcError::AgentDown);
        }
        let pulling = matches!(req, Request::ReadPower);
        match network.call_with_latency(agent, req) {
            Ok((resp, rtt)) => {
                rtt_hist.observe(rtt.as_secs_f64());
                if pulling {
                    pull_rtt += rtt;
                } else {
                    act_rtt += rtt;
                }
                Ok(resp)
            }
            Err(err) => {
                match err {
                    RpcError::Dropped => rpc_drops += 1,
                    RpcError::Timeout => rpc_timeouts += 1,
                    RpcError::AgentDown => {}
                }
                Err(err)
            }
        }
    });
    drop(rtt_hist);
    shard.add(ids.rpc_calls, rpc_calls);
    shard.add(ids.rpc_agent_down, rpc_agent_down);
    shard.add(ids.rpc_drops, rpc_drops);
    shard.add(ids.rpc_timeouts, rpc_timeouts);
    if let Some(total) = outcome.aggregated {
        *last_aggregate = total;
    }
    shard.inc(ids.leaf_cycles);
    shard.add(ids.pull_failures, outcome.pull_failures as u64);
    shard.add(ids.estimated_readings, outcome.estimated as u64);
    shard.inc(match band_of(&outcome.action) {
        Band::Hold => ids.band_hold,
        Band::Cap => ids.band_cap,
        Band::Uncap => ids.band_uncap,
        Band::Invalid => ids.band_invalid,
    });
    if shard.is_enabled() {
        record_leaf_cycle(
            shard,
            ids,
            now,
            track,
            controller,
            &outcome,
            caps_before,
            dry_run,
            pull_rtt,
            act_rtt,
        );
    }
    let kind = match &outcome.action {
        ControlAction::Capped {
            total_cut,
            commands,
        } => Some(ControllerEventKind::LeafCapped {
            total_cut: *total_cut,
            servers: commands.len(),
        }),
        ControlAction::Uncapped => Some(ControllerEventKind::LeafUncapped),
        ControlAction::Invalid => Some(ControllerEventKind::LeafInvalid {
            failures: outcome.pull_failures,
        }),
        ControlAction::Hold => None,
    };
    if let Some(kind) = kind {
        events.push(ControllerEvent {
            at: now,
            device,
            controller: controller.name_shared(),
            kind,
        });
    }
    matches!(outcome.action, ControlAction::Hold)
        && outcome.pull_failures == 0
        && controller.active_cap_count() == 0
}

/// One controller event as a wire telemetry event. Lossless: the watt
/// field crosses as the raw `f64` bit pattern and the counts are far
/// below `u32::MAX`, so [`from_wire`] rebuilds an equal event.
fn to_wire(ev: &ControllerEvent) -> TelemetryEvent {
    TelemetryEvent {
        at_ms: ev.at.as_millis(),
        device: ev.device.index() as u32,
        kind: match ev.kind {
            ControllerEventKind::LeafCapped { total_cut, servers } => TelemetryEventKind::Capped {
                cut_watts: total_cut.as_watts(),
                servers: servers as u32,
            },
            ControllerEventKind::LeafUncapped => TelemetryEventKind::Uncapped,
            ControllerEventKind::LeafInvalid { failures } => TelemetryEventKind::Invalid {
                failures: failures as u32,
            },
            ControllerEventKind::UpperCapped { contracts } => TelemetryEventKind::UpperCapped {
                contracts: contracts as u32,
            },
            ControllerEventKind::UpperUncapped => TelemetryEventKind::UpperUncapped,
            ControllerEventKind::Failover => TelemetryEventKind::Failover,
        },
    }
}

/// Rebuilds a controller event from its wire form. Controller identity
/// travels out of band — the batch is per-controller — so the caller
/// passes the leaf's interned name and the rebuild allocates nothing.
fn from_wire(ev: &TelemetryEvent, controller: &Arc<str>) -> ControllerEvent {
    ControllerEvent {
        at: SimTime::from_millis(ev.at_ms),
        device: DeviceId::from_index(ev.device as usize),
        controller: Arc::clone(controller),
        kind: match ev.kind {
            TelemetryEventKind::Capped { cut_watts, servers } => ControllerEventKind::LeafCapped {
                total_cut: Power::from_watts(cut_watts),
                servers: servers as usize,
            },
            TelemetryEventKind::Uncapped => ControllerEventKind::LeafUncapped,
            TelemetryEventKind::Invalid { failures } => ControllerEventKind::LeafInvalid {
                failures: failures as usize,
            },
            TelemetryEventKind::UpperCapped { contracts } => ControllerEventKind::UpperCapped {
                contracts: contracts as usize,
            },
            TelemetryEventKind::UpperUncapped => ControllerEventKind::UpperUncapped,
            TelemetryEventKind::Failover => ControllerEventKind::Failover,
        },
    }
}

/// Round-trips one leaf's freshly-buffered cycle events through the
/// [`dynrpc::codec`] telemetry-batch wire format, inside the worker
/// shard that produced them. The deployed system serializes telemetry
/// off the controller host; doing the encode *and* the decode here
/// keeps that cost off the owner thread (which previously would have
/// been the only place to put it) and proves the format lossless on
/// every event the simulation ever emits. Quiescent leaves emit no
/// events and skip entirely, so the steady state stays allocation-free;
/// churning leaves reuse the warm wire/scratch buffers.
fn wire_roundtrip_events(
    controller: &LeafController,
    buf: &mut Vec<ControllerEvent>,
    wire: &mut Vec<u8>,
    scratch: &mut Vec<TelemetryEvent>,
) {
    if buf.is_empty() {
        return;
    }
    wire.clear();
    scratch.clear();
    for ev in buf.iter() {
        scratch.push(to_wire(ev));
    }
    codec::encode_telemetry_batch_into(wire, scratch);
    scratch.clear();
    codec::decode_telemetry_batch_into(&*wire, scratch)
        .expect("self-encoded telemetry batch must decode");
    let name = controller.name_shared();
    buf.clear();
    for ev in scratch.iter() {
        buf.push(from_wire(ev, &name));
    }
}

/// Computes per-leaf agent spans for the parallel control plane.
///
/// Returns `Some` only when every leaf's server ids form a contiguous
/// ascending run and the runs tile `0..server_count` in leaf order —
/// the precondition for handing each leaf a disjoint `&mut [Agent]`
/// slice via `split_at_mut`. Grid topologies built by
/// [`powerinfra::TopologyBuilder`] always satisfy this.
fn compute_leaf_spans(
    leaf_server_ids: &[Vec<u32>],
    server_count: usize,
) -> Option<Vec<Range<usize>>> {
    let mut spans = Vec::with_capacity(leaf_server_ids.len());
    let mut next = 0usize;
    for ids in leaf_server_ids {
        let first = *ids.first()? as usize;
        if first != next {
            return None;
        }
        for (k, &sid) in ids.iter().enumerate() {
            if sid as usize != first + k {
                return None;
            }
        }
        next = first + ids.len();
        spans.push(first..next);
    }
    (next == server_count).then_some(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carve_yields_disjoint_mut_refs_at_the_requested_indices() {
        let mut data = [10, 20, 30, 40, 50];
        let picked = carve(&mut data, &[1, 2, 4]);
        assert_eq!(picked.iter().map(|r| **r).collect::<Vec<_>>(), [20, 30, 50]);
        for r in picked {
            *r += 1;
        }
        assert_eq!(data, [10, 21, 31, 40, 51]);
    }

    #[test]
    fn spans_require_contiguous_tiling() {
        // Contiguous tiling: spans exist.
        let ok = vec![vec![0, 1, 2], vec![3, 4], vec![5]];
        assert_eq!(compute_leaf_spans(&ok, 6), Some(vec![0..3, 3..5, 5..6]));
        // A gap, an overlap, or a short tiling all disable the path.
        let gap = vec![vec![0, 1], vec![3, 4]];
        assert_eq!(compute_leaf_spans(&gap, 5), None);
        let non_contig = vec![vec![0, 2], vec![1, 3]];
        assert_eq!(compute_leaf_spans(&non_contig, 4), None);
        assert_eq!(compute_leaf_spans(&ok, 7), None);
    }
}
