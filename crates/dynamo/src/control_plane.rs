//! The deployed controller hierarchy, driven by per-controller
//! scheduled cycles on the `dcsim` event queue.

use std::sync::Arc;

use dcsim::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use dcsim::{CycleSchedule, SimDuration, SimRng, SimTime};
use dynamo_controller::{ServiceClass, ThreeBandConfig};
use dynobs::ObsConfig;
use dynrpc::LinkProfile;
use powerinfra::{DeviceId, Power, Topology};

use crate::events::{ControllerEvent, CycleDispatcher, PhasePolicy};
use crate::failover::FailoverState;
use crate::fleet::Fleet;
use crate::leaf_exec::{LeafTier, LeafTierState};
use crate::obs::{Observability, ObservabilityState};
use crate::upper_exec::{UpperTier, UpperTierState};
use dynpool::WorkerPool;

/// Deployment configuration for the control plane.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Bands for leaf controllers.
    pub leaf_bands: ThreeBandConfig,
    /// Bands for upper controllers.
    pub upper_bands: ThreeBandConfig,
    /// Leaf pulling cycle (paper: 3 s).
    pub leaf_interval: SimDuration,
    /// Upper pulling cycle (paper: 9 s).
    pub upper_interval: SimDuration,
    /// How per-controller cycle phases are assigned within each tier.
    /// [`PhasePolicy::Lockstep`] (the default) reproduces the legacy
    /// global-schedule control plane bit-for-bit.
    pub phase: PhasePolicy,
    /// Controller↔agent link characteristics.
    pub rpc: LinkProfile,
    /// Master switch: with capping disabled Dynamo only monitors —
    /// the baseline configuration for "what if we had no Dynamo"
    /// experiments.
    pub capping_enabled: bool,
    /// Constant non-server draw charged to every leaf device.
    pub leaf_overhead: Power,
    /// Dry-run mode (§VI): leaf controllers compute and log decisions
    /// but never actuate.
    pub dry_run: bool,
    /// Worker threads for leaf control cycles (1 = serial). The paper
    /// runs ~100 leaf controllers as concurrent threads in one
    /// consolidated binary (§IV); the parallel path is bit-identical to
    /// the serial one because every leaf owns a disjoint server span
    /// and a private RPC RNG stream.
    pub control_threads: usize,
    /// Observability configuration ([`dynobs`]). Disabled by default:
    /// every recording call short-circuits and the exporters render an
    /// all-zero registry.
    pub obs: ObsConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            leaf_bands: ThreeBandConfig::default(),
            upper_bands: ThreeBandConfig::default(),
            leaf_interval: SimDuration::from_secs(3),
            upper_interval: SimDuration::from_secs(9),
            phase: PhasePolicy::Lockstep,
            rpc: LinkProfile::datacenter(),
            capping_enabled: true,
            leaf_overhead: Power::ZERO,
            dry_run: false,
            control_threads: 1,
            obs: ObsConfig::default(),
        }
    }
}

/// The full Dynamo control plane for one datacenter: a leaf controller
/// per RPP and an upper controller per SB and MSB, mirroring §IV's
/// production configuration ("we configure RPPs or PDU Breakers as the
/// leaf controllers and skip rack-level power monitoring").
///
/// Each controller instance owns its own [`CycleSchedule`] on a
/// cycle-dispatcher event queue, like the independent daemons of the
/// deployed system; nothing forces cycles to coincide. Under the default
/// [`PhasePolicy::Lockstep`] every schedule has phase zero, all cycles
/// of a tier fall due at the same instants, and the output is
/// bit-identical to the pre-event-driven lockstep control plane.
pub struct DynamoSystem {
    config: SystemConfig,
    leaves: LeafTier,
    uppers: UpperTier,
    failover: FailoverState,
    dispatcher: CycleDispatcher,
    obs: Observability,
    /// Persistent worker pool for same-instant leaf dispatch, shared
    /// with the fleet by the embedding [`crate::Datacenter`]. Without
    /// one the parallel path spawns scoped threads per dispatch.
    pool: Option<Arc<WorkerPool>>,
    /// Reused scratch for the post-elision due list (see
    /// [`LeafTier::filter_quiescent`]).
    live_due: Vec<usize>,
}

impl DynamoSystem {
    /// Builds the controller hierarchy for `topo`, using `service_of`
    /// to fetch the controller-facing metadata of each server.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no RPP devices.
    pub fn build(
        topo: &Topology,
        service_of: &dyn Fn(u32) -> ServiceClass,
        config: SystemConfig,
        rng: &mut SimRng,
    ) -> Self {
        let leaves = LeafTier::build(topo, service_of, &config, rng);
        let uppers = UpperTier::build(topo, &config, &leaves);
        // Phase draws happen after the per-leaf network splits, and only
        // the jittered policy consumes randomness — a lockstep build's
        // RNG stream is exactly the legacy one.
        let leaf_cycles: Vec<CycleSchedule> = config
            .phase
            .offsets(leaves.len(), "leaf-phase", rng)
            .into_iter()
            .map(|o| CycleSchedule::with_phase(config.leaf_interval, o))
            .collect();
        let upper_cycles: Vec<CycleSchedule> = config
            .phase
            .offsets(uppers.len(), "upper-phase", rng)
            .into_iter()
            .map(|o| CycleSchedule::with_phase(config.upper_interval, o))
            .collect();
        let failover = FailoverState::new(leaves.len(), uppers.len());
        let dispatcher = CycleDispatcher::new(leaf_cycles, upper_cycles);
        let obs = Observability::new(&config.obs, leaves.len());
        DynamoSystem {
            config,
            leaves,
            uppers,
            failover,
            dispatcher,
            obs,
            pool: None,
            live_due: Vec::new(),
        }
    }

    /// Attaches a persistent worker pool for same-instant leaf
    /// dispatch. The datacenter shares one pool between fleet physics
    /// and the control plane so both fan-outs reuse the same parked
    /// workers.
    pub fn attach_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// Detaches the worker pool; parallel leaf dispatch falls back to
    /// per-call scoped threads.
    pub fn detach_pool(&mut self) {
        self.pool = None;
    }

    /// The control plane's per-leaf server-id spans, when every leaf
    /// owns a contiguous ascending range tiling the fleet.
    pub(crate) fn leaf_spans(&self) -> Option<&[std::ops::Range<usize>]> {
        self.leaves.spans.as_deref()
    }

    /// The deployment configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Number of leaf controllers.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Number of upper controllers.
    pub fn upper_count(&self) -> usize {
        self.uppers.len()
    }

    /// The leaf controller protecting `device`, if any.
    pub fn leaf_for(&self, device: DeviceId) -> Option<&dynamo_controller::LeafController> {
        self.leaves
            .index_of
            .get(&device)
            .map(|&i| &self.leaves.controllers[i])
    }

    /// The upper controller protecting `device`, if any.
    pub fn upper_for(&self, device: DeviceId) -> Option<&dynamo_controller::UpperController> {
        self.uppers
            .index_of
            .get(&device)
            .map(|&i| &self.uppers.controllers[i])
    }

    /// The last aggregated power the leaf controller for `device`
    /// computed, if the device has one.
    pub fn leaf_aggregate(&self, device: DeviceId) -> Option<Power> {
        self.leaves
            .index_of
            .get(&device)
            .map(|&i| self.leaves.last_aggregate[i])
    }

    /// All leaf-protected devices, in build order.
    pub fn leaf_devices(&self) -> &[DeviceId] {
        &self.leaves.devices
    }

    /// The cycle phase offset of the leaf controller for `device`, if
    /// the device has one. Zero under [`PhasePolicy::Lockstep`].
    pub fn leaf_phase(&self, device: DeviceId) -> Option<SimDuration> {
        self.leaves
            .index_of
            .get(&device)
            .map(|&i| self.dispatcher.leaf_cycle(i).phase())
    }

    /// §VI staged rollout: "we use a four-phase staged roll-out for new
    /// changes to the agent or control logic, so any serious issues will
    /// be captured in early phases before going wide."
    ///
    /// Phase 1 activates capping on ~1% of leaf controllers (at least
    /// one), phase 2 on 10%, phase 3 on 50%, phase 4 on all; the rest
    /// run in dry-run mode — deciding and logging without actuating.
    /// Returns the number of active (non-dry-run) leaf controllers.
    ///
    /// # Panics
    ///
    /// Panics unless `phase` is 1–4.
    pub fn set_rollout_phase(&mut self, phase: u8) -> usize {
        assert!(
            (1..=4).contains(&phase),
            "rollout phase must be 1-4, got {phase}"
        );
        let frac = match phase {
            1 => 0.01,
            2 => 0.10,
            3 => 0.50,
            _ => 1.0,
        };
        let n = self.leaves.len();
        let active = ((n as f64 * frac).ceil() as usize).clamp(1, n);
        for (i, leaf) in self.leaves.controllers.iter_mut().enumerate() {
            leaf.set_dry_run(i >= active);
        }
        // Conservatively force a real cycle everywhere after a rollout
        // change; dry-run flips are rare operator actions.
        for q in &mut self.leaves.quiet {
            *q = false;
        }
        active
    }

    /// Operator override: pushes (or clears) a contractual limit on the
    /// leaf controller protecting `device`. This is how production
    /// end-to-end tests "manually trigger the power capping by lowering
    /// the capping threshold during the test" (§IV-C).
    ///
    /// # Panics
    ///
    /// Panics if no leaf controller protects `device`.
    pub fn set_leaf_contract(&mut self, device: DeviceId, limit: Option<Power>) {
        let &i = self
            .leaves
            .index_of
            .get(&device)
            .unwrap_or_else(|| panic!("no leaf controller protects {device}"));
        self.leaves.quiet[i] = false;
        self.leaves.controllers[i].set_contractual_limit(limit);
    }

    /// Pushes (or clears) a contractual limit on the upper controller
    /// protecting `device` (an SB or MSB). This is the §III-D actuation
    /// surface a grid-facing layer drives: the controller obeys
    /// `min(physical, contractual)` from its next cycle and propagates
    /// tighter child contracts down the hierarchy itself.
    ///
    /// # Panics
    ///
    /// Panics if no upper controller protects `device`.
    pub fn set_upper_contract(&mut self, device: DeviceId, limit: Option<Power>) {
        let &i = self
            .uppers
            .index_of
            .get(&device)
            .unwrap_or_else(|| panic!("no upper controller protects {device}"));
        self.uppers.controllers[i].set_contractual_limit(limit);
    }

    /// The devices with upper controllers, SBs before MSBs in build
    /// order.
    pub fn upper_devices(&self) -> &[DeviceId] {
        &self.uppers.devices
    }

    /// Total failovers so far.
    pub fn failovers(&self) -> u64 {
        self.failover.count()
    }

    /// Cycles each leaf controller skipped to a backup takeover, as
    /// `(controller name, skipped cycles)` in leaf build order.
    pub fn skipped_cycles_per_leaf(&self) -> Vec<(String, u64)> {
        self.leaves
            .controllers
            .iter()
            .zip(self.failover.leaf_skipped())
            .map(|(c, &n)| (c.name_shared().to_string(), n))
            .collect()
    }

    /// The control plane's observability state (metrics registry, trace
    /// ring, flight recorder, exporters).
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// Mutable observability access for the embedding simulation
    /// (gauges, datacenter-level incidents, incident flushing).
    pub fn observability_mut(&mut self) -> &mut Observability {
        &mut self.obs
    }

    /// Simulates a primary controller crash for `device`; the redundant
    /// backup takes over at that controller's next cycle (§III-E).
    ///
    /// # Panics
    ///
    /// Panics if no controller protects `device`.
    pub fn fail_primary(&mut self, device: DeviceId) {
        if let Some(&i) = self.leaves.index_of.get(&device) {
            self.failover.fail_leaf(i);
        } else if let Some(&i) = self.uppers.index_of.get(&device) {
            self.failover.fail_upper(i);
        } else {
            panic!("no controller protects {device}");
        }
    }

    /// All alerts raised by any controller.
    pub fn alerts(&self) -> Vec<dynamo_controller::Alert> {
        let mut out = Vec::new();
        for c in &self.leaves.controllers {
            out.extend_from_slice(c.alerts());
        }
        for c in &self.uppers.controllers {
            out.extend_from_slice(c.alerts());
        }
        out
    }

    /// Sets the number of worker threads for leaf control cycles
    /// (1 = serial; the result is bit-identical at any thread count).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn set_control_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "need at least one worker thread");
        self.config.control_threads = threads;
    }

    /// True if this system can run leaf cycles in parallel: every leaf
    /// owns a contiguous server-id span and the spans tile the fleet.
    /// Standard topologies always qualify; exotic hand-built ones fall
    /// back to the serial path.
    pub fn supports_parallel_leaves(&self) -> bool {
        self.leaves.spans.is_some()
    }

    /// Captures the control plane's full dynamic state for a snapshot:
    /// both tiers, failover bookkeeping, per-controller cycle
    /// schedules, and observability. Pending incident dumps must be
    /// flushed first (see [`crate::Datacenter`]'s checkpoint path).
    pub(crate) fn state(&self) -> SystemState {
        let (leaf_schedules, upper_schedules) = self.dispatcher.schedules();
        SystemState {
            leaves: self.leaves.state(),
            uppers: self.uppers.state(),
            failover: self.failover.clone(),
            leaf_schedules: leaf_schedules.to_vec(),
            upper_schedules: upper_schedules.to_vec(),
            obs: self.obs.state(),
        }
    }

    /// Restores the control plane from a decoded snapshot taken against
    /// an identically-configured system.
    pub(crate) fn restore(&mut self, state: &SystemState) -> Result<(), SnapError> {
        self.leaves.restore(&state.leaves)?;
        self.uppers.restore(&state.uppers)?;
        self.failover.restore(&state.failover)?;
        self.dispatcher
            .restore_schedules(state.leaf_schedules.clone(), state.upper_schedules.clone())?;
        self.obs.restore(&state.obs)?;
        Ok(())
    }

    /// Runs any controller cycles due at `now`. Call once per simulation
    /// tick; each controller tracks its own cycle schedule on the
    /// dispatcher's event queue, so with a nonzero phase spread
    /// different leaves fire on different ticks. Leaves due at the same
    /// instant are batched into one parallel dispatch when the parallel
    /// path is enabled — onto the persistent worker pool when one is
    /// attached, else onto per-call scoped threads.
    pub fn tick(&mut self, now: SimTime, fleet: &mut Fleet) -> Vec<ControllerEvent> {
        let mut events = Vec::new();
        self.dispatcher.collect_due(now);
        if !self.dispatcher.leaf_due().is_empty() {
            let capping = self.config.capping_enabled;
            // Quiescent-cycle elision: split the due list into leaves
            // that must run and cycles that are provably no-op
            // recomputations. The filter runs serially before the
            // dispatch, so the split — and everything downstream — is
            // identical at any worker-thread count.
            let mut live = std::mem::take(&mut self.live_due);
            let run_due: &[usize] = if capping {
                self.leaves.filter_quiescent(
                    self.dispatcher.leaf_due(),
                    fleet,
                    &self.failover,
                    &mut self.obs,
                    &mut live,
                );
                &live
            } else {
                self.dispatcher.leaf_due()
            };
            if !run_due.is_empty() {
                // Fused dispatch: each leaf runs its server flush, RPC
                // cycle and cap absorb back to back while its agents
                // are hot, instead of three fleet-wide passes. Requires
                // capping (the monitoring path never syncs), known
                // spans and a clean power cache; otherwise the
                // phase-at-a-time passes below bracket the cycles.
                let fused = capping && fleet.control_fuse_ready() && self.leaves.spans.is_some();
                if capping && !fused {
                    // The fleet's batch arrays own server physics
                    // between steps; push the running leaves' state
                    // into the scalar server models so the RPC cycles
                    // below observe fresh power readings.
                    fleet.sync_servers_for_control(run_due);
                }
                let threads = self.config.control_threads.min(run_due.len());
                if threads > 1 && capping && self.leaves.spans.is_some() {
                    if let Some(pool) = &self.pool {
                        let pool = Arc::clone(pool);
                        self.leaves.run_due_pooled(
                            now,
                            run_due,
                            threads,
                            fused,
                            &pool,
                            &mut self.failover,
                            fleet,
                            &mut events,
                            &mut self.obs,
                        );
                    } else {
                        self.leaves.run_due_scoped(
                            now,
                            run_due,
                            threads,
                            fused,
                            &mut self.failover,
                            fleet,
                            &mut events,
                            &mut self.obs,
                        );
                    }
                } else {
                    self.leaves.run_due_serial(
                        now,
                        run_due,
                        capping,
                        fused,
                        &mut self.failover,
                        fleet,
                        &mut events,
                        &mut self.obs,
                    );
                }
                if capping {
                    if fused {
                        // The workers already flushed and absorbed per
                        // leaf; apply the deferred shared-state effects
                        // in due order.
                        fleet.finish_fused_control(
                            run_due,
                            &self.leaves.absorb_changed,
                            &self.leaves.absorb_delta,
                        );
                    } else {
                        // Pull the RAPL limits the controllers just
                        // programmed back into the fleet's batch
                        // arrays.
                        fleet.absorb_caps(run_due);
                    }
                    // Capture the fleet markers the cycles saw.
                    self.leaves.note_markers(run_due, fleet);
                }
            }
            self.live_due = live;
            // Fold the due leaves' shards into the registry in leaf
            // index order — the serial recording order — so the merged
            // state is bit-identical at any thread count. The full due
            // list, not the filtered one: elided leaves counted into
            // their shards above.
            self.obs.merge_leaves(self.dispatcher.leaf_due());
        }
        if !self.dispatcher.upper_due().is_empty() && self.config.capping_enabled {
            self.uppers.run_due(
                now,
                self.dispatcher.upper_due(),
                &mut self.leaves,
                &mut self.failover,
                &mut events,
                &mut self.obs,
            );
        }
        events
    }
}

/// The control plane's full dynamic state: both controller tiers,
/// failover bookkeeping, every per-controller cycle schedule, and the
/// observability subsystem. Everything else the system holds — config,
/// topology-derived geometry, the worker pool, scratch buffers — is
/// rebuilt from the run parameters on restore.
pub(crate) struct SystemState {
    pub(crate) leaves: LeafTierState,
    pub(crate) uppers: UpperTierState,
    pub(crate) failover: FailoverState,
    pub(crate) leaf_schedules: Vec<CycleSchedule>,
    pub(crate) upper_schedules: Vec<CycleSchedule>,
    pub(crate) obs: ObservabilityState,
}

impl Snapshot for SystemState {
    const KIND: &'static str = "dynamo.SystemState";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        self.leaves.encode_body(w);
        self.uppers.encode_body(w);
        self.failover.encode_body(w);
        w.put_u64(self.leaf_schedules.len() as u64);
        for s in &self.leaf_schedules {
            s.encode_body(w);
        }
        w.put_u64(self.upper_schedules.len() as u64);
        for s in &self.upper_schedules {
            s.encode_body(w);
        }
        self.obs.encode_body(w);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let leaves = LeafTierState::decode_body(r)?;
        let uppers = UpperTierState::decode_body(r)?;
        let failover = FailoverState::decode_body(r)?;
        let nl = r.get_u64()? as usize;
        let mut leaf_schedules = Vec::with_capacity(nl.min(1 << 20));
        for _ in 0..nl {
            leaf_schedules.push(CycleSchedule::decode_body(r)?);
        }
        let nu = r.get_u64()? as usize;
        let mut upper_schedules = Vec::with_capacity(nu.min(1 << 20));
        for _ in 0..nu {
            upper_schedules.push(CycleSchedule::decode_body(r)?);
        }
        Ok(SystemState {
            leaves,
            uppers,
            failover,
            leaf_schedules,
            upper_schedules,
            obs: ObservabilityState::decode_body(r)?,
        })
    }
}
