//! Performance-aware power-cut distribution (§III-C3).
//!
//! Two nested rules decide *who* absorbs a power cut:
//!
//! 1. **Priority groups**: victims come from the lowest-priority group
//!    first; only if that group cannot absorb the whole cut (bounded by
//!    its SLA floors) does the next group get touched.
//! 2. **High-bucket-first** within a group: "analogous to tax brackets",
//!    servers are bucketed by current power consumption and the cut is
//!    taken from the highest bucket first, expanding downward bucket by
//!    bucket until the cut fits. Within the included set every server
//!    takes an even cut, bounded by its SLA floor (water-filling).

use powerinfra::Power;
use serde::{Deserialize, Serialize};

use crate::types::{CapCommand, ServerHandle};

/// One server's computed share of a power cut.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CutAssignment {
    /// Target server.
    pub server_id: u32,
    /// Power removed from this server.
    pub cut: Power,
    /// The resulting cap (`current power − cut`, never below the SLA
    /// floor).
    pub cap: Power,
}

impl CutAssignment {
    /// Converts to the wire-level command.
    pub fn to_command(self) -> CapCommand {
        CapCommand {
            server_id: self.server_id,
            cap: self.cap,
        }
    }
}

/// How a power-cut distribution unfolded — which knobs the bucket walk
/// actually had to turn. Zero-cost to produce (a handful of integer
/// bumps alongside work the distributor does anyway) and cheap to feed
/// into the observability registry.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DistributionStats {
    /// Priority groups that had members cut (rule 1 escalations).
    pub groups_touched: u32,
    /// Power buckets included across all groups before the cut fit
    /// (rule 2 expansions); 1 means the top bucket absorbed it.
    pub buckets_expanded: u32,
    /// Servers that received a cut assignment.
    pub victims: u32,
    /// Watts that could not be absorbed because every SLA floor was
    /// reached (mirrors the leftover return value).
    pub leftover_watts: f64,
}

/// Distributes `total_cut` across `servers` with measured `powers`,
/// returning the per-server assignments and the amount that could *not*
/// be absorbed because every SLA floor was reached (zero in healthy
/// configurations).
///
/// `powers[i]` is the latest power reading for `servers[i]`. Servers
/// already at or below their SLA floor take no cut.
///
/// # Panics
///
/// Panics if the slices disagree in length, `bucket_width` is not
/// positive, or `total_cut` is negative/non-finite.
///
/// # Example
///
/// ```
/// use dynamo_controller::{distribute_power_cut, ServerHandle, ServiceClass};
/// use powerinfra::Power;
///
/// let hadoop = ServiceClass::new("hadoop", 0, Power::from_watts(140.0));
/// let cache = ServiceClass::new("cache", 3, Power::from_watts(260.0));
/// let servers = vec![
///     ServerHandle { server_id: 0, service: hadoop.clone() },
///     ServerHandle { server_id: 1, service: cache.clone() },
/// ];
/// let powers = vec![Power::from_watts(300.0), Power::from_watts(300.0)];
/// let (cuts, leftover) = distribute_power_cut(
///     &servers, &powers, Power::from_watts(50.0), Power::from_watts(20.0));
/// // The whole cut lands on the hadoop box; cache is untouched.
/// assert_eq!(cuts.len(), 1);
/// assert_eq!(cuts[0].server_id, 0);
/// assert_eq!(leftover, Power::ZERO);
/// ```
pub fn distribute_power_cut(
    servers: &[ServerHandle],
    powers: &[Power],
    total_cut: Power,
    bucket_width: Power,
) -> (Vec<CutAssignment>, Power) {
    let (assignments, leftover, _) =
        distribute_power_cut_with_stats(servers, powers, total_cut, bucket_width);
    (assignments, leftover)
}

/// Like [`distribute_power_cut`], additionally reporting
/// [`DistributionStats`] describing how the distribution unfolded.
///
/// # Panics
///
/// Same conditions as [`distribute_power_cut`].
pub fn distribute_power_cut_with_stats(
    servers: &[ServerHandle],
    powers: &[Power],
    total_cut: Power,
    bucket_width: Power,
) -> (Vec<CutAssignment>, Power, DistributionStats) {
    assert_eq!(
        servers.len(),
        powers.len(),
        "servers/powers length mismatch"
    );
    assert!(
        bucket_width.as_watts() > 0.0,
        "bucket width must be positive"
    );
    assert!(
        total_cut.as_watts().is_finite() && total_cut.as_watts() >= 0.0,
        "invalid total cut {total_cut:?}"
    );
    if total_cut == Power::ZERO || servers.is_empty() {
        let stats = DistributionStats {
            leftover_watts: total_cut.as_watts(),
            ..DistributionStats::default()
        };
        return (Vec::new(), total_cut, stats);
    }

    // Priority groups, lowest first.
    let mut priorities: Vec<u8> = servers.iter().map(|s| s.service.priority).collect();
    priorities.sort_unstable();
    priorities.dedup();

    let mut assignments: Vec<CutAssignment> = Vec::new();
    let mut remaining = total_cut;
    let mut stats = DistributionStats::default();

    for prio in priorities {
        if remaining.as_watts() <= f64::EPSILON {
            break;
        }
        // (index, power, headroom above SLA floor) for this group.
        let members: Vec<(usize, Power, Power)> = servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.service.priority == prio)
            .map(|(i, s)| {
                (
                    i,
                    powers[i],
                    powers[i].saturating_sub(s.service.sla_min_cap),
                )
            })
            .collect();
        let victims_before = assignments.len();
        let (absorbed, buckets) =
            cut_within_group(&members, remaining, bucket_width, &mut |idx, cut| {
                let cap = (powers[idx] - cut).max(servers[idx].service.sla_min_cap);
                assignments.push(CutAssignment {
                    server_id: servers[idx].server_id,
                    cut,
                    cap,
                });
            });
        if assignments.len() > victims_before {
            stats.groups_touched += 1;
        }
        stats.buckets_expanded += buckets;
        remaining = remaining.saturating_sub(absorbed);
    }

    stats.victims = assignments.len() as u32;
    stats.leftover_watts = remaining.as_watts();
    (assignments, remaining, stats)
}

/// High-bucket-first within one priority group. Returns the power
/// actually absorbed plus the number of buckets that had to be included
/// before the cut fit, and reports per-server cuts through `assign`.
fn cut_within_group(
    members: &[(usize, Power, Power)],
    needed: Power,
    bucket_width: Power,
    assign: &mut dyn FnMut(usize, Power),
) -> (Power, u32) {
    // Bucket index by current power; iterate buckets from the top.
    let bucket_of = |p: Power| (p.as_watts() / bucket_width.as_watts()).floor() as i64;
    let mut buckets: Vec<i64> = members.iter().map(|&(_, p, _)| bucket_of(p)).collect();
    buckets.sort_unstable();
    buckets.dedup();
    buckets.reverse();

    let mut included: Vec<(usize, Power)> = Vec::new(); // (index, headroom)
    let mut capacity = Power::ZERO;
    let mut expanded = 0u32;
    for b in buckets {
        expanded += 1;
        for &(idx, p, headroom) in members {
            if bucket_of(p) == b && headroom.as_watts() > 0.0 {
                included.push((idx, headroom));
                capacity += headroom;
            }
        }
        if capacity >= needed {
            water_fill(&included, needed, assign);
            return (needed, expanded);
        }
    }
    // Whole group to its floors; the caller escalates the remainder.
    for &(idx, headroom) in &included {
        assign(idx, headroom);
    }
    (capacity, expanded)
}

/// Even cut with per-server bounds: finds `x` with
/// `Σ min(x, headroom_i) = needed` and assigns `min(x, headroom_i)`.
fn water_fill(included: &[(usize, Power)], needed: Power, assign: &mut dyn FnMut(usize, Power)) {
    let mut sorted: Vec<(usize, f64)> = included.iter().map(|&(i, h)| (i, h.as_watts())).collect();
    sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite headrooms"));

    let mut remaining = needed.as_watts();
    let mut level = 0.0f64;
    let mut active = sorted.len();
    let mut cuts: Vec<(usize, f64)> = Vec::with_capacity(sorted.len());
    for (k, &(idx, h)) in sorted.iter().enumerate() {
        // Can the remaining active servers all rise to h?
        let step = (h - level) * active as f64;
        if step >= remaining {
            level += remaining / active as f64;
            // Everyone from k onward cuts `level`; earlier ones were
            // already emitted at their bound.
            for &(i2, _) in &sorted[k..] {
                cuts.push((i2, level));
            }
            remaining = 0.0;
            break;
        }
        remaining -= step;
        level = h;
        cuts.push((idx, h)); // bound reached
        active -= 1;
    }
    debug_assert!(
        remaining <= 1e-6,
        "water_fill called with needed > capacity"
    );
    for (idx, c) in cuts {
        if c > 0.0 {
            assign(idx, Power::from_watts(c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ServiceClass;

    fn handle(id: u32, name: &str, prio: u8, sla: f64) -> ServerHandle {
        ServerHandle {
            server_id: id,
            service: ServiceClass::new(name, prio, Power::from_watts(sla)),
        }
    }

    fn watts(v: f64) -> Power {
        Power::from_watts(v)
    }

    const BUCKET: Power = Power::from_watts(20.0);

    #[test]
    fn lowest_priority_group_is_cut_first() {
        let servers = vec![
            handle(0, "hadoop", 0, 140.0),
            handle(1, "web", 1, 210.0),
            handle(2, "cache", 3, 260.0),
        ];
        let powers = vec![watts(300.0), watts(300.0), watts(300.0)];
        let (cuts, left) = distribute_power_cut(&servers, &powers, watts(100.0), BUCKET);
        assert_eq!(left, Power::ZERO);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].server_id, 0);
        assert_eq!(cuts[0].cut, watts(100.0));
        assert_eq!(cuts[0].cap, watts(200.0));
    }

    #[test]
    fn escalates_to_next_group_when_sla_binds() {
        let servers = vec![handle(0, "hadoop", 0, 140.0), handle(1, "web", 1, 210.0)];
        let powers = vec![watts(200.0), watts(300.0)];
        // hadoop can only give 60 W; web must cover the other 40 W.
        let (cuts, left) = distribute_power_cut(&servers, &powers, watts(100.0), BUCKET);
        assert_eq!(left, Power::ZERO);
        assert_eq!(cuts.len(), 2);
        let hadoop = cuts.iter().find(|c| c.server_id == 0).unwrap();
        let web = cuts.iter().find(|c| c.server_id == 1).unwrap();
        assert_eq!(hadoop.cut, watts(60.0));
        assert_eq!(hadoop.cap, watts(140.0));
        assert_eq!(web.cut, watts(40.0));
        assert_eq!(web.cap, watts(260.0));
    }

    #[test]
    fn high_bucket_first_spares_light_servers() {
        // Same priority; heavy servers are in a higher bucket, and the
        // cut fits inside it, so light servers are untouched.
        let servers: Vec<ServerHandle> = (0..4).map(|i| handle(i, "web", 1, 100.0)).collect();
        let powers = vec![watts(295.0), watts(290.0), watts(220.0), watts(215.0)];
        let (cuts, left) = distribute_power_cut(&servers, &powers, watts(30.0), BUCKET);
        assert_eq!(left, Power::ZERO);
        let ids: Vec<u32> = cuts.iter().map(|c| c.server_id).collect();
        assert!(
            ids.contains(&0) && ids.contains(&1),
            "heavy servers cut: {ids:?}"
        );
        assert!(
            !ids.contains(&2) && !ids.contains(&3),
            "light servers spared: {ids:?}"
        );
        // Even split across the bucket.
        for c in &cuts {
            assert!((c.cut - watts(15.0)).abs().as_watts() < 1e-9);
        }
    }

    #[test]
    fn expands_buckets_until_cut_fits() {
        let servers: Vec<ServerHandle> = (0..3).map(|i| handle(i, "web", 1, 100.0)).collect();
        let powers = vec![watts(300.0), watts(260.0), watts(220.0)];
        // 250 W cut needs more than the top server's 200 W headroom.
        let (cuts, left) = distribute_power_cut(&servers, &powers, watts(250.0), BUCKET);
        assert_eq!(left, Power::ZERO);
        assert!(cuts.len() >= 2);
        let total: Power = cuts.iter().map(|c| c.cut).sum();
        assert!((total - watts(250.0)).abs().as_watts() < 1e-6);
    }

    #[test]
    fn caps_never_violate_sla_floor() {
        let servers: Vec<ServerHandle> = (0..5).map(|i| handle(i, "web", 1, 210.0)).collect();
        let powers = vec![watts(300.0); 5];
        let (cuts, _) = distribute_power_cut(&servers, &powers, watts(1000.0), BUCKET);
        for c in &cuts {
            assert!(c.cap >= watts(210.0), "cap {c:?} below SLA floor");
        }
    }

    #[test]
    fn reports_unabsorbable_remainder() {
        let servers = vec![handle(0, "web", 1, 210.0)];
        let powers = vec![watts(300.0)];
        let (cuts, left) = distribute_power_cut(&servers, &powers, watts(200.0), BUCKET);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].cut, watts(90.0));
        assert_eq!(left, watts(110.0));
    }

    #[test]
    fn zero_cut_is_a_noop() {
        let servers = vec![handle(0, "web", 1, 210.0)];
        let powers = vec![watts(300.0)];
        let (cuts, left) = distribute_power_cut(&servers, &powers, Power::ZERO, BUCKET);
        assert!(cuts.is_empty());
        assert_eq!(left, Power::ZERO);
    }

    #[test]
    fn servers_below_floor_are_skipped() {
        let servers = vec![handle(0, "web", 1, 210.0), handle(1, "web", 1, 210.0)];
        let powers = vec![watts(200.0), watts(300.0)];
        let (cuts, left) = distribute_power_cut(&servers, &powers, watts(50.0), BUCKET);
        assert_eq!(left, Power::ZERO);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].server_id, 1);
    }

    #[test]
    fn cut_conservation_across_groups() {
        let mut servers = Vec::new();
        let mut powers = Vec::new();
        for i in 0..10 {
            servers.push(handle(i, "hadoop", 0, 140.0));
            powers.push(watts(250.0 + (i as f64) * 5.0));
        }
        for i in 10..20 {
            servers.push(handle(i, "web", 1, 210.0));
            powers.push(watts(280.0 + (i as f64)));
        }
        let asked = watts(700.0);
        let (cuts, left) = distribute_power_cut(&servers, &powers, asked, BUCKET);
        let total: Power = cuts.iter().map(|c| c.cut).sum();
        assert!(((total + left) - asked).abs().as_watts() < 1e-6);
        // Caps are consistent with cuts.
        for c in &cuts {
            let p = powers[c.server_id as usize];
            assert!((p - c.cut - c.cap).abs().as_watts() < 1e-6 || c.cap.as_watts() >= 140.0);
        }
    }

    #[test]
    fn figure16_shape_even_cuts_with_floor() {
        // A web row where the cut reaches down to a bucket boundary:
        // every included server's cap is >= the 210 W SLA and heavier
        // servers end up with larger cuts only via the even-split bound.
        let servers: Vec<ServerHandle> = (0..20).map(|i| handle(i, "web", 1, 210.0)).collect();
        let powers: Vec<Power> = (0..20).map(|i| watts(215.0 + 6.0 * i as f64)).collect(); // 215..329
        let (cuts, left) = distribute_power_cut(&servers, &powers, watts(400.0), BUCKET);
        assert_eq!(left, Power::ZERO);
        for c in &cuts {
            assert!(c.cap >= watts(210.0));
        }
        // Servers that were cut are the higher-power ones: the minimum
        // power among cut servers exceeds the maximum among uncut ones
        // minus a bucket width.
        let cut_ids: Vec<u32> = cuts.iter().map(|c| c.server_id).collect();
        let min_cut_power = cut_ids
            .iter()
            .map(|&i| powers[i as usize].as_watts())
            .fold(f64::INFINITY, f64::min);
        let max_uncut_power = (0..20u32)
            .filter(|i| !cut_ids.contains(i))
            .map(|i| powers[i as usize].as_watts())
            .fold(0.0, f64::max);
        assert!(
            min_cut_power + BUCKET.as_watts() > max_uncut_power,
            "cut set must be the high-power end: min cut {min_cut_power}, max uncut {max_uncut_power}"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        distribute_power_cut(&[handle(0, "web", 1, 210.0)], &[], watts(1.0), BUCKET);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_panics() {
        distribute_power_cut(&[], &[], watts(1.0), Power::ZERO);
    }

    #[test]
    fn stats_describe_the_walk() {
        // One group, cut fits in the top bucket → 1 group, 1 bucket.
        let servers: Vec<ServerHandle> = (0..4).map(|i| handle(i, "web", 1, 100.0)).collect();
        let powers = vec![watts(295.0), watts(290.0), watts(220.0), watts(215.0)];
        let (cuts, left, stats) =
            distribute_power_cut_with_stats(&servers, &powers, watts(30.0), BUCKET);
        assert_eq!(left, Power::ZERO);
        assert_eq!(stats.groups_touched, 1);
        assert_eq!(stats.buckets_expanded, 1);
        assert_eq!(stats.victims, cuts.len() as u32);
        assert_eq!(stats.leftover_watts, 0.0);

        // Escalates to a second priority group.
        let servers = vec![handle(0, "hadoop", 0, 140.0), handle(1, "web", 1, 210.0)];
        let powers = vec![watts(200.0), watts(300.0)];
        let (_, _, stats) =
            distribute_power_cut_with_stats(&servers, &powers, watts(100.0), BUCKET);
        assert_eq!(stats.groups_touched, 2);
        assert_eq!(stats.victims, 2);

        // Unabsorbable remainder surfaces in leftover_watts.
        let servers = vec![handle(0, "web", 1, 210.0)];
        let powers = vec![watts(300.0)];
        let (_, left, stats) =
            distribute_power_cut_with_stats(&servers, &powers, watts(200.0), BUCKET);
        assert_eq!(stats.leftover_watts, left.as_watts());
        assert!(stats.leftover_watts > 0.0);
    }

    #[test]
    fn stats_variant_matches_plain_variant() {
        let servers: Vec<ServerHandle> = (0..6)
            .map(|i| {
                handle(
                    i,
                    if i < 3 { "hadoop" } else { "web" },
                    (i < 3) as u8,
                    150.0,
                )
            })
            .collect();
        let powers: Vec<Power> = (0..6).map(|i| watts(220.0 + 14.0 * i as f64)).collect();
        let (a_cuts, a_left) = distribute_power_cut(&servers, &powers, watts(180.0), BUCKET);
        let (b_cuts, b_left, _) =
            distribute_power_cut_with_stats(&servers, &powers, watts(180.0), BUCKET);
        assert_eq!(a_cuts, b_cuts);
        assert_eq!(a_left, b_left);
    }

    #[test]
    fn water_fill_exactness() {
        // Needed exactly equals capacity.
        let servers: Vec<ServerHandle> = (0..3).map(|i| handle(i, "web", 1, 100.0)).collect();
        let powers = vec![watts(150.0), watts(160.0), watts(170.0)];
        let capacity = watts(50.0 + 60.0 + 70.0);
        let (cuts, left) = distribute_power_cut(&servers, &powers, capacity, BUCKET);
        assert_eq!(left, Power::ZERO);
        let total: Power = cuts.iter().map(|c| c.cut).sum();
        assert!((total - capacity).abs().as_watts() < 1e-6);
    }
}
