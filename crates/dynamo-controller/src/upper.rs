//! Upper-level power controllers and coordination (§III-D).

use std::collections::HashMap;
use std::sync::Arc;

use dcsim::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use dcsim::{SimDuration, SimTime};
use powerinfra::Power;
use serde::{Deserialize, Serialize};

use crate::distribution::distribute_power_cut;
use crate::threeband::{three_band_decision, BandDecision, ThreeBandConfig};
use crate::types::{Alert, ServerHandle, ServiceClass};

/// How an upper controller distributes a needed power cut among its
/// children.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoordinationPolicy {
    /// The paper's policy (§III-D): children above their power quota
    /// absorb the cut first (high-bucket-first among several
    /// offenders); compliant children are touched only as a last
    /// resort.
    PunishOffenderFirst,
    /// The prior-work baseline (SHIP-style): scale every child's
    /// allowance down proportionally to its current power, regardless
    /// of who exceeded their quota. Used by the coordination ablation.
    UniformScale,
}

/// Configuration of an [`UpperController`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpperConfig {
    /// The protected device's breaker limit.
    pub physical_limit: Power,
    /// Three-band thresholds.
    pub bands: ThreeBandConfig,
    /// Pulling cycle. Paper: 9 s — "3× the pulling cycle of the leaf
    /// power controller", longer than the downstream settling time to
    /// ensure control stability [Hellerstein et al.].
    pub poll_interval: SimDuration,
    /// Bucket width for high-bucket-first among multiple offenders.
    /// Scales with the device (defaults to 1% of the physical limit).
    pub bucket_width: Power,
    /// Cut distribution policy (default: the paper's
    /// punish-offender-first).
    pub policy: CoordinationPolicy,
}

impl UpperConfig {
    /// Paper-default configuration for a device with the given limit.
    ///
    /// # Panics
    ///
    /// Panics if `physical_limit` is not strictly positive.
    pub fn new(physical_limit: Power) -> Self {
        assert!(
            physical_limit.as_watts() > 0.0,
            "physical limit must be positive"
        );
        UpperConfig {
            physical_limit,
            bands: ThreeBandConfig::default(),
            poll_interval: SimDuration::from_secs(9),
            bucket_width: physical_limit * 0.01,
            policy: CoordinationPolicy::PunishOffenderFirst,
        }
    }

    /// Overrides the coordination policy.
    pub fn with_policy(mut self, policy: CoordinationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the three-band thresholds.
    pub fn with_bands(mut self, bands: ThreeBandConfig) -> Self {
        self.bands = bands;
        self
    }
}

/// What an upper controller learns about one child controller each
/// cycle. Controllers consolidated in one binary share this through
/// memory (§IV); fully distributed deployments would ship it over
/// Thrift — either way this is the whole coordination surface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChildReport {
    /// The child device's aggregated power last cycle.
    pub power: Power,
    /// The child's power quota — its *planned peak* (§III-D). A child
    /// above its quota is an "offender".
    pub quota: Power,
    /// The child's own breaker limit (its contract is never set above
    /// this — it would be meaningless).
    pub physical_limit: Power,
}

/// A directive for one child after a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChildDirective {
    /// Push this contractual power limit to the child. The child obeys
    /// `min(physical, contractual)` and, if it is itself an upper
    /// controller, recursively propagates further contracts downward.
    SetContract(Power),
    /// Remove the child's contractual limit.
    ClearContract,
    /// Leave the child as is.
    Unchanged,
}

/// What one upper-controller cycle observed and decided.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpperOutcome {
    /// Cycle timestamp.
    pub at: SimTime,
    /// Sum of child powers.
    pub total: Power,
    /// True if capping (contract pushes) happened this cycle.
    pub capped: bool,
    /// True if contracts were cleared this cycle.
    pub uncapped: bool,
    /// One directive per child, in input order.
    pub directives: Vec<ChildDirective>,
}

/// An upper-level power controller: protects a non-leaf device (SB or
/// MSB) by watching child controllers and pushing contractual limits
/// with the punish-offender-first policy (§III-D).
///
/// # Example
///
/// The paper's worked example: parent `P1` (300 KW) with children
/// `C1`, `C2` (200 KW physical, 150 KW quota each); `C1` draws 190 KW,
/// `C2` 130 KW. The cut lands entirely on the offender `C1`:
///
/// ```
/// use dcsim::SimTime;
/// use dynamo_controller::{ChildDirective, ChildReport, UpperConfig, UpperController};
/// use powerinfra::Power;
///
/// let kw = Power::from_kilowatts;
/// let mut p1 = UpperController::new("P1", UpperConfig::new(kw(300.0)), 2);
/// let reports = [
///     ChildReport { power: kw(190.0), quota: kw(150.0), physical_limit: kw(200.0) },
///     ChildReport { power: kw(130.0), quota: kw(150.0), physical_limit: kw(200.0) },
/// ];
/// let out = p1.cycle(SimTime::ZERO, &reports);
/// assert!(out.capped);
/// assert!(matches!(out.directives[0], ChildDirective::SetContract(_)));
/// assert_eq!(out.directives[1], ChildDirective::Unchanged);
/// ```
#[derive(Debug, Clone)]
pub struct UpperController {
    /// Interned name: cloning it for telemetry events is a refcount
    /// bump, not a heap allocation.
    name: Arc<str>,
    config: UpperConfig,
    child_count: usize,
    /// Contracts we have pushed, by child index.
    active_contracts: HashMap<usize, Power>,
    /// Contractual limit imposed on *this* controller by its parent.
    contractual_limit: Option<Power>,
    alerts: Vec<Alert>,
    cycles: u64,
}

impl UpperController {
    /// Creates an upper controller over `child_count` children.
    ///
    /// # Panics
    ///
    /// Panics if `child_count` is zero.
    pub fn new(name: impl Into<Arc<str>>, config: UpperConfig, child_count: usize) -> Self {
        assert!(child_count > 0, "upper controller needs at least one child");
        UpperController {
            name: name.into(),
            config,
            child_count,
            active_contracts: HashMap::new(),
            contractual_limit: None,
            alerts: Vec::new(),
            cycles: 0,
        }
    }

    /// The controller's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interned name; cloning the returned `Arc` is allocation-free.
    pub fn name_shared(&self) -> Arc<str> {
        Arc::clone(&self.name)
    }

    /// The configuration in use.
    pub fn config(&self) -> &UpperConfig {
        &self.config
    }

    /// The effective limit: `min(physical, contractual)`.
    pub fn effective_limit(&self) -> Power {
        match self.contractual_limit {
            Some(c) => c.min(self.config.physical_limit),
            None => self.config.physical_limit,
        }
    }

    /// Sets or clears the contractual limit imposed by this controller's
    /// own parent (recursive propagation, §III-D).
    ///
    /// # Panics
    ///
    /// Panics if the limit is not strictly positive.
    pub fn set_contractual_limit(&mut self, limit: Option<Power>) {
        if let Some(l) = limit {
            assert!(
                l.as_watts() > 0.0,
                "contractual limit must be positive, got {l}"
            );
        }
        self.contractual_limit = limit;
    }

    /// Contracts currently pushed to children (child index → limit).
    pub fn active_contracts(&self) -> &HashMap<usize, Power> {
        &self.active_contracts
    }

    /// Alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Number of completed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Captures the controller's dynamic state for a snapshot.
    pub fn state(&self) -> UpperControllerState {
        let mut contracts: Vec<(usize, Power)> = self
            .active_contracts
            .iter()
            .map(|(&i, &p)| (i, p))
            .collect();
        contracts.sort_unstable_by_key(|&(i, _)| i);
        UpperControllerState {
            active_contracts: contracts,
            contractual_limit: self.contractual_limit,
            alerts: self.alerts.clone(),
            cycles: self.cycles,
        }
    }

    /// Restores dynamic state from a snapshot. Configuration (name,
    /// limits, policy, child count) is not part of the state — the
    /// controller must be rebuilt from the same config first.
    pub fn restore(&mut self, state: &UpperControllerState) -> Result<(), SnapError> {
        for &(idx, _) in &state.active_contracts {
            if idx >= self.child_count {
                return Err(SnapError::Corrupt(format!(
                    "contract child index {idx} out of range for {} children",
                    self.child_count
                )));
            }
        }
        self.active_contracts = state.active_contracts.iter().copied().collect();
        self.contractual_limit = state.contractual_limit;
        self.alerts = state.alerts.clone();
        self.cycles = state.cycles;
        Ok(())
    }

    /// Runs one 9-second coordination cycle.
    ///
    /// Aggregates child powers, applies the three-band algorithm against
    /// the effective limit, and on capping distributes the needed cut
    /// with punish-offender-first: children above their quota absorb the
    /// cut first (high-bucket-first among several offenders); only if
    /// the offenders' excess cannot cover it are compliant children
    /// squeezed toward their quota share, with an alert.
    ///
    /// # Panics
    ///
    /// Panics if `reports.len()` differs from the configured child
    /// count.
    pub fn cycle(&mut self, now: SimTime, reports: &[ChildReport]) -> UpperOutcome {
        assert_eq!(
            reports.len(),
            self.child_count,
            "child report count mismatch"
        );
        self.cycles += 1;

        let total: Power = reports.iter().map(|r| r.power).sum();
        let limit = self.effective_limit();
        let decision = three_band_decision(
            total,
            limit,
            self.config.bands,
            !self.active_contracts.is_empty(),
        );

        let mut directives = vec![ChildDirective::Unchanged; reports.len()];
        let mut capped = false;
        let mut uncapped = false;

        match decision {
            BandDecision::Cap { total_cut } => {
                capped = true;
                let powers: Vec<Power> = reports.iter().map(|r| r.power).collect();
                let (cuts, leftover) = match self.config.policy {
                    CoordinationPolicy::PunishOffenderFirst => {
                        // Offenders (power > quota) form priority group 0
                        // with an SLA floor at their quota; compliant
                        // children form group 1 with a floor at half
                        // their current power, touched only if the
                        // offenders cannot absorb the cut.
                        let handles: Vec<ServerHandle> = reports
                            .iter()
                            .enumerate()
                            .map(|(i, r)| {
                                let offender = r.power > r.quota;
                                let (priority, floor) = if offender {
                                    (0, r.quota)
                                } else {
                                    (1, (r.power * 0.5).max(Power::from_watts(1.0)))
                                };
                                ServerHandle {
                                    server_id: i as u32,
                                    service: ServiceClass::new(
                                        if offender { "offender" } else { "compliant" },
                                        priority,
                                        floor,
                                    ),
                                }
                            })
                            .collect();
                        distribute_power_cut(&handles, &powers, total_cut, self.config.bucket_width)
                    }
                    CoordinationPolicy::UniformScale => uniform_scale_cuts(&powers, total_cut),
                };
                if leftover.as_watts() > 1.0 {
                    self.alerts.push(Alert {
                        at: now,
                        controller: self.name.to_string(),
                        message: format!(
                            "children cannot absorb {leftover} of a {total_cut} cut; \
                             device {} may trip",
                            self.name
                        ),
                    });
                }
                let mut touched_compliant = false;
                for cut in cuts {
                    let idx = cut.server_id as usize;
                    let contract = cut.cap.min(reports[idx].physical_limit);
                    self.active_contracts.insert(idx, contract);
                    directives[idx] = ChildDirective::SetContract(contract);
                    if reports[idx].power <= reports[idx].quota {
                        touched_compliant = true;
                    }
                }
                if touched_compliant {
                    self.alerts.push(Alert {
                        at: now,
                        controller: self.name.to_string(),
                        message: "offender excess insufficient; compliant children capped too"
                            .to_string(),
                    });
                }
            }
            BandDecision::Uncap => {
                uncapped = true;
                for (&idx, _) in self.active_contracts.iter() {
                    directives[idx] = ChildDirective::ClearContract;
                }
                self.active_contracts.clear();
            }
            BandDecision::Hold => {}
        }

        UpperOutcome {
            at: now,
            total,
            capped,
            uncapped,
            directives,
        }
    }
}

/// Dynamic state of an [`UpperController`], snapshot-serializable.
/// Contracts are kept index-sorted so encoding is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct UpperControllerState {
    /// Active child contracts as sorted `(child index, limit)` pairs.
    pub active_contracts: Vec<(usize, Power)>,
    /// Contractual limit imposed by this controller's parent.
    pub contractual_limit: Option<Power>,
    /// Alerts raised so far.
    pub alerts: Vec<Alert>,
    /// Completed cycles.
    pub cycles: u64,
}

impl Snapshot for UpperControllerState {
    const KIND: &'static str = "dynamo_controller.UpperControllerState";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        w.put_u64(self.active_contracts.len() as u64);
        for &(idx, p) in &self.active_contracts {
            w.put_u64(idx as u64);
            w.put_f64(p.as_watts());
        }
        w.put_opt_f64(self.contractual_limit.map(|p| p.as_watts()));
        w.put_u64(self.alerts.len() as u64);
        for alert in &self.alerts {
            alert.encode_body(w);
        }
        w.put_u64(self.cycles);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_u64()? as usize;
        let mut active_contracts = Vec::with_capacity(n.min(1 << 20));
        let mut prev: Option<usize> = None;
        for _ in 0..n {
            let idx = r.get_u64()? as usize;
            if prev.is_some_and(|p| p >= idx) {
                return Err(SnapError::Corrupt(
                    "upper contracts not strictly index-sorted".into(),
                ));
            }
            prev = Some(idx);
            let watts = r.get_f64()?;
            if !(watts.is_finite() && watts > 0.0) {
                return Err(SnapError::Corrupt(format!(
                    "contract limit must be positive, got {watts}"
                )));
            }
            active_contracts.push((idx, Power::from_watts(watts)));
        }
        let contractual_limit = match r.get_opt_f64()? {
            Some(w) if w.is_finite() && w > 0.0 => Some(Power::from_watts(w)),
            Some(w) => {
                return Err(SnapError::Corrupt(format!(
                    "contractual limit must be positive, got {w}"
                )))
            }
            None => None,
        };
        let n_alerts = r.get_u64()? as usize;
        let mut alerts = Vec::with_capacity(n_alerts.min(1 << 20));
        for _ in 0..n_alerts {
            alerts.push(Alert::decode_body(r)?);
        }
        let cycles = r.get_u64()?;
        Ok(UpperControllerState {
            active_contracts,
            contractual_limit,
            alerts,
            cycles,
        })
    }
}

/// SHIP-style baseline: every child gives up the same *fraction* of its
/// power, floored at half the child's draw (matching the compliant-child
/// floor of the offender-first path). Returns per-child cuts and any
/// unabsorbable remainder.
fn uniform_scale_cuts(powers: &[Power], total_cut: Power) -> (Vec<crate::CutAssignment>, Power) {
    let total: Power = powers.iter().copied().sum();
    if total.as_watts() <= 0.0 {
        return (Vec::new(), total_cut);
    }
    let frac = (total_cut.as_watts() / total.as_watts()).min(0.5);
    let cuts: Vec<crate::CutAssignment> = powers
        .iter()
        .enumerate()
        .filter(|(_, p)| p.as_watts() > 0.0)
        .map(|(i, &p)| {
            let cut = p * frac;
            crate::CutAssignment {
                server_id: i as u32,
                cut,
                cap: p - cut,
            }
        })
        .collect();
    let absorbed: Power = cuts.iter().map(|c| c.cut).sum();
    (cuts, total_cut.saturating_sub(absorbed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kw(v: f64) -> Power {
        Power::from_kilowatts(v)
    }

    fn report(power: f64, quota: f64, phys: f64) -> ChildReport {
        ChildReport {
            power: kw(power),
            quota: kw(quota),
            physical_limit: kw(phys),
        }
    }

    /// The §III-D worked example: the entire cut goes to the offender.
    #[test]
    fn paper_example_punishes_the_offender_only() {
        let mut p1 = UpperController::new("P1", UpperConfig::new(kw(300.0)), 2);
        let reports = [report(190.0, 150.0, 200.0), report(130.0, 150.0, 200.0)];
        let out = p1.cycle(SimTime::ZERO, &reports);
        assert!(out.capped);
        // total 320, threshold 297, target 285 → cut 35, all on C1.
        match out.directives[0] {
            ChildDirective::SetContract(c) => {
                assert!((c.as_kilowatts() - 155.0).abs() < 1e-9, "C1 contract {c}");
            }
            other => panic!("C1 should get a contract, got {other:?}"),
        }
        assert_eq!(out.directives[1], ChildDirective::Unchanged);
        assert_eq!(p1.active_contracts().len(), 1);
    }

    #[test]
    fn within_limit_holds() {
        let mut p1 = UpperController::new("P1", UpperConfig::new(kw(300.0)), 2);
        let reports = [report(140.0, 150.0, 200.0), report(140.0, 150.0, 200.0)];
        let out = p1.cycle(SimTime::ZERO, &reports);
        assert!(!out.capped && !out.uncapped);
        assert!(out
            .directives
            .iter()
            .all(|d| *d == ChildDirective::Unchanged));
    }

    #[test]
    fn multiple_offenders_split_by_high_bucket_first() {
        let mut p = UpperController::new("P", UpperConfig::new(kw(300.0)), 3);
        // Two offenders with different overages and one compliant child.
        let reports = [
            report(190.0, 150.0, 200.0),
            report(170.0, 150.0, 200.0),
            report(100.0, 150.0, 200.0),
        ];
        // total 460 ≫ 297 threshold → cut = 460 - 285 = 175 > combined
        // offender excess (40 + 20 = 60) → compliant child also touched.
        let out = p.cycle(SimTime::ZERO, &reports);
        assert!(out.capped);
        match (out.directives[0], out.directives[1]) {
            (ChildDirective::SetContract(c0), ChildDirective::SetContract(c1)) => {
                // Offenders land at their quotas (floors).
                assert!((c0.as_kilowatts() - 150.0).abs() < 1e-6);
                assert!((c1.as_kilowatts() - 150.0).abs() < 1e-6);
            }
            other => panic!("both offenders should be contracted: {other:?}"),
        }
        assert!(matches!(out.directives[2], ChildDirective::SetContract(_)));
        assert!(p.alerts().iter().any(|a| a.message.contains("compliant")));
    }

    #[test]
    fn offenders_with_headroom_spare_compliant_children() {
        let mut p = UpperController::new("P", UpperConfig::new(kw(300.0)), 2);
        // Offender excess (50) covers the needed cut (total 310 → cut 25).
        let reports = [report(200.0, 150.0, 250.0), report(110.0, 150.0, 200.0)];
        let out = p.cycle(SimTime::ZERO, &reports);
        assert!(out.capped);
        assert!(matches!(out.directives[0], ChildDirective::SetContract(_)));
        assert_eq!(out.directives[1], ChildDirective::Unchanged);
        assert!(p.alerts().is_empty());
    }

    #[test]
    fn uncaps_when_power_recedes() {
        let mut p = UpperController::new("P", UpperConfig::new(kw(300.0)), 2);
        let hot = [report(190.0, 150.0, 200.0), report(130.0, 150.0, 200.0)];
        p.cycle(SimTime::ZERO, &hot);
        assert!(!p.active_contracts().is_empty());
        // Below the 90% uncap threshold (270): 120 + 120 = 240.
        let cool = [report(120.0, 150.0, 200.0), report(120.0, 150.0, 200.0)];
        let out = p.cycle(SimTime::from_secs(9), &cool);
        assert!(out.uncapped);
        assert_eq!(out.directives[0], ChildDirective::ClearContract);
        assert!(p.active_contracts().is_empty());
    }

    #[test]
    fn no_uncap_without_active_contracts() {
        let mut p = UpperController::new("P", UpperConfig::new(kw(300.0)), 1);
        let out = p.cycle(SimTime::ZERO, &[report(100.0, 150.0, 200.0)]);
        assert!(!out.uncapped);
        assert_eq!(out.directives[0], ChildDirective::Unchanged);
    }

    #[test]
    fn contract_never_exceeds_child_physical_limit() {
        let mut p = UpperController::new("P", UpperConfig::new(kw(300.0)), 2);
        // Big offender whose computed contract would exceed the small
        // child's physical limit is clamped to it.
        let reports = [report(295.0, 150.0, 200.0), report(20.0, 150.0, 200.0)];
        let out = p.cycle(SimTime::ZERO, &reports);
        if let ChildDirective::SetContract(c) = out.directives[0] {
            assert!(c <= kw(200.0), "contract {c} above child physical limit");
        } else {
            panic!("offender must be contracted");
        }
    }

    #[test]
    fn own_contractual_limit_tightens_decisions() {
        let mut p = UpperController::new("P", UpperConfig::new(kw(300.0)), 2);
        let reports = [report(130.0, 150.0, 200.0), report(130.0, 150.0, 200.0)];
        // 260 under 300 → hold.
        assert!(!p.cycle(SimTime::ZERO, &reports).capped);
        // Parent squeezes us to 250 → 260 over threshold 247.5 → cap.
        p.set_contractual_limit(Some(kw(250.0)));
        assert_eq!(p.effective_limit(), kw(250.0));
        let out = p.cycle(SimTime::from_secs(9), &reports);
        assert!(out.capped);
    }

    #[test]
    fn repeated_hot_cycles_tighten_not_flap() {
        let mut p = UpperController::new("P", UpperConfig::new(kw(300.0)), 2);
        let hot = [report(190.0, 150.0, 200.0), report(130.0, 150.0, 200.0)];
        p.cycle(SimTime::ZERO, &hot);
        let first = p.active_contracts().clone();
        // Power unchanged (child did not comply yet) → contracts stay.
        let out = p.cycle(SimTime::from_secs(9), &hot);
        assert!(out.capped);
        assert_eq!(p.active_contracts().len(), first.len());
    }

    #[test]
    #[should_panic(expected = "report count mismatch")]
    fn wrong_report_count_panics() {
        let mut p = UpperController::new("P", UpperConfig::new(kw(300.0)), 2);
        p.cycle(SimTime::ZERO, &[report(100.0, 150.0, 200.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one child")]
    fn zero_children_panics() {
        UpperController::new("P", UpperConfig::new(kw(300.0)), 0);
    }

    #[test]
    fn uniform_scale_hits_every_child_proportionally() {
        let config = UpperConfig::new(kw(300.0)).with_policy(CoordinationPolicy::UniformScale);
        let mut p = UpperController::new("P", config, 2);
        // Same worked example as the paper: under uniform scaling the
        // compliant child is punished too — the behaviour the paper's
        // policy avoids.
        let reports = [report(190.0, 150.0, 200.0), report(130.0, 150.0, 200.0)];
        let out = p.cycle(SimTime::ZERO, &reports);
        assert!(out.capped);
        let (c0, c1) = match (out.directives[0], out.directives[1]) {
            (ChildDirective::SetContract(a), ChildDirective::SetContract(b)) => (a, b),
            other => panic!("both children should be contracted: {other:?}"),
        };
        // total 320, cut 35 -> frac ~10.9%: both children scaled.
        assert!(c0 < kw(190.0) && c1 < kw(130.0));
        let frac0 = 1.0 - c0.as_kilowatts() / 190.0;
        let frac1 = 1.0 - c1.as_kilowatts() / 130.0;
        assert!(
            (frac0 - frac1).abs() < 1e-9,
            "not proportional: {frac0} vs {frac1}"
        );
    }

    #[test]
    fn uniform_scale_conserves_the_cut() {
        let config = UpperConfig::new(kw(300.0)).with_policy(CoordinationPolicy::UniformScale);
        let mut p = UpperController::new("P", config, 3);
        let reports = [
            report(150.0, 120.0, 200.0),
            report(120.0, 120.0, 200.0),
            report(90.0, 120.0, 200.0),
        ];
        let out = p.cycle(SimTime::ZERO, &reports);
        let contracted: f64 = out
            .directives
            .iter()
            .zip(&reports)
            .filter_map(|(d, r)| match d {
                ChildDirective::SetContract(c) => Some(r.power.as_kilowatts() - c.as_kilowatts()),
                _ => None,
            })
            .sum();
        // total 360 -> cut to target 285 = 75 kW.
        assert!((contracted - 75.0).abs() < 1e-6, "cut sum {contracted}");
    }

    #[test]
    fn poll_interval_is_three_times_leaf_default() {
        let cfg = UpperConfig::new(kw(1250.0));
        assert_eq!(cfg.poll_interval, SimDuration::from_secs(9));
    }
}
