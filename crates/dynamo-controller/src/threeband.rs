//! The three-band capping/uncapping algorithm (Figure 10).

use powerinfra::Power;
use serde::{Deserialize, Serialize};

/// The three bands, expressed as fractions of the protected device's
/// effective power limit.
///
/// * Above `capping_threshold × limit` → cap down to
///   `capping_target × limit`.
/// * Below `uncapping_threshold × limit` → remove caps.
/// * In between → hold (hysteresis kills oscillation).
///
/// Paper defaults: the capping threshold "is typically 99% of the limit
/// of the breaker" and the capping target "is conservatively chosen to
/// be 5% below the breaker limit for safety".
///
/// # Example
///
/// ```
/// use dynamo_controller::ThreeBandConfig;
///
/// let bands = ThreeBandConfig::default();
/// assert_eq!(bands.capping_threshold, 0.99);
/// assert_eq!(bands.capping_target, 0.95);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreeBandConfig {
    /// Fraction of the limit above which capping triggers.
    pub capping_threshold: f64,
    /// Fraction of the limit capping aims for.
    pub capping_target: f64,
    /// Fraction of the limit below which uncapping triggers.
    pub uncapping_threshold: f64,
}

impl Default for ThreeBandConfig {
    fn default() -> Self {
        ThreeBandConfig {
            capping_threshold: 0.99,
            capping_target: 0.95,
            uncapping_threshold: 0.90,
        }
    }
}

impl ThreeBandConfig {
    /// Creates a configuration, validating band ordering.
    ///
    /// # Panics
    ///
    /// Panics unless
    /// `0 < uncapping_threshold < capping_target < capping_threshold <= 1`
    /// — any other ordering oscillates or never acts.
    pub fn new(capping_threshold: f64, capping_target: f64, uncapping_threshold: f64) -> Self {
        assert!(
            0.0 < uncapping_threshold
                && uncapping_threshold < capping_target
                && capping_target < capping_threshold
                && capping_threshold <= 1.0,
            "bands must satisfy 0 < uncap ({uncapping_threshold}) < target ({capping_target}) \
             < cap ({capping_threshold}) <= 1"
        );
        ThreeBandConfig {
            capping_threshold,
            capping_target,
            uncapping_threshold,
        }
    }

    /// The absolute capping threshold for a given limit.
    pub fn threshold_power(&self, limit: Power) -> Power {
        limit * self.capping_threshold
    }

    /// The absolute capping target for a given limit.
    pub fn target_power(&self, limit: Power) -> Power {
        limit * self.capping_target
    }

    /// The absolute uncapping threshold for a given limit.
    pub fn uncap_power(&self, limit: Power) -> Power {
        limit * self.uncapping_threshold
    }
}

/// The outcome of a three-band comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BandDecision {
    /// Aggregated power breached the capping threshold; remove
    /// `total_cut` to reach the capping target.
    Cap {
        /// Power to shed.
        total_cut: Power,
    },
    /// Aggregated power fell below the uncapping threshold while caps
    /// were active; release them.
    Uncap,
    /// Power is between the bands (or below the cap threshold with no
    /// caps active); do nothing.
    Hold,
}

/// Applies the three-band algorithm (§III-C2).
///
/// `caps_active` provides the hysteresis: uncapping only fires if there
/// is something to uncap.
///
/// # Panics
///
/// Panics if `limit` is not strictly positive or `total` is not a valid
/// draw.
///
/// # Example
///
/// ```
/// use dynamo_controller::{three_band_decision, BandDecision, ThreeBandConfig};
/// use powerinfra::Power;
///
/// let bands = ThreeBandConfig::default();
/// let limit = Power::from_kilowatts(100.0);
/// let hot = Power::from_kilowatts(99.5);
/// match three_band_decision(hot, limit, bands, false) {
///     BandDecision::Cap { total_cut } => {
///         assert!((total_cut.as_kilowatts() - 4.5).abs() < 1e-9)
///     }
///     other => panic!("expected a cap, got {other:?}"),
/// }
/// ```
pub fn three_band_decision(
    total: Power,
    limit: Power,
    bands: ThreeBandConfig,
    caps_active: bool,
) -> BandDecision {
    assert!(
        limit.as_watts() > 0.0,
        "limit must be positive, got {limit}"
    );
    assert!(total.is_valid_draw(), "invalid aggregated power {total:?}");
    if total >= bands.threshold_power(limit) {
        BandDecision::Cap {
            total_cut: total - bands.target_power(limit),
        }
    } else if caps_active && total <= bands.uncap_power(limit) {
        BandDecision::Uncap
    } else {
        BandDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMIT: Power = Power::from_watts(100_000.0);

    fn decide(total_kw: f64, caps: bool) -> BandDecision {
        three_band_decision(
            Power::from_kilowatts(total_kw),
            LIMIT,
            ThreeBandConfig::default(),
            caps,
        )
    }

    #[test]
    fn above_threshold_caps_to_target() {
        match decide(99.5, false) {
            BandDecision::Cap { total_cut } => {
                assert!((total_cut.as_kilowatts() - 4.5).abs() < 1e-9);
            }
            other => panic!("expected cap, got {other:?}"),
        }
    }

    #[test]
    fn at_threshold_caps() {
        assert!(matches!(decide(99.0, false), BandDecision::Cap { .. }));
    }

    #[test]
    fn between_bands_holds_regardless_of_caps() {
        assert_eq!(decide(95.0, false), BandDecision::Hold);
        assert_eq!(decide(95.0, true), BandDecision::Hold);
        assert_eq!(decide(91.0, true), BandDecision::Hold);
    }

    #[test]
    fn below_uncap_threshold_uncapps_only_with_active_caps() {
        assert_eq!(decide(89.0, true), BandDecision::Uncap);
        assert_eq!(decide(89.0, false), BandDecision::Hold);
    }

    #[test]
    fn hysteresis_prevents_oscillation() {
        // A power level just below the capping target must neither cap
        // nor uncap — the band gap absorbs it.
        let steady = 94.0;
        assert_eq!(decide(steady, true), BandDecision::Hold);
        assert_eq!(decide(steady, false), BandDecision::Hold);
    }

    #[test]
    fn overload_far_beyond_limit_requests_a_big_cut() {
        match decide(130.0, false) {
            BandDecision::Cap { total_cut } => {
                assert!((total_cut.as_kilowatts() - 35.0).abs() < 1e-9);
            }
            other => panic!("expected cap, got {other:?}"),
        }
    }

    #[test]
    fn custom_bands_apply() {
        // Per-controller configurability (§III-C2: "we can configure the
        // capping and uncapping thresholds on a per-controller basis").
        let tight = ThreeBandConfig::new(0.9, 0.8, 0.7);
        let d = three_band_decision(Power::from_kilowatts(91.0), LIMIT, tight, false);
        match d {
            BandDecision::Cap { total_cut } => {
                assert!((total_cut.as_kilowatts() - 11.0).abs() < 1e-9);
            }
            other => panic!("expected cap, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "bands must satisfy")]
    fn inverted_bands_panic() {
        ThreeBandConfig::new(0.9, 0.95, 0.8);
    }

    #[test]
    #[should_panic(expected = "limit must be positive")]
    fn zero_limit_panics() {
        three_band_decision(
            Power::from_watts(1.0),
            Power::ZERO,
            ThreeBandConfig::default(),
            false,
        );
    }

    #[test]
    fn absolute_band_helpers() {
        let b = ThreeBandConfig::default();
        assert_eq!(b.threshold_power(LIMIT), Power::from_kilowatts(99.0));
        assert_eq!(b.target_power(LIMIT), Power::from_kilowatts(95.0));
        assert_eq!(b.uncap_power(LIMIT), Power::from_kilowatts(90.0));
    }
}
