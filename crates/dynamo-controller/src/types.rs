//! Shared controller-facing types.

use dcsim::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use dcsim::SimTime;
use powerinfra::Power;
use serde::{Deserialize, Serialize};

/// What a controller knows about the service running on a server — the
/// "meta-data about all the servers it controls" of §III-C3, reduced to
/// what capping decisions need. Deliberately *not* the workload
/// simulator's service enum: production Dynamo is service-agnostic and
/// consumes exactly this triple from a metadata store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceClass {
    /// Service name for logs and reports.
    pub name: String,
    /// Priority group; *lower* values are capped first.
    pub priority: u8,
    /// SLA floor: the lowest power cap this service may receive.
    pub sla_min_cap: Power,
}

impl ServiceClass {
    /// Creates a service class.
    ///
    /// # Panics
    ///
    /// Panics if `sla_min_cap` is not a positive power.
    pub fn new(name: impl Into<String>, priority: u8, sla_min_cap: Power) -> Self {
        assert!(
            sla_min_cap.is_valid_draw() && sla_min_cap.as_watts() > 0.0,
            "SLA floor must be positive, got {sla_min_cap:?}"
        );
        ServiceClass {
            name: name.into(),
            priority,
            sla_min_cap,
        }
    }
}

/// A leaf controller's handle on one downstream server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerHandle {
    /// Fleet-wide server id.
    pub server_id: u32,
    /// The service metadata used for performance-aware capping.
    pub service: ServiceClass,
}

/// One capping command computed by the decision logic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapCommand {
    /// Target server.
    pub server_id: u32,
    /// The power cap to program ("its current power value less its
    /// power-cut", §III-C3).
    pub cap: Power,
}

/// The action a controller took in one cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlAction {
    /// Power is inside the bands; nothing to do.
    Hold,
    /// Capping was triggered; carries the total cut and the commands.
    Capped {
        /// Power removed in aggregate.
        total_cut: Power,
        /// Per-server caps issued.
        commands: Vec<CapCommand>,
    },
    /// Uncapping was triggered; all caps cleared.
    Uncapped,
    /// The aggregation was invalid (too many pull failures); no action
    /// taken, alert raised instead (§III-C1).
    Invalid,
}

impl ControlAction {
    /// True for the `Capped` variant.
    pub fn is_capped(&self) -> bool {
        matches!(self, ControlAction::Capped { .. })
    }
}

/// An operator alert (§III-E: exceeding the failure threshold "will
/// instead send an alarm for a human operator to intervene").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// When the alert fired.
    pub at: SimTime,
    /// The controller that raised it.
    pub controller: String,
    /// Human-readable cause.
    pub message: String,
}

impl Snapshot for Alert {
    const KIND: &'static str = "dynamo_controller.Alert";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        w.put_u64(self.at.as_millis());
        w.put_str(&self.controller);
        w.put_str(&self.message);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Alert {
            at: SimTime::from_millis(r.get_u64()?),
            controller: r.get_str()?,
            message: r.get_str()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_class_construction() {
        let c = ServiceClass::new("cache", 3, Power::from_watts(260.0));
        assert_eq!(c.name, "cache");
        assert_eq!(c.priority, 3);
    }

    #[test]
    #[should_panic(expected = "SLA floor must be positive")]
    fn zero_sla_panics() {
        ServiceClass::new("x", 0, Power::ZERO);
    }

    #[test]
    fn control_action_predicates() {
        assert!(ControlAction::Capped {
            total_cut: Power::from_watts(1.0),
            commands: vec![]
        }
        .is_capped());
        assert!(!ControlAction::Hold.is_capped());
        assert!(!ControlAction::Uncapped.is_capped());
        assert!(!ControlAction::Invalid.is_capped());
    }
}
