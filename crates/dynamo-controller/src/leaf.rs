//! The leaf power controller (§III-C).

use std::collections::HashMap;
use std::sync::Arc;

use dcsim::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use dcsim::{SimDuration, SimTime};
use powerinfra::Power;
use serde::{Deserialize, Serialize};

use crate::distribution::{distribute_power_cut_with_stats, DistributionStats};
use crate::threeband::{three_band_decision, BandDecision, ThreeBandConfig};
use crate::types::{Alert, ControlAction, ServerHandle};
use dynrpc::{Request, Response, RpcError};

/// Configuration of a [`LeafController`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafConfig {
    /// The physical breaker limit of the protected device.
    pub physical_limit: Power,
    /// Three-band thresholds (fractions of the *effective* limit).
    pub bands: ThreeBandConfig,
    /// Power pulling cycle. Paper: 3 s — fast enough for sub-minute
    /// variations, slow enough for RAPL to settle between actions.
    pub poll_interval: SimDuration,
    /// High-bucket-first bucket width. Paper: "a bucket size between 10
    /// and 30 W works well ... a bucket size of 20 W is used".
    pub bucket_width: Power,
    /// Pull-failure fraction above which the aggregation is declared
    /// invalid. Paper: 20%.
    pub max_failure_frac: f64,
    /// Constant draw of non-server components behind the same breaker
    /// (top-of-rack switches etc., §III-C1); monitored but not
    /// controllable.
    pub non_server_overhead: Power,
    /// Dry-run mode (§VI): the controller computes decisions and logs
    /// them but never sends actuation RPCs. Used for end-to-end testing
    /// of service-specific logic "without actually throttling the
    /// servers in those critical services".
    pub dry_run: bool,
}

impl LeafConfig {
    /// Paper-default configuration for a device with the given breaker
    /// limit.
    ///
    /// # Panics
    ///
    /// Panics if `physical_limit` is not strictly positive.
    pub fn new(physical_limit: Power) -> Self {
        assert!(
            physical_limit.as_watts() > 0.0,
            "physical limit must be positive"
        );
        LeafConfig {
            physical_limit,
            bands: ThreeBandConfig::default(),
            poll_interval: SimDuration::from_secs(3),
            bucket_width: Power::from_watts(20.0),
            max_failure_frac: 0.20,
            non_server_overhead: Power::ZERO,
            dry_run: false,
        }
    }

    /// Enables dry-run mode (compute and log decisions, never actuate).
    pub fn with_dry_run(mut self) -> Self {
        self.dry_run = true;
        self
    }

    /// Overrides the three-band thresholds.
    pub fn with_bands(mut self, bands: ThreeBandConfig) -> Self {
        self.bands = bands;
        self
    }

    /// Sets the uncontrolled non-server draw behind the breaker.
    pub fn with_overhead(mut self, overhead: Power) -> Self {
        self.non_server_overhead = overhead;
        self
    }
}

/// What one control cycle observed and did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleOutcome {
    /// Cycle timestamp.
    pub at: SimTime,
    /// Aggregated power (servers + overhead), `None` if invalid.
    pub aggregated: Option<Power>,
    /// Number of pull failures this cycle.
    pub pull_failures: usize,
    /// Of the failures, how many were covered by peer estimates.
    pub estimated: usize,
    /// The action taken.
    pub action: ControlAction,
}

/// The leaf power controller: protects one leaf power device by polling
/// the Dynamo agents of all downstream servers and issuing cap/uncap
/// commands (§III-C).
///
/// The controller is transport-agnostic: each cycle takes a closure that
/// performs one RPC to a given server id, so production Thrift, the
/// simulated [`dynrpc::Network`], or a scripted fake all plug in.
///
/// # Example
///
/// ```
/// use dcsim::{SimDuration, SimTime};
/// use dynamo_controller::{LeafConfig, LeafController, ServerHandle, ServiceClass};
/// use dynrpc::{PowerReading, Request, Response};
/// use powerinfra::Power;
///
/// let servers: Vec<ServerHandle> = (0..4)
///     .map(|i| ServerHandle {
///         server_id: i,
///         service: ServiceClass::new("web", 1, Power::from_watts(210.0)),
///     })
///     .collect();
/// let mut leaf = LeafController::new(
///     "rpp0", LeafConfig::new(Power::from_kilowatts(1.3)), servers);
///
/// // Every server reports 330 W -> 1.32 kW total, over the 1.3 kW limit.
/// let outcome = leaf.cycle(SimTime::ZERO, |_, req| match req {
///     Request::ReadPower => Ok(Response::Power(PowerReading::total_only(
///         Power::from_watts(330.0),
///     ))),
///     _ => Ok(Response::CapAck { ok: true }),
/// });
/// assert!(outcome.action.is_capped());
/// ```
#[derive(Debug, Clone)]
pub struct LeafController {
    /// Interned name: cloning it for telemetry events is a refcount
    /// bump, not a heap allocation.
    name: Arc<str>,
    config: LeafConfig,
    servers: Vec<ServerHandle>,
    /// Position of each server id in `servers` (cold-path lookups).
    pos_of: HashMap<u32, usize>,
    /// Most recent reading (or estimate) per server, indexed by
    /// position in `servers`.
    last_power: Vec<Option<Power>>,
    /// Caps currently in force, indexed by position in `servers`.
    active_caps: Vec<Option<Power>>,
    /// Number of `Some` entries in `active_caps`.
    active_cap_count: usize,
    /// Contractual limit pushed down by the parent controller (§III-D).
    contractual_limit: Option<Power>,
    alerts: Vec<Alert>,
    cycles: u64,
    /// Per-cycle pull results, reused across cycles so the steady-state
    /// (Hold) cycle path allocates nothing.
    scratch_readings: Vec<Option<Power>>,
    /// Positions whose pull failed this cycle, reused across cycles.
    scratch_failed: Vec<u32>,
    /// Stats of the most recent cut distribution (observability).
    last_distribution: DistributionStats,
}

impl LeafController {
    /// Creates a controller protecting one leaf device.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty — a leaf controller with nothing to
    /// control is a configuration error.
    pub fn new(name: impl Into<Arc<str>>, config: LeafConfig, servers: Vec<ServerHandle>) -> Self {
        assert!(
            !servers.is_empty(),
            "leaf controller needs at least one server"
        );
        let n = servers.len();
        let pos_of = servers
            .iter()
            .enumerate()
            .map(|(i, h)| (h.server_id, i))
            .collect();
        LeafController {
            name: name.into(),
            config,
            servers,
            pos_of,
            last_power: vec![None; n],
            active_caps: vec![None; n],
            active_cap_count: 0,
            contractual_limit: None,
            alerts: Vec::new(),
            cycles: 0,
            scratch_readings: Vec::with_capacity(n),
            scratch_failed: Vec::new(),
            last_distribution: DistributionStats::default(),
        }
    }

    /// The controller's name (usually the protected device's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interned name; cloning the returned `Arc` is allocation-free.
    pub fn name_shared(&self) -> Arc<str> {
        Arc::clone(&self.name)
    }

    /// The configuration in use.
    pub fn config(&self) -> &LeafConfig {
        &self.config
    }

    /// The servers under this controller.
    pub fn servers(&self) -> &[ServerHandle] {
        &self.servers
    }

    /// The effective limit: `min(physical, contractual)` (§III-D).
    pub fn effective_limit(&self) -> Power {
        match self.contractual_limit {
            Some(c) => c.min(self.config.physical_limit),
            None => self.config.physical_limit,
        }
    }

    /// Sets or clears the contractual limit from the parent controller.
    ///
    /// # Panics
    ///
    /// Panics if the limit is not strictly positive.
    pub fn set_contractual_limit(&mut self, limit: Option<Power>) {
        if let Some(l) = limit {
            assert!(
                l.as_watts() > 0.0,
                "contractual limit must be positive, got {l}"
            );
        }
        self.contractual_limit = limit;
    }

    /// The contractual limit currently in force, if any.
    pub fn contractual_limit(&self) -> Option<Power> {
        self.contractual_limit
    }

    /// Toggles dry-run mode at runtime (staged rollouts flip this as a
    /// controller graduates from shadow to active duty).
    pub fn set_dry_run(&mut self, dry_run: bool) {
        self.config.dry_run = dry_run;
    }

    /// Caps currently in force (server → cap). Built on demand: the
    /// controller stores caps position-indexed internally, so this is a
    /// cold-path convenience view.
    pub fn active_caps(&self) -> HashMap<u32, Power> {
        self.servers
            .iter()
            .zip(&self.active_caps)
            .filter_map(|(h, cap)| cap.map(|c| (h.server_id, c)))
            .collect()
    }

    /// Number of caps currently in force (allocation-free).
    pub fn active_cap_count(&self) -> usize {
        self.active_cap_count
    }

    /// The last aggregated per-server readings (server → power). Built
    /// on demand, like [`LeafController::active_caps`].
    pub fn last_power(&self) -> HashMap<u32, Power> {
        self.servers
            .iter()
            .zip(&self.last_power)
            .filter_map(|(h, p)| p.map(|v| (h.server_id, v)))
            .collect()
    }

    /// Alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Number of completed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Stats of the most recent power-cut distribution (how many
    /// priority groups and power buckets the walk touched, victims,
    /// unabsorbed watts). Zeroed until the first capping cycle.
    pub fn last_distribution(&self) -> DistributionStats {
        self.last_distribution
    }

    /// Captures the controller's dynamic state: Hold-band trackers
    /// (`last_power`), capping-episode state (`active_caps`), the pushed
    /// contract, alerts, cycle count, distribution stats and the
    /// runtime-mutable dry-run flag. Static config and server handles
    /// are rebuilt by the owner.
    pub fn state(&self) -> LeafControllerState {
        LeafControllerState {
            last_power: self.last_power.clone(),
            active_caps: self.active_caps.clone(),
            contractual_limit: self.contractual_limit,
            alerts: self.alerts.clone(),
            cycles: self.cycles,
            last_distribution: self.last_distribution,
            dry_run: self.config.dry_run,
        }
    }

    /// Restores state captured by [`LeafController::state`].
    ///
    /// # Errors
    ///
    /// Fails with [`SnapError::Corrupt`] if the state was captured from
    /// a controller with a different server count.
    pub fn restore(&mut self, state: &LeafControllerState) -> Result<(), SnapError> {
        let n = self.servers.len();
        if state.last_power.len() != n || state.active_caps.len() != n {
            return Err(SnapError::Corrupt(format!(
                "leaf '{}' has {} servers; state was captured with {}/{}",
                self.name,
                n,
                state.last_power.len(),
                state.active_caps.len()
            )));
        }
        self.last_power.clone_from(&state.last_power);
        self.active_caps.clone_from(&state.active_caps);
        self.active_cap_count = self.active_caps.iter().filter(|c| c.is_some()).count();
        self.contractual_limit = state.contractual_limit;
        self.alerts.clone_from(&state.alerts);
        self.cycles = state.cycles;
        self.last_distribution = state.last_distribution;
        self.config.dry_run = state.dry_run;
        Ok(())
    }

    /// Runs one 3-second control cycle at time `now`:
    ///
    /// 1. Pull power from every downstream agent.
    /// 2. Estimate failed pulls from same-service peers; above the 20%
    ///    failure threshold, declare the aggregation invalid, alert, and
    ///    take no action (§III-C1, §III-E).
    /// 3. Apply the three-band algorithm against the effective limit.
    /// 4. On capping: distribute the cut (priority groups,
    ///    high-bucket-first) and send `SetCap`s; on uncapping: send
    ///    `ClearCap`s.
    pub fn cycle<F>(&mut self, now: SimTime, mut call: F) -> CycleOutcome
    where
        F: FnMut(u32, Request) -> Result<Response, RpcError>,
    {
        self.cycles += 1;
        let n = self.servers.len();

        // -- 1. Pull power readings into reusable scratch buffers.
        self.scratch_readings.clear();
        self.scratch_readings.resize(n, None);
        self.scratch_failed.clear();
        for (pos, handle) in self.servers.iter().enumerate() {
            match call(handle.server_id, Request::ReadPower) {
                Ok(Response::Power(r)) if r.total.is_valid_draw() => {
                    self.scratch_readings[pos] = Some(r.total);
                }
                _ => self.scratch_failed.push(pos as u32),
            }
        }
        let failures = self.scratch_failed.len();

        // -- 2. Failure handling.
        let failure_frac = failures as f64 / n as f64;
        if failure_frac > self.config.max_failure_frac {
            self.alerts.push(Alert {
                at: now,
                controller: self.name.to_string(),
                message: format!(
                    "power aggregation invalid: {failures}/{n} pulls failed ({:.0}% > {:.0}%)",
                    failure_frac * 100.0,
                    self.config.max_failure_frac * 100.0
                ),
            });
            return CycleOutcome {
                at: now,
                aggregated: None,
                pull_failures: failures,
                estimated: 0,
                action: ControlAction::Invalid,
            };
        }
        let mut estimated = 0;
        for k in 0..self.scratch_failed.len() {
            let pos = self.scratch_failed[k] as usize;
            if let Some(est) =
                estimate_for(&self.servers, &self.last_power, &self.scratch_readings, pos)
            {
                self.scratch_readings[pos] = Some(est);
                estimated += 1;
            }
        }
        self.last_power.clone_from(&self.scratch_readings);

        // -- 3. Aggregate and decide.
        let mut total = self.config.non_server_overhead;
        for reading in &self.scratch_readings {
            if let Some(p) = *reading {
                total += p;
            }
        }
        let limit = self.effective_limit();
        let decision =
            three_band_decision(total, limit, self.config.bands, self.active_cap_count > 0);

        // -- 4. Act.
        let action = match decision {
            BandDecision::Cap { total_cut } => {
                let powers: Vec<Power> = self
                    .scratch_readings
                    .iter()
                    .map(|r| r.unwrap_or(Power::ZERO))
                    .collect();
                let (cuts, leftover, dist_stats) = distribute_power_cut_with_stats(
                    &self.servers,
                    &powers,
                    total_cut,
                    self.config.bucket_width,
                );
                self.last_distribution = dist_stats;
                if leftover.as_watts() > 1.0 {
                    self.alerts.push(Alert {
                        at: now,
                        controller: self.name.to_string(),
                        message: format!(
                            "SLA floors prevented {leftover} of a {total_cut} cut; device may overload"
                        ),
                    });
                }
                let mut commands = Vec::with_capacity(cuts.len());
                for cut in cuts {
                    let cmd = cut.to_command();
                    if self.config.dry_run {
                        // Log the decision without touching the fleet.
                        commands.push(cmd);
                        continue;
                    }
                    // Failed actuations are retried implicitly: the next
                    // cycle re-measures and re-decides.
                    if let Ok(Response::CapAck { ok: true }) =
                        call(cmd.server_id, Request::SetCap(cmd.cap))
                    {
                        let pos = self.pos_of[&cmd.server_id];
                        if self.active_caps[pos].is_none() {
                            self.active_cap_count += 1;
                        }
                        self.active_caps[pos] = Some(cmd.cap);
                        commands.push(cmd);
                    }
                }
                ControlAction::Capped {
                    total_cut,
                    commands,
                }
            }
            BandDecision::Uncap => {
                for pos in 0..n {
                    if self.active_caps[pos].is_none() || self.config.dry_run {
                        continue;
                    }
                    if let Ok(Response::CapAck { ok: true }) =
                        call(self.servers[pos].server_id, Request::ClearCap)
                    {
                        self.active_caps[pos] = None;
                        self.active_cap_count -= 1;
                    }
                }
                ControlAction::Uncapped
            }
            BandDecision::Hold => ControlAction::Hold,
        };

        CycleOutcome {
            at: now,
            aggregated: Some(total),
            pull_failures: failures,
            estimated,
            action,
        }
    }
}

/// Estimates power for a failed pull "using power readings from
/// neighboring servers running similar workloads" (§III-C1): the mean
/// of this cycle's successful same-service readings (including earlier
/// estimates), falling back to the server's own last known value. All
/// slices are indexed by position in `servers`.
fn estimate_for(
    servers: &[ServerHandle],
    last_power: &[Option<Power>],
    readings: &[Option<Power>],
    pos: usize,
) -> Option<Power> {
    let service = &servers[pos].service;
    let mut sum = Power::ZERO;
    let mut peers = 0usize;
    for (i, handle) in servers.iter().enumerate() {
        if i == pos || handle.service.name != service.name {
            continue;
        }
        if let Some(p) = readings[i] {
            sum += p;
            peers += 1;
        }
    }
    if peers > 0 {
        return Some(sum / peers as f64);
    }
    last_power[pos]
}

/// The dynamic state of one [`LeafController`]. Implements
/// [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct LeafControllerState {
    /// Most recent per-server reading, position-indexed.
    pub last_power: Vec<Option<Power>>,
    /// Caps in force, position-indexed.
    pub active_caps: Vec<Option<Power>>,
    /// Contract pushed down by the parent.
    pub contractual_limit: Option<Power>,
    /// Alerts raised so far.
    pub alerts: Vec<Alert>,
    /// Completed cycle count.
    pub cycles: u64,
    /// Stats of the most recent cut distribution.
    pub last_distribution: DistributionStats,
    /// Runtime dry-run flag (staged rollouts mutate it mid-run).
    pub dry_run: bool,
}

fn put_opt_power_slice(w: &mut SnapWriter, xs: &[Option<Power>]) {
    w.put_u64(xs.len() as u64);
    for x in xs {
        w.put_opt_f64(x.map(Power::as_watts));
    }
}

fn get_opt_power_vec(r: &mut SnapReader<'_>) -> Result<Vec<Option<Power>>, SnapError> {
    let n = r.get_u64()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(r.get_opt_f64()?.map(Power::from_watts));
    }
    Ok(out)
}

fn put_alerts(w: &mut SnapWriter, alerts: &[Alert]) {
    w.put_u64(alerts.len() as u64);
    for a in alerts {
        a.encode_body(w);
    }
}

fn get_alerts(r: &mut SnapReader<'_>) -> Result<Vec<Alert>, SnapError> {
    let n = r.get_u64()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(Alert::decode_body(r)?);
    }
    Ok(out)
}

impl Snapshot for LeafControllerState {
    const KIND: &'static str = "dynamo_controller.LeafControllerState";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut SnapWriter) {
        put_opt_power_slice(w, &self.last_power);
        put_opt_power_slice(w, &self.active_caps);
        w.put_opt_f64(self.contractual_limit.map(Power::as_watts));
        put_alerts(w, &self.alerts);
        w.put_u64(self.cycles);
        w.put_u32(self.last_distribution.groups_touched);
        w.put_u32(self.last_distribution.buckets_expanded);
        w.put_u32(self.last_distribution.victims);
        w.put_f64(self.last_distribution.leftover_watts);
        w.put_bool(self.dry_run);
    }

    fn decode_body(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(LeafControllerState {
            last_power: get_opt_power_vec(r)?,
            active_caps: get_opt_power_vec(r)?,
            contractual_limit: r.get_opt_f64()?.map(Power::from_watts),
            alerts: get_alerts(r)?,
            cycles: r.get_u64()?,
            last_distribution: DistributionStats {
                groups_touched: r.get_u32()?,
                buckets_expanded: r.get_u32()?,
                victims: r.get_u32()?,
                leftover_watts: r.get_f64()?,
            },
            dry_run: r.get_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ServiceClass;
    use dynrpc::PowerReading;

    fn watts(v: f64) -> Power {
        Power::from_watts(v)
    }

    fn web_servers(n: u32) -> Vec<ServerHandle> {
        (0..n)
            .map(|i| ServerHandle {
                server_id: i,
                service: ServiceClass::new("web", 1, watts(210.0)),
            })
            .collect()
    }

    /// A scripted fleet: per-server power, per-server reachability.
    struct Fleet {
        power: HashMap<u32, Power>,
        down: Vec<u32>,
        caps: HashMap<u32, Power>,
    }

    impl Fleet {
        fn new(powers: &[(u32, f64)]) -> Self {
            Fleet {
                power: powers.iter().map(|&(i, p)| (i, watts(p))).collect(),
                down: Vec::new(),
                caps: HashMap::new(),
            }
        }

        fn call(&mut self, sid: u32, req: Request) -> Result<Response, RpcError> {
            if self.down.contains(&sid) {
                return Err(RpcError::AgentDown);
            }
            match req {
                Request::ReadPower => {
                    let raw = self.power[&sid];
                    let eff = self.caps.get(&sid).map_or(raw, |&c| raw.min(c));
                    Ok(Response::Power(PowerReading::total_only(eff)))
                }
                Request::SetCap(c) => {
                    self.caps.insert(sid, c);
                    Ok(Response::CapAck { ok: true })
                }
                Request::ClearCap => {
                    self.caps.remove(&sid);
                    Ok(Response::CapAck { ok: true })
                }
            }
        }
    }

    fn leaf(limit_w: f64, servers: Vec<ServerHandle>) -> LeafController {
        LeafController::new("rpp-test", LeafConfig::new(watts(limit_w)), servers)
    }

    #[test]
    fn under_threshold_holds() {
        let mut fleet = Fleet::new(&[(0, 200.0), (1, 200.0)]);
        let mut c = leaf(1000.0, web_servers(2));
        let out = c.cycle(SimTime::ZERO, |s, r| fleet.call(s, r));
        assert_eq!(out.action, ControlAction::Hold);
        assert_eq!(out.aggregated, Some(watts(400.0)));
        assert!(c.active_caps().is_empty());
    }

    #[test]
    fn over_threshold_caps_down_to_target() {
        // 4 × 300 W = 1200 W against a 1200 W limit → threshold 1188.
        let mut fleet = Fleet::new(&[(0, 300.0), (1, 300.0), (2, 300.0), (3, 300.0)]);
        let mut c = leaf(1200.0, web_servers(4));
        let out = c.cycle(SimTime::ZERO, |s, r| fleet.call(s, r));
        match &out.action {
            ControlAction::Capped {
                total_cut,
                commands,
            } => {
                assert!((total_cut.as_watts() - 60.0).abs() < 1e-6);
                assert!(!commands.is_empty());
            }
            other => panic!("expected cap, got {other:?}"),
        }
        // Next cycle reads capped powers: total at target, within bands.
        let out2 = c.cycle(SimTime::from_secs(3), |s, r| fleet.call(s, r));
        assert_eq!(out2.action, ControlAction::Hold);
        let total = out2.aggregated.unwrap().as_watts();
        assert!((total - 1140.0).abs() < 1.0, "settled at {total}");
    }

    #[test]
    fn uncaps_when_power_falls() {
        let mut fleet = Fleet::new(&[(0, 300.0), (1, 300.0), (2, 300.0), (3, 300.0)]);
        let mut c = leaf(1200.0, web_servers(4));
        c.cycle(SimTime::ZERO, |s, r| fleet.call(s, r));
        assert!(!c.active_caps().is_empty());
        // Load drops well below the uncap threshold (90% of 1200 = 1080).
        for p in fleet.power.values_mut() {
            *p = watts(220.0);
        }
        let out = c.cycle(SimTime::from_secs(3), |s, r| fleet.call(s, r));
        assert_eq!(out.action, ControlAction::Uncapped);
        assert!(c.active_caps().is_empty());
        assert!(fleet.caps.is_empty());
    }

    #[test]
    fn no_oscillation_between_bands() {
        let mut fleet = Fleet::new(&[(0, 300.0), (1, 300.0), (2, 300.0), (3, 300.0)]);
        let mut c = leaf(1200.0, web_servers(4));
        c.cycle(SimTime::ZERO, |s, r| fleet.call(s, r));
        // Power sits at the capped level (between uncap and cap bands):
        // repeated cycles must all hold.
        for k in 1..20 {
            let out = c.cycle(SimTime::from_secs(3 * k), |s, r| fleet.call(s, r));
            assert_eq!(out.action, ControlAction::Hold, "cycle {k} oscillated");
        }
    }

    #[test]
    fn pull_failures_are_estimated_from_peers() {
        let mut fleet = Fleet::new(&[(0, 300.0), (1, 300.0), (2, 300.0), (3, 300.0), (4, 300.0)]);
        fleet.down = vec![4];
        let mut c = leaf(10_000.0, web_servers(5));
        let out = c.cycle(SimTime::ZERO, |s, r| fleet.call(s, r));
        assert_eq!(out.pull_failures, 1);
        assert_eq!(out.estimated, 1);
        // The estimate equals the peer mean, so the total is exact.
        assert_eq!(out.aggregated, Some(watts(1500.0)));
    }

    #[test]
    fn exceeding_failure_threshold_invalidates_and_alerts() {
        let mut fleet = Fleet::new(&[(0, 300.0), (1, 300.0), (2, 300.0), (3, 300.0), (4, 300.0)]);
        fleet.down = vec![0, 1]; // 40% > 20%
        let mut c = leaf(1000.0, web_servers(5)); // would otherwise cap
        let out = c.cycle(SimTime::ZERO, |s, r| fleet.call(s, r));
        assert_eq!(out.action, ControlAction::Invalid);
        assert_eq!(out.aggregated, None);
        assert_eq!(c.alerts().len(), 1);
        assert!(c.alerts()[0].message.contains("invalid"));
        assert!(fleet.caps.is_empty(), "no false-positive capping");
    }

    #[test]
    fn estimation_falls_back_to_last_known_value() {
        // Five web servers and one db server; the db server (with no
        // live service peer) goes down, staying under the 20% failure
        // threshold (1/6 ≈ 17%).
        let mut fleet = Fleet::new(&[
            (0, 260.0),
            (1, 260.0),
            (2, 260.0),
            (3, 260.0),
            (4, 260.0),
            (5, 320.0),
        ]);
        let mut servers = web_servers(5);
        servers.push(ServerHandle {
            server_id: 5,
            service: ServiceClass::new("db", 2, watts(250.0)),
        });
        let mut c = LeafController::new("rpp", LeafConfig::new(watts(10_000.0)), servers);
        c.cycle(SimTime::ZERO, |s, r| fleet.call(s, r));
        fleet.down = vec![5];
        let out = c.cycle(SimTime::from_secs(3), |s, r| fleet.call(s, r));
        assert_eq!(out.pull_failures, 1);
        assert_eq!(out.estimated, 1);
        // The db server's last known 320 W reading fills the gap.
        assert_eq!(out.aggregated, Some(watts(5.0 * 260.0 + 320.0)));
    }

    #[test]
    fn contractual_limit_tightens_effective_limit() {
        let mut fleet = Fleet::new(&[(0, 300.0), (1, 300.0), (2, 300.0), (3, 300.0)]);
        let mut c = leaf(2000.0, web_servers(4));
        // Without contract: 1200 W under 2000 W limit → hold.
        let out = c.cycle(SimTime::ZERO, |s, r| fleet.call(s, r));
        assert_eq!(out.action, ControlAction::Hold);
        // Parent pushes a 1150 W contractual limit → must cap.
        c.set_contractual_limit(Some(watts(1150.0)));
        assert_eq!(c.effective_limit(), watts(1150.0));
        let out2 = c.cycle(SimTime::from_secs(3), |s, r| fleet.call(s, r));
        assert!(out2.action.is_capped());
        // Contract above physical is clamped by min().
        c.set_contractual_limit(Some(watts(99_000.0)));
        assert_eq!(c.effective_limit(), watts(2000.0));
    }

    #[test]
    fn overhead_counts_toward_the_limit() {
        let servers = web_servers(2);
        let cfg = LeafConfig::new(watts(1000.0)).with_overhead(watts(300.0));
        let mut c = LeafController::new("rpp", cfg, servers);
        let mut fleet = Fleet::new(&[(0, 350.0), (1, 350.0)]);
        let out = c.cycle(SimTime::ZERO, |s, r| fleet.call(s, r));
        // 700 + 300 = 1000 ≥ 99% threshold → cap.
        assert!(out.action.is_capped());
        assert_eq!(out.aggregated, Some(watts(1000.0)));
    }

    #[test]
    fn failed_actuation_is_not_recorded_as_active() {
        let mut fleet = Fleet::new(&[(0, 300.0), (1, 300.0), (2, 300.0), (3, 300.0)]);
        let mut c = leaf(1200.0, web_servers(4));
        let down = std::cell::Cell::new(false);
        let out = c.cycle(SimTime::ZERO, |s, r| {
            if matches!(r, Request::SetCap(_)) && !down.get() {
                down.set(true);
                return Err(RpcError::Timeout);
            }
            fleet.call(s, r)
        });
        match out.action {
            ControlAction::Capped { commands, .. } => {
                // One SetCap timed out → one fewer active cap.
                assert_eq!(commands.len(), c.active_caps().len());
                assert_eq!(fleet.caps.len(), c.active_caps().len());
            }
            other => panic!("expected cap, got {other:?}"),
        }
    }

    #[test]
    fn priority_groups_respected_through_cycle() {
        // 2 hadoop + 2 cache servers; cut must land on hadoop only.
        let servers = vec![
            ServerHandle {
                server_id: 0,
                service: ServiceClass::new("hadoop", 0, watts(140.0)),
            },
            ServerHandle {
                server_id: 1,
                service: ServiceClass::new("hadoop", 0, watts(140.0)),
            },
            ServerHandle {
                server_id: 2,
                service: ServiceClass::new("cache", 3, watts(260.0)),
            },
            ServerHandle {
                server_id: 3,
                service: ServiceClass::new("cache", 3, watts(260.0)),
            },
        ];
        let mut fleet = Fleet::new(&[(0, 300.0), (1, 300.0), (2, 300.0), (3, 300.0)]);
        let mut c = LeafController::new("rpp", LeafConfig::new(watts(1200.0)), servers);
        let out = c.cycle(SimTime::ZERO, |s, r| fleet.call(s, r));
        match out.action {
            ControlAction::Capped { commands, .. } => {
                assert!(commands.iter().all(|cmd| cmd.server_id < 2), "{commands:?}");
            }
            other => panic!("expected cap, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_server_list_panics() {
        LeafController::new("rpp", LeafConfig::new(watts(1000.0)), vec![]);
    }

    #[test]
    fn dry_run_logs_decisions_without_actuating() {
        let mut fleet = Fleet::new(&[(0, 300.0), (1, 300.0), (2, 300.0), (3, 300.0)]);
        let cfg = LeafConfig::new(watts(1200.0)).with_dry_run();
        let mut c = LeafController::new("rpp-dry", cfg, web_servers(4));
        let out = c.cycle(SimTime::ZERO, |s, r| fleet.call(s, r));
        match out.action {
            ControlAction::Capped { commands, .. } => {
                assert!(
                    !commands.is_empty(),
                    "dry run must still compute the decision"
                );
            }
            other => panic!("expected cap decision, got {other:?}"),
        }
        // ...but nothing reached the fleet and no state was recorded.
        assert!(fleet.caps.is_empty(), "dry run actuated caps");
        assert!(c.active_caps().is_empty());
        // Repeated cycles stay consistent (no phantom uncaps).
        let out2 = c.cycle(SimTime::from_secs(3), |s, r| fleet.call(s, r));
        assert!(out2.action.is_capped());
        assert!(fleet.caps.is_empty());
    }

    #[test]
    fn sla_shortfall_raises_alert() {
        // One web server, limit forces a cut (300 − 190 = 110 W) bigger
        // than the 90 W headroom above the 210 W SLA floor.
        let mut fleet = Fleet::new(&[(0, 300.0)]);
        let mut c = leaf(200.0, web_servers(1));
        let out = c.cycle(SimTime::ZERO, |s, r| fleet.call(s, r));
        assert!(out.action.is_capped());
        assert!(
            c.alerts().iter().any(|a| a.message.contains("SLA")),
            "{:?}",
            c.alerts()
        );
    }
}
